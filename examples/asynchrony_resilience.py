#!/usr/bin/env python3
"""Reproduce the Fig. 7 storyline: a 5-second WAN disturbance.

Runs SMP-HS (best-effort shared mempool) and S-HS (Stratus) through a
window of heavy delay jitter and prints the throughput timeline. The
simple mempool collapses into a view-change storm — replicas cannot vote
until they fetch missing microblocks from the congested leader — while
Stratus keeps committing because availability proofs let consensus enter
the commit phase without the bodies.

Run:  python examples/asynchrony_resilience.py
"""

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.harness import format_table
from repro.sim.topology import FluctuationWindow

WARMUP = 1.0
DISTURBANCE = FluctuationWindow(
    start=4.0, duration=5.0, base=0.1, jitter=0.05, throughput_factor=0.15,
)


def run(preset: str):
    protocol = tuned_protocol(
        preset, n=32, topology_kind="wan", view_timeout=1.0,
        batch_bytes=32 * 1024, batch_timeout=0.4,
    )
    return run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=25_000,
        duration=13.0, warmup=WARMUP, seed=3, label=preset,
        fluctuation=DISTURBANCE,
    ))


def main() -> None:
    results = {preset: run(preset) for preset in ("SMP-HS", "S-HS")}

    rows = []
    for second in range(1, 14):
        row = [f"{second:>2}s"]
        for preset, result in results.items():
            series = dict(result.metrics.throughput_series(0.0, 14.0, 1.0))
            row.append(f"{series.get(float(second), 0.0):,.0f}")
        marker = ""
        if DISTURBANCE.start <= second < DISTURBANCE.start + DISTURBANCE.duration:
            marker = "<- disturbance"
        row.append(marker)
        rows.append(row)

    print(format_table(
        ["t", "SMP-HS (tx/s)", "S-HS (tx/s)", ""],
        rows,
        title="Throughput timeline through a WAN disturbance (Fig. 7)",
    ))
    print()
    for preset, result in results.items():
        print(f"{preset:7s} view changes: {result.view_changes:4d}   "
              f"fetches: {result.metrics.fetch_count}")


if __name__ == "__main__":
    main()
