#!/usr/bin/env python3
"""Demonstrate the leader bottleneck and how the shared mempool removes it.

Runs native HotStuff (N-HS), the simple shared mempool (SMP-HS), and
Stratus (S-HS) at saturating load on growing LANs, printing measured
capacity next to the Appendix-A analytic bound for the native protocol.
This is a scaled-down, fast version of the Fig. 6 experiment.

Run:  python examples/leader_bottleneck.py
"""

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.analysis import lbft_max_throughput
from repro.harness import format_table

SIZES = (8, 16, 32)
OFFERED = 200_000  # well above every protocol's capacity at these sizes


def measure(preset: str, n: int) -> float:
    protocol = tuned_protocol(preset, n=n, topology_kind="lan")
    result = run_experiment(ExperimentConfig(
        protocol=protocol,
        rate_tps=OFFERED,
        duration=2.0,
        warmup=1.5,
        seed=11,
        label=f"{preset}-n{n}",
    ))
    return result.throughput_tps


def main() -> None:
    rows = []
    for n in SIZES:
        native = measure("N-HS", n)
        simple = measure("SMP-HS", n)
        stratus = measure("S-HS", n)
        analytic = lbft_max_throughput(1e9, 128 * 8, n)
        rows.append([
            n,
            f"{native:,.0f}",
            f"{analytic:,.0f}",
            f"{simple:,.0f}",
            f"{stratus:,.0f}",
            f"{stratus / native:.1f}x",
        ])
    print(format_table(
        ["n", "N-HS (sim)", "N-HS (model)", "SMP-HS", "S-HS", "speedup"],
        rows,
        title="Leader bottleneck: capacity at saturation (tx/s, LAN)",
    ))
    print(
        "\nThe native protocol's capacity falls like C/(B(n-1)) as the\n"
        "leader serializes every proposal byte; shared-mempool protocols\n"
        "spread dissemination across replicas and keep scaling."
    )


if __name__ == "__main__":
    main()
