#!/usr/bin/env python3
"""Inspect the protocol's inner life with the event tracer.

Attaches a tracer to every replica of a small Stratus deployment, runs a
burst of load, and prints the lifecycle of one microblock — creation,
stability (ack quorum), proposal, and commit — plus aggregate event
counts. Useful as a debugging recipe when developing new mempools or
engines against this substrate.

Run:  python examples/trace_inspection.py
"""

from repro import ExperimentConfig, build_experiment, tuned_protocol
from repro.tracing import Tracer


def main() -> None:
    protocol = tuned_protocol(
        "S-HS", n=7, topology_kind="lan",
        batch_bytes=8 * 1024, batch_timeout=0.05,
    )
    experiment = build_experiment(ExperimentConfig(
        protocol=protocol, rate_tps=5_000, duration=2.0, warmup=0.5,
    ))
    tracer = Tracer()
    for replica in experiment.replicas:
        replica.tracer = tracer
    experiment.run()

    print("event counts over the run:")
    for kind, count in sorted(tracer.counts().items()):
        print(f"  {kind:12s} {count:7d}")

    first_mb = next(tracer.query(kind="mb_new"))
    mb_id = first_mb.details["mb"]
    print(f"\nlifecycle of microblock {mb_id}:")
    for event in tracer.query():
        if event.details.get("mb") == mb_id:
            print(f"  {event}")
    # The commit that included it:
    for event in tracer.query(kind="propose"):
        print(f"  {event}")
        break


if __name__ == "__main__":
    main()
