#!/usr/bin/env python3
"""Quickstart: run Stratus-HotStuff on a simulated 16-replica LAN.

Builds the full stack — deterministic network simulator, Stratus shared
mempool (PAB + DLB), chained HotStuff, a key-value executor — drives it
with 20K tx/s of client load for three simulated seconds, and prints
throughput, latency, and per-replica state-machine agreement.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, build_experiment, tuned_protocol


def main() -> None:
    # Small microblocks keep batching latency low at this modest load
    # (the tuned defaults target saturation benchmarks).
    protocol = tuned_protocol(
        "S-HS", n=16, topology_kind="lan",
        batch_bytes=16 * 1024, batch_timeout=0.1,
    )
    config = ExperimentConfig(
        protocol=protocol,
        topology_kind="lan",
        rate_tps=20_000,
        duration=3.0,
        warmup=1.0,
        seed=42,
        attach_executor=True,
        label="quickstart S-HS n=16",
    )
    experiment = build_experiment(config)
    result = experiment.run()

    print(f"protocol        : {result.label}")
    print(f"replicas        : {protocol.n} (f = {protocol.f})")
    print(f"offered load    : {config.rate_tps:,.0f} tx/s")
    print(f"throughput      : {result.throughput_tps:,.0f} tx/s")
    print(f"latency mean    : {result.latency_mean * 1000:.1f} ms")
    print(f"latency p99     : {result.latency_percentile(99) * 1000:.1f} ms")
    print(f"view changes    : {result.view_changes}")
    print(f"committed txs   : {result.committed_tx:,}")

    # Every replica executed the same chain: the KV stores agree.
    digests = {
        replica.executor.state_digest() for replica in experiment.replicas
    }
    applied = [replica.executor.tx_applied for replica in experiment.replicas]
    print(f"state digests   : {len(digests)} distinct "
          f"({'replicas agree' if len(digests) == 1 else 'DIVERGED!'})")
    print(f"txs executed    : min={min(applied):,} max={max(applied):,}")


if __name__ == "__main__":
    main()
