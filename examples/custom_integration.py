#!/usr/bin/env python3
"""Integrating Stratus into your own BFT stack via the SMP abstraction.

The paper's pitch is that the shared mempool hides behind four
primitives — ReceiveTx / ShareTx / MakeProposal / FillProposal — so any
leader-based protocol can adopt it without touching its consensus core.
This example demonstrates the extension point from both sides:

1. a *custom mempool* (round-robin direct handoff, no batching smarts)
   plugged under the stock HotStuff engine, and
2. the stock Stratus mempool plugged under a *custom consensus engine*
   (a toy fixed-leader two-phase protocol).

Run:  python examples/custom_integration.py
"""

from repro.config import ProtocolConfig
from repro.consensus.base import ConsensusEngine
from repro.consensus.hotstuff import HotStuff
from repro.crypto import GENESIS_QC
from repro.kvstore import KVStore
from repro.mempool.base import Mempool, MessageKinds
from repro.mempool.batching import MicroBlockBatcher
from repro.mempool.store import MicroBlockStore
from repro.mempool.stratus import StratusMempool
from repro.metrics import MetricsHub
from repro.replica import Replica
from repro.sim import Network, RngRegistry, Simulator, lan_topology
from repro.types import TxBatch, sizes
from repro.types.proposal import Block, Payload, PayloadEntry, Proposal, make_block_id
from repro.workload import UniformSelector, WorkloadGenerator


class BroadcastEverythingMempool(Mempool):
    """Minimal SMP: broadcast microblocks, propose every id seen.

    Deliberately bare-bones — it exists to show how little is required
    to satisfy the abstraction (compare with SimpleSharedMempool, which
    adds fetching and fork re-queuing).
    """

    name = "broadcast-everything"

    def __init__(self, host, config):
        super().__init__(host, config)
        self.store = MicroBlockStore()
        self._batcher = MicroBlockBatcher(host, config, self._share)
        self._fresh = []

    def on_client_batch(self, batch: TxBatch) -> None:  # ReceiveTx
        self._batcher.add(batch)

    def _share(self, microblock) -> None:               # ShareTx
        self.store.add(microblock)
        self._fresh.append(microblock.id)
        self.broadcast(MessageKinds.MICROBLOCK, microblock.size_bytes,
                       microblock)

    def make_payload(self) -> Payload:                  # MakeProposal
        entries = tuple(PayloadEntry(mb_id=i) for i in self._fresh)
        self._fresh = []
        return Payload(entries=entries)

    def prepare(self, proposal, on_ready):
        self.resolve(proposal, lambda _block: on_ready())

    def resolve(self, proposal, on_full):               # FillProposal
        block = Block(proposal=proposal)
        ids = proposal.payload.microblock_ids
        remaining = {"count": len(ids)}
        if not ids:
            on_full(block)
            return

        def collect(mb):
            block.microblocks[mb.id] = mb
            remaining["count"] -= 1
            if remaining["count"] == 0:
                on_full(block)

        for mb_id in ids:
            self.store.on_delivery(mb_id, collect)

    def on_message(self, envelope) -> None:
        if envelope.kind == MessageKinds.MICROBLOCK:
            self.store.add(envelope.payload)


class TwoPhaseToy(ConsensusEngine):
    """Fixed-leader broadcast + vote toy protocol over any mempool."""

    name = "two-phase-toy"

    def __init__(self, host, mempool, config):
        super().__init__(host, mempool, config)
        self._seq = 0
        self._votes = {}
        self._committed = set()

    def start(self):
        if self.node_id == 0:
            self._tick()

    def current_leader(self) -> int:
        return 0

    def _tick(self):
        payload = self.mempool.make_payload()
        if not payload.is_empty:
            self._seq += 1
            proposal = Proposal(
                block_id=make_block_id(0, self._seq), view=self._seq,
                height=self._seq, proposer=0, parent_id=0,
                justify=GENESIS_QC, payload=payload,
                created_at=self.host.sim.now,
            )
            self.broadcast(MessageKinds.PROPOSAL, proposal.size_bytes,
                           proposal)
            self._on_proposal(proposal)
        self.host.sim.schedule(0.01, self._tick)

    def on_message(self, envelope):
        if envelope.kind == MessageKinds.PROPOSAL:
            self._on_proposal(envelope.payload)
        elif envelope.kind == MessageKinds.VOTE:
            self._on_vote(envelope.payload)
        elif envelope.kind == "ce.commit-notice":
            proposal = envelope.payload
            if proposal.block_id not in self._committed:
                self._committed.add(proposal.block_id)
                self.handle_commit(proposal)

    def _on_proposal(self, proposal):
        if not self.mempool.verify_payload(proposal.payload):
            return
        self.mempool.prepare(proposal, lambda: self.send(
            0, MessageKinds.VOTE, sizes.VOTE, proposal))

    def _on_vote(self, proposal):
        votes = self._votes.setdefault(proposal.block_id, 0) + 1
        self._votes[proposal.block_id] = votes
        if (votes >= self.config.consensus_quorum
                and proposal.block_id not in self._committed):
            self._committed.add(proposal.block_id)
            self.broadcast("ce.commit-notice", sizes.VOTE, proposal)
            self.handle_commit(proposal)


def build(n, mempool_cls, consensus_cls):
    config = ProtocolConfig(n=n, batch_bytes=4 * 1024,
                            empty_view_delay=0.002)
    sim = Simulator()
    rng = RngRegistry(9)
    network = Network(sim, lan_topology(n), rng)
    metrics = MetricsHub(sim)
    replicas = []
    for node in range(n):
        replica = Replica(node, config, sim, network,
                          rng.stream(f"replica.{node}"), metrics)
        mempool = mempool_cls(replica, config)
        consensus = consensus_cls(replica, mempool, config)
        replica.attach(mempool, consensus, KVStore())
        replicas.append(replica)
    generator = WorkloadGenerator(sim, replicas, rate_tps=2_000,
                                  tx_payload=128,
                                  selector=UniformSelector(n))
    for replica in replicas:
        replica.start()
    generator.start()
    sim.run_until(3.0)
    return metrics, replicas


def main() -> None:
    print("1) custom mempool under stock HotStuff")
    metrics, _ = build(4, BroadcastEverythingMempool, HotStuff)
    print(f"   committed {metrics.committed_tx_total:,} txs, "
          f"mean latency {metrics.latency.mean * 1000:.1f} ms")

    print("2) stock Stratus mempool under a custom consensus engine")
    metrics, replicas = build(4, StratusMempool, TwoPhaseToy)
    digests = {r.executor.state_digest() for r in replicas}
    print(f"   committed {metrics.committed_tx_total:,} txs, "
          f"replica states {'agree' if len(digests) == 1 else 'DIVERGED'}")


if __name__ == "__main__":
    main()
