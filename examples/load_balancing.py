#!/usr/bin/env python3
"""Unbalanced workloads and distributed load balancing (Fig. 9 / Fig. 10).

Shows the Zipfian client-to-replica skew the paper measures on public
blockchains, then compares throughput of the simple shared mempool, the
gossip variant, and Stratus with power-of-d proxy selection (d = 1..3)
under that skew.

Run:  python examples/load_balancing.py
"""

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.harness import format_table
from repro.workload import ZipfSelector

N = 16
# Above the hottest replica's solo dissemination capacity (~23K tx/s
# here), so the skewed run genuinely overloads it and DLB engages.
RATE = 30_000


def show_skew() -> None:
    rows = []
    zipf1 = ZipfSelector(N, s=1.01, v=1.0)
    zipf10 = ZipfSelector(N, s=1.01, v=10.0)
    for rank in range(5):
        rows.append([
            rank,
            f"{zipf1.share_of(rank) * 100:.1f}%",
            f"{zipf10.share_of(rank) * 100:.1f}%",
        ])
    print(format_table(
        ["replica rank", "Zipf1 share", "Zipf10 share"],
        rows,
        title=f"Client load skew across {N} replicas (Fig. 9)",
    ))


def run(preset: str, d: int = 1):
    protocol = tuned_protocol(
        preset, n=N, topology_kind="wan",
        batch_bytes=16 * 1024, batch_timeout=0.1, lb_samples=d,
    )
    return run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=RATE,
        duration=5.0, warmup=2.0, seed=7, selector="zipf1",
        label=f"{preset}-d{d}",
    ))


def main() -> None:
    show_skew()
    print()
    rows = []
    for label, preset, d in [
        ("SMP-HS", "SMP-HS", 1),
        ("SMP-HS-G", "SMP-HS-G", 1),
        ("S-HS-d1", "S-HS", 1),
        ("S-HS-d2", "S-HS", 2),
        ("S-HS-d3", "S-HS", 3),
    ]:
        result = run(preset, d)
        rows.append([
            label,
            f"{result.throughput_tps:,.0f}",
            f"{result.latency_mean * 1000:.0f}",
            result.metrics.forwarded_microblocks,
        ])
    print(format_table(
        ["protocol", "throughput (tx/s)", "latency (ms)", "forwards"],
        rows,
        title=f"Highly skewed workload (Zipf1), {N} replicas, WAN (Fig. 10)",
    ))


if __name__ == "__main__":
    main()
