"""Integration tests for normal-case PBFT."""

from tests.helpers import inject, make_cluster


def make_pbft(n=4, **kwargs):
    return make_cluster(n=n, consensus="pbft", mempool="native", **kwargs)


def test_commits_injected_transactions():
    exp = make_pbft(rate_tps=0)
    inject(exp, 0, count=8)
    exp.sim.run_until(2.0)
    assert exp.metrics.committed_tx_total == 8


def test_fixed_leader():
    exp = make_pbft()
    for replica in exp.replicas:
        assert replica.consensus.current_leader() == 0


def test_sustained_load():
    exp = make_pbft(rate_tps=1000, duration=3.0)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total > 1000


def test_commits_with_f_silent():
    exp = make_pbft(n=4, rate_tps=500, duration=3.0,
                    fault="silent", fault_count=1)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total > 0


def test_pipeline_window_bounds_in_flight():
    exp = make_pbft(
        rate_tps=0, protocol_overrides={"pbft_window": 2},
    )
    for _ in range(10):
        inject(exp, 0, count=4)
    leader = exp.replicas[0].consensus
    exp.sim.run_until(0.001)
    in_flight = leader._next_seq - leader._last_committed - 1
    assert in_flight <= 2
    exp.sim.run_until(5.0)
    assert exp.metrics.committed_tx_total == 40


def test_executor_states_converge():
    exp = make_pbft(rate_tps=500, duration=3.0, attach_executor=True)
    exp.sim.run_until(4.0)
    digests = {replica.executor.state_digest() for replica in exp.replicas}
    assert len(digests) == 1
