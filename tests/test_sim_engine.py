"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.processed == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.5, lambda: fired.append(sim.now))
    executed = sim.run_until(2.0)
    assert executed == 1
    assert fired == [1.5]
    assert sim.now == 2.0


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_break_in_insertion_order():
    sim = Simulator()
    order = []
    for name in "abcde":
        sim.schedule(1.0, lambda name=name: order.append(name))
    sim.run()
    assert order == list("abcde")


def test_run_until_leaves_future_events_queued():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run_until(2.0)
    assert fired == [1]
    assert sim.pending == 1
    sim.run_until(6.0)
    assert fired == [1, 5]


def test_clock_advances_to_end_time_even_when_queue_drains():
    sim = Simulator()
    sim.schedule(0.5, lambda: None)
    sim.run_until(10.0)
    assert sim.now == 10.0


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def chain(depth):
        fired.append(sim.now)
        if depth > 0:
            sim.schedule(1.0, lambda: chain(depth - 1))

    sim.schedule(1.0, lambda: chain(3))
    sim.run()
    assert fired == [1.0, 2.0, 3.0, 4.0]


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, lambda: fired.append("x"))
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.active


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    sim.run()


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, lambda: fired.append("x"))
    sim.run()
    timer.cancel()
    assert fired == ["x"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_max_events_caps_execution():
    sim = Simulator()
    for _ in range(10):
        sim.schedule(1.0, lambda: None)
    executed = sim.run(max_events=4)
    assert executed == 4
    assert sim.pending == 6


def test_reentrant_run_rejected():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run_until(10.0)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_drain_cancelled_removes_dead_events():
    sim = Simulator()
    timers = [sim.schedule(1.0, lambda: None) for _ in range(5)]
    for timer in timers[:4]:
        timer.cancel()
    sim.drain_cancelled()
    assert sim.pending == 1


def test_timer_deadline_exposed():
    sim = Simulator()
    timer = sim.schedule(2.5, lambda: None)
    assert timer.deadline == pytest.approx(2.5)


def test_processed_counter_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    dead = sim.schedule(1.0, lambda: None)
    dead.cancel()
    sim.run()
    assert sim.processed == 1
    assert keep.deadline == 1.0


def test_timer_inactive_after_fire():
    """Regression: a fired timer used to keep reporting active=True."""
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    assert timer.active
    sim.run()
    assert not timer.active


def test_cancel_after_fire_does_not_mark_cancelled():
    """cancel() on an executed event is a no-op, not a phantom cancel."""
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    sim.run()
    timer.cancel()
    assert sim.cancelled_pending == 0
    assert not timer.active


def test_timer_inactive_while_callback_runs():
    sim = Simulator()
    seen = []
    timer_box = []

    def probe():
        seen.append(timer_box[0].active)

    timer_box.append(sim.schedule(1.0, probe))
    sim.run()
    assert seen == [False]


def test_heap_autocompacts_under_mass_cancellation():
    """Cancelled timers must not accumulate for the whole run."""
    sim = Simulator()
    total = 10_000
    timers = [sim.schedule(1000.0, lambda: None) for _ in range(total)]
    for timer in timers[:-1]:
        timer.cancel()
    # Compaction keeps the heap near the live count (modulo the small
    # minimum queue size below which compaction is not worth it) instead
    # of letting all dead entries sit until their deadline.
    assert sim.pending < 100
    assert sim.compactions >= 1


def test_autocompaction_preserves_event_order():
    sim = Simulator()
    order = []
    keep = []
    for index in range(200):
        timer = sim.schedule(
            1.0 + index, lambda index=index: order.append(index)
        )
        if index % 2:
            keep.append(index)
        else:
            timer.cancel()
    sim.run()
    assert order == keep


def test_cancellation_inside_callback_triggers_compaction():
    """Mass-cancel from inside a running callback (chaos-style)."""
    sim = Simulator()
    timers = []

    def cancel_most():
        for timer in timers:
            timer.cancel()

    for _ in range(500):
        timers.append(sim.schedule(100.0, lambda: None))
    survivor = []
    sim.schedule(1.0, cancel_most)
    sim.schedule(200.0, lambda: survivor.append(sim.now))
    sim.run()
    assert survivor == [200.0]
    assert sim.pending == 0


def test_drain_cancelled_resets_cancel_accounting():
    sim = Simulator()
    timers = [sim.schedule(1.0, lambda: None) for _ in range(10)]
    for timer in timers[:5]:
        timer.cancel()
    sim.drain_cancelled()
    assert sim.pending == 5
    assert sim.cancelled_pending == 0


def test_hot_path_classes_have_no_dict():
    """Hot-path objects are __slots__-only: no per-instance __dict__.

    An accidental __dict__ (a forgotten __slots__ on a new base class,
    or an attribute assigned outside the slots) costs ~100 bytes and a
    dict allocation per instance, which at millions of envelopes/events
    per run dominates memory. Instantiating isn't needed — a class whose
    full MRO declares __slots__ never grows a __dict__ descriptor.
    """
    from repro.mempool.fetching import _PendingFetch
    from repro.mempool.stratus.pab import _PushState
    from repro.sim.engine import Event, Timer
    from repro.sim.interfaces import Envelope
    from repro.sim.network import _Flow, _Ingress, _Transfer, _Uplink

    hot = [Simulator, Event, Timer, Envelope,
           _Flow, _Uplink, _Ingress, _Transfer,
           _PendingFetch, _PushState]
    offenders = [cls.__name__ for cls in hot if "__dict__" in dir(cls)]
    assert offenders == [], f"classes grew a __dict__: {offenders}"
