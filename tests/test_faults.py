"""Chaos-layer tests: fault schedules, the injector, and recovery paths.

The end-to-end tests mirror the robustness claims of Section VII-B: a
crashed-then-restarted replica catches up through chain sync, a healed
partition recommits its backlog, and safety (per-height agreement) holds
under randomized fault schedules.
"""

import math
import random

import pytest

from repro.faults import (
    BandwidthSqueeze,
    CrashReplica,
    DelaySpike,
    FaultSchedule,
    Heal,
    LossWindow,
    Partition,
    RestartReplica,
    SwapBehavior,
)
from repro.harness import (
    ExperimentConfig,
    chaos_schedule,
    run_experiment,
    tuned_protocol,
)
from repro.metrics import FaultWindow
from repro.replica.behavior import CensoringSender, SilentReplica
from tests.helpers import make_cluster


# -- schedule parsing and validation ------------------------------------


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule([
            RestartReplica(at=4.0, node=1),
            CrashReplica(at=2.0, node=1),
        ])
        assert [type(e) for e in schedule.events] == [
            CrashReplica, RestartReplica,
        ]

    def test_json_round_trip(self):
        schedule = FaultSchedule.from_json("""
            [{"event": "crash", "at": 2.0, "node": 3},
             {"event": "restart", "at": 4.0, "node": 3},
             {"event": "partition", "at": 2.5, "duration": 1.0,
              "groups": [[0, 1]]},
             {"event": "heal", "at": 3.0, "label": "x"},
             {"event": "loss", "at": 2.0, "duration": 2.0, "rate": 0.2,
              "channel": "data", "kinds": ["mb"]},
             {"event": "bandwidth", "at": 1.0, "duration": 2.0,
              "factor": 0.1, "nodes": [0]},
             {"event": "delay", "at": 5.0, "duration": 10.0, "base": 0.1},
             {"event": "swap", "at": 3.0, "node": 2, "behavior": "censor"}]
        """)
        assert len(schedule) == 8
        schedule.validate(4)
        partition = next(
            e for e in schedule.events if isinstance(e, Partition)
        )
        assert partition.groups == ((0, 1),)

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError, match="unknown fault event"):
            FaultSchedule.from_json('[{"event": "meteor", "at": 1.0}]')

    def test_bad_field_rejected(self):
        with pytest.raises(ValueError, match="bad 'crash' event spec"):
            FaultSchedule.from_json(
                '[{"event": "crash", "at": 1.0, "victim": 2}]'
            )

    def test_double_crash_rejected(self):
        schedule = FaultSchedule([
            CrashReplica(at=1.0, node=2),
            CrashReplica(at=2.0, node=2),
        ])
        with pytest.raises(ValueError, match="crashed twice"):
            schedule.validate(4)

    def test_restart_without_crash_rejected(self):
        schedule = FaultSchedule([RestartReplica(at=1.0, node=2)])
        with pytest.raises(ValueError, match="without a prior crash"):
            schedule.validate(4)

    def test_node_out_of_range_rejected(self):
        schedule = FaultSchedule([CrashReplica(at=1.0, node=7)])
        with pytest.raises(ValueError, match="outside"):
            schedule.validate(4)

    def test_overlapping_partition_groups_rejected(self):
        schedule = FaultSchedule([
            Partition(at=1.0, groups=((0, 1), (1, 2))),
        ])
        with pytest.raises(ValueError, match="two partition groups"):
            schedule.validate(4)

    def test_windows_pair_crash_with_restart(self):
        schedule = FaultSchedule([
            CrashReplica(at=2.0, node=3),
            RestartReplica(at=4.0, node=3),
            CrashReplica(at=5.0, node=1),  # never restarted
        ])
        windows = schedule.windows()
        assert windows[0] == FaultWindow(
            kind="crash", start=2.0, end=4.0, nodes=(3,)
        )
        assert windows[1].start == 5.0
        assert math.isinf(windows[1].end)

    def test_windows_pair_partition_with_heal_by_label(self):
        schedule = FaultSchedule([
            Partition(at=1.0, groups=((0,),), label="a"),
            Partition(at=1.5, groups=((1,),), label="b"),
            Heal(at=3.0, label="a"),
        ])
        windows = {w.label: w for w in schedule.windows()}
        assert windows["a"].end == 3.0
        assert math.isinf(windows["b"].end)


# -- crash / restart lifecycle ------------------------------------------


def test_crash_flushes_and_silences_replica():
    exp = make_cluster(rate_tps=2000, duration=3.0)
    sim, net = exp.sim, exp.network
    victim = exp.replicas[3]
    sim.run_until(1.0)
    victim.crash()
    assert victim.crashed
    assert net.is_down(3)
    assert isinstance(victim.behavior, SilentReplica)
    bytes_at_crash = net.stats.node_bytes(3)
    sim.run_until(2.0)
    # A crashed node neither sends nor receives.
    assert net.stats.node_bytes(3) == bytes_at_crash
    victim.restart()
    assert not victim.crashed
    assert victim.restart_count == 1
    assert not isinstance(victim.behavior, SilentReplica)
    sim.run_until(3.0)
    assert net.stats.node_bytes(3) > bytes_at_crash


def test_crash_restart_catches_up_via_chain_sync():
    schedule = FaultSchedule([
        CrashReplica(at=1.0, node=3),
        RestartReplica(at=2.5, node=3),
    ])
    exp = make_cluster(
        rate_tps=2000, duration=6.0, faults=schedule,
        protocol_overrides={"view_timeout": 0.5},
    )
    exp.sim.run_until(6.0)
    victim = exp.replicas[3].consensus
    others = [exp.replicas[i].consensus for i in range(3)]
    # The cluster of three kept committing during the crash...
    assert max(c.committed_height for c in others) > 0
    # ...and the restarted replica resynced to (close to) their height:
    # chain sync + newer proposals pull in everything it missed, minus
    # at most the committing 3-chain still in flight at run end.
    best = max(c.committed_height for c in others)
    assert victim.committed_height >= best - 3
    assert best > 5


def test_swap_behavior_turns_replica_byzantine_mid_run():
    schedule = FaultSchedule([SwapBehavior(at=1.0, node=3, behavior="censor")])
    exp = make_cluster(rate_tps=1000, duration=2.0, faults=schedule)
    exp.sim.run_until(0.5)
    assert not isinstance(exp.replicas[3].behavior, CensoringSender)
    exp.sim.run_until(1.5)
    assert isinstance(exp.replicas[3].behavior, CensoringSender)


# -- partitions ---------------------------------------------------------


def test_partition_stalls_commits_and_heal_recommits_backlog():
    schedule = FaultSchedule([
        Partition(at=1.0, duration=1.5, groups=((0, 1),)),
    ])
    exp = make_cluster(
        rate_tps=2000, duration=6.0, faults=schedule,
        protocol_overrides={"view_timeout": 0.5},
    )
    exp.sim.run_until(6.0)
    hub = exp.metrics
    window = hub.fault_windows[0]
    # No 3-of-4 quorum exists across {0,1} | {2,3}: commits stall...
    assert hub.commit_gap(window) >= 1.0
    # ...and resume after the heal, recommitting the backlog.
    recover = hub.time_to_recover(window)
    assert math.isfinite(recover)
    assert hub.throughput_tps(2.5, 6.0) > 0


def test_partition_composes_with_user_drop_filter():
    exp = make_cluster(rate_tps=0.0, duration=2.0)
    net = exp.network
    seen = []
    net.set_drop_filter(lambda env: False)  # user filter stays installed
    rule_id = net.add_drop_rule(
        lambda env: seen.append(env.kind) or False
    )
    from repro.types import TxBatch
    exp.replicas[0].on_client_batch(
        TxBatch(count=4, payload_bytes=128, mean_arrival=0.0)
    )
    exp.sim.run_until(1.0)
    assert seen  # rule saw traffic alongside the user filter
    net.remove_drop_rule(rule_id)
    net.remove_drop_rule(rule_id)  # idempotent


# -- loss / squeeze windows ---------------------------------------------


def test_loss_window_only_affects_its_interval():
    schedule = FaultSchedule([
        LossWindow(at=1.0, duration=1.0, rate=1.0, channel="data"),
    ])
    exp = make_cluster(rate_tps=2000, duration=3.0, faults=schedule)
    net = exp.network
    exp.sim.run_until(0.9)
    dropped_before = net.stats.messages_dropped
    exp.sim.run_until(2.0)
    dropped_during = net.stats.messages_dropped - dropped_before
    assert dropped_during > 0
    exp.sim.run_until(2.1)
    base = net.stats.messages_dropped
    exp.sim.run_until(3.0)
    assert net.stats.messages_dropped == base  # window closed


def test_bandwidth_squeeze_scales_and_restores():
    schedule = FaultSchedule([
        BandwidthSqueeze(at=1.0, duration=1.0, factor=0.1, nodes=(0,)),
    ])
    exp = make_cluster(rate_tps=0.0, duration=3.0, faults=schedule)
    topo = exp.topology
    full = topo.bandwidth(0)
    exp.sim.run_until(1.5)
    assert topo.bandwidth(0) == pytest.approx(0.1 * full)
    exp.sim.run_until(2.5)
    assert topo.bandwidth(0) == pytest.approx(full)


def test_overlapping_squeezes_stack_multiplicatively():
    schedule = FaultSchedule([
        BandwidthSqueeze(at=1.0, duration=2.0, factor=0.5, nodes=(0,)),
        BandwidthSqueeze(at=1.5, duration=1.0, factor=0.5, nodes=(0,)),
    ])
    exp = make_cluster(rate_tps=0.0, duration=4.0, faults=schedule)
    topo = exp.topology
    full = topo.bandwidth(0)
    exp.sim.run_until(2.0)
    assert topo.bandwidth(0) == pytest.approx(0.25 * full)
    exp.sim.run_until(2.7)
    assert topo.bandwidth(0) == pytest.approx(0.5 * full)
    exp.sim.run_until(3.5)
    assert topo.bandwidth(0) == pytest.approx(full)


def test_delay_spike_raises_link_delay_inside_window():
    schedule = FaultSchedule([
        DelaySpike(at=1.0, duration=1.0, base=0.2, jitter=0.0),
    ])
    exp = make_cluster(rate_tps=0.0, duration=3.0, faults=schedule)
    topo = exp.topology
    rng = random.Random(1)
    assert topo.delay(0, 1, now=0.5, rng=rng) < 0.1
    assert topo.delay(0, 1, now=1.5, rng=rng) == pytest.approx(0.2)
    assert topo.delay(0, 1, now=2.5, rng=rng) < 0.1


# -- PAB hardening under faults -----------------------------------------


def test_push_retransmits_after_loss_until_quorum():
    # Total DATA loss for 1 s: initial body broadcasts die, so without
    # push retries the availability proofs never form.
    schedule = FaultSchedule([
        LossWindow(at=0.0, duration=1.0, rate=1.0, channel="data"),
    ])
    exp = make_cluster(
        rate_tps=1000, duration=5.0, faults=schedule,
        protocol_overrides={"fetch_timeout": 0.2, "view_timeout": 0.5},
    )
    exp.sim.run_until(5.0)
    assert exp.metrics.committed_tx_total > 0


def test_discard_cancels_outstanding_fetch():
    exp = make_cluster(rate_tps=0.0, duration=2.0)
    mempool = exp.replicas[0].mempool
    from repro.crypto import AvailabilityProof
    from repro.types import make_microblock_id
    mb_id = make_microblock_id(1, 99)
    proof = AvailabilityProof(mb_id=mb_id, signers=(1, 2))
    mempool.pab.fetch(mb_id, proof)
    exp.sim.run_until(1.0)
    assert mempool.fetcher.outstanding == 1
    mempool.pab.discard(mb_id)
    assert mempool.fetcher.outstanding == 0


# -- safety under randomized fault schedules ----------------------------


def random_schedule(rng: random.Random, n: int, horizon: float) -> FaultSchedule:
    """A random but well-formed mix of crashes, partitions, and loss."""
    events = []
    crash_at = rng.uniform(0.5, horizon / 2)
    victim = rng.randrange(n)
    events.append(CrashReplica(at=crash_at, node=victim))
    if rng.random() < 0.8:
        events.append(RestartReplica(
            at=crash_at + rng.uniform(0.5, 2.0), node=victim,
        ))
    others = [node for node in range(n) if node != victim]
    group = tuple(rng.sample(others, 2))
    events.append(Partition(
        at=rng.uniform(0.5, horizon - 1.0),
        duration=rng.uniform(0.3, 1.5),
        groups=(group,),
    ))
    events.append(LossWindow(
        at=rng.uniform(0.0, horizon - 1.0),
        duration=rng.uniform(0.5, 2.0),
        rate=rng.uniform(0.05, 0.4),
    ))
    return FaultSchedule(events)


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_safety_holds_under_randomized_faults(seed):
    rng = random.Random(seed)
    schedule = random_schedule(rng, n=4, horizon=5.0)
    exp = make_cluster(
        rate_tps=2000, duration=6.0, seed=seed, faults=schedule,
        protocol_overrides={"view_timeout": 0.5},
    )
    exp.sim.run_until(6.0)
    # Agreement: no two replicas commit different blocks at a height.
    height_to_block: dict[int, int] = {}
    for replica in exp.replicas:
        consensus = replica.consensus
        for block_id in consensus.committed:
            proposal = consensus.proposals[block_id]
            previous = height_to_block.setdefault(
                proposal.height, block_id
            )
            assert previous == block_id, (
                f"height {proposal.height} committed twice: "
                f"{previous} vs {block_id} (seed {seed})"
            )
    # Liveness sanity: someone committed something.
    assert exp.metrics.committed_tx_total > 0


# -- the acceptance scenario (chaos preset, end to end) -----------------


def run_chaos(preset: str, faults) -> tuple:
    protocol = tuned_protocol(preset, n=4, view_timeout=0.5)
    result = run_experiment(ExperimentConfig(
        protocol=protocol, rate_tps=1000, duration=6.0, warmup=1.0,
        seed=1, faults=faults, label=preset,
    ))
    return result, result.metrics.fault_report()


@pytest.mark.slow
def test_chaos_preset_stratus_recovers_and_simple_degrades():
    """The issue's acceptance bar: crash at 2 s, restart at 4 s, a 1 s
    partition, and a lossy data channel. Stratus keeps > 70 % of emitted
    transactions and every fault window reports a finite time-to-recover,
    while the same schedule demonstrably degrades the simple SMP."""
    schedule = chaos_schedule("crash-partition", 4)

    stratus, report = run_chaos("S-HS", schedule)
    assert stratus.committed_tx > 0.7 * stratus.emitted_tx
    for entry in report:
        assert math.isfinite(entry["time_to_recover"])
        assert math.isfinite(entry["commit_gap"])

    simple_clean, _ = run_chaos("SMP-HS", None)
    simple_chaos, simple_report = run_chaos("SMP-HS", schedule)
    assert simple_chaos.committed_tx < 0.95 * simple_clean.committed_tx
    assert max(e["commit_gap"] for e in simple_report) > 1.0
    # Stratus restores service faster than the fetch-from-leader SMP.
    assert (
        max(e["commit_gap"] for e in report)
        < max(e["commit_gap"] for e in simple_report)
    )


@pytest.mark.slow
def test_chaos_preset_runs_for_streamlet():
    # The epoch-clocked engine must also survive crash/restart (its
    # resume path recomputes the epoch from the wall clock).
    schedule = chaos_schedule("crash-restart", 4)
    protocol = tuned_protocol("S-SL", n=4)
    result = run_experiment(ExperimentConfig(
        protocol=protocol, rate_tps=1000, duration=6.0, warmup=1.0,
        seed=1, faults=schedule,
    ))
    assert result.committed_tx > 0
    assert result.metrics.fault_windows[0].kind == "crash"
