"""Unit tests for topologies and delay schedules."""

import random

import pytest

from repro.sim.topology import (
    FluctuationWindow,
    GBPS,
    MBPS,
    Topology,
    heterogeneous_topology,
    lan_topology,
    transmission_time,
    wan_topology,
)


@pytest.fixture
def rng():
    return random.Random(1)


def test_lan_preset_parameters():
    topo = lan_topology(8)
    assert topo.n == 8
    assert topo.bandwidth(0) == GBPS
    assert topo.base_delay(0, 1) == pytest.approx(0.002)
    assert topo.name == "lan"


def test_wan_preset_parameters():
    topo = wan_topology(8)
    assert topo.bandwidth(3) == 100 * MBPS
    assert topo.base_delay(2, 5) == pytest.approx(0.050)


def test_self_delay_is_zero(rng):
    topo = lan_topology(4)
    assert topo.base_delay(2, 2) == 0.0
    assert topo.delay(2, 2, now=0.0, rng=rng) == 0.0


def test_bandwidth_override():
    topo = lan_topology(4)
    topo.set_bandwidth(1, 5 * MBPS)
    assert topo.bandwidth(1) == 5 * MBPS
    assert topo.bandwidth(0) == GBPS


def test_link_delay_override(rng):
    topo = Topology(4, one_way_delay=0.01, bandwidth_bps=GBPS)
    topo.set_link_delay(0, 1, 0.5)
    assert topo.base_delay(0, 1) == 0.5
    assert topo.base_delay(1, 0) == 0.01  # directed override


def test_delay_jitter_bounded():
    topo = Topology(4, one_way_delay=0.01, bandwidth_bps=GBPS,
                    delay_jitter=0.002)
    rng = random.Random(3)
    for _ in range(200):
        delay = topo.delay(0, 1, now=0.0, rng=rng)
        assert 0.008 <= delay <= 0.012


def test_fluctuation_window_overrides_base_delay():
    topo = wan_topology(4)
    topo.add_schedule(FluctuationWindow(
        start=10.0, duration=5.0, base=0.2, jitter=0.1))
    rng = random.Random(4)
    # Inside the window: delays in [0.1, 0.3].
    for _ in range(100):
        delay = topo.delay(0, 1, now=12.0, rng=rng)
        assert 0.1 <= delay <= 0.3
    # Outside the window: back to base.
    delay = topo.delay(0, 1, now=20.0, rng=rng)
    assert delay < 0.06


def test_fluctuation_window_edges():
    window = FluctuationWindow(start=10.0, duration=5.0, base=0.2, jitter=0.0)
    rng = random.Random(5)
    assert window.sample(9.999, rng) is None
    assert window.sample(10.0, rng) == pytest.approx(0.2)
    assert window.sample(14.999, rng) == pytest.approx(0.2)
    assert window.sample(15.0, rng) is None


def test_heterogeneous_topology_per_node_bandwidth():
    topo = heterogeneous_topology(3, [GBPS, 10 * MBPS, 50 * MBPS])
    assert topo.bandwidth(0) == GBPS
    assert topo.bandwidth(1) == 10 * MBPS
    assert topo.bandwidth(2) == 50 * MBPS


def test_heterogeneous_topology_length_mismatch():
    with pytest.raises(ValueError):
        heterogeneous_topology(3, [GBPS, GBPS])


def test_transmission_time():
    # 1 MB over 8 Mb/s = 1 second.
    assert transmission_time(1_000_000, 8_000_000) == pytest.approx(1.0)
    assert transmission_time(0, GBPS) == 0.0


def test_transmission_time_invalid():
    with pytest.raises(ValueError):
        transmission_time(100, 0)
    with pytest.raises(ValueError):
        transmission_time(-1, GBPS)


def test_invalid_topology_rejected():
    with pytest.raises(ValueError):
        Topology(0, 0.01, GBPS)
    with pytest.raises(ValueError):
        Topology(4, -1, GBPS)
    with pytest.raises(ValueError):
        Topology(4, 0.01, 0)
    with pytest.raises(ValueError):
        Topology(4, 0.01, GBPS, proc_per_message=-1)


def test_node_bounds_checked():
    topo = lan_topology(4)
    with pytest.raises(ValueError):
        topo.bandwidth(4)
    with pytest.raises(ValueError):
        topo.set_bandwidth(-1, GBPS)
    with pytest.raises(ValueError):
        topo.base_delay(0, 9)


class TestGeoTopology:
    def test_round_robin_assignment(self):
        from repro.sim.topology import geo_topology
        topo = geo_topology(8)
        assert topo.regions == ["SG", "SN", "VG", "LD"] * 2

    def test_intra_region_fast_inter_region_slow(self):
        from repro.sim.topology import geo_topology
        topo = geo_topology(8)
        # replicas 0 and 4 are both SG; 0 and 2 are SG-VG.
        assert topo.base_delay(0, 4) == pytest.approx(0.001)
        assert topo.base_delay(0, 2) == pytest.approx(0.110)
        assert topo.base_delay(2, 0) == pytest.approx(0.110)  # symmetric

    def test_custom_assignment(self):
        from repro.sim.topology import geo_topology
        topo = geo_topology(4, assignment=["SG", "SG", "LD", "LD"])
        assert topo.base_delay(0, 1) == pytest.approx(0.001)
        assert topo.base_delay(0, 2) == pytest.approx(0.085)

    def test_bad_assignment_rejected(self):
        from repro.sim.topology import geo_topology
        with pytest.raises(ValueError):
            geo_topology(4, assignment=["SG"])
        with pytest.raises(ValueError):
            geo_topology(2, assignment=["SG", "MARS"])

    def test_runs_a_full_experiment(self):
        """A hand-wired Stratus deployment across the four regions."""
        from repro.config import ProtocolConfig
        from repro.consensus import HotStuff
        from repro.mempool import StratusMempool
        from repro.metrics import MetricsHub
        from repro.replica import Replica
        from repro.sim import Network, RngRegistry, Simulator
        from repro.sim.topology import geo_topology

        protocol = ProtocolConfig(n=8, batch_bytes=1024)
        sim = Simulator()
        rng = RngRegistry(4)
        network = Network(sim, geo_topology(8), rng)
        metrics = MetricsHub(sim)
        replicas = []
        for node in range(8):
            replica = Replica(node, protocol, sim, network,
                              rng.stream(f"r{node}"), metrics)
            mempool = StratusMempool(replica, protocol)
            replica.attach(mempool, HotStuff(replica, mempool, protocol))
            replicas.append(replica)
        from repro.types import TxBatch
        for replica in replicas:
            replica.start()
        replicas[0].on_client_batch(
            TxBatch(count=8, payload_bytes=128, mean_arrival=0.0))
        sim.run_until(3.0)
        assert metrics.committed_tx_total == 8
