"""Integration tests for distributed load balancing (Algorithm 4)."""

from tests.helpers import inject, make_cluster


def stratus_of(experiment, node):
    return experiment.replicas[node].mempool


def force_busy(mempool):
    """Prime the estimator so the replica considers itself overloaded."""
    for _ in range(5):
        mempool.estimator.record(0.01)  # establish a low baseline
    for _ in range(mempool.estimator._window.maxlen):
        mempool.estimator.record(5.0)
    assert mempool.estimator.is_busy()


def test_unbusy_replica_pushes_itself():
    exp = make_cluster(
        n=4, mempool="stratus", protocol_overrides={"load_balancing": True},
    )
    inject(exp, 0, count=4)
    exp.sim.run_until(1.0)
    assert exp.metrics.forwarded_microblocks == 0
    assert exp.metrics.committed_tx_total == 4


def test_busy_replica_forwards_to_proxy():
    exp = make_cluster(
        n=4, mempool="stratus",
        protocol_overrides={"load_balancing": True, "lb_samples": 2,
                            "lb_probe_interval": 100},
    )
    force_busy(stratus_of(exp, 0))
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    assert exp.metrics.forwarded_microblocks >= 1
    # The forwarded microblock is still disseminated and committed.
    assert exp.metrics.committed_tx_total == 4


def test_forwarded_microblock_settles_and_unbans_proxy():
    exp = make_cluster(
        n=4, mempool="stratus",
        protocol_overrides={"load_balancing": True, "lb_samples": 2,
                            "lb_probe_interval": 100},
    )
    mempool = stratus_of(exp, 0)
    force_busy(mempool)
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    assert mempool.balancer.ban_list == set()


def test_lying_proxy_gets_banned_and_microblock_retried():
    exp = make_cluster(
        n=4, mempool="stratus", fault="lying", fault_count=1,
        protocol_overrides={
            "load_balancing": True,
            "lb_samples": 3,  # the lying proxy (status 0) always wins
            "lb_probe_interval": 100,
            "lb_forward_timeout": 0.3,
        },
    )
    byzantine = sorted(exp.config.byzantine_ids)[0]
    # Give honest candidates a real (non-zero) status so the lying
    # proxy's advertised 0.0 wins the power-of-d choice.
    for node in range(4):
        if node != byzantine and node != 0:
            for _ in range(6):
                stratus_of(exp, node).estimator.record(0.1)
    mempool = stratus_of(exp, 0)
    force_busy(mempool)
    inject(exp, 0, count=4)
    exp.sim.run_until(5.0)
    # The proxy never produced a proof, so it stays banned...
    assert byzantine in mempool.balancer.ban_list
    # ...and the microblock was retried elsewhere and still committed.
    assert exp.metrics.committed_tx_total == 4


def test_probe_interval_keeps_estimator_alive():
    exp = make_cluster(
        n=4, mempool="stratus",
        protocol_overrides={"load_balancing": True, "lb_samples": 2,
                            "lb_probe_interval": 2},
    )
    mempool = stratus_of(exp, 0)
    force_busy(mempool)
    before = mempool.estimator.sample_count
    for _ in range(4):
        inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    # Every second microblock is self-pushed, refreshing the ST window.
    assert mempool.estimator.sample_count > before
    assert exp.metrics.forwarded_microblocks >= 1


def test_query_timeout_falls_back_to_self_push():
    # All other replicas are lying proxies is impossible (f bound), so
    # instead make the query timeout so small that replies cannot arrive.
    exp = make_cluster(
        n=4, mempool="stratus",
        protocol_overrides={"load_balancing": True,
                            "lb_probe_interval": 100,
                            "lb_query_timeout": 1e-6},
    )
    mempool = stratus_of(exp, 0)
    force_busy(mempool)
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    # No replies in time -> pushed itself; still committed.
    assert exp.metrics.committed_tx_total == 4


def test_busy_replicas_do_not_answer_queries():
    exp = make_cluster(
        n=4, mempool="stratus",
        protocol_overrides={"load_balancing": True, "lb_samples": 3,
                            "lb_probe_interval": 100},
    )
    # Make replicas 1..3 all busy; replica 0 forwards, gets no replies,
    # falls back to pushing itself.
    for node in (1, 2, 3):
        force_busy(stratus_of(exp, node))
    mempool = stratus_of(exp, 0)
    force_busy(mempool)
    inject(exp, 0, count=4)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total == 4
    assert exp.metrics.forwarded_microblocks == 0
