"""Wire-codec tests: round-trips over the full message registry,
purity rejection, and frame reassembly."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.certificates import QuorumCert
from repro.crypto.proofs import AvailabilityProof
from repro.crypto.signatures import Signature
from repro.live.wire import (
    CLIENT_BATCH,
    MESSAGE_REGISTRY,
    FrameDecoder,
    WireError,
    decode_frame,
    encode_frame,
    from_wire,
    to_wire,
)
from repro.mempool.base import MessageKinds
from repro.sim.engine import Simulator
from repro.sim.interfaces import Channel
from repro.types.batch import TxBatch
from repro.types.microblock import MicroBlock
from repro.types.proposal import Payload, PayloadEntry, Proposal

# -- strategies generating every registered payload shape --------------------

ids = st.integers(min_value=0, max_value=2**50)
nodes = st.integers(min_value=0, max_value=63)
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)
signer_sets = st.lists(nodes, min_size=1, max_size=7, unique=True).map(
    lambda s: tuple(sorted(s))
)

signatures = st.builds(Signature, signer=nodes, digest=ids,
                       forged=st.booleans())
qcs = st.builds(QuorumCert, block_id=ids, view=st.integers(0, 1000),
                signers=signer_sets)
proofs = st.builds(AvailabilityProof, mb_id=ids, signers=signer_sets)
microblocks = st.builds(
    MicroBlock,
    id=ids, origin=nodes,
    tx_count=st.integers(min_value=1, max_value=10_000),
    tx_payload=st.integers(min_value=1, max_value=4096),
    created_at=times, sum_arrival=times,
)
batches = st.builds(
    TxBatch,
    count=st.integers(min_value=1, max_value=10_000),
    payload_bytes=st.integers(min_value=1, max_value=4096),
    mean_arrival=times,
)
entries = st.builds(PayloadEntry, mb_id=ids,
                    proof=st.one_of(st.none(), proofs))
payloads = st.builds(
    Payload,
    entries=st.lists(entries, max_size=4).map(tuple),
    embedded=st.lists(microblocks, max_size=2).map(tuple),
)
proposals = st.builds(
    Proposal,
    block_id=ids, view=st.integers(0, 1000), height=st.integers(0, 10_000),
    proposer=nodes, parent_id=ids, justify=qcs, payload=payloads,
    created_at=times,
)

#: One strategy per registered message kind, matching the payload each
#: kind actually carries on the wire.
PAYLOADS_BY_KIND = {
    MessageKinds.MICROBLOCK: microblocks,
    MessageKinds.MICROBLOCK_GOSSIP: microblocks,
    MessageKinds.MICROBLOCK_FETCH: microblocks,
    MessageKinds.MICROBLOCK_FORWARD: microblocks,
    MessageKinds.ACK: signatures,
    MessageKinds.PROOF: st.tuples(ids, proofs),
    MessageKinds.FETCH_REQUEST: ids,
    MessageKinds.RB_ECHO: ids,
    MessageKinds.RB_READY: ids,
    MessageKinds.LB_QUERY: ids,
    MessageKinds.LB_INFO: st.tuples(ids, times),
    MessageKinds.PROPOSAL: st.one_of(
        proposals, st.tuples(st.integers(0, 1000), proposals)
    ),
    MessageKinds.VOTE: st.one_of(
        st.tuples(ids, st.integers(0, 1000), signatures),
        st.tuples(ids, signatures),
    ),
    MessageKinds.NEW_VIEW: st.tuples(st.integers(0, 1000), qcs),
    MessageKinds.SYNC_REQUEST: ids,
    MessageKinds.PBFT_PREPARE: st.tuples(st.integers(0, 10_000), nodes),
    MessageKinds.PBFT_COMMIT: st.tuples(st.integers(0, 10_000), nodes),
    CLIENT_BATCH: batches,
}

any_message = st.sampled_from(sorted(MESSAGE_REGISTRY)).flatmap(
    lambda kind: st.tuples(st.just(kind), PAYLOADS_BY_KIND[kind])
)


def test_registry_and_strategies_cover_the_same_kinds():
    assert set(PAYLOADS_BY_KIND) == set(MESSAGE_REGISTRY)


@given(any_message)
@settings(max_examples=300)
def test_payload_round_trip_over_full_registry(message):
    _, payload = message
    assert from_wire(to_wire(payload)) == payload


@given(any_message, st.sampled_from(list(Channel)), nodes)
@settings(max_examples=100)
def test_frame_round_trip(message, channel, src):
    kind, payload = message
    frame = encode_frame(src, kind, channel, payload)
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    got_src, got_kind, got_channel, got_payload = decode_frame(frame[4:])
    assert (got_src, got_kind, got_channel) == (src, kind, channel)
    assert got_payload == payload


def test_tuples_survive_as_tuples():
    decoded = from_wire(to_wire((1, (2, 3), [4, 5])))
    assert decoded == (1, (2, 3), [4, 5])
    assert isinstance(decoded, tuple)
    assert isinstance(decoded[1], tuple)
    assert isinstance(decoded[2], list)


def test_int_keyed_dict_round_trips():
    payload = {1: "a", 2: (3, 4)}
    assert from_wire(to_wire(payload)) == payload


# -- purity assertion --------------------------------------------------------

def test_sim_timer_is_rejected():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    with pytest.raises(WireError, match="pure data"):
        to_wire(timer)


def test_arbitrary_object_is_rejected():
    class NotWire:
        pass

    with pytest.raises(WireError, match="pure data"):
        to_wire(NotWire())
    with pytest.raises(WireError, match="pure data"):
        to_wire((1, NotWire()))  # nested inside a tuple


def test_unregistered_dataclass_is_rejected():
    import dataclasses

    @dataclasses.dataclass
    class Sneaky:
        x: int = 1

    with pytest.raises(WireError, match="pure data"):
        to_wire(Sneaky())


def test_non_finite_floats_are_rejected():
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(WireError, match="non-finite"):
            to_wire(bad)


def test_unknown_tag_is_rejected_on_decode():
    with pytest.raises(WireError, match="unknown wire tag"):
        from_wire({"__t__": "EvilType", "v": {}})


# -- framing -----------------------------------------------------------------

def _sample_frames(count):
    return [
        encode_frame(
            node, MessageKinds.FETCH_REQUEST, Channel.CONTROL, node * 17
        )
        for node in range(count)
    ]


def test_frame_decoder_handles_byte_by_byte_feed():
    frames = _sample_frames(3)
    stream = b"".join(frames)
    decoder = FrameDecoder()
    messages = []
    for i in range(len(stream)):
        messages.extend(decoder.feed(stream[i:i + 1]))
    assert [payload for _, _, _, payload in messages] == [0, 17, 34]


def test_frame_decoder_handles_coalesced_frames():
    frames = _sample_frames(5)
    decoder = FrameDecoder()
    messages = list(decoder.feed(b"".join(frames)))
    assert len(messages) == 5
    assert [src for src, _, _, _ in messages] == list(range(5))


def test_frame_decoder_rejects_oversized_length_prefix():
    decoder = FrameDecoder()
    with pytest.raises(WireError, match="exceeds limit"):
        list(decoder.feed(struct.pack(">I", 2**31) + b"xxxx"))


def test_malformed_frame_body_raises_wire_error():
    with pytest.raises(WireError, match="malformed"):
        decode_frame(b"not json at all")
    with pytest.raises(WireError, match="malformed"):
        decode_frame(b'{"src": 1}')  # missing keys
