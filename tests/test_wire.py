"""Wire-codec tests: round-trips over the full message registry for both
codecs, purity rejection, frame reassembly, preamble negotiation, and
decoder fuzz (torn/garbage/oversized streams)."""

import struct
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.certificates import QuorumCert
from repro.crypto.proofs import AvailabilityProof
from repro.crypto.signatures import Signature
from repro.live.wire import (
    CLIENT_BATCH,
    CODECS,
    MESSAGE_REGISTRY,
    PREAMBLE_SIZE,
    WIRE_MAGIC,
    FrameDecoder,
    WireError,
    decode_frame,
    decode_frame_binary,
    encode_frame,
    encode_frame_binary,
    from_wire,
    get_codec,
    to_wire,
)
from repro.mempool.base import MessageKinds
from repro.sharding.certificate import ShardCertificate
from repro.sim.engine import Simulator
from repro.sim.interfaces import Channel
from repro.types.batch import TxBatch
from repro.types.microblock import MicroBlock
from repro.types.proposal import Payload, PayloadEntry, Proposal

# -- strategies generating every registered payload shape --------------------

ids = st.integers(min_value=0, max_value=2**50)
nodes = st.integers(min_value=0, max_value=63)
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)
signer_sets = st.lists(nodes, min_size=1, max_size=7, unique=True).map(
    lambda s: tuple(sorted(s))
)

signatures = st.builds(Signature, signer=nodes, digest=ids,
                       forged=st.booleans())
qcs = st.builds(QuorumCert, block_id=ids, view=st.integers(0, 1000),
                signers=signer_sets)
proofs = st.builds(AvailabilityProof, mb_id=ids, signers=signer_sets)
microblocks = st.builds(
    MicroBlock,
    id=ids, origin=nodes,
    tx_count=st.integers(min_value=1, max_value=10_000),
    tx_payload=st.integers(min_value=1, max_value=4096),
    created_at=times, sum_arrival=times,
)
batches = st.builds(
    TxBatch,
    count=st.integers(min_value=1, max_value=10_000),
    payload_bytes=st.integers(min_value=1, max_value=4096),
    mean_arrival=times,
)
shard_certs = st.builds(
    ShardCertificate,
    mb_id=ids, shard=st.integers(0, 15), origin=nodes,
    tx_count=st.integers(min_value=1, max_value=10_000),
    mean_arrival=times, signers=signer_sets, forged=st.booleans(),
)
entries = st.builds(PayloadEntry, mb_id=ids,
                    proof=st.one_of(st.none(), proofs),
                    cert=st.one_of(st.none(), shard_certs))
payloads = st.builds(
    Payload,
    entries=st.lists(entries, max_size=4).map(tuple),
    embedded=st.lists(microblocks, max_size=2).map(tuple),
)
proposals = st.builds(
    Proposal,
    block_id=ids, view=st.integers(0, 1000), height=st.integers(0, 10_000),
    proposer=nodes, parent_id=ids, justify=qcs, payload=payloads,
    created_at=times,
)
digests = st.text(alphabet="0123456789abcdef", min_size=64, max_size=64)
kv_data = st.dictionaries(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=1, max_value=2**32),
    max_size=16,
)
# (height, last_block_id, digest, tx_applied, blocks_applied, data)
snapshots = st.tuples(
    st.integers(0, 10_000), ids, digests,
    st.integers(0, 2**40), st.integers(0, 10_000), kv_data,
)

#: One strategy per registered message kind, matching the payload each
#: kind actually carries on the wire.
PAYLOADS_BY_KIND = {
    MessageKinds.MICROBLOCK: microblocks,
    MessageKinds.MICROBLOCK_GOSSIP: microblocks,
    MessageKinds.MICROBLOCK_FETCH: microblocks,
    MessageKinds.MICROBLOCK_FORWARD: microblocks,
    MessageKinds.ACK: signatures,
    MessageKinds.PROOF: st.tuples(ids, proofs),
    MessageKinds.FETCH_REQUEST: ids,
    MessageKinds.RB_ECHO: ids,
    MessageKinds.RB_READY: ids,
    MessageKinds.LB_QUERY: ids,
    MessageKinds.LB_INFO: st.tuples(ids, times),
    MessageKinds.PROPOSAL: st.one_of(
        proposals, st.tuples(st.integers(0, 1000), proposals)
    ),
    MessageKinds.VOTE: st.one_of(
        st.tuples(ids, st.integers(0, 1000), signatures),
        st.tuples(ids, signatures),
    ),
    MessageKinds.NEW_VIEW: st.tuples(st.integers(0, 1000), qcs),
    MessageKinds.SYNC_REQUEST: ids,
    MessageKinds.PBFT_PREPARE: st.tuples(st.integers(0, 10_000), nodes),
    MessageKinds.PBFT_COMMIT: st.tuples(st.integers(0, 10_000), nodes),
    CLIENT_BATCH: batches,
    MessageKinds.STATE_SNAPSHOT_REQ: st.integers(0, 10_000),
    MessageKinds.STATE_SNAPSHOT: snapshots,
    MessageKinds.SHARD_MICROBLOCK: microblocks,
    MessageKinds.SHARD_ACK: signatures,
    MessageKinds.SHARD_CERT: st.tuples(ids, shard_certs),
}

any_message = st.sampled_from(sorted(MESSAGE_REGISTRY)).flatmap(
    lambda kind: st.tuples(st.just(kind), PAYLOADS_BY_KIND[kind])
)


def test_registry_and_strategies_cover_the_same_kinds():
    assert set(PAYLOADS_BY_KIND) == set(MESSAGE_REGISTRY)


@given(any_message)
@settings(max_examples=300)
def test_payload_round_trip_over_full_registry(message):
    _, payload = message
    assert from_wire(to_wire(payload)) == payload


@given(any_message, st.sampled_from(list(Channel)), nodes)
@settings(max_examples=100)
def test_frame_round_trip(message, channel, src):
    kind, payload = message
    frame = encode_frame(src, kind, channel, payload)
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    got_src, got_kind, got_channel, got_payload = decode_frame(frame[4:])
    assert (got_src, got_kind, got_channel) == (src, kind, channel)
    assert got_payload == payload


@given(any_message, st.sampled_from(list(Channel)), nodes)
@settings(max_examples=300)
def test_binary_frame_round_trip_over_full_registry(message, channel, src):
    kind, payload = message
    frame = encode_frame_binary(src, kind, channel, payload)
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    decoded = decode_frame_binary(frame[4:])
    assert decoded == (src, kind, channel, payload)
    # Tuple-ness survives the positional encoding too.
    if isinstance(payload, tuple):
        assert isinstance(decoded[3], tuple)


@given(any_message, st.sampled_from(list(Channel)))
@settings(max_examples=100)
def test_binary_frames_are_smaller_than_json(message, channel):
    kind, payload = message
    json_frame = encode_frame(3, kind, channel, payload)
    binary_frame = encode_frame_binary(3, kind, channel, payload)
    assert len(binary_frame) < len(json_frame)


def test_binary_codec_preserves_extreme_ints_and_negatives():
    for value in (0, -1, 1, 2**34 | 7, -(2**40), 2**80, -(2**80)):
        frame = encode_frame_binary(
            -1, MessageKinds.FETCH_REQUEST, Channel.CONTROL, value
        )
        assert decode_frame_binary(frame[4:])[3] == value


def test_binary_codec_rejects_unregistered_kind():
    with pytest.raises(WireError, match="MESSAGE_REGISTRY"):
        encode_frame_binary(0, "made.up", Channel.DATA, 1)


def test_tuples_survive_as_tuples():
    decoded = from_wire(to_wire((1, (2, 3), [4, 5])))
    assert decoded == (1, (2, 3), [4, 5])
    assert isinstance(decoded, tuple)
    assert isinstance(decoded[1], tuple)
    assert isinstance(decoded[2], list)


def test_int_keyed_dict_round_trips():
    payload = {1: "a", 2: (3, 4)}
    assert from_wire(to_wire(payload)) == payload


def test_binary_containers_round_trip_structurally():
    payload = (1, (2, 3), [4, [5]], {1: "a", "b": (True, None, 2.5)})
    frame = encode_frame_binary(0, MessageKinds.LB_INFO, Channel.DATA, payload)
    decoded = decode_frame_binary(frame[4:])[3]
    assert decoded == payload
    assert isinstance(decoded, tuple)
    assert isinstance(decoded[1], tuple)
    assert isinstance(decoded[2], list)
    assert isinstance(decoded[3]["b"], tuple)


# -- purity assertion --------------------------------------------------------

def test_sim_timer_is_rejected():
    sim = Simulator()
    timer = sim.schedule(1.0, lambda: None)
    with pytest.raises(WireError, match="pure data"):
        to_wire(timer)


def test_arbitrary_object_is_rejected():
    class NotWire:
        pass

    with pytest.raises(WireError, match="pure data"):
        to_wire(NotWire())
    with pytest.raises(WireError, match="pure data"):
        to_wire((1, NotWire()))  # nested inside a tuple


def test_unregistered_dataclass_is_rejected():
    import dataclasses

    @dataclasses.dataclass
    class Sneaky:
        x: int = 1

    with pytest.raises(WireError, match="pure data"):
        to_wire(Sneaky())


def test_non_finite_floats_are_rejected():
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(WireError, match="non-finite"):
            to_wire(bad)


def test_binary_codec_asserts_purity_too():
    class NotWire:
        pass

    for bad in (NotWire(), (1, NotWire())):
        with pytest.raises(WireError, match="pure data"):
            encode_frame_binary(0, MessageKinds.VOTE, Channel.CONSENSUS, bad)
    for bad in (float("nan"), float("inf")):
        with pytest.raises(WireError, match="non-finite"):
            encode_frame_binary(
                0, MessageKinds.FETCH_REQUEST, Channel.CONTROL, bad
            )


def test_unknown_tag_is_rejected_on_decode():
    with pytest.raises(WireError, match="unknown wire tag"):
        from_wire({"__t__": "EvilType", "v": {}})


# -- framing -----------------------------------------------------------------

def _sample_frames(count, codec="json"):
    encode = get_codec(codec).encode
    return [
        encode(
            node, MessageKinds.FETCH_REQUEST, Channel.CONTROL, node * 17
        )
        for node in range(count)
    ]


def test_frame_decoder_handles_byte_by_byte_feed():
    frames = _sample_frames(3)
    stream = b"".join(frames)
    decoder = FrameDecoder()
    messages = []
    for i in range(len(stream)):
        messages.extend(decoder.feed(stream[i:i + 1]))
    assert [payload for _, _, _, payload in messages] == [0, 17, 34]


def test_frame_decoder_handles_coalesced_frames():
    frames = _sample_frames(5)
    decoder = FrameDecoder()
    messages = list(decoder.feed(b"".join(frames)))
    assert len(messages) == 5
    assert [src for src, _, _, _ in messages] == list(range(5))


def test_frame_decoder_rejects_oversized_length_prefix():
    decoder = FrameDecoder()
    with pytest.raises(WireError, match="exceeds limit"):
        list(decoder.feed(struct.pack(">I", 2**31) + b"xxxx"))


def test_malformed_frame_body_raises_wire_error():
    with pytest.raises(WireError, match="malformed"):
        decode_frame(b"not json at all")
    with pytest.raises(WireError, match="malformed"):
        decode_frame(b'{"src": 1}')  # missing keys


def test_frame_decoder_burst_reassembly_is_linear():
    """Regression for the O(total**2) ``del buffer[:end]`` reassembly.

    A coalesced burst of tens of thousands of frames arriving in one
    read must cost O(total); the old per-frame prefix deletion moved
    gigabytes of buffer for this input and took tens of seconds.
    """
    count = 30_000
    encode = get_codec("binary").encode
    stream = b"".join(
        encode(1, MessageKinds.RB_ECHO, Channel.CONTROL, index)
        for index in range(count)
    )
    decoder = FrameDecoder("binary")
    started = time.perf_counter()
    payloads = [payload for _, _, _, payload in decoder.feed(stream)]
    elapsed = time.perf_counter() - started
    assert payloads == list(range(count))
    # Fully consumed input leaves no buffered residue behind.
    assert len(decoder._buffer) == 0 and decoder._offset == 0
    # Generous bound: the linear decoder finishes in well under a
    # second; the quadratic one needed tens of seconds.
    assert elapsed < 5.0, f"burst reassembly took {elapsed:.1f}s"


def test_frame_decoder_keeps_partial_frame_across_burst_feeds():
    frames = _sample_frames(100, codec="binary")
    stream = b"".join(frames)
    split = len(stream) - 3  # tear the final frame
    decoder = FrameDecoder("binary")
    first = list(decoder.feed(stream[:split]))
    assert len(first) == 99
    rest = list(decoder.feed(stream[split:]))
    assert len(rest) == 1
    assert rest[0][3] == 99 * 17


# -- preamble negotiation ----------------------------------------------------

def _preamble_stream(codec_name, messages=3):
    codec = get_codec(codec_name)
    return codec.preamble + b"".join(
        codec.encode(7, MessageKinds.RB_READY, Channel.CONTROL, index)
        for index in range(messages)
    )


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_negotiating_decoder_selects_codec_from_preamble(codec_name):
    decoder = FrameDecoder(negotiate=True)
    messages = list(decoder.feed(_preamble_stream(codec_name)))
    assert [payload for _, _, _, payload in messages] == [0, 1, 2]
    assert decoder.codec.name == codec_name


@pytest.mark.parametrize("codec_name", sorted(CODECS))
def test_negotiating_decoder_survives_byte_by_byte_preamble(codec_name):
    decoder = FrameDecoder(codec_name, negotiate=True)
    stream = _preamble_stream(codec_name)
    messages = []
    for index in range(len(stream)):
        messages.extend(decoder.feed(stream[index:index + 1]))
    assert len(messages) == 3


def test_mixed_codec_stream_is_rejected():
    decoder = FrameDecoder("binary", negotiate=True)
    with pytest.raises(WireError, match="configured for 'binary'"):
        list(decoder.feed(_preamble_stream("json")))
    decoder = FrameDecoder("json", negotiate=True)
    with pytest.raises(WireError, match="configured for 'json'"):
        list(decoder.feed(_preamble_stream("binary")))


def test_garbage_preamble_is_rejected():
    decoder = FrameDecoder(negotiate=True)
    with pytest.raises(WireError, match="bad stream preamble"):
        list(decoder.feed(b"HTTP/1.1 200 OK\r\n"))
    decoder = FrameDecoder(negotiate=True)
    with pytest.raises(WireError, match="unsupported wire format"):
        list(decoder.feed(WIRE_MAGIC + b"\x7f" + b"xxxx"))
    assert len(WIRE_MAGIC) + 1 == PREAMBLE_SIZE


# -- decoder fuzz ------------------------------------------------------------

@given(
    st.lists(st.integers(0, 2**40), min_size=1, max_size=30),
    st.data(),
    st.sampled_from(sorted(CODECS)),
)
@settings(max_examples=60)
def test_torn_stream_reassembles_exactly(payload_ids, data, codec_name):
    """Arbitrary tearing of a multi-frame stream never loses or reorders
    a message — the incremental decoder is split-point oblivious."""
    codec = get_codec(codec_name)
    stream = codec.preamble + b"".join(
        codec.encode(0, MessageKinds.FETCH_REQUEST, Channel.CONTROL, value)
        for value in payload_ids
    )
    decoder = FrameDecoder(codec_name, negotiate=True)
    received = []
    position = 0
    while position < len(stream):
        step = data.draw(st.integers(1, len(stream) - position))
        received.extend(
            payload for _, _, _, payload
            in decoder.feed(stream[position:position + step])
        )
        position += step
    assert received == payload_ids


@given(st.binary(min_size=0, max_size=256))
@settings(max_examples=200)
def test_garbage_binary_body_raises_wire_error_not_crash(body):
    """Any byte soup either decodes or raises WireError — never an
    unhandled IndexError/struct.error/UnicodeDecodeError escape."""
    try:
        decode_frame_binary(body)
    except WireError:
        pass


@given(st.binary(min_size=0, max_size=256))
@settings(max_examples=100)
def test_garbage_json_body_raises_wire_error_not_crash(body):
    try:
        decode_frame(body)
    except WireError:
        pass


def test_oversized_frame_rejected_by_both_codecs():
    from repro.live.wire import MAX_FRAME_BYTES

    for codec_name in sorted(CODECS):
        decoder = FrameDecoder(codec_name)
        with pytest.raises(WireError, match="exceeds limit"):
            list(decoder.feed(
                struct.pack(">I", MAX_FRAME_BYTES + 1) + b"xxxx"
            ))
    # And at encode time: a pathological payload fails fast.
    with pytest.raises(WireError, match="too large"):
        encode_frame_binary(
            0, MessageKinds.FETCH_REQUEST, Channel.CONTROL,
            "x" * (MAX_FRAME_BYTES + 1),
        )
