"""Unit tests for the Appendix-A analytic throughput models."""

import pytest

from repro.analysis import (
    lbft_max_throughput,
    pbft_batched_max_throughput,
    pbft_max_throughput,
    smp_limit_throughput,
    smp_max_throughput,
    smp_optimal_microblock_bytes,
)

C = 1e9          # 1 Gb/s
B = 128 * 8      # 128-byte transactions, in bits
SIGMA = 100 * 8  # 100-byte votes


def test_lbft_declines_inversely_with_n():
    t16 = lbft_max_throughput(C, B, 16)
    t32 = lbft_max_throughput(C, B, 32)
    assert t16 / t32 == pytest.approx(31 / 15)


def test_lbft_known_value():
    # C/(B(n-1)) with n=2: full line rate.
    assert lbft_max_throughput(C, B, 2) == pytest.approx(C / B)


def test_pbft_below_lbft_due_to_votes():
    assert pbft_max_throughput(C, B, 32, SIGMA) < lbft_max_throughput(C, B, 32)


def test_pbft_batching_approaches_c_over_nb():
    n = 32
    batched = pbft_batched_max_throughput(C, B, n, SIGMA,
                                          batch_bits=512 * 1024 * 8)
    assert batched == pytest.approx(C / (n * B), rel=0.05)


def test_pbft_batching_helps():
    n = 32
    plain = pbft_max_throughput(C, B, n, SIGMA)
    batched = pbft_batched_max_throughput(C, B, n, SIGMA,
                                          batch_bits=512 * 1024 * 8)
    assert batched > plain


def test_smp_near_c_over_2b_at_optimal_eta():
    n = 128
    gamma = 32 * 8
    eta = smp_optimal_microblock_bytes(n, gamma) * 8
    tput = smp_max_throughput(C, B, n, batch_bits=512 * 1024 * 8,
                              microblock_bits=eta, id_bits=gamma)
    assert tput == pytest.approx(smp_limit_throughput(C, B, n), rel=0.01)
    assert tput == pytest.approx(C / (2 * B), rel=0.05)


def test_smp_limit_independent_of_n():
    small = smp_limit_throughput(C, B, 64)
    large = smp_limit_throughput(C, B, 512)
    assert small == pytest.approx(large, rel=0.02)


def test_smp_beats_lbft_at_scale():
    n = 128
    gamma = 32 * 8
    eta = 128 * 1024 * 8
    smp = smp_max_throughput(C, B, n, 512 * 1024 * 8, eta, gamma)
    assert smp > 10 * lbft_max_throughput(C, B, n)


def test_optimal_microblock_grows_with_n():
    assert smp_optimal_microblock_bytes(256, 32 * 8) > \
        smp_optimal_microblock_bytes(64, 32 * 8)


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        lbft_max_throughput(0, B, 4)
    with pytest.raises(ValueError):
        lbft_max_throughput(C, -1, 4)
    with pytest.raises(ValueError):
        lbft_max_throughput(C, B, 1)
    with pytest.raises(ValueError):
        pbft_batched_max_throughput(C, B, 4, SIGMA, batch_bits=B / 2)
    with pytest.raises(ValueError):
        smp_max_throughput(C, B, 4, 0, 1, 1)
    with pytest.raises(ValueError):
        smp_optimal_microblock_bytes(2, 32)
