"""White-box tests for PBFT's two-round commit logic."""

from repro.crypto import GENESIS_QC
from repro.types.proposal import Payload, Proposal, make_block_id

from tests.helpers import make_cluster


def frozen_pbft(n=4):
    exp = make_cluster(n=n, consensus="pbft", mempool="native")
    for replica in exp.replicas:
        replica.consensus._pump = lambda *a, **k: None
    return exp


def make_pre_prepare(seq):
    return Proposal(
        block_id=make_block_id(0, seq), view=0, height=seq + 1, proposer=0,
        parent_id=0, justify=GENESIS_QC, payload=Payload(),
    )


def test_prepare_quorum_gates_commit_round():
    exp = frozen_pbft()
    engine = exp.replicas[3].consensus
    proposal = make_pre_prepare(0)
    engine._on_pre_prepare(0, proposal)  # own prepare broadcast
    slot = engine._slot(0)
    assert not slot.prepared or len(slot.prepares) >= 1
    engine._on_prepare(0, 1)
    engine._on_prepare(0, 2)
    assert slot.prepared  # 3 = 2f+1 prepares (incl own)
    assert not slot.committed


def test_commit_quorum_commits_once():
    exp = frozen_pbft()
    engine = exp.replicas[3].consensus
    engine._on_pre_prepare(0, make_pre_prepare(0))
    for voter in (1, 2):
        engine._on_prepare(0, voter)
    for voter in (1, 2):
        engine._on_commit_vote(0, voter)
    slot = engine._slot(0)
    assert slot.committed
    # Replaying votes must not double-commit (metrics dedupe by block id,
    # but the slot flag must also hold).
    engine._on_commit_vote(0, 1)
    assert slot.committed


def test_commit_requires_pre_prepare():
    exp = frozen_pbft()
    engine = exp.replicas[3].consensus
    for voter in (0, 1, 2):
        engine._on_prepare(5, voter)
        engine._on_commit_vote(5, voter)
    assert not engine._slot(5).committed  # no proposal content yet


def test_out_of_order_slots_commit_independently():
    exp = frozen_pbft()
    engine = exp.replicas[3].consensus
    for seq in (1, 0):
        engine._on_pre_prepare(seq, make_pre_prepare(seq))
        for voter in (1, 2):
            engine._on_prepare(seq, voter)
        for voter in (1, 2):
            engine._on_commit_vote(seq, voter)
    assert engine._slot(0).committed
    assert engine._slot(1).committed


def test_silent_replica_does_not_vote():
    from repro.replica.behavior import SilentReplica

    exp = frozen_pbft()
    engine = exp.replicas[3].consensus
    exp.replicas[3].behavior = SilentReplica()
    engine._on_pre_prepare(0, make_pre_prepare(0))
    slot = engine._slot(0)
    assert 3 not in slot.prepares
