"""Durability layer: WAL, checkpoints, recovery, and snapshot transfer.

The crash-point matrix simulates a kill at every WAL/checkpoint write
boundary via failpoints (plus byte-level torn/corrupt tails) and asserts
recovery always lands on a state digest identical to a clean run's —
first on the recovered prefix, then, after re-applying the remaining
blocks, on the full sequence.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import GENESIS_QC
from repro.durability import (
    AppliedBlockRecord,
    Checkpoint,
    CheckpointStore,
    DurabilityConfig,
    DurableKVStore,
    WriteAheadLog,
    decode_checkpoint,
    decode_payload,
    encode_payload,
    encode_record,
    read_wal,
)
from repro.durability.checkpoint import MAGIC
from repro.kvstore import KVStore, kv_digest
from repro.types import MicroBlock, make_microblock_id
from repro.types.proposal import Block, Payload, PayloadEntry, Proposal


class SimulatedCrash(Exception):
    """Raised from a failpoint: the process dies at this exact boundary."""


def make_block(mb_counts=(3, 2), proposer=1, counter=0):
    microblocks = {}
    entries = []
    for index, count in enumerate(mb_counts):
        mb = MicroBlock(
            id=make_microblock_id(proposer, counter * 100 + index),
            origin=proposer, tx_count=count, tx_payload=128,
            created_at=0.0, sum_arrival=0.0,
        )
        microblocks[mb.id] = mb
        entries.append(PayloadEntry(mb_id=mb.id))
    proposal = Proposal(
        block_id=counter + 1, view=counter + 1, height=counter + 1,
        proposer=proposer, parent_id=counter, justify=GENESIS_QC,
        payload=Payload(entries=tuple(entries)),
    )
    return Block(proposal=proposal, microblocks=microblocks)


def make_blocks(count):
    return [make_block((3, 2), counter=i) for i in range(count)]


def clean_prefix_digests(blocks):
    """height -> digest of a clean (in-memory) run applying that prefix."""
    clean = KVStore()
    digests = {0: clean.state_digest()}
    for block in blocks:
        clean.apply_block(block)
        digests[block.proposal.height] = clean.state_digest()
    return digests


# -- crash-point matrix -------------------------------------------------

#: (failpoint name, which firing to crash on). WAL points crash on a
#: mid-sequence append; checkpoint points crash on the first checkpoint
#: (checkpoint_interval=4 -> during block 4). ``wal.before_truncate``
#: is the "after checkpoint / before truncate" boundary: the new
#: checkpoint is durable but the WAL still holds its whole prefix.
CRASH_POINTS = [
    ("wal.before_append", 6),
    ("wal.after_append", 6),
    ("wal.after_fsync", 6),
    ("checkpoint.before_write", 1),
    ("checkpoint.before_rename", 1),
    ("checkpoint.after_rename", 1),
    ("wal.before_truncate", 1),
]


@pytest.mark.parametrize("fsync", ["always", "off"])
@pytest.mark.parametrize("point,trigger", CRASH_POINTS)
def test_crash_point_recovers_to_clean_digest(tmp_path, point, trigger, fsync):
    if point == "wal.after_fsync" and fsync == "off":
        pytest.skip("fsync=off never reaches the after-fsync boundary")
    blocks = make_blocks(10)
    digests = clean_prefix_digests(blocks)
    fired = {"count": 0}

    def failpoint(name):
        if name == point:
            fired["count"] += 1
            if fired["count"] == trigger:
                raise SimulatedCrash(name)

    config = DurabilityConfig(fsync=fsync, checkpoint_interval=4)
    store = DurableKVStore(str(tmp_path), config=config, failpoint=failpoint)
    with pytest.raises(SimulatedCrash):
        for block in blocks:
            store.apply_block(block)
    assert fired["count"] == trigger

    # "Restart": a fresh instance recovers from the same directory.
    recovered = DurableKVStore(str(tmp_path), config=config)
    height = recovered.last_height
    assert height in digests, f"recovered to unknown height {height}"
    assert recovered.state_digest() == digests[height], (
        f"crash at {point}: recovered state diverges from the clean "
        f"prefix at height {height}"
    )
    # Re-apply what the crash lost; the final state must be bit-identical
    # to the clean full run.
    for block in blocks:
        if block.proposal.height > height:
            recovered.apply_block(block)
    assert recovered.last_height == len(blocks)
    assert recovered.state_digest() == digests[len(blocks)]
    recovered.close()


def test_torn_final_record_is_discarded(tmp_path):
    blocks = make_blocks(5)
    digests = clean_prefix_digests(blocks)
    config = DurabilityConfig(fsync="off", checkpoint_interval=100)
    store = DurableKVStore(str(tmp_path), config=config)
    for block in blocks:
        store.apply_block(block)
    store.close()

    wal_path = os.path.join(str(tmp_path), "wal.log")
    size = os.path.getsize(wal_path)
    with open(wal_path, "r+b") as handle:
        handle.truncate(size - 3)  # tear into the final record

    recovered = DurableKVStore(str(tmp_path), config=config)
    assert recovered.recovery.wal_torn_tail
    assert recovered.last_height == len(blocks) - 1
    assert recovered.state_digest() == digests[len(blocks) - 1]
    # The torn bytes are gone; appending continues from a clean tail.
    recovered.apply_block(blocks[-1])
    assert recovered.state_digest() == digests[len(blocks)]
    recovered.close()
    final = DurableKVStore(str(tmp_path), config=config)
    assert final.state_digest() == digests[len(blocks)]
    final.close()


def test_corrupt_crc_record_stops_replay_at_valid_prefix(tmp_path):
    blocks = make_blocks(6)
    digests = clean_prefix_digests(blocks)
    config = DurabilityConfig(fsync="off", checkpoint_interval=100)
    store = DurableKVStore(str(tmp_path), config=config)
    for block in blocks:
        store.apply_block(block)
    store.close()

    wal_path = os.path.join(str(tmp_path), "wal.log")
    # Flip one byte inside the 3rd record's payload.
    replay = read_wal(wal_path)
    offset = sum(
        len(encode_record(record)) for record in replay.records[:2]
    ) + 12  # into record 3's payload (8-byte header + 4)
    with open(wal_path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))

    recovered = DurableKVStore(str(tmp_path), config=config)
    assert recovered.last_height == 2  # conservative prefix, nothing past it
    assert recovered.state_digest() == digests[2]
    assert recovered.recovery.wal_torn_tail
    recovered.close()


def test_corrupt_checkpoint_rejected_not_applied(tmp_path):
    blocks = make_blocks(5)
    config = DurabilityConfig(fsync="off", checkpoint_interval=3)
    store = DurableKVStore(str(tmp_path), config=config)
    for block in blocks:
        store.apply_block(block)
    assert store.checkpoints_written == 1
    store.close()

    ckpt_dir = os.path.join(str(tmp_path), "checkpoints")
    [name] = os.listdir(ckpt_dir)
    path = os.path.join(ckpt_dir, name)
    blob = open(path, "rb").read()
    mutated = bytearray(blob)
    mutated[len(MAGIC) + 8 + 4] ^= 0xFF  # corrupt the payload
    open(path, "wb").write(bytes(mutated))

    recovered = DurableKVStore(str(tmp_path), config=config)
    # The checkpoint is rejected, and the WAL tail (heights 4..5) is
    # non-contiguous with empty state, so nothing replays: recovery
    # refuses to fabricate state and waits for snapshot transfer.
    assert recovered.recovery.source == "fresh"
    assert recovered.last_height == 0
    assert recovered.recovery.wal_blocks_replayed == 0
    recovered.close()


@pytest.mark.parametrize("damage", ["empty", "partial", "bad-magic"])
def test_damaged_checkpoint_files_are_skipped(tmp_path, damage):
    store = CheckpointStore(str(tmp_path))
    good = Checkpoint(
        height=3, last_block_id=3, digest=kv_digest({1: 2}),
        tx_applied=5, blocks_applied=3, data={1: 2},
    )
    store.save(good)
    # A later-height checkpoint file that is damaged must be skipped in
    # favor of the older valid one, never half-applied.
    bad_path = os.path.join(str(tmp_path), "checkpoint-000000000009.ckpt")
    blob = Checkpoint(
        height=9, last_block_id=9, digest=kv_digest({1: 9}),
        tx_applied=9, blocks_applied=9, data={1: 9},
    ).encode()
    if damage == "empty":
        open(bad_path, "wb").close()
    elif damage == "partial":
        open(bad_path, "wb").write(blob[: len(blob) // 2])
    else:
        open(bad_path, "wb").write(b"XXXXXXXX" + blob[8:])
    loaded = store.load_latest()
    assert loaded is not None
    checkpoint, _size = loaded
    assert checkpoint.height == 3
    assert checkpoint.data == {1: 2}


def test_checkpoint_digest_mismatch_rejected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    lying = Checkpoint(
        height=3, last_block_id=3, digest=kv_digest({1: 999}),  # wrong
        tx_applied=5, blocks_applied=3, data={1: 2},
    )
    store.save(lying)
    assert store.load_latest() is None
    with pytest.raises(ValueError):
        decode_checkpoint(lying.encode())


# -- WAL / checkpoint mechanics ----------------------------------------

def test_wal_truncates_after_checkpoint(tmp_path):
    config = DurabilityConfig(fsync="always", checkpoint_interval=4)
    store = DurableKVStore(str(tmp_path), config=config)
    for block in make_blocks(4):
        store.apply_block(block)
    assert store.checkpoints_written == 1
    assert os.path.getsize(os.path.join(str(tmp_path), "wal.log")) == 0
    store.close()


def test_stale_wal_prefix_skipped_by_height(tmp_path):
    """Crash between checkpoint and truncate leaves the full WAL behind;
    recovery must not double-apply the checkpointed prefix."""
    blocks = make_blocks(6)
    digests = clean_prefix_digests(blocks)

    def crash_before_truncate(name):
        if name == "wal.before_truncate":
            raise SimulatedCrash(name)

    config = DurabilityConfig(fsync="always", checkpoint_interval=4)
    store = DurableKVStore(
        str(tmp_path), config=config, failpoint=crash_before_truncate
    )
    with pytest.raises(SimulatedCrash):
        for block in blocks:
            store.apply_block(block)

    recovered = DurableKVStore(str(tmp_path), config=config)
    assert recovered.recovery.source == "checkpoint"
    assert recovered.recovery.checkpoint_height == 4
    assert recovered.last_height == 4
    assert recovered.tx_applied == 4 * 5  # not 8 * 5
    assert recovered.state_digest() == digests[4]
    recovered.close()


def test_fsync_policy_validation():
    with pytest.raises(ValueError):
        DurabilityConfig(fsync="sometimes")
    with pytest.raises(ValueError):
        DurabilityConfig(checkpoint_interval=0)
    with pytest.raises(ValueError):
        WriteAheadLog("/tmp/x", fsync="nope")


def test_config_spec_round_trip():
    config = DurabilityConfig(
        fsync="interval", fsync_interval=0.2,
        checkpoint_interval=7, snapshot_transfer=False,
    )
    assert DurabilityConfig.from_spec(config.to_spec()) == config


# -- snapshot transfer --------------------------------------------------

def test_snapshot_install_and_rejects(tmp_path):
    blocks = make_blocks(6)
    digests = clean_prefix_digests(blocks)
    config = DurabilityConfig(fsync="off", checkpoint_interval=100)
    ahead = DurableKVStore(str(tmp_path / "a"), config=config)
    for block in blocks:
        ahead.apply_block(block)
    behind = DurableKVStore(str(tmp_path / "b"), config=config)
    for block in blocks[:2]:
        behind.apply_block(block)

    payload = ahead.snapshot_payload()
    assert behind.install_snapshot(payload)
    assert behind.last_height == 6
    assert behind.state_digest() == digests[6]
    assert behind.snapshot_installs == 1
    # Installing persists immediately: a crash right after still recovers.
    behind.close()
    recovered = DurableKVStore(str(tmp_path / "b"), config=config)
    assert recovered.state_digest() == digests[6]
    assert recovered.recovery.source == "checkpoint"
    recovered.close()

    # Stale (not ahead) and digest-mangled snapshots are refused.
    assert not ahead.install_snapshot(payload)
    mangled = list(payload)
    mangled[5] = dict(mangled[5])
    first_key = next(iter(mangled[5]))
    mangled[5][first_key] += 1
    mangled[0] = payload[0] + 10
    fresh = DurableKVStore(str(tmp_path / "c"), config=config)
    assert not fresh.install_snapshot(tuple(mangled))
    assert fresh.last_height == 0
    ahead.close()
    fresh.close()


# -- hypothesis round-trips --------------------------------------------

records = st.builds(
    AppliedBlockRecord,
    block_id=st.integers(min_value=0, max_value=2 ** 48),
    height=st.integers(min_value=0, max_value=2 ** 32),
    microblocks=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2 ** 48),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=8,
    ).map(tuple),
)


@given(record=records)
def test_wal_record_round_trip(record):
    assert decode_payload(encode_payload(record)) == record
    framed = encode_record(record)
    assert len(framed) == 8 + len(encode_payload(record))


@given(record_lists=st.lists(records, max_size=6))
@settings(max_examples=25)
def test_wal_file_round_trip(tmp_path_factory, record_lists):
    directory = tmp_path_factory.mktemp("wal")
    path = str(directory / "wal.log")
    wal = WriteAheadLog(path, fsync="off")
    for record in record_lists:
        wal.append(record)
    wal.close()
    replay = read_wal(path)
    assert replay.records == record_lists
    assert not replay.torn


kv_maps = st.dictionaries(
    st.integers(min_value=0, max_value=100_000),
    st.integers(min_value=1, max_value=2 ** 32),
    max_size=32,
)


@given(data=kv_maps, height=st.integers(min_value=0, max_value=2 ** 32))
@settings(max_examples=25)
def test_checkpoint_round_trip(tmp_path_factory, data, height):
    directory = tmp_path_factory.mktemp("ckpt")
    checkpoint = Checkpoint(
        height=height, last_block_id=height, digest=kv_digest(data),
        tx_applied=sum(data.values()), blocks_applied=height, data=data,
    )
    store = CheckpointStore(str(directory))
    size = store.save(checkpoint)
    loaded = store.load_latest()
    assert loaded is not None
    restored, restored_size = loaded
    assert restored == checkpoint
    assert restored_size == size


@given(blocks_applied=st.integers(min_value=1, max_value=12))
@settings(max_examples=10, deadline=None)
def test_generated_block_sequences_recover_exactly(
    tmp_path_factory, blocks_applied
):
    directory = tmp_path_factory.mktemp("seq")
    blocks = make_blocks(blocks_applied)
    digests = clean_prefix_digests(blocks)
    config = DurabilityConfig(fsync="off", checkpoint_interval=5)
    store = DurableKVStore(str(directory), config=config)
    for block in blocks:
        store.apply_block(block)
    recovered = store.reopen()
    assert recovered.state_digest() == digests[blocks_applied]
    assert recovered.last_height == blocks_applied
    recovered.close()
