"""Tests for the scenario fuzzer: derivation, determinism, validity."""

import random

from repro.config import CONSENSUS_KINDS, MEMPOOL_KINDS
from repro.sim.rng import RngRegistry
from repro.verification.fuzzer import (
    FUZZ_MEMPOOL_KINDS,
    LIVENESS_MARGIN,
    QUICK_PROTOCOL,
    Scenario,
    ScenarioFuzzer,
    default_liveness_bound,
    random_fault_schedule,
    run_scenario,
)


def test_scenario_derivation_is_pure():
    """The same root seed derives byte-identical scenarios, even from
    two independent fuzzer instances and out-of-order queries."""
    a = ScenarioFuzzer(1234)
    b = ScenarioFuzzer(1234)
    for index in (3, 0, 7):
        assert a.scenario(index).to_dict() == b.scenario(index).to_dict()


def test_different_roots_diverge():
    a = ScenarioFuzzer(1).scenario(0)
    b = ScenarioFuzzer(2).scenario(0)
    assert a.to_dict() != b.to_dict()


def test_derive_seed_stability():
    """The run seed is a documented pure function of (root, name); a
    change here invalidates every recorded artifact."""
    registry = RngRegistry(42)
    assert registry.derive_seed("scenario.0.run") == (
        RngRegistry(42).derive_seed("scenario.0.run")
    )
    assert ScenarioFuzzer(42).scenario(0).seed == (
        RngRegistry(42).derive_seed("scenario.0.run")
    )


def test_one_root_seed_feeds_all_streams():
    """Satellite check: topology, workload, and fault randomness all
    trace back to the single root seed (scenario fields + run seed)."""
    fuzzer = ScenarioFuzzer(99)
    scenario = fuzzer.scenario(5)
    assert scenario.root_seed == 99
    assert scenario.seed == RngRegistry(99).derive_seed("scenario.5.run")
    # Replaying the derivation stream reproduces the composition.
    again = ScenarioFuzzer(99).scenario(5)
    assert again.fault_spec == scenario.fault_spec
    assert (again.consensus, again.mempool, again.n, again.rate_tps) == (
        scenario.consensus, scenario.mempool, scenario.n, scenario.rate_tps
    )


def test_same_scenario_same_commit_hash():
    """FoundationDB property: re-running a scenario is bit-for-bit
    identical, fingerprinted by the commit-sequence hash."""
    scenario = Scenario(
        seed=7, consensus="hotstuff", mempool="stratus", n=4,
        duration=2.0, rate_tps=300.0,
        fault_spec=[{"event": "loss", "at": 0.8, "duration": 0.5,
                     "rate": 0.2}],
    )
    first = run_scenario(scenario)
    second = run_scenario(scenario)
    assert first.commit_hash == second.commit_hash
    assert first.committed_tx == second.committed_tx
    assert first.events_processed == second.events_processed


def test_fault_schedules_are_self_healing():
    for seed in range(30):
        rng = random.Random(seed)
        spec = random_fault_schedule(rng, n=7, deadline=3.0)
        crashes = {e["node"] for e in spec if e["event"] == "crash"}
        restarts = {e["node"] for e in spec if e["event"] == "restart"}
        assert crashes == restarts  # every crash heals
        assert len(crashes) <= 2  # at most f of n=7
        for entry in spec:
            assert entry["at"] + entry.get("duration", 0.0) <= 3.2


def test_fault_schedule_never_crashes_pbft_leader():
    for seed in range(30):
        rng = random.Random(seed)
        spec = random_fault_schedule(rng, n=4, consensus="pbft")
        assert all(
            e["node"] != 0 for e in spec if e["event"] == "crash"
        )


def test_scenarios_cover_protocol_grid():
    """A modest sweep draws from the full consensus x mempool space.

    The mempool pool is the fuzzer's *pinned* default
    (``FUZZ_MEMPOOL_KINDS``), not the global registry: recorded corpus
    cells must not shift when a new mempool kind is registered.
    """
    fuzzer = ScenarioFuzzer(3)
    seen_consensus = set()
    seen_mempool = set()
    for index in range(60):
        scenario = fuzzer.scenario(index)
        seen_consensus.add(scenario.consensus)
        seen_mempool.add(scenario.mempool)
        assert scenario.consensus in CONSENSUS_KINDS
        assert scenario.mempool in MEMPOOL_KINDS
    assert seen_consensus == set(CONSENSUS_KINDS)
    assert seen_mempool == set(FUZZ_MEMPOOL_KINDS)
    assert set(FUZZ_MEMPOOL_KINDS) < set(MEMPOOL_KINDS)


def test_faults_heal_before_liveness_judgement():
    """Every derived fault window leaves room for the liveness bound."""
    fuzzer = ScenarioFuzzer(11)
    for index in range(20):
        scenario = fuzzer.scenario(index)
        bound = default_liveness_bound(scenario.protocol_config())
        for entry in scenario.fault_spec:
            end = entry["at"] + entry.get("duration", 0.0)
            assert end + bound + LIVENESS_MARGIN <= (
                scenario.end_time + 0.3
            )


def test_scenario_round_trips_through_dict():
    scenario = ScenarioFuzzer(5).scenario(2)
    assert Scenario.from_dict(scenario.to_dict()) == scenario


def test_quick_protocol_keeps_fetch_view_ratio():
    """The fetch grace period must stay well under the view timeout or
    every fetch-gated vote spans a full view (two-chain livelock)."""
    assert QUICK_PROTOCOL["fetch_timeout"] * 2 <= (
        QUICK_PROTOCOL["view_timeout"]
    )
