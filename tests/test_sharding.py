"""Shard map and shard certificate units (``repro.sharding``).

The end-to-end behavior of the ``sharded-stratus`` backend rides the
harness/fuzz suites; this file pins the deterministic structure the
whole design rests on — membership layout, per-shard fault tolerance,
certificate assembly and the validity checks replicas vote on.
"""

import pytest

from repro.config import ShardingConfig
from repro.crypto import sign
from repro.crypto.signatures import Signature
from repro.sharding import (
    CertificateError,
    ShardCertificate,
    ShardMap,
    make_shard_certificate,
    verify_shard_certificate,
)
from repro.types.microblock import MicroBlock, make_microblock_id


def make_map(n=16, shards=4, **kwargs):
    return ShardMap(n, ShardingConfig(shards=shards, **kwargs))


def make_mb(origin=1, counter=0, tx_count=10):
    return MicroBlock(
        id=make_microblock_id(origin, counter), origin=origin,
        tx_count=tx_count, tx_payload=128, created_at=0.0,
        sum_arrival=0.0,
    )


# -- shard map ---------------------------------------------------------------

def test_map_is_deterministic():
    first = make_map(64, 8)
    second = make_map(64, 8)
    for shard in range(8):
        assert first.members(shard) == second.members(shard)
        assert first.quorum(shard) == second.quorum(shard)


def test_memberships_are_strided_orbits():
    shard_map = make_map(16, 4)
    # Shard s owns s, s+4, s+8, s+12 — every replica appears in exactly
    # its own orbit, so dissemination load spreads evenly.
    assert shard_map.members(0) == (0, 4, 8, 12)
    assert shard_map.members(3) == (3, 7, 11, 15)


def test_every_origin_is_a_member_of_its_own_shard():
    for n, shards in ((16, 4), (32, 8), (64, 4), (128, 8), (7, 2)):
        shard_map = make_map(n, shards)
        for origin in range(n):
            shard = shard_map.shard_of_origin(origin)
            assert shard_map.is_member(origin, shard)


def test_shard_size_floor_pads_small_orbits():
    # 16 replicas over 8 shards would give 2-member orbits; the 4-member
    # floor pads along the ring so each shard still tolerates f_s >= 1.
    shard_map = make_map(16, 8)
    for shard in range(8):
        assert len(shard_map.members(shard)) == 4
        assert shard_map.f_of(shard) == 1
        assert shard_map.quorum(shard) == 2


def test_quorum_tolerates_f_byzantine_members():
    # quorum = f_s + 1: even with f_s members refusing to ack, the
    # remaining honest members can still certify — and any certificate
    # has at least one honest signer to fetch from.
    shard_map = make_map(64, 4)  # 16-member shards
    for shard in range(4):
        m = len(shard_map.members(shard))
        f = shard_map.f_of(shard)
        assert f == (m - 1) // 3
        assert shard_map.quorum(shard) == f + 1
        assert shard_map.quorum(shard) <= m - f


def test_epoch_rotation_rebalances_but_keeps_own_membership():
    base = make_map(16, 4)
    rotated = make_map(16, 4, epoch=3)
    assert rotated.members(0) != base.members(0)
    for origin in range(16):
        shard = rotated.shard_of_origin(origin)
        assert rotated.is_member(origin, shard)


def test_client_keying_partitions_clients():
    shard_map = make_map(16, 4)
    assert {shard_map.shard_of_client(c) for c in range(100)} == set(range(4))
    assert shard_map.shard_of_client(7) == shard_map.shard_of_client(7 + 4)


def test_invalid_configs_are_rejected():
    with pytest.raises(ValueError, match="cannot split"):
        make_map(4, 8)
    with pytest.raises(ValueError, match="shard_size"):
        make_map(8, 2, shard_size=16)


# -- certificates ------------------------------------------------------------

def _quorum_acks(shard_map, mb, shard):
    members = shard_map.members(shard)
    return [sign(node, mb.id) for node in members[:shard_map.quorum(shard)]]


def test_make_certificate_from_quorum_acks():
    shard_map = make_map(16, 4)
    mb = make_mb(origin=1)
    shard = shard_map.shard_of_origin(1)
    cert = make_shard_certificate(
        mb, shard, _quorum_acks(shard_map, mb, shard),
        shard_map.members(shard), shard_map.quorum(shard), 16,
    )
    assert cert.tx_count == mb.tx_count
    assert verify_shard_certificate(cert, mb.id, shard_map)


def test_non_member_acks_do_not_count():
    shard_map = make_map(16, 4)
    mb = make_mb(origin=1)
    shard = shard_map.shard_of_origin(1)
    outsiders = [
        node for node in range(16) if not shard_map.is_member(node, shard)
    ]
    acks = [sign(node, mb.id) for node in outsiders]
    with pytest.raises(CertificateError, match="distinct member acks"):
        make_shard_certificate(
            mb, shard, acks, shard_map.members(shard),
            shard_map.quorum(shard), 16,
        )


def test_duplicate_and_forged_acks_do_not_count():
    shard_map = make_map(16, 4)
    mb = make_mb(origin=1)
    shard = shard_map.shard_of_origin(1)
    member = shard_map.members(shard)[0]
    acks = [sign(member, mb.id)] * 3 + [
        Signature(signer=shard_map.members(shard)[1], digest=mb.id,
                  forged=True)
    ]
    with pytest.raises(CertificateError):
        make_shard_certificate(
            mb, shard, acks, shard_map.members(shard),
            shard_map.quorum(shard), 16,
        )


def _valid_cert(shard_map, origin=1):
    mb = make_mb(origin=origin)
    shard = shard_map.shard_of_origin(origin)
    return mb, make_shard_certificate(
        mb, shard, _quorum_acks(shard_map, mb, shard),
        shard_map.members(shard), shard_map.quorum(shard), shard_map.n,
    )


def test_verify_rejects_wrong_binding_and_structure():
    shard_map = make_map(16, 4)
    mb, cert = _valid_cert(shard_map)
    # Wrong microblock id binding.
    assert not verify_shard_certificate(cert, mb.id + 1, shard_map)
    # Wrong claimed shard for the origin.
    wrong_shard = ShardCertificate(
        mb_id=cert.mb_id, shard=(cert.shard + 1) % 4, origin=cert.origin,
        tx_count=cert.tx_count, mean_arrival=cert.mean_arrival,
        signers=cert.signers,
    )
    assert not verify_shard_certificate(wrong_shard, mb.id, shard_map)
    # Sub-quorum signer set.
    thin = ShardCertificate(
        mb_id=cert.mb_id, shard=cert.shard, origin=cert.origin,
        tx_count=cert.tx_count, mean_arrival=cert.mean_arrival,
        signers=cert.signers[:shard_map.quorum(cert.shard) - 1] or (),
    )
    assert not verify_shard_certificate(thin, mb.id, shard_map)
    # Signers outside the owning shard's membership.
    outsider = next(
        node for node in range(16)
        if not shard_map.is_member(node, cert.shard)
    )
    foreign = ShardCertificate(
        mb_id=cert.mb_id, shard=cert.shard, origin=cert.origin,
        tx_count=cert.tx_count, mean_arrival=cert.mean_arrival,
        signers=tuple(list(cert.signers[:-1]) + [outsider]),
    )
    assert not verify_shard_certificate(foreign, mb.id, shard_map)


def test_verify_rejects_cert_under_different_map():
    # A certificate minted under one epoch must not validate under a
    # rebalanced map whose membership no longer contains its signers.
    old_map = make_map(16, 4)
    _, cert = _valid_cert(old_map)
    new_map = make_map(16, 4, epoch=2)
    mb_id = cert.mb_id
    valid_under_new = (
        set(cert.signers) <= new_map.member_set(
            new_map.shard_of_origin(cert.origin)
        )
        and cert.shard == new_map.shard_of_origin(cert.origin)
    )
    assert verify_shard_certificate(cert, mb_id, new_map) == valid_under_new


def test_verification_is_memoized_per_map():
    shard_map = make_map(16, 4)
    mb, cert = _valid_cert(shard_map)
    assert verify_shard_certificate(cert, mb.id, shard_map)
    assert cert._verified_key == (shard_map.n, shard_map.config)
    # The binding check still runs on the memoized path.
    assert not verify_shard_certificate(cert, mb.id + 1, shard_map)


def test_certificate_wire_size_is_aggregate_not_concatenated():
    from repro.types import sizes

    small = sizes.shard_certificate_bytes(2)
    wide = sizes.shard_certificate_bytes(22)
    # One aggregate signature plus 2-byte member indices: widening the
    # quorum by 20 signers costs 40 bytes, not 20 signatures.
    assert wide - small == 40
    assert small > sizes.SHARD_CERT_HEADER
