"""Unit tests for replica assembly and ordered block execution."""

import pytest

from repro.config import ProtocolConfig
from repro.crypto import GENESIS_QC
from repro.kvstore import KVStore
from repro.metrics import MetricsHub
from repro.replica import Replica
from repro.sim import Network, RngRegistry, Simulator, lan_topology
from repro.types import MicroBlock, make_microblock_id
from repro.types.proposal import Block, Payload, PayloadEntry, Proposal


def make_replica(attach_executor=True):
    config = ProtocolConfig(n=4)
    sim = Simulator()
    rng = RngRegistry(1)
    network = Network(sim, lan_topology(4), rng)
    metrics = MetricsHub(sim)
    replica = Replica(0, config, sim, network, rng.stream("r0"), metrics)
    if attach_executor:
        replica.executor = KVStore()
    return replica


def full_block(height):
    mb = MicroBlock(
        id=make_microblock_id(0, height), origin=0, tx_count=4,
        tx_payload=128, created_at=0.0, sum_arrival=0.0,
    )
    proposal = Proposal(
        block_id=height, view=height, height=height, proposer=0,
        parent_id=height - 1, justify=GENESIS_QC,
        payload=Payload(entries=(PayloadEntry(mb_id=mb.id),)),
    )
    return Block(proposal=proposal, microblocks={mb.id: mb})


def test_blocks_execute_in_height_order():
    replica = make_replica()
    replica.on_block_executed(full_block(2))  # filled out of order
    assert replica.executor.applied_block_ids == []
    replica.on_block_executed(full_block(1))
    assert replica.executor.applied_block_ids == [1, 2]
    replica.on_block_executed(full_block(3))
    assert replica.executor.applied_block_ids == [1, 2, 3]


def test_execution_skipped_without_executor():
    replica = make_replica(attach_executor=False)
    replica.on_block_executed(full_block(1))  # must not raise


def test_start_requires_attach():
    replica = make_replica()
    with pytest.raises(RuntimeError):
        replica.start()


def test_is_byzantine_reflects_config():
    config = ProtocolConfig(n=4, byzantine=frozenset({3}))
    sim = Simulator()
    rng = RngRegistry(1)
    network = Network(sim, lan_topology(4), rng)
    metrics = MetricsHub(sim)
    honest = Replica(0, config, sim, network, rng.stream("r0"), metrics)
    byzantine = Replica(3, config, sim, network, rng.stream("r3"), metrics)
    assert not honest.is_byzantine
    assert byzantine.is_byzantine


def test_trace_noop_without_tracer():
    replica = make_replica()
    replica.trace("anything", detail=1)  # must not raise
