"""White-box tests for Streamlet's notarization and finalization rules."""

from repro.crypto import GENESIS_QC, vote_signature
from repro.types.proposal import Payload, Proposal, make_block_id

from tests.helpers import make_cluster


def frozen_streamlet(n=4):
    exp = make_cluster(
        n=n, consensus="streamlet",
        protocol_overrides={"streamlet_epoch": 100.0},  # epochs frozen
    )
    return exp


def make_proposal(block_id, epoch, height, parent_id, proposer=0):
    return Proposal(
        block_id=block_id, view=epoch, height=height, proposer=proposer,
        parent_id=parent_id, justify=GENESIS_QC, payload=Payload(),
    )


def notarize(engine, proposal, n=4):
    engine._handle_proposal(proposal)
    for signer in range(n):
        engine._handle_vote(
            proposal.block_id,
            vote_signature(signer, proposal.block_id, proposal.view),
        )


def test_notarization_at_quorum():
    exp = frozen_streamlet()
    engine = exp.replicas[3].consensus
    proposal = make_proposal(make_block_id(0, 1), 1, 1, 0)
    engine._handle_proposal(proposal)
    for signer in range(2):
        engine._handle_vote(
            proposal.block_id,
            vote_signature(signer, proposal.block_id, 1),
        )
    assert proposal.block_id not in engine.notarized  # only 2 of 3 needed
    engine._handle_vote(
        proposal.block_id, vote_signature(2, proposal.block_id, 1),
    )
    assert proposal.block_id in engine.notarized


def test_three_consecutive_epochs_finalize_middle():
    # Start at epoch 2 so genesis (epoch 0) is not epoch-adjacent.
    exp = frozen_streamlet()
    engine = exp.replicas[3].consensus
    b1 = make_proposal(make_block_id(0, 1), 2, 1, 0)
    b2 = make_proposal(make_block_id(1, 1), 3, 2, b1.block_id)
    b3 = make_proposal(make_block_id(2, 1), 4, 3, b2.block_id)
    notarize(engine, b1)
    notarize(engine, b2)
    assert b1.block_id not in engine.finalized
    notarize(engine, b3)
    assert b1.block_id in engine.finalized
    assert b2.block_id in engine.finalized
    assert b3.block_id not in engine.finalized  # only the prefix commits


def test_genesis_counts_as_epoch_zero():
    """Blocks at epochs 1 and 2 finalize epoch 1 (0-1-2 is a 3-chain)."""
    exp = frozen_streamlet()
    engine = exp.replicas[3].consensus
    b1 = make_proposal(make_block_id(0, 1), 1, 1, 0)
    b2 = make_proposal(make_block_id(1, 1), 2, 2, b1.block_id)
    notarize(engine, b1)
    notarize(engine, b2)
    assert b1.block_id in engine.finalized


def test_epoch_gap_blocks_finalization():
    exp = frozen_streamlet()
    engine = exp.replicas[3].consensus
    b1 = make_proposal(make_block_id(0, 1), 2, 1, 0)
    b2 = make_proposal(make_block_id(1, 1), 3, 2, b1.block_id)
    b4 = make_proposal(make_block_id(2, 1), 5, 3, b2.block_id)  # gap: 4
    notarize(engine, b1)
    notarize(engine, b2)
    notarize(engine, b4)
    assert engine.finalized == {0}  # nothing finalizes across the gap


def test_forged_votes_ignored():
    from repro.crypto import Signature

    exp = frozen_streamlet()
    engine = exp.replicas[3].consensus
    proposal = make_proposal(make_block_id(0, 1), 1, 1, 0)
    engine._handle_proposal(proposal)
    for signer in range(3):
        forged = Signature(signer=signer, digest=0, forged=True)
        engine._handle_vote(proposal.block_id, forged)
    assert proposal.block_id not in engine.notarized


def test_longest_notarized_tip_selection():
    exp = frozen_streamlet()
    engine = exp.replicas[3].consensus
    b1 = make_proposal(make_block_id(0, 1), 1, 1, 0)
    b2 = make_proposal(make_block_id(1, 1), 2, 2, b1.block_id)
    short_fork = make_proposal(make_block_id(2, 1), 3, 1, 0)
    notarize(engine, b1)
    notarize(engine, b2)
    notarize(engine, short_fork)
    tip = engine._longest_notarized_tip()
    assert tip.block_id == b2.block_id  # height 2 beats height 1


def test_vote_requires_extending_longest_chain():
    exp = frozen_streamlet()
    engine = exp.replicas[3].consensus
    engine.epoch = 5
    b1 = make_proposal(make_block_id(0, 1), 1, 1, 0)
    b2 = make_proposal(make_block_id(1, 1), 2, 2, b1.block_id)
    notarize(engine, b1)
    notarize(engine, b2)
    prepared = []
    engine.mempool.prepare = lambda p, cb: prepared.append(p)
    # A proposal extending the shorter (genesis) chain must not get a vote.
    leader = engine.leader_of(5)
    stale = make_proposal(make_block_id(3, 9), 5, 1, 0, proposer=leader)
    engine._handle_proposal(stale)
    assert prepared == []
    # One extending the longest notarized chain does.
    good = make_proposal(
        make_block_id(3, 10), 5, 3, b2.block_id, proposer=leader)
    engine._handle_proposal(good)
    assert prepared == [good]
