"""Unit tests for the invariant oracles.

The oracles are exercised two ways: synthetically, by feeding
hand-crafted commit observations through a suite bound to a stub
experiment (no simulator needed), and end-to-end, by arming the standard
suite on a healthy cluster and asserting silence.
"""

from types import SimpleNamespace

from repro.crypto.certificates import GENESIS_QC
from repro.types.proposal import Payload, PayloadEntry, Proposal
from repro.verification.oracles import (
    LedgerOracle,
    OracleSuite,
    SafetyOracle,
    honest_ids,
    standard_suite,
)

from tests.helpers import make_cluster


def stub_suite(oracle, honest=(0, 1, 2, 3), emitted_tx=10_000):
    """Bind ``oracle`` to a suite over a stub experiment."""
    suite = OracleSuite([oracle])
    suite.experiment = SimpleNamespace(
        sim=SimpleNamespace(now=1.0),
        generator=SimpleNamespace(emitted_tx_count=emitted_tx),
    )
    suite._honest = frozenset(honest)
    oracle.bind(suite)
    oracle.on_attach()
    return suite


def replica(node_id):
    return SimpleNamespace(node_id=node_id)


def proposal(block_id, height, parent_id=0, proposer=0, mb_ids=(),
             created_at=0.0):
    return Proposal(
        block_id=block_id, view=height, height=height, proposer=proposer,
        parent_id=parent_id, justify=GENESIS_QC,
        payload=Payload(
            entries=tuple(PayloadEntry(mb_id=m) for m in mb_ids)
        ),
        created_at=created_at,
    )


def kinds(suite):
    return [violation.kind for violation in suite.violations]


# -- safety ----------------------------------------------------------------


def test_safety_silent_on_consistent_chain():
    suite = stub_suite(SafetyOracle())
    for node in range(2):
        suite.on_local_commit(replica(node), proposal(10, 1))
        suite.on_local_commit(replica(node), proposal(11, 2, parent_id=10))
    assert suite.violations == []


def test_safety_flags_global_fork():
    suite = stub_suite(SafetyOracle())
    suite.on_local_commit(replica(0), proposal(10, 1))
    suite.on_local_commit(replica(1), proposal(20, 1))
    assert "fork" in kinds(suite)


def test_safety_flags_local_fork_once():
    suite = stub_suite(SafetyOracle())
    suite.on_local_commit(replica(0), proposal(10, 1))
    suite.on_local_commit(replica(0), proposal(20, 1))
    suite.on_local_commit(replica(0), proposal(10, 1))
    assert kinds(suite).count("local-fork") == 1


def test_safety_flags_broken_prefix():
    suite = stub_suite(SafetyOracle())
    suite.on_local_commit(replica(0), proposal(10, 1))
    suite.on_local_commit(replica(0), proposal(11, 2, parent_id=99))
    assert "broken-prefix" in kinds(suite)


def test_safety_skips_parent_checks_for_pbft_slots():
    """parent_id == 0 (PBFT) commits out of order without complaints."""
    suite = stub_suite(SafetyOracle())
    suite.on_local_commit(replica(0), proposal(12, 3))
    suite.on_local_commit(replica(0), proposal(10, 1))
    suite.on_local_commit(replica(0), proposal(11, 2))
    assert suite.violations == []


def test_safety_ignores_byzantine_observations():
    suite = stub_suite(SafetyOracle(), honest=(0, 1, 2))
    suite.on_local_commit(replica(0), proposal(10, 1))
    suite.on_local_commit(replica(3), proposal(20, 1))  # byzantine: ignored
    assert suite.violations == []


# -- ledger ----------------------------------------------------------------


def microblock(mb_id, tx_count=4, origin=0):
    return SimpleNamespace(id=mb_id, tx_count=tx_count, origin=origin)


def test_ledger_flags_fabricated_id():
    suite = stub_suite(LedgerOracle())
    suite.on_local_commit(replica(0), proposal(10, 1, mb_ids=(777,)))
    assert kinds(suite) == ["fabricated"]


def test_ledger_accepts_honest_replay_after_partition():
    """A re-proposal by a leader that never saw the first commit is NOT
    a duplicate (partition races are legitimate)."""
    suite = stub_suite(LedgerOracle())
    suite.on_microblock_created(replica(0), microblock(5))
    suite.on_local_commit(replica(1), proposal(10, 1, mb_ids=(5,)))
    # Proposer 2 never committed mb 5 locally; re-commit is tolerated.
    suite.on_local_commit(
        replica(1),
        proposal(20, 2, proposer=2, mb_ids=(5,), created_at=0.5),
    )
    assert suite.violations == []


def test_ledger_flags_knowing_replay():
    suite = stub_suite(LedgerOracle())
    suite.on_microblock_created(replica(0), microblock(5))
    # Proposer 2 itself commits mb 5 at t=1.0 ...
    suite.on_local_commit(replica(2), proposal(10, 1, mb_ids=(5,)))
    # ... then builds a later proposal (created_at=2.0) repeating it.
    suite.on_local_commit(
        replica(0),
        proposal(20, 2, proposer=2, mb_ids=(5,), created_at=2.0),
    )
    assert "duplicate" in kinds(suite)


def test_ledger_conservation_counts_unique_microblocks():
    """A fork-race double commit counts tx once; only fabrication-style
    over-commit trips conservation."""
    oracle = LedgerOracle()
    suite = stub_suite(oracle, emitted_tx=4)
    suite.on_microblock_created(replica(0), microblock(5, tx_count=4))
    suite.on_local_commit(replica(0), proposal(10, 1, mb_ids=(5,)))
    suite.on_local_commit(
        replica(1), proposal(20, 1, proposer=3, mb_ids=(5,), created_at=0.5)
    )
    oracle.finalize()
    assert suite.violations == []
    assert oracle._committed_tx == 4


def test_honest_ids_excludes_configured_byzantine():
    exp = make_cluster(n=4, mempool="simple", fault="silent", fault_count=1)
    honest = honest_ids(exp.config)
    assert len(honest) == 3
    assert honest == frozenset(range(4)) - exp.config.byzantine_ids


# -- end to end ------------------------------------------------------------


def test_standard_suite_silent_on_healthy_cluster():
    # Generator-driven load: the conservation check compares committed
    # tx against the generator's emitted count, so `inject` won't do.
    exp = make_cluster(n=4, mempool="stratus", rate_tps=400.0)
    suite = standard_suite().attach(exp)
    for replica_obj in exp.replicas:
        assert replica_obj.observer is suite
    exp.sim.run_until(3.0)
    violations = suite.finalize()
    assert violations == []
    assert exp.metrics.committed_tx_total > 0
