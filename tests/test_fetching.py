"""Unit tests for the fetch manager and its target providers."""

import random

from repro.config import ProtocolConfig
from repro.mempool.base import MessageKinds
from repro.mempool.fetching import (
    FetchManager,
    backoff_delay,
    sampled_signers,
    single_target,
)
from repro.mempool.store import MicroBlockStore
from repro.replica.behavior import HonestBehavior, SilentReplica
from repro.sim import Network, RngRegistry, Simulator
from repro.sim.topology import Topology
from repro.types import MicroBlock, make_microblock_id


class FakeHost:
    def __init__(self, node_id, sim, network):
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.behavior = HonestBehavior()
        self.rng = random.Random(1)
        self.metrics = _FakeMetrics()

    def trace(self, kind, **details):
        pass


class _FakeMetrics:
    def __init__(self):
        self.fetches = 0
        self.abandoned = 0

    def record_fetch(self):
        self.fetches += 1

    def record_fetch_abandoned(self):
        self.abandoned += 1


def make_env(n=4):
    sim = Simulator()
    topo = Topology(n, one_way_delay=0.01, bandwidth_bps=1e9)
    net = Network(sim, topo, RngRegistry(3))
    inboxes = {i: [] for i in range(n)}
    hosts = []
    for i in range(n):
        # register later per host; placeholder handlers that log
        pass
    for i in range(n):
        net.register(i, lambda env, i=i: inboxes[i].append(env))
    host = FakeHost(0, sim, net)
    return sim, net, inboxes, host


def make_mb(counter=0):
    return MicroBlock(
        id=make_microblock_id(1, counter), origin=1, tx_count=4,
        tx_payload=128, created_at=0.0, sum_arrival=0.0,
    )


def test_request_sends_and_retries_on_timeout():
    sim, net, inboxes, host = make_env()
    config = ProtocolConfig(n=4, fetch_timeout=0.1)
    store = MicroBlockStore()
    manager = FetchManager(host, config, store)
    mb = make_mb()
    manager.request(mb.id, single_target(2))
    sim.run_until(0.35)
    requests = [env for env in inboxes[2]
                if env.kind == MessageKinds.FETCH_REQUEST]
    assert len(requests) >= 3  # initial round + two retries
    assert host.metrics.fetches >= 3


def test_delivery_cancels_retries():
    sim, net, inboxes, host = make_env()
    config = ProtocolConfig(n=4, fetch_timeout=0.1)
    store = MicroBlockStore()
    manager = FetchManager(host, config, store)
    mb = make_mb()
    manager.request(mb.id, single_target(2))
    sim.run_until(0.05)
    store.add(mb)
    count_at_delivery = host.metrics.fetches
    sim.run_until(1.0)
    assert host.metrics.fetches == count_at_delivery
    assert manager.outstanding == 0


def test_request_is_idempotent():
    sim, net, inboxes, host = make_env()
    config = ProtocolConfig(n=4, fetch_timeout=10.0)
    manager = FetchManager(host, config, MicroBlockStore())
    mb = make_mb()
    manager.request(mb.id, single_target(2))
    manager.request(mb.id, single_target(3))
    sim.run_until(0.1)
    assert host.metrics.fetches == 1  # second request ignored


def test_request_skipped_when_already_stored():
    sim, net, inboxes, host = make_env()
    config = ProtocolConfig(n=4)
    store = MicroBlockStore()
    mb = make_mb()
    store.add(mb)
    manager = FetchManager(host, config, store)
    manager.request(mb.id, single_target(2))
    assert manager.outstanding == 0


def test_delayed_request_skips_if_body_arrives_in_grace():
    sim, net, inboxes, host = make_env()
    config = ProtocolConfig(n=4, fetch_timeout=0.5)
    store = MicroBlockStore()
    manager = FetchManager(host, config, store)
    mb = make_mb()
    manager.request(mb.id, single_target(2), delay=0.2)
    sim.run_until(0.1)
    store.add(mb)  # body arrives before the grace period expires
    sim.run_until(1.0)
    assert host.metrics.fetches == 0


def test_delayed_request_fires_after_grace():
    sim, net, inboxes, host = make_env()
    config = ProtocolConfig(n=4, fetch_timeout=0.5)
    manager = FetchManager(host, config, MicroBlockStore())
    mb = make_mb()
    manager.request(mb.id, single_target(2), delay=0.2)
    sim.run_until(0.1)
    assert host.metrics.fetches == 0
    sim.run_until(0.3)
    assert host.metrics.fetches == 1


def test_handle_request_serves_stored_body():
    sim, net, inboxes, host = make_env()
    config = ProtocolConfig(n=4)
    store = MicroBlockStore()
    mb = make_mb()
    store.add(mb)
    manager = FetchManager(host, config, store)
    manager.handle_request(3, mb.id)
    sim.run()
    bodies = [env for env in inboxes[3]
              if env.kind == MessageKinds.MICROBLOCK_FETCH]
    assert len(bodies) == 1
    assert bodies[0].payload is mb


def test_handle_request_ignores_unknown_and_byzantine():
    sim, net, inboxes, host = make_env()
    config = ProtocolConfig(n=4)
    store = MicroBlockStore()
    manager = FetchManager(host, config, store)
    manager.handle_request(3, make_mb().id)  # unknown id
    host.behavior = SilentReplica()
    mb = make_mb()
    store.add(mb)
    manager.handle_request(3, mb.id)  # Byzantine: refuses to serve
    sim.run()
    assert inboxes[3] == []


class TestTargetProviders:
    def test_single_target_constant(self):
        provider = single_target(5)
        assert provider(set()) == [5]
        assert provider({5}) == [5]

    def test_sampled_signers_excludes_self_and_requested(self):
        config = ProtocolConfig(n=10, fetch_sample_fraction=1.0)
        provider = sampled_signers(
            config, random.Random(1), signers=(0, 1, 2, 3), own_id=0)
        targets = provider({1})
        assert 0 not in targets
        assert 1 not in targets
        assert set(targets) <= {2, 3}

    def test_sampled_signers_always_picks_at_least_one(self):
        config = ProtocolConfig(n=10, fetch_sample_fraction=0.0001)
        provider = sampled_signers(
            config, random.Random(1), signers=(1, 2, 3), own_id=0)
        for _ in range(20):
            assert len(provider(set())) >= 1

    def test_sampled_signers_respects_max_targets(self):
        config = ProtocolConfig(
            n=40, fetch_sample_fraction=1.0, fetch_max_targets=3)
        provider = sampled_signers(
            config, random.Random(1), signers=tuple(range(1, 30)), own_id=0)
        assert len(provider(set())) <= 3

    def test_sampled_signers_empty_when_exhausted(self):
        config = ProtocolConfig(n=10)
        provider = sampled_signers(
            config, random.Random(1), signers=(1, 2), own_id=0)
        assert provider({1, 2}) == []


class TestBackoff:
    def test_delays_grow_exponentially_to_cap(self):
        config = ProtocolConfig(
            n=4, fetch_timeout=0.1, fetch_backoff_factor=2.0,
            fetch_backoff_max=0.4, fetch_jitter=0.0,
        )
        rng = random.Random(1)
        delays = [backoff_delay(config, rounds, rng) for rounds in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.4, 0.4]  # capped at fetch_backoff_max

    def test_jitter_stays_within_bounds(self):
        config = ProtocolConfig(n=4, fetch_timeout=0.1, fetch_jitter=0.2)
        rng = random.Random(7)
        for _ in range(50):
            delay = backoff_delay(config, 1, rng)
            assert 0.08 <= delay <= 0.12

    def test_abandoned_after_max_rounds(self):
        sim, net, inboxes, host = make_env()
        config = ProtocolConfig(
            n=4, fetch_timeout=0.05, fetch_jitter=0.0, fetch_max_rounds=3,
        )
        manager = FetchManager(host, config, MicroBlockStore())
        manager.request(make_mb().id, single_target(2))
        sim.run_until(5.0)
        assert host.metrics.fetches == 3  # rounds 1..3, then give up
        assert host.metrics.abandoned == 1
        assert manager.outstanding == 0

    def test_zero_max_rounds_retries_forever(self):
        sim, net, inboxes, host = make_env()
        config = ProtocolConfig(
            n=4, fetch_timeout=0.05, fetch_jitter=0.0, fetch_max_rounds=0,
            fetch_backoff_factor=1.0,
        )
        manager = FetchManager(host, config, MicroBlockStore())
        manager.request(make_mb().id, single_target(2))
        sim.run_until(5.0)
        assert host.metrics.abandoned == 0
        assert manager.outstanding == 1
        assert host.metrics.fetches > 50

    def test_cancel_stops_retries(self):
        sim, net, inboxes, host = make_env()
        config = ProtocolConfig(n=4, fetch_timeout=0.1, fetch_jitter=0.0)
        manager = FetchManager(host, config, MicroBlockStore())
        mb = make_mb()
        manager.request(mb.id, single_target(2))
        sim.run_until(0.05)
        manager.cancel(mb.id)
        fetched = host.metrics.fetches
        sim.run_until(2.0)
        assert host.metrics.fetches == fetched
        assert manager.outstanding == 0
        assert host.metrics.abandoned == 0
