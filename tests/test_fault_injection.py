"""Failure injection: message loss and temporary isolation.

The simulator's drop filter models lossy delivery; these tests check
that the protocols' retry machinery (PAB fetch rounds, chain sync,
view-changes) restores progress.
"""

import random

from repro.mempool.base import MessageKinds
from repro.sim.network import Channel

from tests.helpers import inject, make_cluster


def test_stratus_survives_random_data_loss():
    """10% loss on data-channel messages: PAB recovery fills the gaps."""
    exp = make_cluster(
        n=7, mempool="stratus", rate_tps=300, duration=6.0,
        protocol_overrides={"fetch_timeout": 0.2},
    )
    rng = random.Random(99)
    exp.network.set_drop_filter(
        lambda env: env.channel is Channel.DATA and rng.random() < 0.10
    )
    exp.sim.run_until(8.0)
    assert exp.metrics.committed_tx_total > 0
    # Most offered transactions still commit despite the loss.
    assert exp.metrics.committed_tx_total > 0.8 * exp.generator.emitted_tx_count


def test_lost_microblock_body_recovered_by_fetch_rounds():
    """Drop replica 2's copy of one body; the proof-driven fetch gets it."""
    exp = make_cluster(
        n=4, mempool="stratus",
        protocol_overrides={"fetch_timeout": 0.2},
    )
    dropped = {"count": 0}

    def drop_first_body_to_2(env):
        if (
            env.kind == MessageKinds.MICROBLOCK
            and env.dst == 2
            and dropped["count"] == 0
        ):
            dropped["count"] += 1
            return True
        return False

    exp.network.set_drop_filter(drop_first_body_to_2)
    inject(exp, 0, count=4)
    exp.sim.run_until(5.0)
    assert dropped["count"] == 1
    mb_id = exp.replicas[0].mempool.store.ids[0]
    assert mb_id in exp.replicas[2].mempool.store
    assert exp.metrics.fetch_count > 0


def test_lost_proposal_recovered_by_chain_sync():
    """Drop every proposal to replica 3 for a while; sync catches it up."""
    exp = make_cluster(
        n=4, mempool="stratus", rate_tps=300, duration=8.0,
        protocol_overrides={"view_timeout": 0.5},
    )

    def drop_proposals_to_3(env):
        return (
            env.kind == MessageKinds.PROPOSAL
            and env.dst == 3
            and exp.sim.now < 2.0
        )

    exp.network.set_drop_filter(drop_proposals_to_3)
    exp.sim.run_until(8.0)
    lagging = exp.replicas[3].consensus
    leading = exp.replicas[0].consensus
    # Replica 3 rejoined the chain and committed blocks from the gap era.
    assert lagging.committed_height > 0.8 * leading.committed_height
    assert exp.metrics.committed_tx_total > 0


def test_vote_loss_triggers_view_change_but_liveness_holds():
    """Drop all votes for a window: views time out, then progress resumes."""
    exp = make_cluster(
        n=4, mempool="stratus", rate_tps=300, duration=8.0,
        protocol_overrides={"view_timeout": 0.4},
    )

    def drop_votes(env):
        return env.kind == MessageKinds.VOTE and 1.0 < exp.sim.now < 2.5

    exp.network.set_drop_filter(drop_votes)
    exp.sim.run_until(8.0)
    assert exp.metrics.view_change_count > 0
    assert exp.metrics.committed_tx_total > 0.8 * exp.generator.emitted_tx_count


def test_ack_loss_delays_but_does_not_block_stability():
    """Half the acks lost: quorums still form from the other replicas."""
    exp = make_cluster(n=7, mempool="stratus")
    rng = random.Random(5)
    exp.network.set_drop_filter(
        lambda env: env.kind == MessageKinds.ACK and rng.random() < 0.5
    )
    inject(exp, 0, count=4)
    exp.sim.run_until(4.0)
    assert exp.metrics.committed_tx_total == 4
