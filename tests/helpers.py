"""Shared test fixtures: a minimal replica harness for component tests.

``make_cluster`` builds a real simulator + network + replicas with the
requested mempool/consensus, small enough for unit-style protocol tests
but using the production wiring from the harness.
"""

from __future__ import annotations

from repro.config import ProtocolConfig
from repro.harness import ExperimentConfig, build_experiment
from repro.types import TxBatch


def make_cluster(
    n=4,
    mempool="stratus",
    consensus="hotstuff",
    topology="lan",
    rate_tps=0.0,
    duration=5.0,
    warmup=0.0,
    seed=1,
    fault="none",
    fault_count=0,
    selector="uniform",
    attach_executor=False,
    protocol_overrides=None,
    **experiment_overrides,
):
    """Build a running experiment with zero default client load.

    Tests inject traffic explicitly via ``inject`` or rely on the
    generator by passing ``rate_tps``.
    """
    overrides = dict(protocol_overrides or {})
    overrides.setdefault("mempool", mempool)
    overrides.setdefault("consensus", consensus)
    overrides.setdefault("batch_bytes", 4 * 128)  # 4 txs per microblock
    overrides.setdefault("batch_timeout", 0.05)
    overrides.setdefault("empty_view_delay", 0.002)
    protocol = ProtocolConfig(n=n, **overrides)
    config = ExperimentConfig(
        protocol=protocol,
        topology_kind=topology,
        rate_tps=rate_tps,
        duration=duration,
        warmup=warmup,
        seed=seed,
        fault=fault,
        fault_count=fault_count,
        selector=selector,
        attach_executor=attach_executor,
        **experiment_overrides,
    )
    return build_experiment(config)


def inject(experiment, replica_id, count=4, payload=128):
    """Hand one client batch to a replica at the current sim time."""
    replica = experiment.replicas[replica_id]
    batch = TxBatch(
        count=count, payload_bytes=payload,
        mean_arrival=experiment.sim.now,
    )
    replica.on_client_batch(batch)
    return batch
