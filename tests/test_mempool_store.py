"""Unit tests for the microblock store."""

from repro.mempool.store import MicroBlockStore
from repro.types import MicroBlock, make_microblock_id


def make_mb(origin=0, counter=0, tx_count=4):
    return MicroBlock(
        id=make_microblock_id(origin, counter), origin=origin,
        tx_count=tx_count, tx_payload=128, created_at=0.0,
        sum_arrival=0.0,
    )


def test_add_and_get():
    store = MicroBlockStore()
    mb = make_mb()
    assert store.add(mb)
    assert mb.id in store
    assert store.get(mb.id) is mb
    assert len(store) == 1


def test_duplicate_add_returns_false():
    store = MicroBlockStore()
    mb = make_mb()
    assert store.add(mb)
    assert not store.add(mb)
    assert len(store) == 1


def test_waiter_fires_on_delivery():
    store = MicroBlockStore()
    mb = make_mb()
    seen = []
    store.on_delivery(mb.id, seen.append)
    assert seen == []
    store.add(mb)
    assert seen == [mb]


def test_waiter_fires_immediately_if_present():
    store = MicroBlockStore()
    mb = make_mb()
    store.add(mb)
    seen = []
    store.on_delivery(mb.id, seen.append)
    assert seen == [mb]


def test_multiple_waiters_all_fire():
    store = MicroBlockStore()
    mb = make_mb()
    seen = []
    for _ in range(3):
        store.on_delivery(mb.id, seen.append)
    store.add(mb)
    assert seen == [mb, mb, mb]


def test_waiters_fire_once():
    store = MicroBlockStore()
    mb = make_mb()
    seen = []
    store.on_delivery(mb.id, seen.append)
    store.add(mb)
    store.discard(mb.id)
    store.add(mb)
    assert seen == [mb]


def test_discard():
    store = MicroBlockStore()
    mb = make_mb()
    store.add(mb)
    store.discard(mb.id)
    assert mb.id not in store
    store.discard(mb.id)  # idempotent


def test_ids_listing():
    store = MicroBlockStore()
    blocks = [make_mb(counter=i) for i in range(3)]
    for mb in blocks:
        store.add(mb)
    assert sorted(store.ids) == sorted(mb.id for mb in blocks)
