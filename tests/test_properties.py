"""Property-based tests (hypothesis) on core data structures and invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ProtocolConfig
from repro.crypto import (
    make_availability_proof,
    sign,
    verify_availability_proof,
)
from repro.metrics import WeightedDigest
from repro.mempool.batching import MicroBlockBatcher
from repro.mempool.stratus.estimator import StableTimeEstimator
from repro.sim.engine import Simulator
from repro.sim.network import TokenBucket
from repro.types import TxBatch
from repro.workload import ZipfSelector, zipf_weights


# -- weighted digest -----------------------------------------------------

samples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=1e-3, max_value=1e3,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1, max_size=200,
)


@given(samples)
def test_digest_percentiles_within_range(data):
    digest = WeightedDigest()
    digest.extend(data)
    values = [value for value, _ in data]
    for p in (0, 25, 50, 75, 95, 100):
        assert min(values) <= digest.percentile(p) <= max(values)


@given(samples)
def test_digest_mean_within_range(data):
    digest = WeightedDigest()
    digest.extend(data)
    assert min(v for v, _ in data) - 1e-9 <= digest.mean
    assert digest.mean <= max(v for v, _ in data) + 1e-9


@given(samples)
def test_digest_percentiles_monotone(data):
    digest = WeightedDigest()
    digest.extend(data)
    points = [digest.percentile(p) for p in range(0, 101, 10)]
    assert all(a <= b for a, b in zip(points, points[1:]))


# -- simulation engine -----------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=100))
def test_engine_executes_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# -- availability proofs -----------------------------------------------

@given(
    n=st.integers(min_value=4, max_value=200),
    data=st.data(),
)
def test_proof_roundtrip_iff_quorum(n, data):
    f = (n - 1) // 3
    quorum = data.draw(st.integers(min_value=f + 1, max_value=2 * f + 1))
    signer_count = data.draw(st.integers(min_value=0, max_value=n))
    signers = data.draw(st.permutations(range(n))) [:signer_count]
    acks = [sign(s, 7) for s in signers]
    if len(set(signers)) >= quorum:
        proof = make_availability_proof(7, acks, quorum, n)
        assert verify_availability_proof(proof, 7, quorum, n)
        # At most f Byzantine replicas: a quorum of f+1 must contain a
        # correct one, i.e. the signer set cannot fit inside any f-subset.
        assert len(set(proof.signers)) > f or quorum <= f
    else:
        try:
            make_availability_proof(7, acks, quorum, n)
            assert False, "proof formed without a quorum"
        except ValueError:
            pass


# -- batching conservation ------------------------------------------------

batches = st.lists(
    st.tuples(st.integers(min_value=1, max_value=50),
              st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
    min_size=1, max_size=50,
)


class _Host:
    def __init__(self):
        self.node_id = 0
        self.sim = Simulator()

    def notify_microblock(self, microblock):
        pass  # observer tap; no oracle suite in these tests


@given(batches)
@settings(max_examples=50)
def test_batcher_conserves_transactions(batch_specs):
    host = _Host()
    config = ProtocolConfig(n=4, batch_bytes=8 * 128, tx_payload=128,
                            batch_timeout=0.01)
    emitted = []
    batcher = MicroBlockBatcher(host, config, emitted.append)
    total = 0
    for count, when in batch_specs:
        total += count
        batcher.add(TxBatch(count=count, payload_bytes=128,
                            mean_arrival=when))
    host.sim.run_until(1.0)  # fire the flush timer
    assert sum(mb.tx_count for mb in emitted) == total
    assert all(mb.tx_count <= 8 for mb in emitted)
    ids = [mb.id for mb in emitted]
    assert len(set(ids)) == len(ids)


# -- estimator ---------------------------------------------------------

@given(st.lists(st.floats(min_value=0.001, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=300))
def test_estimator_estimate_within_window_range(values):
    estimator = StableTimeEstimator(window=50)
    for value in values:
        estimator.record(value)
    window = values[-50:]
    estimate = estimator.estimate()
    assert min(window) <= estimate <= max(window)
    # The baseline floor stays between the all-time minimum and the
    # largest sample (it drifts up at most 1% per record).
    assert min(values) <= estimator.baseline <= max(values) + 1e-12


@given(st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
       st.integers(min_value=6, max_value=100))
def test_estimator_constant_load_never_busy(value, count):
    estimator = StableTimeEstimator(window=50)
    for _ in range(count):
        estimator.record(value)
    assert not estimator.is_busy()


# -- token bucket ----------------------------------------------------------

@given(
    rate=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    burst=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e5,
                             allow_nan=False), min_size=1, max_size=30),
)
def test_token_bucket_never_ready_in_the_past(rate, burst, sizes):
    bucket = TokenBucket(rate, burst)
    now = 0.0
    for size in sizes:
        ready = bucket.ready_at(now, size)
        assert ready >= now
        now = ready
        bucket.consume(now, size)


# -- zipf ------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=500),
       st.floats(min_value=1.001, max_value=4.0, allow_nan=False),
       st.floats(min_value=1.0, max_value=50.0, allow_nan=False))
def test_zipf_shares_valid_distribution(n, s, v):
    selector = ZipfSelector(n, s=s, v=v)
    shares = selector.shares()
    assert abs(sum(shares) - 1.0) < 1e-9
    assert all(share > 0 for share in shares)
    assert all(a >= b for a, b in zip(shares, shares[1:]))


@given(st.integers(min_value=2, max_value=300))
def test_zipf_weights_strictly_decreasing(n):
    weights = zipf_weights(n, s=1.01, v=1.0)
    assert all(a > b for a, b in zip(weights, weights[1:]))


# -- network delivery conservation ---------------------------------------

@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=3),
                  st.integers(min_value=1, max_value=100_000)),
        min_size=1, max_size=60,
    )
)
@settings(max_examples=40)
def test_network_delivers_every_sent_message_exactly_once(sends):
    from repro.sim import Network, RngRegistry, Simulator
    from repro.sim.topology import Topology

    sim = Simulator()
    topo = Topology(4, one_way_delay=0.01, bandwidth_bps=1e8)
    net = Network(sim, topo, RngRegistry(1))
    received = []
    for node in range(4):
        net.register(node, lambda env: received.append(env))
    for src, dst, size in sends:
        net.send(src, dst, "m", size, (src, dst, size))
    sim.run()
    assert len(received) == len(sends)
    assert sorted(env.payload for env in received) == sorted(sends)


@given(
    st.lists(st.integers(min_value=1, max_value=1_000_000),
             min_size=1, max_size=30)
)
@settings(max_examples=40)
def test_uplink_serialization_total_time(sizes_bytes):
    """Back-to-back sends take exactly the sum of transmission times."""
    from repro.sim import Network, RngRegistry, Simulator
    from repro.sim.topology import Topology

    bandwidth = 8e6  # 1 byte per microsecond
    sim = Simulator()
    topo = Topology(2, one_way_delay=0.0, bandwidth_bps=bandwidth)
    net = Network(sim, topo, RngRegistry(1))
    arrivals = []
    net.register(0, lambda env: None)
    net.register(1, lambda env: arrivals.append(sim.now))
    for size in sizes_bytes:
        net.send(0, 1, "m", size, None)
    sim.run()
    expected_total = sum(size * 8 / bandwidth for size in sizes_bytes)
    assert arrivals[-1] == pytest.approx(expected_total)
    assert arrivals == sorted(arrivals)
