"""Tests for the perf benchmark harness (benchmarks/perf)."""

import json
import sys
from pathlib import Path

import pytest

PERF_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "perf"
if str(PERF_DIR) not in sys.path:
    sys.path.insert(0, str(PERF_DIR))

import run_perf  # noqa: E402
import scenarios  # noqa: E402

from repro.metrics import MetricsHub  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402


def test_standard_suite_scenarios():
    names = [scenario.name for scenario in scenarios.get_scenarios()]
    assert names == [
        "stratus-hotstuff", "simple-smp", "chaos-crash-partition",
        "disseminate-128", "stratus-wan-fair-share",
        "stratus-hotstuff-128",
    ]


def test_scenario_filter_and_unknown_name():
    picked = scenarios.get_scenarios(["simple-smp"])
    assert [scenario.name for scenario in picked] == ["simple-smp"]
    with pytest.raises(SystemExit):
        scenarios.get_scenarios(["no-such-scenario"])


def test_scenario_configs_build():
    for scenario in scenarios.get_scenarios():
        if scenario.kind == "netbench":
            continue
        config = scenario.build_config()
        assert config.protocol.n == scenario.n
        assert config.seed == scenario.seed
        assert config.label == scenario.name
    chaos = scenarios.get_scenarios(["chaos-crash-partition"])[0]
    assert chaos.build_config().faults is not None


def test_netbench_scenario_builds_and_scales():
    scenario = scenarios.get_scenarios(["disseminate-128"])[0]
    assert scenario.kind == "netbench"
    config = scenario.build_netbench()
    assert config.n == 128
    assert config.rate_per_node == scenario.rate_tps
    assert config.label == "disseminate-128"
    quick = scenario.build_netbench(scale=0.1)
    # Quick runs shrink the window but keep a floor so the storm still
    # reaches steady state.
    assert quick.duration == pytest.approx(max(0.25, scenario.duration * 0.1))


def test_quick_scale_shrinks_duration_only():
    scenario = scenarios.get_scenarios(["stratus-hotstuff"])[0]
    full = scenario.build_config()
    quick = scenario.build_config(scale=0.5)
    assert quick.duration == pytest.approx(full.duration * 0.5)
    assert quick.warmup == full.warmup


def test_commit_hash_is_deterministic_and_sensitive():
    def hub_with(commits):
        hub = MetricsHub(Simulator())
        for block_id, when, txs in commits:
            hub.record_commit(block_id, txs, 1, [], commit_time=when)
        return hub

    base = [(1, 1.0, 10), (2, 2.0, 20)]
    first = run_perf.commit_sequence_hash(hub_with(base))
    second = run_perf.commit_sequence_hash(hub_with(base))
    assert first == second
    changed = run_perf.commit_sequence_hash(hub_with([(1, 1.0, 10),
                                                      (2, 2.0, 21)]))
    assert changed != first


def test_subsystem_rollup_maps_repro_paths():
    key = ("/x/src/repro/sim/engine.py", 10, "run_until")
    assert run_perf._subsystem_of(key) == "repro.sim"
    key = ("/x/src/repro/cli.py", 1, "run_cli")
    assert run_perf._subsystem_of(key) == "repro.cli"
    assert run_perf._subsystem_of(("/usr/lib/heapq.py", 1, "heappush")) is None


def test_netbench_run_is_deterministic():
    from repro.harness import NetBenchConfig, run_netbench

    config = NetBenchConfig(n=8, rate_per_node=50.0, duration=0.3, seed=11)
    first = run_netbench(config)
    second = run_netbench(config)
    assert first.delivered > 0
    assert first.events_processed > 0
    assert first.fingerprint == second.fingerprint
    assert first.delivered == second.delivered
    # The fingerprint is sensitive to the workload, not just the seed.
    other = run_netbench(
        NetBenchConfig(n=8, rate_per_node=60.0, duration=0.3, seed=11)
    )
    assert other.fingerprint != first.fingerprint


def test_netbench_job_round_trips_through_executor():
    from repro.harness import NetBenchConfig
    from repro.parallel import netbench_job
    from repro.parallel.jobs import execute_job

    config = NetBenchConfig(n=4, rate_per_node=40.0, duration=0.3, seed=3,
                            label="nb-test")
    spec = netbench_job(config)
    assert spec.kind == "netbench"
    value = execute_job(spec.to_dict())
    bench = value["netbench"]
    assert bench["label"] == "nb-test"
    assert bench["delivered"] > 0
    assert len(bench["fingerprint"]) == 64


def test_quick_smoke_run_writes_report(tmp_path):
    """End-to-end: one tiny scenario through main() emits valid JSON."""
    out = tmp_path / "BENCH_perf.json"
    code = run_perf.main([
        "--out", str(out), "--scenario", "chaos-crash-partition", "--quick",
    ])
    assert code == 0
    report = json.loads(out.read_text())
    entry = report["scenarios"]["chaos-crash-partition"]
    assert entry["events"] > 0
    assert entry["events_per_sec"] > 0
    assert len(entry["commit_hash"]) == 64
    assert entry["peak_rss_bytes"] > 0
