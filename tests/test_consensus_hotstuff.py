"""Integration tests for chained HotStuff."""

from repro.crypto import AvailabilityProof
from repro.replica.behavior import SilentReplica
from repro.types.proposal import Payload, PayloadEntry

from tests.helpers import inject, make_cluster


def test_commits_with_native_mempool():
    exp = make_cluster(n=4, mempool="native", rate_tps=500, duration=3.0)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total > 0
    assert exp.metrics.view_change_count == 0


def test_all_replicas_agree_on_committed_chain():
    exp = make_cluster(n=4, mempool="stratus", rate_tps=500, duration=3.0)
    exp.sim.run_until(3.0)
    # Height -> block id must be identical wherever committed.
    canonical: dict[int, int] = {}
    for replica in exp.replicas:
        engine = replica.consensus
        for block_id in engine.committed:
            height = engine.proposals[block_id].height
            assert canonical.setdefault(height, block_id) == block_id


def test_commits_with_f_silent_replicas():
    exp = make_cluster(
        n=7, mempool="stratus", rate_tps=500, duration=3.0,
        fault="silent", fault_count=2,
    )
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total > 0
    assert exp.metrics.view_change_count == 0


def test_silent_leader_triggers_view_change_and_recovery():
    exp = make_cluster(
        n=4, mempool="stratus", rate_tps=500, duration=8.0,
        protocol_overrides={"view_timeout": 0.5},
    )
    # Replica 1 leads view 1; silencing it forces a timeout round.
    exp.replicas[1].behavior = SilentReplica()
    exp.sim.run_until(8.0)
    assert exp.metrics.view_change_count > 0
    assert exp.metrics.committed_tx_total > 0


def test_invalid_availability_proof_triggers_view_change():
    exp = make_cluster(n=4, mempool="stratus")
    exp.sim.run_until(0.1)
    engine = exp.replicas[2].consensus
    mempool = exp.replicas[2].mempool
    forged = AvailabilityProof(mb_id=42, signers=(0, 1), forged=True)
    payload = Payload(entries=(PayloadEntry(mb_id=42, proof=forged),))
    assert not mempool.verify_payload(payload)
    before = exp.metrics.view_change_count
    from repro.crypto import GENESIS_QC
    from repro.types.proposal import Proposal, make_block_id
    bad = Proposal(
        block_id=make_block_id(9, 999), view=engine.cur_view,
        height=1, proposer=engine.leader_of(engine.cur_view),
        parent_id=0, justify=GENESIS_QC, payload=payload,
    )
    engine._handle_proposal(bad)
    assert exp.metrics.view_change_count > before


def test_executor_states_converge():
    exp = make_cluster(
        n=4, mempool="stratus", rate_tps=500, duration=3.0,
        attach_executor=True,
    )
    exp.sim.run_until(4.0)
    digests = {replica.executor.state_digest() for replica in exp.replicas}
    applied = {replica.executor.tx_applied for replica in exp.replicas}
    assert len(digests) == 1
    assert applied.pop() > 0


def test_empty_views_advance_chain():
    exp = make_cluster(n=4, mempool="stratus")  # no load at all
    exp.sim.run_until(1.0)
    heights = [replica.consensus.committed_height for replica in exp.replicas]
    assert max(heights) > 3  # the chain keeps committing empty blocks


def test_leader_rotation_round_robin():
    exp = make_cluster(n=4, mempool="stratus")
    engine = exp.replicas[0].consensus
    leaders = [engine.leader_of(view) for view in range(1, 9)]
    assert leaders == [1, 2, 3, 0, 1, 2, 3, 0]


def test_leader_set_excludes_byzantine():
    exp = make_cluster(n=7, mempool="stratus", fault="silent", fault_count=2)
    engine = exp.replicas[0].consensus
    byzantine = exp.config.byzantine_ids
    leaders = {engine.leader_of(view) for view in range(100)}
    assert leaders.isdisjoint(byzantine)


def test_locked_view_advances():
    exp = make_cluster(n=4, mempool="stratus", rate_tps=200, duration=2.0)
    exp.sim.run_until(2.0)
    assert exp.replicas[0].consensus.locked_view > 0


def test_native_abandoned_payload_requeued():
    """Transactions in a fork lost to a view-change are re-proposed."""
    exp = make_cluster(
        n=4, mempool="native", rate_tps=0,
        protocol_overrides={"view_timeout": 0.5},
    )
    inject(exp, 0, count=8)
    # Silence the leader of the view that will propose these txs right
    # after it proposes once: simplest is to silence replica 1 for a
    # window, then restore it.
    victim = exp.replicas[1]
    honest = victim.behavior
    victim.behavior = SilentReplica()
    exp.sim.run_until(2.0)
    victim.behavior = honest
    exp.sim.run_until(10.0)
    assert exp.metrics.committed_tx_total == 8
