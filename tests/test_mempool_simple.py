"""Integration tests for the simple (best-effort) shared mempool."""

from repro.mempool.base import MessageKinds

from tests.helpers import inject, make_cluster


def mempool_of(experiment, node):
    return experiment.replicas[node].mempool


def test_microblock_broadcast_reaches_all():
    exp = make_cluster(n=4, mempool="simple")
    inject(exp, 0, count=4)
    exp.sim.run_until(1.0)
    mb_id = mempool_of(exp, 0).store.ids[0]
    for node in range(4):
        assert mb_id in mempool_of(exp, node).store


def test_end_to_end_commit():
    exp = make_cluster(n=4, mempool="simple")
    for node in range(4):
        inject(exp, node, count=4)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total == 16


def test_censoring_sender_forces_fetch_from_leader():
    """A Byzantine sender shares only with the leader; followers must
    fetch the body from the proposer before voting (Problem-I)."""
    exp = make_cluster(n=7, mempool="simple", fault="censor", fault_count=2)
    byzantine = sorted(exp.config.byzantine_ids)
    inject(exp, byzantine[0], count=4)
    exp.sim.run_until(5.0)
    assert exp.metrics.fetch_count > 0
    assert exp.metrics.committed_tx_total == 4


def test_no_proofs_in_payload():
    exp = make_cluster(n=4, mempool="simple")
    inject(exp, 0, count=4)
    exp.sim.run_until(1.0)
    committed = exp.metrics.commits
    assert committed
    # Check the payload entries carried no proofs (bandwidth accounting):
    # no PROOF traffic at all in this mempool.
    assert MessageKinds.PROOF not in exp.network.stats.messages_sent


def test_ids_not_proposed_twice():
    exp = make_cluster(n=4, mempool="simple")
    for _ in range(3):
        inject(exp, 0, count=4)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total == 12


def test_gossip_variant_disseminates_and_commits():
    exp = make_cluster(
        n=7, mempool="gossip", protocol_overrides={"gossip_fanout": 3},
    )
    inject(exp, 0, count=4)
    exp.sim.run_until(5.0)
    assert exp.metrics.committed_tx_total == 4


def test_gossip_redundancy_exceeds_direct_broadcast():
    direct = make_cluster(n=7, mempool="simple")
    inject(direct, 0, count=4)
    direct.sim.run_until(2.0)
    gossip = make_cluster(
        n=7, mempool="gossip", protocol_overrides={"gossip_fanout": 3},
    )
    inject(gossip, 0, count=4)
    gossip.sim.run_until(2.0)
    direct_bytes = direct.network.stats.kind_bytes(MessageKinds.MICROBLOCK)
    gossip_bytes = gossip.network.stats.kind_bytes(
        MessageKinds.MICROBLOCK_GOSSIP
    )
    assert gossip_bytes > 0
    # Gossip re-forwards on first receipt: more copies than one broadcast.
    assert gossip_bytes >= direct_bytes


def test_narwhal_certifies_before_proposing():
    exp = make_cluster(n=4, mempool="narwhal")
    inject(exp, 0, count=4)
    exp.sim.run_until(3.0)
    mempool = mempool_of(exp, 0)
    mb_id = mempool.store.ids[0]
    state = mempool._states[mb_id]
    assert state.certified
    assert exp.metrics.committed_tx_total == 4


def test_narwhal_quadratic_message_count():
    exp = make_cluster(n=7, mempool="narwhal")
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    stats = exp.network.stats.messages_sent
    echoes = stats.get(MessageKinds.RB_ECHO, 0)
    readies = stats.get(MessageKinds.RB_READY, 0)
    # Every replica echoes and readies to everyone: ~n*(n-1) each.
    assert echoes >= 6 * 6
    assert readies >= 6 * 6
