"""Unit/integration tests for Stratus mempool bookkeeping (Algorithm 3)."""

from repro.crypto import AvailabilityProof
from repro.types.proposal import Payload, PayloadEntry

from tests.helpers import inject, make_cluster


def stratus_of(exp, node):
    return exp.replicas[node].mempool


def freeze_consensus(exp):
    """Stop engines from proposing so tests can inspect mempool state."""
    for replica in exp.replicas:
        replica.consensus._try_propose = lambda *args, **kwargs: None


def test_payload_entries_carry_proofs():
    exp = make_cluster(n=4, mempool="stratus")
    freeze_consensus(exp)
    inject(exp, 0, count=4)
    exp.sim.run_until(0.5)
    payload = stratus_of(exp, 0).make_payload()
    assert payload.entries
    for entry in payload.entries:
        assert entry.proof is not None
        assert entry.proof.mb_id == entry.mb_id


def test_make_payload_drains_ava_queue():
    exp = make_cluster(n=4, mempool="stratus")
    freeze_consensus(exp)
    inject(exp, 0, count=4)
    exp.sim.run_until(0.5)
    mempool = stratus_of(exp, 0)
    first = mempool.make_payload()
    second = mempool.make_payload()
    assert not first.is_empty
    assert second.is_empty  # ids are not proposed twice


def test_proposal_cap_respected():
    exp = make_cluster(
        n=4, mempool="stratus",
        protocol_overrides={"proposal_max_microblocks": 2},
    )
    freeze_consensus(exp)
    for _ in range(5):
        inject(exp, 0, count=4)
    exp.sim.run_until(0.5)
    mempool = stratus_of(exp, 0)
    payload = mempool.make_payload()
    assert len(payload.entries) <= 2


def test_verify_payload_accepts_honest_and_rejects_forged():
    exp = make_cluster(n=4, mempool="stratus")
    freeze_consensus(exp)
    inject(exp, 0, count=4)
    exp.sim.run_until(0.5)
    mempool = stratus_of(exp, 1)
    honest = stratus_of(exp, 0).make_payload()
    assert mempool.verify_payload(honest)
    forged = Payload(entries=(
        PayloadEntry(
            mb_id=42,
            proof=AvailabilityProof(mb_id=42, signers=(0, 1), forged=True),
        ),
    ))
    assert not mempool.verify_payload(forged)
    missing_proof = Payload(entries=(PayloadEntry(mb_id=42),))
    assert not mempool.verify_payload(missing_proof)


def test_garbage_collect_blocks_reproposal():
    exp = make_cluster(n=4, mempool="stratus")
    freeze_consensus(exp)
    inject(exp, 0, count=4)
    exp.sim.run_until(0.5)
    mempool = stratus_of(exp, 0)
    payload = mempool.make_payload()
    from repro.crypto import GENESIS_QC
    from repro.types.proposal import Proposal, make_block_id
    proposal = Proposal(
        block_id=make_block_id(0, 500), view=9, height=9, proposer=0,
        parent_id=0, justify=GENESIS_QC, payload=payload,
    )
    # Commit hooks as base.on_commit runs them: mark_committed fires
    # synchronously at commit time, garbage_collect after resolution.
    mempool.mark_committed(proposal)
    mempool.garbage_collect(proposal)
    mempool.on_abandoned(proposal)  # even if the fork is later abandoned,
    follow_up = mempool.make_payload()
    assert follow_up.is_empty  # committed ids never re-enter avaQue


def test_abandoned_unreferenced_ids_requeue():
    exp = make_cluster(n=4, mempool="stratus")
    freeze_consensus(exp)
    inject(exp, 0, count=4)
    exp.sim.run_until(0.5)
    mempool = stratus_of(exp, 0)
    payload = mempool.make_payload()
    from repro.crypto import GENESIS_QC
    from repro.types.proposal import Proposal, make_block_id
    proposal = Proposal(
        block_id=make_block_id(0, 501), view=9, height=9, proposer=0,
        parent_id=0, justify=GENESIS_QC, payload=payload,
    )
    mempool.on_abandoned(proposal)  # fork lost without committing
    requeued = mempool.make_payload()
    assert {e.mb_id for e in requeued.entries} == {
        e.mb_id for e in payload.entries
    }


def test_remote_proof_populates_ava_queue():
    exp = make_cluster(n=4, mempool="stratus")
    inject(exp, 2, count=4)
    exp.sim.run_until(1.0)
    # Replica 0 saw only the proof broadcast, yet can propose the id.
    payload = stratus_of(exp, 0).make_payload()
    ids = [entry.mb_id for entry in payload.entries]
    assert stratus_of(exp, 2).store.ids[0] in ids or not ids
    # (if consensus already proposed it, the queue is legitimately empty —
    # then the id must be referenced)
    if not ids:
        mb_id = stratus_of(exp, 2).store.ids[0]
        assert mb_id in stratus_of(exp, 0)._referenced


def test_resolve_produces_full_block():
    exp = make_cluster(n=4, mempool="stratus")
    freeze_consensus(exp)
    inject(exp, 0, count=4)
    exp.sim.run_until(0.5)
    mempool = stratus_of(exp, 1)
    payload = stratus_of(exp, 0).make_payload()
    from repro.crypto import GENESIS_QC
    from repro.types.proposal import Proposal, make_block_id
    proposal = Proposal(
        block_id=make_block_id(0, 502), view=9, height=9, proposer=0,
        parent_id=0, justify=GENESIS_QC, payload=payload,
    )
    blocks = []
    mempool.resolve(proposal, blocks.append)
    exp.sim.run_until(3.0)
    assert len(blocks) == 1
    assert blocks[0].is_full
    assert blocks[0].tx_count == 4


def test_garbage_collection_discards_bodies_after_retention():
    exp = make_cluster(
        n=4, mempool="stratus",
        protocol_overrides={"gc_retention": 1.0},
    )
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    mempool = stratus_of(exp, 0)
    assert exp.metrics.committed_tx_total == 4
    # The committed microblock's body survives the retention window...
    exp.sim.run_until(2.5)
    # ...then is discarded everywhere along with its proof.
    exp.sim.run_until(6.0)
    for node in range(4):
        assert len(stratus_of(exp, node).store) == 0
    assert mempool._proofs == {}
    assert mempool.pab.proof_for(next(iter(mempool._committed))) is None


def test_gc_disabled_keeps_bodies():
    exp = make_cluster(
        n=4, mempool="stratus",
        protocol_overrides={"gc_retention": 0.0},
    )
    inject(exp, 0, count=4)
    exp.sim.run_until(6.0)
    assert exp.metrics.committed_tx_total == 4
    assert len(stratus_of(exp, 0).store) == 1
