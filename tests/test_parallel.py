"""Tests for the process-pool executor and its integrations.

The determinism tests are the hash gate the whole package hangs on: a
parallel run must be bit-for-bit the serial run, for fuzz sweeps,
seed-replicated points, and benchmark grid cells alike. The unit tests
exercise the executor's failure plumbing (timeout, retry, crash
isolation) through the self-test job kind, which needs no simulator.
"""

import dataclasses

import pytest

from repro.config import ProtocolConfig
from repro.harness import ExperimentConfig, run_experiment, run_replicated
from repro.parallel import (
    JobSpec,
    ParallelExecutor,
    RunSummary,
    experiment_job,
    sweep,
)
from repro.verification import MUTANTS, ScenarioFuzzer, run_scenario
from repro.verification.shrink import shrink_scenario


def small_config(**kwargs):
    kwargs.setdefault("label", "par-test")
    protocol = ProtocolConfig(n=4, batch_bytes=512)
    return ExperimentConfig(
        protocol=protocol, rate_tps=500, duration=1.0, warmup=0.5, **kwargs
    )


def selftest(action, **payload):
    payload["action"] = action
    return JobSpec(kind="selftest", payload=payload, label=action)


# Deterministic fields of a RunSummary: everything except host-side
# timing and memory, which legitimately differ run to run.
HOST_FIELDS = ("wall_clock_s", "peak_rss_bytes")


def deterministic_dict(summary: RunSummary) -> dict:
    data = summary.to_dict()
    for field in HOST_FIELDS:
        data.pop(field)
    return data


class TestExecutorUnit:
    def test_results_in_submission_order(self):
        executor = ParallelExecutor(jobs=2)
        # The first job sleeps past the second's finish; order must hold.
        specs = [
            selftest("sleep", seconds=0.5, echo="slow"),
            selftest("echo", echo="fast"),
            selftest("echo", echo="also-fast"),
        ]
        results = executor.map(specs)
        assert [job.index for job in results] == [0, 1, 2]
        assert all(job.ok for job in results)
        assert results[1].value["echo"] == "fast"

    def test_clean_exception_not_retried(self):
        executor = ParallelExecutor(jobs=2, retries=3)
        [job] = executor.map([selftest("raise", message="boom")])
        assert not job.ok
        assert "boom" in job.error
        assert job.attempts == 1  # deterministic failure: one attempt
        assert not job.crashed and not job.timed_out

    def test_crash_is_retried_then_isolated(self):
        executor = ParallelExecutor(jobs=2, retries=1)
        specs = [
            selftest("echo", echo="before"),
            selftest("exit", code=3),
            selftest("echo", echo="after"),
        ]
        results = executor.map(specs)
        assert results[0].ok and results[2].ok  # neighbors unaffected
        dead = results[1]
        assert not dead.ok
        assert dead.crashed
        assert dead.attempts == 2  # first try + one retry
        assert "exited with code 3" in dead.error

    def test_timeout_kills_the_worker(self):
        executor = ParallelExecutor(jobs=2, timeout=1.0, retries=0)
        [job] = executor.map([selftest("sleep", seconds=60)])
        assert not job.ok
        assert job.timed_out
        assert job.attempts == 1
        assert "timeout" in job.error

    def test_serial_path_runs_in_process(self):
        executor = ParallelExecutor(jobs=1)
        ok, bad = executor.map([
            selftest("echo", echo="hi"), selftest("raise"),
        ])
        import os

        assert ok.value["pid"] == os.getpid()  # no subprocess at jobs=1
        assert not bad.ok and "RuntimeError" in bad.error

    def test_early_close_cancels_stragglers(self):
        executor = ParallelExecutor(jobs=2)
        specs = [
            selftest("echo", echo="first"),
            selftest("sleep", seconds=60),
        ]
        iterator = executor.imap(specs)
        assert next(iterator).ok
        iterator.close()  # must terminate the sleeper, not hang

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ValueError):
            ParallelExecutor(timeout=0)
        with pytest.raises(ValueError):
            ParallelExecutor(retries=-1)
        with pytest.raises(TypeError):
            ParallelExecutor(jobs=1).map(["not a spec"])


class TestJobSpecs:
    def test_experiment_spec_round_trips(self):
        spec = experiment_job(small_config(), timeline_bucket=1.0)
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.label == "par-test"
        assert clone.options == {"timeline_bucket": 1.0}

    def test_summary_round_trips_with_int_percentiles(self):
        summary = RunSummary.from_result(run_experiment(small_config()))
        clone = RunSummary.from_dict(summary.to_dict())
        assert clone == summary
        assert all(isinstance(p, int) for p in clone.latency_percentiles)
        assert clone.latency_percentile(99) >= clone.latency_percentile(50)
        with pytest.raises(ValueError):
            clone.latency_percentile(75)  # only p50/p95/p99 carried

    def test_summary_matches_result(self):
        result = run_experiment(small_config())
        summary = RunSummary.from_result(result)
        assert summary.commit_hash == result.commit_hash
        assert summary.throughput_tps == result.throughput_tps
        assert summary.committed_tx == result.committed_tx
        assert summary.events_processed == result.events_processed


class TestDeterminism:
    """jobs=1 and jobs=4 must be bit-for-bit equal, per integration."""

    def test_fuzz_sweep_hashes(self):
        serial = ScenarioFuzzer(7).run(4)
        parallel = ScenarioFuzzer(7).run(4, jobs=4)
        assert [o.commit_hash for o in serial] == [
            o.commit_hash for o in parallel
        ]
        assert [o.scenario for o in serial] == [
            o.scenario for o in parallel
        ]
        assert [o.ok for o in serial] == [o.ok for o in parallel]

    def test_replicated_run_hashes(self):
        config = small_config()
        serial = run_replicated(config, seeds=[1, 2, 3])
        parallel = run_replicated(config, seeds=[1, 2, 3], jobs=4)
        assert serial.commit_hashes == parallel.commit_hashes
        assert serial.throughput_mean == parallel.throughput_mean
        assert serial.latency_mean == parallel.latency_mean
        assert serial.view_changes_mean == parallel.view_changes_mean

    def test_grid_cell_summaries(self):
        configs = [
            small_config(),
            dataclasses.replace(small_config(), seed=9, label="cell-2"),
        ]
        serial = sweep(configs, jobs=1)
        parallel = sweep(configs, jobs=4)
        assert [deterministic_dict(s) for s in serial] == [
            deterministic_dict(p) for p in parallel
        ]

    def test_fuzz_stop_on_failure_prefix(self):
        """Parallel stop-on-failure returns the same contiguous prefix."""
        fuzzer = ScenarioFuzzer(7)
        serial = fuzzer.run(4, stop_on_failure=True)
        parallel = ScenarioFuzzer(7).run(4, stop_on_failure=True, jobs=4)
        assert [o.scenario.index for o in serial] == [
            o.scenario.index for o in parallel
        ]


class TestReplicatedAggregates:
    def test_events_per_sec_and_hashes_aggregated(self):
        result = run_replicated(small_config(), seeds=[1, 2])
        assert result.events_per_sec_mean > 0
        assert len(result.commit_hashes) == 2
        assert all(len(h) == 64 for h in result.commit_hashes)
        # Different seeds diverge; same seed agrees.
        assert result.commit_hashes[0] != result.commit_hashes[1]
        again = run_replicated(small_config(), seeds=[1, 2])
        assert again.commit_hashes == result.commit_hashes


def padded_mute_votes():
    base = MUTANTS["mute-votes"].scenario
    padding = [
        {"event": "delay", "at": 0.6, "duration": 0.4,
         "base": 0.03, "jitter": 0.01, "bandwidth_factor": 0.9},
        {"event": "bandwidth", "at": 1.2, "duration": 0.4,
         "factor": 0.5, "nodes": [0, 1]},
    ]
    return base.replaced(fault_spec=padding)


class TestSpeculativeShrink:
    def test_speculative_equals_serial(self):
        mutant = MUTANTS["mute-votes"]

        def runner(scenario):
            return run_scenario(
                scenario,
                strict_availability=mutant.strict_availability,
                mempool_cls=mutant.mempool_cls,
                consensus_cls=mutant.consensus_cls,
            )

        scenario = padded_mute_votes()
        serial = shrink_scenario(scenario, runner=runner, max_runs=30)
        speculative = shrink_scenario(
            scenario, runner=runner, max_runs=30,
            executor=ParallelExecutor(jobs=2),
            job_options={"mutant": "mute-votes"},
        )
        assert speculative.minimized == serial.minimized
        assert speculative.minimized.fault_spec == []
        # Speculation may charge more runs (launched candidates count)
        # but never exceeds the budget.
        assert speculative.runs <= 30

    def test_custom_runner_falls_back_to_serial(self):
        mutant = MUTANTS["mute-votes"]

        def runner(scenario):
            return run_scenario(scenario, mempool_cls=mutant.mempool_cls)

        scenario = padded_mute_votes()
        serial = shrink_scenario(scenario, runner=runner, max_runs=30)
        # executor given but runner is a closure and no job_options:
        # speculation silently disengages, result and accounting match.
        fallback = shrink_scenario(
            scenario, runner=runner, max_runs=30,
            executor=ParallelExecutor(jobs=2),
        )
        assert fallback.minimized == serial.minimized
        assert fallback.runs == serial.runs


class TestScenarioCaching:
    def test_derived_configs_memoized(self):
        scenario = ScenarioFuzzer(7).scenario(0)
        assert scenario.experiment_config() is scenario.experiment_config()
        assert scenario.protocol_config() is scenario.protocol_config()
        if scenario.fault_spec:
            assert scenario.fault_schedule() is scenario.fault_schedule()

    def test_replaced_scenario_gets_fresh_cache(self):
        scenario = ScenarioFuzzer(7).scenario(0)
        before = scenario.experiment_config()
        faster = scenario.replaced(rate_tps=123.0)
        assert faster.experiment_config() is not before
        assert faster.experiment_config().rate_tps == 123.0
        assert scenario.experiment_config() is before  # original untouched
