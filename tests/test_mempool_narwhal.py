"""Tests for the Narwhal-style reliable-broadcast mempool."""

from repro.mempool.base import MessageKinds

from tests.helpers import inject, make_cluster


def mempool_of(experiment, node):
    return experiment.replicas[node].mempool


def test_certification_requires_ready_quorum():
    exp = make_cluster(n=4, mempool="narwhal")
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    mempool = mempool_of(exp, 0)
    mb_id = mempool.store.ids[0]
    state = mempool._states[mb_id]
    assert state.certified
    # 2f+1 readies with f=1 means at least 3 distinct signers.
    assert len(state.readies) >= 3


def test_leader_only_share_never_certifies():
    """The simple-SMP censoring attack (share with the leader only) is
    harmless under reliable broadcast: two echoes never make a quorum,
    so the id is never certified and never proposed."""
    from repro.replica.behavior import CensoringSender

    exp = make_cluster(n=4, mempool="narwhal")
    exp.replicas[3].behavior = CensoringSender(min_witnesses=0)
    inject(exp, 3, count=4)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total == 0
    for node in range(4):
        for state in mempool_of(exp, node)._states.values():
            assert not state.certified


def test_censor_must_reach_witness_quorum_to_commit():
    """Under Narwhal the harness arms the censor with just enough
    witnesses to certify; its content then commits even though the
    origin refuses fetches (witnesses serve them instead)."""
    exp = make_cluster(n=4, mempool="narwhal", fault="censor", fault_count=1)
    byzantine = sorted(exp.config.byzantine_ids)
    inject(exp, byzantine[0], count=4)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total == 4


def test_bracha_amplification_readies_without_echo_quorum():
    """f+1 readies alone trigger a ready (amplification step)."""
    exp = make_cluster(n=4, mempool="narwhal")
    mempool = mempool_of(exp, 3)
    mb_id = (99, 99)
    state = mempool._state(mb_id)
    # Simulate f+1 = 2 remote readies with no echoes at all.
    state.readies.update({0, 1})
    mempool._check_quorums(mb_id)
    assert state.ready_sent
    assert 3 in state.readies


def test_commit_without_body_then_fetch():
    """A replica can vote on certified ids it lacks bodies for, then
    fetches them from ready signers to execute."""
    exp = make_cluster(n=4, mempool="narwhal")
    inject(exp, 0, count=4)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total == 4
    mb_id = mempool_of(exp, 0).store.ids[0]
    for node in range(4):
        assert mb_id in mempool_of(exp, node).store


def test_abandoned_certified_ids_requeue():
    exp = make_cluster(n=4, mempool="narwhal")
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    mempool = mempool_of(exp, 0)
    mb_id = mempool.store.ids[0]
    state = mempool._states[mb_id]
    assert state.certified

    class FakeProposal:
        class payload:
            microblock_ids = (mb_id,)

    # Simulate the consensus engine abandoning a fork that referenced
    # the id after it was already committed: no requeue.
    mempool._committed.add(mb_id)
    before = len(mempool._proposable)
    mempool.on_abandoned(FakeProposal)
    assert len(mempool._proposable) == before
    # But an uncommitted certified id from a lost fork does requeue.
    mempool._committed.discard(mb_id)
    mempool.on_abandoned(FakeProposal)
    assert mb_id in mempool._proposable


def test_control_channel_carries_rb_votes():
    exp = make_cluster(n=4, mempool="narwhal")
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    stats = exp.network.stats.messages_sent
    assert stats.get(MessageKinds.RB_ECHO, 0) > 0
    assert stats.get(MessageKinds.RB_READY, 0) > 0
    # Bodies travel once per peer; echo/ready volume dominates counts.
    assert stats[MessageKinds.RB_ECHO] > stats.get(
        MessageKinds.MICROBLOCK, 0
    )
