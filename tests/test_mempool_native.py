"""Unit tests for the native mempool and its shared pending pool."""

import pytest

from repro.mempool.native import SharedPendingPool
from repro.types import TxBatch

from tests.helpers import inject, make_cluster


class TestSharedPendingPool:
    def make_pool(self):
        return SharedPendingPool(tx_payload=128)

    def batch(self, count, when=1.0):
        return TxBatch(count=count, payload_bytes=128, mean_arrival=when)

    def test_add_and_draw(self):
        pool = self.make_pool()
        pool.add(self.batch(10, when=2.0))
        count, sum_arrival = pool.draw(max_bytes=128 * 4)
        assert count == 4
        assert sum_arrival == pytest.approx(8.0)
        assert pool.pending == 6

    def test_draw_everything(self):
        pool = self.make_pool()
        pool.add(self.batch(3))
        count, _ = pool.draw(max_bytes=10**9)
        assert count == 3
        assert pool.pending == 0

    def test_draw_empty(self):
        pool = self.make_pool()
        assert pool.draw(1024) == (0, 0.0)

    def test_refund_restores(self):
        pool = self.make_pool()
        pool.add(self.batch(10, when=2.0))
        count, sum_arrival = pool.draw(128 * 10)
        pool.refund(count, sum_arrival)
        assert pool.pending == 10
        count2, sum2 = pool.draw(128 * 10)
        assert count2 == 10
        assert sum2 == pytest.approx(20.0)

    def test_refund_zero_noop(self):
        pool = self.make_pool()
        pool.refund(0, 0.0)
        assert pool.pending == 0

    def test_payload_mismatch_rejected(self):
        pool = self.make_pool()
        with pytest.raises(ValueError):
            pool.add(TxBatch(count=1, payload_bytes=256, mean_arrival=0.0))


class TestNativeMempool:
    def test_payload_embeds_full_data(self):
        exp = make_cluster(n=4, mempool="native")
        inject(exp, 0, count=8)
        mempool = exp.replicas[1].mempool  # any replica can draw
        payload = mempool.make_payload()
        assert payload.embedded
        assert payload.embedded[0].tx_count == 8
        assert payload.size_bytes > 8 * 128

    def test_block_size_limit_respected(self):
        exp = make_cluster(
            n=4, mempool="native",
            protocol_overrides={"native_block_bytes": 128 * 4},
        )
        inject(exp, 0, count=100)
        payload = exp.replicas[0].mempool.make_payload()
        assert payload.embedded[0].tx_count == 4

    def test_empty_payload_when_pool_empty(self):
        exp = make_cluster(n=4, mempool="native")
        payload = exp.replicas[0].mempool.make_payload()
        assert payload.is_empty

    def test_prepare_is_immediate(self):
        exp = make_cluster(n=4, mempool="native")
        inject(exp, 0, count=4)
        mempool = exp.replicas[0].mempool
        payload = mempool.make_payload()
        from repro.crypto import GENESIS_QC
        from repro.types.proposal import Proposal, make_block_id
        proposal = Proposal(
            block_id=make_block_id(0, 99), view=1, height=1, proposer=0,
            parent_id=0, justify=GENESIS_QC, payload=payload,
        )
        fired = []
        mempool.prepare(proposal, lambda: fired.append(True))
        assert fired == [True]

    def test_commits_through_consensus(self):
        exp = make_cluster(n=4, mempool="native")
        inject(exp, 2, count=8)
        exp.sim.run_until(2.0)
        assert exp.metrics.committed_tx_total == 8
