"""White-box tests for chained HotStuff's internal rules."""

from repro.crypto import (
    GENESIS_QC,
    QuorumCert,
    make_quorum_cert,
    vote_signature,
)
from repro.mempool.base import MessageKinds
from repro.types.proposal import Payload, Proposal, make_block_id

from tests.helpers import make_cluster


def engine_of(exp, node):
    return exp.replicas[node].consensus


def make_qc(block_id, view, n=4):
    quorum = 2 * ((n - 1) // 3) + 1
    votes = [vote_signature(s, block_id, view) for s in range(quorum)]
    return make_quorum_cert(block_id, view, votes, quorum, n)


def make_proposal(block_id, view, height, parent_id, justify, proposer=0):
    return Proposal(
        block_id=block_id, view=view, height=height, proposer=proposer,
        parent_id=parent_id, justify=justify, payload=Payload(),
    )


def frozen_cluster():
    exp = make_cluster(n=4, mempool="stratus")
    for replica in exp.replicas:
        replica.consensus._try_propose = lambda *a, **k: None
        # stop timers from firing during white-box manipulation
        if replica.consensus._view_timer:
            replica.consensus._view_timer.cancel()
    return exp


def test_three_chain_commit_rule():
    exp = frozen_cluster()
    engine = engine_of(exp, 3)
    b1 = make_proposal(make_block_id(0, 1), 1, 1, 0, GENESIS_QC)
    qc1 = make_qc(b1.block_id, 1)
    b2 = make_proposal(make_block_id(1, 1), 2, 2, b1.block_id, qc1)
    qc2 = make_qc(b2.block_id, 2)
    b3 = make_proposal(make_block_id(2, 1), 3, 3, b2.block_id, qc2)
    qc3 = make_qc(b3.block_id, 3)
    b4 = make_proposal(make_block_id(3, 1), 4, 4, b3.block_id, qc3)
    for proposal in (b1, b2, b3):
        engine._handle_proposal(proposal)
    assert b1.block_id not in engine.committed
    engine._handle_proposal(b4)  # carries QC over b3: 3-chain b1-b2-b3
    assert b1.block_id in engine.committed
    assert b2.block_id not in engine.committed


def test_commit_includes_all_ancestors():
    exp = frozen_cluster()
    engine = engine_of(exp, 3)
    # Build a chain with a view gap (b2 at view 3), then three
    # consecutive views; committing the head commits the whole prefix.
    b1 = make_proposal(make_block_id(0, 1), 1, 1, 0, GENESIS_QC)
    qc1 = make_qc(b1.block_id, 1)
    b2 = make_proposal(make_block_id(1, 1), 3, 2, b1.block_id, qc1)
    qc2 = make_qc(b2.block_id, 3)
    b3 = make_proposal(make_block_id(2, 1), 4, 3, b2.block_id, qc2)
    qc3 = make_qc(b3.block_id, 4)
    b4 = make_proposal(make_block_id(3, 1), 5, 4, b3.block_id, qc3)
    qc4 = make_qc(b4.block_id, 5)
    b5 = make_proposal(make_block_id(0, 2), 6, 5, b4.block_id, qc4)
    for proposal in (b1, b2, b3, b4, b5):
        engine._handle_proposal(proposal)
    # b2-b3-b4 are consecutive (3,4,5): b2 commits, and so must b1.
    assert b1.block_id in engine.committed
    assert b2.block_id in engine.committed


def test_lock_blocks_vote_on_stale_justify():
    exp = frozen_cluster()
    engine = engine_of(exp, 3)
    engine.locked_view = 5
    engine.cur_view = 6
    votes = []
    engine.mempool.prepare = lambda p, cb: votes.append(p)
    stale = make_proposal(
        make_block_id(0, 9), 6, 2,
        0, make_qc(0, 0) if False else GENESIS_QC,
    )
    engine._handle_proposal(stale)
    assert votes == []  # justify.view (0) < locked_view (5): no vote


def test_votes_only_once_per_view():
    exp = frozen_cluster()
    engine = engine_of(exp, 3)
    engine.cur_view = 1
    prepared = []
    engine.mempool.prepare = lambda p, cb: prepared.append(p)
    first = make_proposal(make_block_id(1, 5), 1, 1, 0, GENESIS_QC)
    double = make_proposal(make_block_id(2, 5), 1, 1, 0, GENESIS_QC)
    engine._handle_proposal(first)
    engine._handle_proposal(double)  # equivocating leader
    assert prepared == [first]


def test_orphan_chain_releases_in_order():
    exp = frozen_cluster()
    engine = engine_of(exp, 3)
    b1 = make_proposal(make_block_id(0, 1), 1, 1, 0, GENESIS_QC)
    qc1 = make_qc(b1.block_id, 1)
    b2 = make_proposal(make_block_id(1, 1), 2, 2, b1.block_id, qc1)
    qc2 = make_qc(b2.block_id, 2)
    b3 = make_proposal(make_block_id(2, 1), 3, 3, b2.block_id, qc2)
    # Deliver children first: both park as orphans.
    engine._handle_proposal(b3)
    engine._handle_proposal(b2)
    assert b2.block_id not in engine.proposals
    assert b3.block_id not in engine.proposals
    engine._handle_proposal(b1)  # parent lands: chain unrolls
    assert b2.block_id in engine.proposals
    assert b3.block_id in engine.proposals


def test_sync_request_served():
    exp = make_cluster(n=4, mempool="stratus")
    exp.sim.run_until(0.5)  # build some chain
    for replica in exp.replicas:  # freeze further proposing
        replica.consensus._try_propose = lambda *a, **k: None
    exp.sim.run_until(1.0)  # drain in-flight traffic
    serving = engine_of(exp, 0)
    receiving = engine_of(exp, 2)
    block_id = next(iter(serving.committed - {0}))
    # Make replica 2 forget the block, then ask replica 0 for it.
    forgotten = receiving.proposals.pop(block_id)
    receiving.committed.discard(block_id)
    from repro.sim.network import Channel, Envelope
    request = Envelope(
        src=2, dst=0, kind=MessageKinds.SYNC_REQUEST, size_bytes=48,
        payload=block_id, channel=Channel.CONSENSUS,
    )
    serving.on_message(request)
    exp.sim.run_until(exp.sim.now + 0.5)
    assert block_id in receiving.proposals
    assert receiving.proposals[block_id].height == forgotten.height


def test_invalid_justify_rejected():
    exp = frozen_cluster()
    engine = engine_of(exp, 3)
    forged = QuorumCert(block_id=0, view=1, signers=(0,), forged=True)
    bad = make_proposal(make_block_id(0, 7), 2, 1, 0, forged)
    engine._handle_proposal(bad)
    assert bad.block_id not in engine.proposals


def test_new_view_quorum_triggers_proposal():
    exp = make_cluster(n=4, mempool="stratus")
    for replica in exp.replicas:
        if replica.consensus._view_timer:
            replica.consensus._view_timer.cancel()
    # Replica 2 leads view 2 (leader_set rotation: view % 4).
    leader = engine_of(exp, 2)
    proposed = []
    original = leader._try_propose
    leader._try_propose = lambda v, j: proposed.append((v, j))
    for src in (0, 1, 3):
        leader._record_new_view(2, src, GENESIS_QC)
    assert proposed and proposed[0][0] == 2


def test_high_qc_tracks_best():
    exp = frozen_cluster()
    engine = engine_of(exp, 3)
    b1 = make_proposal(make_block_id(0, 1), 1, 1, 0, GENESIS_QC)
    engine._handle_proposal(b1)
    qc = make_qc(b1.block_id, 1)
    engine._process_qc(qc)
    assert engine.high_qc == qc
    engine._process_qc(GENESIS_QC)  # older QC must not regress
    assert engine.high_qc == qc


def test_delivery_order_does_not_change_commits():
    """Any permutation of the same certified chain commits the same
    prefix (orphan parking + release makes delivery order irrelevant)."""
    import itertools

    def build_chain(length=5):
        proposals = []
        parent_id, parent_view = 0, 0
        justify = GENESIS_QC
        for index in range(length):
            proposal = make_proposal(
                make_block_id(index % 4, index + 1), parent_view + 1,
                index + 1, parent_id, justify,
            )
            proposals.append(proposal)
            justify = make_qc(proposal.block_id, proposal.view)
            parent_id, parent_view = proposal.block_id, proposal.view
        return proposals

    chain = build_chain()
    reference = None
    for order in itertools.islice(itertools.permutations(range(5)), 0, 24):
        exp = frozen_cluster()
        engine = engine_of(exp, 3)
        for index in order:
            engine._handle_proposal(chain[index])
        committed = frozenset(engine.committed)
        if reference is None:
            reference = committed
        assert committed == reference, f"order {order} diverged"
    # Three-chain rule: with QCs through view 5, blocks 1..2 commit
    # (block 3 heads the chain certified by block 4's justify... the
    # deepest 3-chain ends at view 5's justify over block 4).
    assert chain[0].block_id in reference
    assert chain[1].block_id in reference
