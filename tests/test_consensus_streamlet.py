"""Integration tests for Streamlet."""

from repro.replica.behavior import SilentReplica

from tests.helpers import inject, make_cluster


def make_streamlet(n=4, **kwargs):
    overrides = kwargs.pop("protocol_overrides", {})
    overrides.setdefault("streamlet_epoch", 0.1)
    return make_cluster(
        n=n, consensus="streamlet", protocol_overrides=overrides, **kwargs
    )


def test_commits_with_stratus_mempool():
    exp = make_streamlet(mempool="stratus", rate_tps=500, duration=4.0)
    exp.sim.run_until(4.0)
    assert exp.metrics.committed_tx_total > 0


def test_commits_with_native_mempool():
    exp = make_streamlet(mempool="native", rate_tps=500, duration=4.0)
    exp.sim.run_until(4.0)
    assert exp.metrics.committed_tx_total > 0


def test_epochs_advance_on_the_clock():
    exp = make_streamlet(mempool="stratus")
    exp.sim.run_until(1.05)
    for replica in exp.replicas:
        assert replica.consensus.epoch == 11  # 1 start + 10 ticks of 0.1s


def test_finalized_chains_agree():
    exp = make_streamlet(mempool="stratus", rate_tps=500, duration=4.0)
    exp.sim.run_until(4.0)
    canonical: dict[int, int] = {}
    for replica in exp.replicas:
        engine = replica.consensus
        for block_id in engine.finalized:
            height = engine.proposals[block_id].height
            assert canonical.setdefault(height, block_id) == block_id


def test_notarization_requires_quorum():
    exp = make_streamlet(n=7, mempool="stratus", rate_tps=200, duration=3.0)
    exp.sim.run_until(3.0)
    engine = exp.replicas[0].consensus
    assert len(engine.notarized) > 1  # beyond genesis


def test_silent_epoch_leader_skips_but_chain_recovers():
    exp = make_streamlet(mempool="stratus", rate_tps=500, duration=6.0)
    exp.replicas[1].behavior = SilentReplica()  # leads some epochs
    exp.sim.run_until(6.0)
    assert exp.metrics.committed_tx_total > 0


def test_latency_reflects_multi_epoch_finalization():
    exp = make_streamlet(mempool="stratus", rate_tps=0)
    inject(exp, 0, count=4)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total == 4
    # Finalization needs >= 3 epochs of 0.1 s.
    assert exp.metrics.latency.mean > 0.2


def test_executor_states_converge():
    exp = make_streamlet(
        mempool="stratus", rate_tps=500, duration=3.0, attach_executor=True,
    )
    exp.sim.run_until(4.0)
    digests = {replica.executor.state_digest() for replica in exp.replicas}
    assert len(digests) == 1
