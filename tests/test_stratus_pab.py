"""Integration tests for provably available broadcast inside Stratus."""

from tests.helpers import inject, make_cluster


def stratus_of(experiment, node):
    return experiment.replicas[node].mempool


def test_push_delivers_body_to_all_correct_replicas():
    exp = make_cluster(n=4, mempool="stratus")
    inject(exp, 0, count=4)
    exp.sim.run_until(1.0)
    mempool = stratus_of(exp, 0)
    assert len(mempool.store) >= 1
    mb_id = mempool.store.ids[0]
    for node in range(4):
        assert mb_id in stratus_of(exp, node).store


def test_proof_reaches_every_replica():
    exp = make_cluster(n=4, mempool="stratus")
    inject(exp, 1, count=4)
    exp.sim.run_until(1.0)
    mb_id = stratus_of(exp, 1).store.ids[0]
    for node in range(4):
        proof = stratus_of(exp, node).pab.proof_for(mb_id)
        assert proof is not None
        assert len(proof.signers) >= exp.config.protocol.stability_quorum


def test_sender_records_stable_time():
    exp = make_cluster(n=4, mempool="stratus")
    inject(exp, 2, count=4)
    exp.sim.run_until(1.0)
    assert stratus_of(exp, 2).estimator.sample_count >= 1
    assert exp.metrics.stable_times.mean > 0


def test_quorum_parameter_respected():
    exp = make_cluster(
        n=7, mempool="stratus", protocol_overrides={"pab_quorum": 5},
    )
    inject(exp, 0, count=4)
    exp.sim.run_until(1.0)
    mb_id = stratus_of(exp, 0).store.ids[0]
    proof = stratus_of(exp, 0).pab.proof_for(mb_id)
    assert proof is not None
    assert len(proof.signers) >= 5


def test_censoring_sender_body_recovered_via_fetch():
    """PAB-Provable Availability: even when a Byzantine sender shares the
    body with only a quorum's worth of replicas, every correct replica
    eventually fetches and delivers it."""
    exp = make_cluster(n=7, mempool="stratus", fault="censor", fault_count=2)
    byzantine = sorted(exp.config.byzantine_ids)
    inject(exp, byzantine[0], count=4)
    exp.sim.run_until(0.2)
    sender_store = stratus_of(exp, byzantine[0]).store
    assert len(sender_store) == 1
    mb_id = sender_store.ids[0]
    exp.sim.run_until(5.0)
    correct = [n for n in range(7) if n not in exp.config.byzantine_ids]
    for node in correct:
        assert mb_id in stratus_of(exp, node).store, f"replica {node} missing"
    assert exp.metrics.fetch_count > 0


def test_censored_microblock_still_commits():
    exp = make_cluster(n=7, mempool="stratus", fault="censor", fault_count=2)
    byzantine = sorted(exp.config.byzantine_ids)
    inject(exp, byzantine[0], count=4)
    exp.sim.run_until(5.0)
    assert exp.metrics.committed_tx_total >= 4


def test_microblocks_propose_and_commit_end_to_end():
    exp = make_cluster(n=4, mempool="stratus")
    for node in range(4):
        inject(exp, node, count=4)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total == 16
    assert exp.metrics.view_change_count == 0


def test_no_duplicate_commits_across_views():
    exp = make_cluster(n=4, mempool="stratus")
    for _ in range(3):
        inject(exp, 0, count=4)
    exp.sim.run_until(3.0)
    # Each injected batch fills exactly one microblock; commits must not
    # double-count any of them.
    assert exp.metrics.committed_tx_total == 12
