"""Unit tests for ProtocolConfig validation and derived quantities."""

import pytest

from repro.config import ProtocolConfig


def test_f_derivation():
    assert ProtocolConfig(n=4).f == 1
    assert ProtocolConfig(n=7).f == 2
    assert ProtocolConfig(n=100).f == 33
    assert ProtocolConfig(n=128).f == 42


def test_consensus_quorum_is_2f_plus_1():
    config = ProtocolConfig(n=100)
    assert config.consensus_quorum == 67


def test_stability_quorum_defaults_to_f_plus_1():
    config = ProtocolConfig(n=100)
    assert config.stability_quorum == 34


def test_stability_quorum_override():
    config = ProtocolConfig(n=100, pab_quorum=67)
    assert config.stability_quorum == 67


def test_pab_quorum_bounds_enforced():
    with pytest.raises(ValueError):
        ProtocolConfig(n=100, pab_quorum=33)  # below f+1
    with pytest.raises(ValueError):
        ProtocolConfig(n=100, pab_quorum=68)  # above 2f+1
    ProtocolConfig(n=100, pab_quorum=34)
    ProtocolConfig(n=100, pab_quorum=67)


def test_small_networks_rejected():
    with pytest.raises(ValueError):
        ProtocolConfig(n=3)


def test_unknown_mempool_rejected():
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, mempool="dag")


def test_unknown_consensus_rejected():
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, consensus="raft")


def test_txs_per_microblock():
    config = ProtocolConfig(n=4, batch_bytes=128 * 1024, tx_payload=128)
    assert config.txs_per_microblock == 1024


def test_txs_per_microblock_at_least_one():
    config = ProtocolConfig(n=4, batch_bytes=10, tx_payload=128)
    assert config.txs_per_microblock == 1


def test_byzantine_bounded_by_f():
    ProtocolConfig(n=4, byzantine=frozenset({3}))
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, byzantine=frozenset({2, 3}))


def test_lb_samples_validated():
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, lb_samples=0)


def test_fetch_sample_fraction_validated():
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, fetch_sample_fraction=0.0)
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, fetch_sample_fraction=1.5)


def test_with_updates_returns_modified_copy():
    config = ProtocolConfig(n=4)
    updated = config.with_updates(batch_bytes=999)
    assert updated.batch_bytes == 999
    assert config.batch_bytes != 999
    assert updated.n == 4
