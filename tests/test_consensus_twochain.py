"""Tests for two-chain HotStuff (Bamboo's second chained variant)."""

from repro.crypto import GENESIS_QC, make_quorum_cert, vote_signature
from repro.types.proposal import Payload, Proposal, make_block_id

from tests.helpers import inject, make_cluster


def make_twochain(n=4, **kwargs):
    return make_cluster(n=n, consensus="twochain", **kwargs)


def test_commits_end_to_end():
    exp = make_twochain(mempool="stratus")
    for node in range(4):
        inject(exp, node, count=4)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total == 16
    assert exp.metrics.view_change_count == 0


def test_two_chain_commits_one_round_earlier_than_three_chain():
    def commit_latency(consensus):
        exp = make_cluster(n=4, mempool="stratus", consensus=consensus)
        inject(exp, 0, count=4)
        exp.sim.run_until(2.0)
        assert exp.metrics.committed_tx_total == 4
        return exp.metrics.latency.mean

    assert commit_latency("twochain") < commit_latency("hotstuff")


def test_replicas_agree_on_committed_chain():
    exp = make_twochain(mempool="stratus", rate_tps=500, duration=3.0)
    exp.sim.run_until(3.0)
    canonical = {}
    for replica in exp.replicas:
        engine = replica.consensus
        for block_id in engine.committed:
            height = engine.proposals[block_id].height
            assert canonical.setdefault(height, block_id) == block_id


def test_two_chain_commit_rule_whitebox():
    exp = make_twochain(mempool="stratus")
    for replica in exp.replicas:
        replica.consensus._try_propose = lambda *a, **k: None
        if replica.consensus._view_timer:
            replica.consensus._view_timer.cancel()
    engine = exp.replicas[3].consensus

    def qc(block_id, view, n=4):
        quorum = 2 * ((n - 1) // 3) + 1
        votes = [vote_signature(s, block_id, view) for s in range(quorum)]
        return make_quorum_cert(block_id, view, votes, quorum, n)

    b1 = Proposal(block_id=make_block_id(0, 1), view=1, height=1,
                  proposer=0, parent_id=0, justify=GENESIS_QC,
                  payload=Payload())
    b2 = Proposal(block_id=make_block_id(1, 1), view=2, height=2,
                  proposer=1, parent_id=b1.block_id, justify=qc(b1.block_id, 1),
                  payload=Payload())
    b3 = Proposal(block_id=make_block_id(2, 1), view=3, height=3,
                  proposer=2, parent_id=b2.block_id, justify=qc(b2.block_id, 2),
                  payload=Payload())
    engine._handle_proposal(b1)
    engine._handle_proposal(b2)
    assert b1.block_id not in engine.committed  # QC over b1: one-chain only
    engine._handle_proposal(b3)  # QC over b2 completes the two-chain
    assert b1.block_id in engine.committed
    assert b2.block_id not in engine.committed


def test_survives_silent_replicas():
    exp = make_twochain(n=7, mempool="stratus", rate_tps=300, duration=3.0,
                        fault="silent", fault_count=2)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total > 0
