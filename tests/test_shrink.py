"""Tests for the scenario shrinker and replayable repro artifacts."""

import pytest

from repro.verification import (
    MUTANTS,
    Scenario,
    load_artifact,
    replay_artifact,
    run_scenario,
    shrink_scenario,
    write_artifact,
)
from repro.verification.mutations import SilentPrepareMempool
from repro.verification.shrink import _event_units


def mute_runner(scenario):
    """Runner injecting the mute-votes bug (reliably fails liveness)."""
    return run_scenario(scenario, mempool_cls=SilentPrepareMempool)


def padded_failing_scenario():
    """The mute-votes scenario buried under irrelevant fault events."""
    base = MUTANTS["mute-votes"].scenario
    padding = [
        {"event": "delay", "at": 0.6, "duration": 0.4,
         "base": 0.03, "jitter": 0.01, "bandwidth_factor": 0.9},
        {"event": "bandwidth", "at": 1.2, "duration": 0.4,
         "factor": 0.5, "nodes": [0, 1]},
    ]
    return base.replaced(fault_spec=padding)


def test_shrinker_drops_irrelevant_fault_events():
    scenario = padded_failing_scenario()
    result = shrink_scenario(scenario, runner=mute_runner)
    assert result.minimized.fault_spec == []
    assert result.removed_events == 2
    assert any(
        v.oracle == "liveness" for v in result.outcome.violations
    )
    assert result.runs <= 60


def test_shrinker_refuses_passing_scenario():
    healthy = Scenario(
        seed=1, consensus="hotstuff", mempool="simple", n=4,
        duration=2.0, rate_tps=300.0,
    )
    with pytest.raises(ValueError):
        shrink_scenario(healthy)


def test_crash_restart_move_as_one_unit():
    spec = [
        {"event": "crash", "at": 1.0, "node": 2},
        {"event": "loss", "at": 1.2, "duration": 0.5, "rate": 0.3},
        {"event": "restart", "at": 2.0, "node": 2},
    ]
    units = _event_units(spec)
    assert [0, 2] in units  # crash at index 0 owns restart at index 2
    assert [1] in units


def test_artifact_round_trip(tmp_path):
    """A failing outcome written to disk replays bit-for-bit."""
    outcome = mute_runner(MUTANTS["mute-votes"].scenario)
    assert not outcome.ok
    path = tmp_path / "repro.json"
    write_artifact(str(path), outcome, mutant="mute-votes")

    artifact = load_artifact(str(path))
    assert artifact["mutant"] == "mute-votes"
    assert Scenario.from_dict(artifact["scenario"]) == outcome.scenario

    replayed = replay_artifact(str(path))
    assert replayed.commit_hash == outcome.commit_hash
    assert [v.kind for v in replayed.violations] == [
        v.kind for v in outcome.violations
    ]


def test_artifact_rejects_foreign_format(tmp_path):
    path = tmp_path / "not-an-artifact.json"
    path.write_text('{"format": "something-else"}')
    with pytest.raises(ValueError):
        load_artifact(str(path))
