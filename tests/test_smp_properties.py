"""The SMP abstraction's liveness properties (Section III-B), as tests.

* **SMP-Inclusion** — a transaction received by a correct replica is
  eventually included in a (committed) proposal.
* **SMP-Stability** — a transaction included in a proposal by a correct
  leader is eventually available at every correct replica.

Checked end-to-end for every shared-mempool implementation, both in the
honest case and with censoring Byzantine senders for the protocols that
claim robustness (Stratus, Narwhal).
"""

import pytest

from tests.helpers import inject, make_cluster

SMP_KINDS = ("simple", "gossip", "narwhal", "stratus")


@pytest.mark.parametrize("kind", SMP_KINDS)
def test_smp_inclusion_honest(kind):
    """Every injected transaction commits (no faults)."""
    exp = make_cluster(
        n=4, mempool=kind, protocol_overrides={"gc_retention": 0.0},
    )
    for node in range(4):
        inject(exp, node, count=4)
    exp.sim.run_until(6.0)
    assert exp.metrics.committed_tx_total == 16


@pytest.mark.parametrize("kind", SMP_KINDS)
def test_smp_stability_honest(kind):
    """Every microblock referenced by a committed block reaches every
    correct replica's store."""
    exp = make_cluster(
        n=4, mempool=kind, protocol_overrides={"gc_retention": 0.0},
    )
    for node in range(4):
        inject(exp, node, count=4)
    exp.sim.run_until(6.0)
    committed_ids = set()
    for replica in exp.replicas:
        committed_ids |= replica.mempool._committed
    assert committed_ids
    for replica in exp.replicas:
        for mb_id in committed_ids:
            assert mb_id in replica.mempool.store, (
                f"replica {replica.node_id} missing microblock {mb_id}"
            )


@pytest.mark.parametrize("kind", ("stratus", "narwhal"))
def test_smp_inclusion_under_censoring(kind):
    """Robust mempools include even a censoring sender's transactions
    (it must reach an availability quorum to be proposed at all)."""
    exp = make_cluster(
        n=7, mempool=kind, fault="censor", fault_count=2,
        protocol_overrides={"gc_retention": 0.0},
    )
    byzantine = sorted(exp.config.byzantine_ids)
    inject(exp, byzantine[0], count=4)
    inject(exp, 0, count=4)
    exp.sim.run_until(8.0)
    assert exp.metrics.committed_tx_total == 8


@pytest.mark.parametrize("kind", ("stratus", "narwhal"))
def test_smp_stability_under_censoring(kind):
    exp = make_cluster(
        n=7, mempool=kind, fault="censor", fault_count=2,
        protocol_overrides={"gc_retention": 0.0},
    )
    byzantine = sorted(exp.config.byzantine_ids)
    inject(exp, byzantine[0], count=4)
    exp.sim.run_until(10.0)
    committed_ids = set()
    for replica in exp.replicas:
        committed_ids |= replica.mempool._committed
    correct = [r for r in exp.replicas
               if r.node_id not in exp.config.byzantine_ids]
    assert committed_ids
    for replica in correct:
        for mb_id in committed_ids:
            assert mb_id in replica.mempool.store


def test_safety_no_conflicting_commits_under_view_changes():
    """Consensus safety: replicas never commit different blocks at the
    same height even through a view-change-heavy run."""
    from repro.replica.behavior import SilentReplica

    exp = make_cluster(
        n=4, mempool="stratus", rate_tps=400, duration=8.0,
        protocol_overrides={"view_timeout": 0.3},
    )
    # Rotate a fault through two replicas to force view churn.
    victim = exp.replicas[1]
    honest = victim.behavior
    victim.behavior = SilentReplica()
    exp.sim.run_until(3.0)
    victim.behavior = honest
    second = exp.replicas[2]
    second_honest = second.behavior
    second.behavior = SilentReplica()
    exp.sim.run_until(6.0)
    second.behavior = second_honest
    exp.sim.run_until(10.0)
    assert exp.metrics.view_change_count > 0
    canonical: dict[int, int] = {}
    for replica in exp.replicas:
        engine = replica.consensus
        for block_id in engine.committed:
            height = engine.proposals[block_id].height
            assert canonical.setdefault(height, block_id) == block_id
