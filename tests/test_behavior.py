"""Unit tests for Byzantine behaviour strategies."""

from repro.replica.behavior import (
    CensoringSender,
    HonestBehavior,
    LyingProxy,
    SilentReplica,
)

from tests.helpers import make_cluster


def test_honest_defaults():
    behavior = HonestBehavior()
    assert not behavior.silent
    assert behavior.acks_microblocks
    assert behavior.serves_fetches
    assert behavior.handles_forwards
    assert behavior.share_targets(None, [1, 2, 3]) == [1, 2, 3]
    assert behavior.load_status(0.5) == 0.5


def test_silent_contributes_nothing():
    behavior = SilentReplica()
    assert behavior.silent
    assert not behavior.acks_microblocks
    assert behavior.share_targets(None, [1, 2]) == []
    assert behavior.load_status(0.5) is None


def test_censoring_sender_without_proof_targets_leader_only():
    exp = make_cluster(n=7, mempool="simple", fault="censor", fault_count=2)
    host = exp.replicas[6]
    behavior = host.behavior
    assert isinstance(behavior, CensoringSender)
    targets = behavior.share_targets(
        host, [node for node in range(7) if node != 6])
    leader = host.consensus.current_leader()
    assert targets == [leader]


def test_censoring_sender_with_proof_reaches_quorum():
    exp = make_cluster(n=7, mempool="stratus", fault="censor", fault_count=2)
    host = exp.replicas[6]
    targets = host.behavior.share_targets(
        host, [node for node in range(7) if node != 6])
    leader = host.consensus.current_leader()
    assert leader in targets
    # Leader plus at least quorum-1 witnesses (its own ack completes q).
    assert len(targets) >= exp.config.protocol.stability_quorum - 1
    assert 6 not in targets


def test_lying_proxy_advertises_zero():
    behavior = LyingProxy()
    assert behavior.load_status(5.0) == 0.0
    assert behavior.load_status(None) == 0.0
    assert not behavior.handles_forwards
    assert not behavior.serves_fetches


def test_proof_withholder_wastes_bandwidth_but_cannot_block_others():
    """Section VIII: withheld proofs keep the attacker's own microblocks
    out of proposals while honest traffic is unaffected."""
    from repro.mempool.base import MessageKinds
    from repro.replica.behavior import ProofWithholder

    exp = make_cluster(n=4, mempool="stratus")
    exp.replicas[3].behavior = ProofWithholder()
    exp.replicas[3].leader_set = (0, 1, 2)
    for replica in exp.replicas:
        replica.leader_set = (0, 1, 2)  # keep the attacker out of leadership
    from tests.helpers import inject
    inject(exp, 3, count=4)   # attacker's clients
    inject(exp, 0, count=4)   # honest clients
    exp.sim.run_until(5.0)
    # The attacker's body was broadcast (bandwidth burned)...
    mb_bytes = exp.network.stats.node_bytes(3, MessageKinds.MICROBLOCK)
    assert mb_bytes > 0
    # ...but only the honest microblock committed.
    assert exp.metrics.committed_tx_total == 4
    # Honest replicas hold the attacker's body yet never saw a proof.
    attacker_mb = exp.replicas[3].mempool.store.ids[0]
    assert attacker_mb in exp.replicas[0].mempool.store
    assert exp.replicas[0].mempool.pab.proof_for(attacker_mb) is None
