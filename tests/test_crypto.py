"""Unit tests for simulated signatures, proofs, and certificates."""

import pytest

from repro.crypto import (
    GENESIS_QC,
    AvailabilityProof,
    ProofError,
    QuorumCert,
    Signature,
    make_availability_proof,
    make_quorum_cert,
    sign,
    verify_availability_proof,
    verify_quorum_cert,
    verify_signature,
    vote_signature,
)


class TestSignatures:
    def test_roundtrip(self):
        sig = sign(3, digest=99)
        assert verify_signature(sig, digest=99, n=10)

    def test_wrong_digest_rejected(self):
        sig = sign(3, digest=99)
        assert not verify_signature(sig, digest=100, n=10)

    def test_forged_rejected(self):
        forged = Signature(signer=3, digest=99, forged=True)
        assert not verify_signature(forged, digest=99, n=10)

    def test_out_of_range_signer_rejected(self):
        sig = Signature(signer=10, digest=99)
        assert not verify_signature(sig, digest=99, n=10)


class TestAvailabilityProofs:
    def acks(self, signers, mb_id=7):
        return [sign(s, mb_id) for s in signers]

    def test_make_and_verify(self):
        proof = make_availability_proof(7, self.acks([0, 1, 2]), quorum=3, n=4)
        assert proof.quorum == 3
        assert verify_availability_proof(proof, 7, quorum=3, n=4)

    def test_insufficient_acks(self):
        with pytest.raises(ProofError):
            make_availability_proof(7, self.acks([0, 1]), quorum=3, n=4)

    def test_duplicate_signers_not_counted(self):
        acks = self.acks([0, 0, 0, 1])
        with pytest.raises(ProofError):
            make_availability_proof(7, acks, quorum=3, n=4)

    def test_forged_acks_not_counted(self):
        acks = self.acks([0, 1]) + [Signature(2, 7, forged=True)]
        with pytest.raises(ProofError):
            make_availability_proof(7, acks, quorum=3, n=4)

    def test_wrong_digest_acks_not_counted(self):
        acks = self.acks([0, 1]) + [sign(2, digest=8)]
        with pytest.raises(ProofError):
            make_availability_proof(7, acks, quorum=3, n=4)

    def test_forged_proof_rejected(self):
        forged = AvailabilityProof(mb_id=7, signers=(0, 1, 2), forged=True)
        assert not verify_availability_proof(forged, 7, quorum=3, n=4)

    def test_mismatched_id_rejected(self):
        proof = make_availability_proof(7, self.acks([0, 1, 2]), quorum=3, n=4)
        assert not verify_availability_proof(proof, 8, quorum=3, n=4)

    def test_undersized_proof_rejected(self):
        proof = AvailabilityProof(mb_id=7, signers=(0, 1))
        assert not verify_availability_proof(proof, 7, quorum=3, n=4)

    def test_out_of_range_signers_rejected(self):
        proof = AvailabilityProof(mb_id=7, signers=(0, 1, 99))
        assert not verify_availability_proof(proof, 7, quorum=3, n=4)

    def test_proof_size_scales_with_quorum(self):
        small = AvailabilityProof(mb_id=1, signers=(0, 1))
        large = AvailabilityProof(mb_id=1, signers=tuple(range(20)))
        assert large.size_bytes > small.size_bytes


class TestQuorumCerts:
    def votes(self, signers, block_id=5, view=2):
        return [vote_signature(s, block_id, view) for s in signers]

    def test_make_and_verify(self):
        qc = make_quorum_cert(5, 2, self.votes([0, 1, 2]), quorum=3, n=4)
        assert verify_quorum_cert(qc, quorum=3, n=4)
        assert qc.block_id == 5 and qc.view == 2

    def test_insufficient_votes(self):
        with pytest.raises(ValueError):
            make_quorum_cert(5, 2, self.votes([0, 1]), quorum=3, n=4)

    def test_votes_for_other_block_not_counted(self):
        votes = self.votes([0, 1]) + self.votes([2], block_id=6)
        with pytest.raises(ValueError):
            make_quorum_cert(5, 2, votes, quorum=3, n=4)

    def test_genesis_always_valid(self):
        assert verify_quorum_cert(GENESIS_QC, quorum=3, n=4)

    def test_forged_qc_rejected(self):
        forged = QuorumCert(block_id=5, view=2, signers=(0, 1, 2), forged=True)
        assert not verify_quorum_cert(forged, quorum=3, n=4)

    def test_undersized_qc_rejected(self):
        qc = QuorumCert(block_id=5, view=2, signers=(0,))
        assert not verify_quorum_cert(qc, quorum=3, n=4)

    def test_vote_digest_binds_block_and_view(self):
        a = vote_signature(0, block_id=5, view=2)
        b = vote_signature(0, block_id=5, view=3)
        c = vote_signature(0, block_id=6, view=2)
        assert a.digest != b.digest
        assert a.digest != c.digest
