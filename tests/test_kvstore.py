"""Unit tests for the KV state machine."""

import hashlib

import pytest

from repro.crypto import GENESIS_QC
from repro.kvstore import KVStore, kv_digest
from repro.types import MicroBlock, make_microblock_id
from repro.types.proposal import Block, Payload, PayloadEntry, Proposal


def make_block(mb_counts=(4,), proposer=1, counter=0):
    microblocks = {}
    entries = []
    for index, count in enumerate(mb_counts):
        mb = MicroBlock(
            id=make_microblock_id(proposer, counter * 100 + index),
            origin=proposer, tx_count=count, tx_payload=128,
            created_at=0.0, sum_arrival=0.0,
        )
        microblocks[mb.id] = mb
        entries.append(PayloadEntry(mb_id=mb.id))
    proposal = Proposal(
        block_id=counter + 1, view=counter + 1, height=counter + 1,
        proposer=proposer, parent_id=counter, justify=GENESIS_QC,
        payload=Payload(entries=tuple(entries)),
    )
    return Block(proposal=proposal, microblocks=microblocks)


def test_apply_counts_transactions():
    store = KVStore()
    store.apply_block(make_block((4, 6)))
    assert store.tx_applied == 10
    assert store.applied_block_ids == [1]


def test_same_blocks_same_state():
    a, b = KVStore(), KVStore()
    for counter in range(3):
        block = make_block((4,), counter=counter)
        a.apply_block(block)
        b.apply_block(block)
    assert a.state_digest() == b.state_digest()


def test_different_blocks_different_state():
    a, b = KVStore(), KVStore()
    a.apply_block(make_block((4,), counter=0))
    b.apply_block(make_block((5,), counter=0))
    assert a.state_digest() != b.state_digest()


def test_partial_block_rejected():
    block = make_block((4,))
    missing_id = next(iter(block.microblocks))
    del block.microblocks[missing_id]
    with pytest.raises(ValueError):
        KVStore().apply_block(block)


def test_get_defaults_to_zero():
    assert KVStore().get(123) == 0


def test_writes_visible():
    store = KVStore(key_space=10)
    store.apply_block(make_block((20,)))
    assert any(store.get(key) > 0 for key in range(10))


def test_invalid_key_space():
    with pytest.raises(ValueError):
        KVStore(key_space=0)


def test_digest_is_stable_hex_not_process_salted():
    """The digest must be reproducible in another process: sha256-based,
    never the per-process-salted builtin ``hash``."""
    store = KVStore()
    store.apply_block(make_block((4, 6)))
    digest = store.state_digest()
    assert isinstance(digest, str)
    assert len(digest) == 64
    int(digest, 16)  # valid hex
    # Recompute from first principles: XOR of per-pair sha256 digests.
    acc = bytearray(32)
    for key in range(10_000):
        value = store.get(key)
        if value:
            pair = hashlib.sha256(f"{key}:{value}".encode()).digest()
            acc = bytearray(a ^ b for a, b in zip(acc, pair))
    assert digest == bytes(acc).hex()


def test_digest_order_independent():
    assert kv_digest({1: 2, 3: 4}) == kv_digest({3: 4, 1: 2})
    assert kv_digest({}) == "0" * 64


def test_apply_tracks_height_cursor():
    store = KVStore()
    store.apply_block(make_block((4,), counter=0))
    store.apply_block(make_block((4,), counter=1))
    assert store.last_height == 2
    assert store.last_block_id == 2
    assert store.blocks_applied == 2
