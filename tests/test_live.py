"""Live runtime tests: scheduler/transport units, oracle replay, and the
4-replica localhost smoke runs demanded by the acceptance criteria."""

import asyncio
import json
import time

import pytest

from repro.config import ProtocolConfig
from repro.harness.config import ExperimentConfig
from repro.live.network import LiveNetwork
from repro.live.orchestrator import (
    LiveConfig,
    allocate_ports,
    run_live,
)
from repro.live.scheduler import RealtimeScheduler
from repro.live.verify import verify_events
from repro.live.wire import to_wire
from repro.mempool.base import MessageKinds
from repro.sim.interfaces import Channel, Scheduler, Transport
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.types.microblock import MicroBlock
from repro.types.proposal import Payload, Proposal
from repro.crypto.certificates import QuorumCert


# -- the seam ----------------------------------------------------------------

def test_sim_backends_satisfy_the_seam():
    assert issubclass(Simulator, Scheduler)
    assert issubclass(Network, Transport)
    assert issubclass(RealtimeScheduler, Scheduler)
    assert issubclass(LiveNetwork, Transport)


# -- realtime scheduler ------------------------------------------------------

def test_realtime_scheduler_clock_tracks_epoch():
    async def scenario():
        loop = asyncio.get_running_loop()
        scheduler = RealtimeScheduler(loop, epoch=time.time() - 5.0)
        assert 4.9 < scheduler.now < 5.5

    asyncio.run(scenario())


def test_realtime_scheduler_fires_and_cancels_timers():
    async def scenario():
        loop = asyncio.get_running_loop()
        scheduler = RealtimeScheduler(loop)
        fired = []
        keep = scheduler.schedule(0.01, lambda: fired.append("keep"))
        drop = scheduler.schedule(0.01, lambda: fired.append("drop"))
        drop.cancel()
        assert keep.active and not drop.active
        await asyncio.sleep(0.05)
        assert fired == ["keep"]
        assert not keep.active  # fired timers stop reporting active
        keep.cancel()  # cancelling a fired timer is a no-op

    asyncio.run(scenario())


def test_realtime_scheduler_clamps_negative_delay():
    async def scenario():
        loop = asyncio.get_running_loop()
        scheduler = RealtimeScheduler(loop)
        fired = []
        scheduler.schedule_at(scheduler.now - 10.0, lambda: fired.append(1))
        await asyncio.sleep(0.02)
        assert fired == [1]

    asyncio.run(scenario())


# -- live network ------------------------------------------------------------

def test_live_network_delivers_between_two_endpoints():
    async def scenario():
        loop = asyncio.get_running_loop()
        ports = allocate_ports(2)
        scheduler = RealtimeScheduler(loop)
        alice = LiveNetwork(0, ports, scheduler)
        bob = LiveNetwork(1, ports, scheduler)
        received = []
        alice.register(0, lambda env: received.append(("alice", env)))
        bob.register(1, lambda env: received.append(("bob", env)))
        await alice.start()
        await bob.start()

        for sequence in range(5):
            alice.send(0, 1, MessageKinds.FETCH_REQUEST, 8, sequence,
                       Channel.CONTROL)
        alice.send(0, 0, MessageKinds.RB_ECHO, 8, 99)  # loopback
        bob.broadcast(1, MessageKinds.RB_READY, 8, 7)

        deadline = loop.time() + 5.0
        while len(received) < 7 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        await alice.close()
        await bob.close()

        bob_got = [env.payload for who, env in received if who == "bob"
                   and env.kind == MessageKinds.FETCH_REQUEST]
        assert bob_got == [0, 1, 2, 3, 4]  # per-peer FIFO preserved
        alice_got = [(env.kind, env.payload, env.src)
                     for who, env in received if who == "alice"]
        assert (MessageKinds.RB_ECHO, 99, 0) in alice_got  # loopback
        assert (MessageKinds.RB_READY, 7, 1) in alice_got  # broadcast
        assert alice.bytes_out > 0 and bob.bytes_in > 0

    asyncio.run(scenario())


def test_live_network_rejects_foreign_registration():
    async def scenario():
        loop = asyncio.get_running_loop()
        network = LiveNetwork(0, allocate_ports(2), RealtimeScheduler(loop))
        with pytest.raises(ValueError, match="cannot host"):
            network.register(1, lambda env: None)

    asyncio.run(scenario())


def test_send_accounting_skips_backpressure_drops():
    """Frames shed by a full bounded queue must not count as sent."""
    async def scenario():
        from repro.live.network import DATA_QUEUE_CAP

        loop = asyncio.get_running_loop()
        ports = allocate_ports(2)  # nothing listens on either port
        network = LiveNetwork(0, ports, RealtimeScheduler(loop))
        await network.start(listen=False)
        extra = 25
        for index in range(DATA_QUEUE_CAP + extra):
            network.send(0, 1, MessageKinds.MICROBLOCK, 8, index)
        # The link never connects, so exactly DATA_QUEUE_CAP frames
        # boarded; the overflow was dropped and must not be in the
        # sent tallies (the pre-fix code counted all of them).
        assert network.stats.messages_sent[MessageKinds.MICROBLOCK] == (
            DATA_QUEUE_CAP
        )
        assert network.stats.frames_dropped == extra
        # byte tally covers exactly the frames that boarded, no more
        expected = sum(
            len(network.codec.encode(
                0, MessageKinds.MICROBLOCK, Channel.DATA, index))
            for index in range(DATA_QUEUE_CAP)
        )
        assert network.stats.node_bytes(0) == expected
        await network.close(drain_timeout=0.05)

    asyncio.run(scenario())


def test_broadcast_encodes_once_per_payload():
    async def scenario():
        loop = asyncio.get_running_loop()
        ports = allocate_ports(4)
        network = LiveNetwork(0, ports, RealtimeScheduler(loop))
        await network.start(listen=False)
        encoded = []
        real_codec = network.codec

        class CountingCodec:
            name = real_codec.name
            preamble = real_codec.preamble
            decode = staticmethod(real_codec.decode)

            @staticmethod
            def encode(src, kind, channel, payload):
                encoded.append(kind)
                return real_codec.encode(src, kind, channel, payload)

        network.codec = CountingCodec()
        network.broadcast(0, MessageKinds.RB_READY, 8, 1234)
        assert encoded == [MessageKinds.RB_READY]  # one encode, 3 links
        assert network.stats.messages_sent[MessageKinds.RB_READY] == 3
        await network.close(drain_timeout=0.05)

    asyncio.run(scenario())


def test_live_network_send_asserts_purity():
    async def scenario():
        loop = asyncio.get_running_loop()
        ports = allocate_ports(2)
        network = LiveNetwork(0, ports, RealtimeScheduler(loop))
        await network.start(listen=False)
        from repro.live.wire import WireError

        with pytest.raises(WireError, match="pure data"):
            network.send(0, 1, MessageKinds.MICROBLOCK, 8, object())
        await network.close()

    asyncio.run(scenario())


# -- oracle replay -----------------------------------------------------------

def _proposal(block_id, height, parent_id, proposer=0, mb_ids=()):
    return Proposal(
        block_id=block_id, view=height, height=height, proposer=proposer,
        parent_id=parent_id,
        justify=QuorumCert(block_id=parent_id, view=0, signers=(0, 1, 2)),
        payload=Payload(entries=()),
        created_at=float(height),
    )


def _commit_event(t, node, proposal):
    return {"t": t, "node": node, "kind": "commit", "data": to_wire(proposal)}


def test_verify_events_accepts_consistent_chains():
    chain = [_proposal(10, 1, 0), _proposal(11, 2, 10)]
    events = [
        _commit_event(float(i), node, prop)
        for node in (0, 1)
        for i, prop in enumerate(chain)
    ]
    assert verify_events(events, emitted_tx=0) == []


def test_verify_events_flags_a_fork():
    events = [
        _commit_event(1.0, 0, _proposal(10, 1, 0)),
        _commit_event(1.1, 1, _proposal(99, 1, 0)),  # same height, other block
    ]
    violations = verify_events(events, emitted_tx=0)
    assert any(v.kind == "fork" for v in violations)


def test_verify_events_flags_fabricated_microblocks():
    mb = MicroBlock(id=77, origin=0, tx_count=5, tx_payload=128,
                    created_at=0.5, sum_arrival=2.0)
    committed = Proposal(
        block_id=10, view=1, height=1, proposer=0, parent_id=0,
        justify=QuorumCert(block_id=0, view=0, signers=(0, 1, 2)),
        payload=Payload(entries=()), created_at=1.0,
    )
    committed.payload = Payload(
        entries=tuple(), embedded=(mb,)
    )
    events = [_commit_event(1.0, 0, committed)]  # no creation event
    violations = verify_events(events, emitted_tx=100)
    assert any(v.kind == "fabricated" for v in violations)
    # with the creation recorded, the same commit is clean
    events = [
        {"t": 0.5, "node": 0, "kind": "mb", "data": to_wire(mb)},
        _commit_event(1.0, 0, committed),
    ]
    assert verify_events(events, emitted_tx=100) == []


# -- 4-replica localhost smoke runs ------------------------------------------

def _live_config(mempool, rate=300.0):
    return LiveConfig(
        experiment=ExperimentConfig(
            protocol=ProtocolConfig(
                n=4, mempool=mempool, consensus="hotstuff"
            ),
            rate_tps=rate,
            duration=1.2,
            warmup=0.5,
            seed=7,
            label=f"smoke-{mempool}",
        ),
        startup_grace=2.5,
    )


@pytest.mark.slow
def test_live_smoke_hotstuff_stratus():
    result = run_live(_live_config("stratus"))
    assert result.committed_blocks >= 1
    assert result.violations == []
    assert result.committed_tx > 0
    assert all(entry["bytes_in"] > 0 for entry in result.per_replica)
    json.dumps(result.to_dict())  # the report must be JSON-able


@pytest.mark.slow
def test_live_smoke_hotstuff_native():
    result = run_live(_live_config("native"))
    assert result.committed_blocks >= 1
    assert result.violations == []


@pytest.mark.slow
def test_live_smoke_hotstuff_sharded_two_shards():
    """n=4 over real TCP with two shards: certificate-only ordering end
    to end — shard pushes, cert broadcasts, cert-bearing proposals, and
    the shard-aware replay oracles — on the live runtime."""
    from repro.config import ShardingConfig

    config = LiveConfig(
        experiment=ExperimentConfig(
            protocol=ProtocolConfig(
                n=4, mempool="sharded-stratus", consensus="hotstuff",
                sharding=ShardingConfig(shards=2),
            ),
            rate_tps=300.0,
            duration=1.2,
            warmup=0.5,
            seed=7,
            label="smoke-sharded-stratus",
        ),
        startup_grace=2.5,
    )
    result = run_live(config)
    assert result.committed_blocks >= 1
    assert result.violations == []
    assert result.committed_tx > 0
    assert all(entry["bytes_in"] > 0 for entry in result.per_replica)
    json.dumps(result.to_dict())
