"""Scaled-down versions of the paper's headline experiments.

Each test reproduces the *mechanism* behind a figure at a size that runs
in seconds; the full-scale sweeps live in ``benchmarks/``.
"""

import pytest

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.sim.topology import FluctuationWindow


def run_fluctuation(preset: str) -> tuple:
    """Fig. 7 setup: WAN, 25K tx/s, 1 s view timer, 5 s disturbance."""
    protocol = tuned_protocol(
        preset, n=32, topology_kind="wan", view_timeout=1.0,
        batch_bytes=32 * 1024, batch_timeout=0.4,
    )
    result = run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=25_000,
        duration=13.0, warmup=1.0, seed=3, label=preset,
        fluctuation=FluctuationWindow(
            start=4.0, duration=5.0, base=0.1, jitter=0.05,
            throughput_factor=0.15,
        ),
    ))
    hub = result.metrics
    return (
        hub.throughput_tps(2.0, 4.0),    # before
        hub.throughput_tps(4.5, 9.0),    # during
        hub.throughput_tps(10.0, 14.0),  # after
        result.view_changes,
    )


@pytest.mark.slow
def test_fig7_simple_smp_collapses_under_asynchrony():
    before, during, after, view_changes = run_fluctuation("SMP-HS")
    assert during < 0.2 * before       # throughput collapses
    assert view_changes > 20           # view-change storm
    assert after > 0.8 * before        # recovers afterwards


@pytest.mark.slow
def test_fig7_stratus_degrades_gracefully():
    before, during, after, view_changes = run_fluctuation("S-HS")
    assert during > 0.1 * before       # keeps making progress
    assert view_changes < 10           # no view-change storm
    assert after > before              # drains the backlog quickly


@pytest.mark.slow
def test_fig7_stratus_beats_simple_during_asynchrony():
    _, smp_during, _, smp_vc = run_fluctuation("SMP-HS")
    _, shs_during, _, shs_vc = run_fluctuation("S-HS")
    assert shs_during > 2 * smp_during
    assert shs_vc < smp_vc / 4


def run_byzantine(preset: str, byz: int, n: int = 31, **overrides):
    """Fig. 8 setup: LAN, censoring senders, near-saturating load.

    Links are throttled to 100 Mb/s so saturation is reachable at a
    simulation-friendly rate; the mechanism (fetch storms at the
    proposer) is identical at 1 Gb/s with proportionally higher load.
    """
    protocol = tuned_protocol(
        preset, n=n, topology_kind="lan",
        batch_bytes=64 * 1024, batch_timeout=0.2, **overrides,
    )
    result = run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="lan", bandwidth_bps=100e6,
        rate_tps=40_000, duration=4.0, warmup=1.5, seed=5,
        fault="censor" if byz else "none", fault_count=byz,
        label=f"{preset}-byz{byz}",
    ))
    return result


@pytest.mark.slow
def test_fig8_byzantine_senders_hurt_simple_smp_more():
    smp_byz = run_byzantine("SMP-HS", 9)
    shs_clean = run_byzantine("S-HS", 0)
    shs_byz = run_byzantine("S-HS", 9)
    # Stratus keeps committing nearly everything offered; the simple SMP
    # loses a chunk of goodput to the fetch storms.
    smp_goodput = smp_byz.committed_tx / smp_byz.emitted_tx
    shs_goodput = shs_byz.committed_tx / shs_byz.emitted_tx
    assert shs_goodput > 0.9
    assert smp_goodput < shs_goodput - 0.1
    # Simple SMP latency inflates sharply; Stratus stays flat: consensus
    # never waits on missing microblocks (PAB-Provable Availability).
    assert smp_byz.latency_mean > 2 * shs_byz.latency_mean
    assert shs_byz.latency_mean < 1.5 * shs_clean.latency_mean + 0.05


@pytest.mark.slow
def test_fig8_larger_pab_quorum_reduces_fetches():
    f = (31 - 1) // 3
    small_q = run_byzantine("S-HS", 9, pab_quorum=f + 1)
    large_q = run_byzantine("S-HS", 9, pab_quorum=2 * f + 1)
    assert large_q.metrics.fetch_count < small_q.metrics.fetch_count


def run_skewed(preset: str, d: int = 1, n: int = 16):
    """Fig. 10 setup: WAN, Zipf-1 skew, offered load above the hottest
    replica's solo dissemination capacity (~23K tx/s here)."""
    protocol = tuned_protocol(
        preset, n=n, topology_kind="wan",
        batch_bytes=16 * 1024, batch_timeout=0.1, lb_samples=d,
    )
    return run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=30_000,
        duration=6.0, warmup=3.0, seed=7, selector="zipf1",
        label=f"{preset}-d{d}",
    ))


@pytest.mark.slow
def test_fig10_load_balancing_helps_under_skew():
    stratus = run_skewed("S-HS", d=3)
    simple = run_skewed("SMP-HS")
    assert stratus.throughput_tps > simple.throughput_tps
    assert stratus.metrics.forwarded_microblocks > 0
