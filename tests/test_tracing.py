"""Tests for the protocol tracing subsystem."""

import pytest

from repro.tracing import Tracer

from tests.helpers import inject, make_cluster


class TestTracerUnit:
    def test_record_and_query(self):
        tracer = Tracer()
        tracer.record(1.0, 0, "propose", view=1)
        tracer.record(2.0, 1, "vote", view=1)
        tracer.record(3.0, 0, "commit", height=1)
        assert len(tracer) == 3
        proposes = list(tracer.query(kind="propose"))
        assert len(proposes) == 1
        assert proposes[0].details["view"] == 1

    def test_query_filters(self):
        tracer = Tracer()
        for t in range(10):
            tracer.record(float(t), t % 2, "tick")
        assert len(list(tracer.query(node=0))) == 5
        assert len(list(tracer.query(start=5.0))) == 5
        assert len(list(tracer.query(start=2.0, end=4.0))) == 2

    def test_ring_buffer_bounds(self):
        tracer = Tracer(capacity=5)
        for t in range(8):
            tracer.record(float(t), 0, "tick")
        assert len(tracer) == 5
        assert tracer.dropped == 3
        times = [event.time for event in tracer.query()]
        assert times == [3.0, 4.0, 5.0, 6.0, 7.0]

    def test_counts(self):
        tracer = Tracer()
        tracer.record(0.0, 0, "a")
        tracer.record(0.0, 0, "a")
        tracer.record(0.0, 0, "b")
        assert tracer.counts() == {"a": 2, "b": 1}

    def test_render(self):
        tracer = Tracer()
        tracer.record(1.5, 2, "commit", height=3)
        text = tracer.render()
        assert "r2 commit" in text
        assert "height=3" in text

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestTracerIntegration:
    def test_protocol_events_recorded(self):
        exp = make_cluster(n=4, mempool="stratus")
        tracer = Tracer()
        for replica in exp.replicas:
            replica.tracer = tracer
        inject(exp, 0, count=4)
        exp.sim.run_until(2.0)
        counts = tracer.counts()
        assert counts.get("mb_new", 0) >= 1
        assert counts.get("mb_stable", 0) >= 1
        assert counts.get("propose", 0) >= 1
        assert counts.get("commit", 0) >= 4  # one per replica per block

    def test_tracing_disabled_by_default(self):
        exp = make_cluster(n=4, mempool="stratus")
        inject(exp, 0, count=4)
        exp.sim.run_until(1.0)  # must simply not crash
        assert exp.replicas[0].tracer is None
