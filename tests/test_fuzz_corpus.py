"""Fixed-seed fuzz corpus: tier-1 regression over the protocol grid.

Twenty (root_seed, index) pairs chosen so that every consensus x mempool
cell runs exactly once with the invariant oracles armed. The pairs come
from fuzz sweeps that are known green; a failure here is a regression in
a protocol engine, a mempool, the harness, or the oracles themselves —
the replay command for any failing entry is::

    python -m repro fuzz --seed <root> --start <index> --iterations 1

The whole corpus is budgeted to stay well under a minute; keep new
entries short (the fuzzer's duration_range already caps runs at 5s of
simulated time).
"""

import time

import pytest

from repro.verification import ScenarioFuzzer, run_scenario

#: (root_seed, scenario_index, consensus, mempool) — the last two are
#: asserted so a silent change to the derivation (which would quietly
#: re-point the corpus at different cells) fails loudly.
CORPUS = [
    (7, 0, "hotstuff", "native"),
    (7, 1, "twochain", "gossip"),
    (7, 6, "streamlet", "narwhal"),
    (7, 8, "twochain", "stratus"),
    (7, 11, "pbft", "native"),
    (7, 12, "hotstuff", "stratus"),
    (7, 14, "twochain", "simple"),
    (7, 16, "pbft", "gossip"),
    (7, 22, "pbft", "simple"),
    (7, 32, "hotstuff", "gossip"),
    (7, 34, "hotstuff", "narwhal"),
    (7, 35, "streamlet", "native"),
    (7, 42, "pbft", "narwhal"),
    (7, 45, "streamlet", "stratus"),
    (42, 3, "twochain", "narwhal"),
    (42, 4, "pbft", "stratus"),
    (42, 5, "streamlet", "gossip"),
    (42, 7, "hotstuff", "simple"),
    (42, 8, "streamlet", "simple"),
    (42, 10, "twochain", "native"),
]

#: Per-scenario wall-clock budget, generous for slow CI machines.
SCENARIO_BUDGET_S = 30.0


def test_corpus_covers_full_grid():
    cells = {(consensus, mempool) for _, _, consensus, mempool in CORPUS}
    assert len(cells) == 20  # 4 consensus kinds x 5 mempools


@pytest.mark.parametrize(
    "root,index,consensus,mempool",
    CORPUS,
    ids=[f"{c}-{m}-r{r}i{i}" for r, i, c, m in CORPUS],
)
def test_corpus_scenario_clean(root, index, consensus, mempool):
    scenario = ScenarioFuzzer(root).scenario(index)
    assert (scenario.consensus, scenario.mempool) == (consensus, mempool)
    started = time.monotonic()
    outcome = run_scenario(scenario)
    elapsed = time.monotonic() - started
    assert outcome.ok, "\n".join(str(v) for v in outcome.violations)
    assert outcome.committed_tx > 0
    assert elapsed < SCENARIO_BUDGET_S


# -- sharded-stratus cell ----------------------------------------------------
#
# ``sharded-stratus`` is deliberately NOT in the fuzzer's pinned pool
# (see FUZZ_MEMPOOL_KINDS): adding it there would re-derive every
# recorded (seed, index) cell above. It gets a hand-rolled chaos cell
# instead — certificate-only ordering under crash + partition with the
# shard-aware oracles armed.

def test_sharded_stratus_hotstuff_chaos_cell():
    from repro.config import ProtocolConfig, ShardingConfig
    from repro.harness.config import ExperimentConfig
    from repro.harness.presets import chaos_schedule
    from repro.harness.runner import build_experiment
    from repro.verification import standard_suite

    protocol = ProtocolConfig(
        n=8, consensus="hotstuff", mempool="sharded-stratus",
        sharding=ShardingConfig(shards=2),
        batch_bytes=4 * 128, batch_timeout=0.05, view_timeout=0.5,
    )
    config = ExperimentConfig(
        protocol=protocol, rate_tps=400.0, duration=6.0, warmup=0.5,
        seed=11, label="sharded-chaos-crash-partition",
        faults=chaos_schedule("crash-partition", 8),
    )
    started = time.monotonic()
    result = build_experiment(config, standard_suite()).run()
    elapsed = time.monotonic() - started
    assert result.violations == []
    assert result.committed_tx > 0
    assert elapsed < SCENARIO_BUDGET_S


# -- durability cells --------------------------------------------------------
#
# The restart-under-chaos corpus: crash-restart preset with the durable
# executor attached, one cell per fsync policy. Unlike the grid corpus
# above these are not fuzzer-derived — the point is that a replica that
# loses its memory mid-run recovers from its own disk (checkpoint + WAL
# tail), not by replaying the whole protocol history, and the invariant
# oracles still see zero violations.

@pytest.mark.parametrize("fsync", ["always", "interval"])
def test_restart_under_chaos_recovers_from_disk(tmp_path, fsync):
    from repro.config import ProtocolConfig
    from repro.durability import DurabilityConfig
    from repro.harness.config import ExperimentConfig
    from repro.harness.presets import chaos_schedule
    from repro.harness.runner import build_experiment
    from repro.verification import standard_suite

    protocol = ProtocolConfig(
        n=4, consensus="hotstuff", mempool="stratus",
        batch_bytes=4 * 128, batch_timeout=0.05, view_timeout=0.5,
    )
    config = ExperimentConfig(
        protocol=protocol, rate_tps=400.0, duration=6.0, warmup=0.5,
        seed=7, label=f"durable-crash-restart-{fsync}",
        faults=chaos_schedule("crash-restart", 4),
        durability=DurabilityConfig(fsync=fsync, checkpoint_interval=4),
        data_dir=str(tmp_path),
    )
    started = time.monotonic()
    experiment = build_experiment(config, standard_suite())
    result = experiment.run()
    elapsed = time.monotonic() - started
    assert result.violations == []
    assert result.committed_tx > 0
    # Replica 3 (the preset's victim) restarted at t=4 s; its executor
    # must have been re-opened from disk, not rebuilt from genesis.
    victim = experiment.replicas[3].executor
    assert victim.recovery.source in ("checkpoint", "checkpoint+wal")
    assert victim.recovery.checkpoint_height > 0
    # And the hub carries the recovery record for reporting.
    report = experiment.metrics.recovery_report()
    assert [row["node"] for row in report] == [3]
    assert report[0]["source"] == victim.recovery.source
    assert elapsed < SCENARIO_BUDGET_S
