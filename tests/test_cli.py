"""Tests for the command-line runner."""

import pytest

from repro.cli import build_parser, run_cli


def test_defaults_parse():
    args = build_parser().parse_args([])
    assert args.preset == ["S-HS"]
    assert args.n == [16]
    assert args.topology == "lan"


def test_unknown_preset_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--preset", "X-HS"])


def test_single_run_prints_table(capsys):
    code = run_cli([
        "--preset", "S-HS", "--n", "8",
        "--rate", "2000", "--duration", "1.5", "--warmup", "0.5",
        "--batch-bytes", "1024",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "S-HS" in out
    assert "tput (tx/s)" in out


def test_sweep_runs_all_combinations(capsys):
    code = run_cli([
        "--preset", "S-HS", "SMP-HS", "--n", "4", "8",
        "--rate", "1000", "--duration", "1.0", "--warmup", "0.5",
        "--batch-bytes", "1024",
    ])
    assert code == 0
    out = capsys.readouterr().out
    # 2 presets x 2 sizes = 4 result rows.
    assert out.count("S-HS") >= 2
    assert out.count("SMP-HS") >= 2


def test_timeline_flag(capsys):
    code = run_cli([
        "--preset", "S-HS", "--n", "4",
        "--rate", "1000", "--duration", "1.0", "--warmup", "0.5",
        "--batch-bytes", "1024", "--timeline",
    ])
    assert code == 0
    assert "timeline" in capsys.readouterr().out


def test_fault_arguments(capsys):
    code = run_cli([
        "--preset", "S-HS", "--n", "7",
        "--rate", "1000", "--duration", "1.0", "--warmup", "0.5",
        "--batch-bytes", "1024",
        "--fault", "silent", "--fault-count", "2",
    ])
    assert code == 0


def test_disturbance_window(capsys):
    code = run_cli([
        "--preset", "S-HS", "--n", "4", "--topology", "wan",
        "--rate", "1000", "--duration", "2.0", "--warmup", "0.5",
        "--batch-bytes", "1024", "--disturb", "1.0", "0.5",
    ])
    assert code == 0


def test_profile_flag_prints_hot_functions(capsys):
    code = run_cli([
        "--preset", "S-HS", "--n", "4",
        "--rate", "500", "--duration", "0.5", "--warmup", "0.2",
        "--batch-bytes", "1024",
        "--profile", "--profile-top", "5",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "tput (tx/s)" in out  # the results table still prints
    assert "cProfile" in out
    assert "tottime" in out
