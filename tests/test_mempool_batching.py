"""Unit tests for microblock batching."""

import pytest

from repro.config import ProtocolConfig
from repro.mempool.batching import MicroBlockBatcher
from repro.sim.engine import Simulator
from repro.types import TxBatch


class FakeHost:
    def __init__(self, node_id=0):
        self.node_id = node_id
        self.sim = Simulator()

    def notify_microblock(self, microblock):
        pass


def make_batcher(batch_bytes=512, tx_payload=128, batch_timeout=0.05):
    host = FakeHost()
    config = ProtocolConfig(
        n=4, batch_bytes=batch_bytes, tx_payload=tx_payload,
        batch_timeout=batch_timeout,
    )
    emitted = []
    batcher = MicroBlockBatcher(host, config, emitted.append)
    return host, batcher, emitted


def batch(count, when=0.0, payload=128):
    return TxBatch(count=count, payload_bytes=payload, mean_arrival=when)


def test_full_microblock_emitted_immediately():
    host, batcher, emitted = make_batcher()  # 4 txs per microblock
    batcher.add(batch(4))
    assert len(emitted) == 1
    assert emitted[0].tx_count == 4
    assert emitted[0].origin == 0


def test_partial_batch_waits():
    host, batcher, emitted = make_batcher()
    batcher.add(batch(3))
    assert emitted == []
    assert batcher.pending_tx_count == 3


def test_flush_timer_emits_partial_microblock():
    host, batcher, emitted = make_batcher(batch_timeout=0.05)
    batcher.add(batch(3))
    host.sim.run_until(0.1)
    assert len(emitted) == 1
    assert emitted[0].tx_count == 3
    assert batcher.pending_tx_count == 0


def test_large_batch_splits_into_multiple_microblocks():
    host, batcher, emitted = make_batcher()
    batcher.add(batch(10))
    assert [mb.tx_count for mb in emitted] == [4, 4]
    assert batcher.pending_tx_count == 2


def test_microblock_ids_unique_and_increasing():
    host, batcher, emitted = make_batcher()
    for _ in range(5):
        batcher.add(batch(4))
    ids = [mb.id for mb in emitted]
    assert len(set(ids)) == 5
    assert ids == sorted(ids)


def test_mean_arrival_propagates():
    host, batcher, emitted = make_batcher()
    batcher.add(batch(4, when=2.5))
    assert emitted[0].mean_arrival == pytest.approx(2.5)


def test_mean_arrival_mixes_batches():
    host, batcher, emitted = make_batcher()
    batcher.add(batch(2, when=1.0))
    batcher.add(batch(2, when=3.0))
    assert emitted[0].mean_arrival == pytest.approx(2.0)


def test_flush_timer_resets_after_full_microblock():
    host, batcher, emitted = make_batcher(batch_timeout=0.05)
    batcher.add(batch(4))
    host.sim.run_until(0.2)
    assert len(emitted) == 1  # no empty flush afterwards


def test_payload_mismatch_rejected():
    host, batcher, _ = make_batcher(tx_payload=128)
    with pytest.raises(ValueError):
        batcher.add(batch(4, payload=256))


def test_explicit_flush():
    host, batcher, emitted = make_batcher()
    batcher.add(batch(1))
    batcher.flush()
    assert len(emitted) == 1
    assert emitted[0].tx_count == 1


def test_counter_tracks_emissions():
    host, batcher, emitted = make_batcher()
    batcher.add(batch(8))
    assert batcher.microblocks_emitted == 2
