"""Unit tests for the metrics hub and weighted digest."""

import pytest

from repro.metrics import MetricsHub, WeightedDigest
from repro.sim.engine import Simulator


class TestWeightedDigest:
    def test_empty(self):
        digest = WeightedDigest()
        assert digest.mean == 0.0
        assert digest.percentile(50) == 0.0
        assert len(digest) == 0

    def test_mean_weighted(self):
        digest = WeightedDigest()
        digest.add(1.0, weight=1.0)
        digest.add(2.0, weight=3.0)
        assert digest.mean == pytest.approx(1.75)
        assert digest.total_weight == pytest.approx(4.0)

    def test_percentiles(self):
        digest = WeightedDigest()
        for value in range(1, 101):
            digest.add(float(value))
        assert digest.percentile(50) == pytest.approx(50.0)
        assert digest.percentile(95) == pytest.approx(95.0)
        assert digest.percentile(100) == pytest.approx(100.0)

    def test_weight_shifts_percentile(self):
        digest = WeightedDigest()
        digest.add(1.0, weight=99.0)
        digest.add(100.0, weight=1.0)
        assert digest.percentile(50) == pytest.approx(1.0)
        assert digest.percentile(100) == pytest.approx(100.0)

    def test_min_max(self):
        digest = WeightedDigest()
        digest.extend([(5.0, 1.0), (2.0, 1.0), (9.0, 1.0)])
        assert digest.min == 2.0
        assert digest.max == 9.0

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            WeightedDigest().add(1.0, weight=0.0)

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            WeightedDigest().percentile(101)


class TestMetricsHub:
    def make_hub(self):
        sim = Simulator()
        return sim, MetricsHub(sim)

    def test_commit_recorded(self):
        sim, hub = self.make_hub()
        ok = hub.record_commit(
            block_id=1, tx_count=100, microblock_count=2,
            latencies=[(0.5, 50.0), (0.7, 50.0)], commit_time=1.0,
        )
        assert ok
        assert hub.committed_tx_total == 100
        assert hub.latency.mean == pytest.approx(0.6)

    def test_duplicate_commit_ignored(self):
        sim, hub = self.make_hub()
        hub.record_commit(1, 100, 1, [(0.5, 100.0)], commit_time=1.0)
        ok = hub.record_commit(1, 999, 9, [(9.9, 999.0)], commit_time=2.0)
        assert not ok
        assert hub.committed_tx_total == 100

    def test_throughput_windowed(self):
        sim, hub = self.make_hub()
        hub.record_commit(1, 100, 1, [], commit_time=0.5)
        hub.record_commit(2, 200, 1, [], commit_time=1.5)
        hub.record_commit(3, 400, 1, [], commit_time=2.5)
        assert hub.throughput_tps(1.0, 3.0) == pytest.approx(300.0)
        assert hub.throughput_tps(0.0, 1.0) == pytest.approx(100.0)

    def test_throughput_series_buckets(self):
        sim, hub = self.make_hub()
        hub.record_commit(1, 100, 1, [], commit_time=0.2)
        hub.record_commit(2, 300, 1, [], commit_time=1.7)
        series = hub.throughput_series(0.0, 2.0, bucket=1.0)
        assert series == [(0.0, 100.0), (1.0, 300.0)]

    def test_latency_stats_windowed(self):
        sim, hub = self.make_hub()
        hub.record_commit(1, 10, 1, [(0.1, 10.0)], commit_time=0.5)
        hub.record_commit(2, 10, 1, [(0.9, 10.0)], commit_time=5.0)
        early = hub.latency_stats(0.0, 1.0)
        assert early.mean == pytest.approx(0.1)

    def test_view_changes_windowed(self):
        sim, hub = self.make_hub()
        sim.schedule(1.0, lambda: hub.record_view_change(0, 3))
        sim.schedule(4.0, lambda: hub.record_view_change(1, 4))
        sim.run()
        assert hub.view_change_count == 2
        assert hub.view_changes_in(0.0, 2.0) == 1

    def test_negative_latency_clamped(self):
        sim, hub = self.make_hub()
        hub.record_commit(1, 10, 1, [(-0.5, 10.0)], commit_time=0.0)
        assert hub.latency.mean == 0.0

    def test_commits_sorted_by_time(self):
        sim, hub = self.make_hub()
        hub.record_commit(2, 1, 1, [], commit_time=2.0)
        hub.record_commit(1, 1, 1, [], commit_time=1.0)
        assert [rec.block_id for rec in hub.commits] == [1, 2]

    def test_counters(self):
        sim, hub = self.make_hub()
        hub.record_forward()
        hub.record_fetch()
        hub.record_fetch()
        hub.record_stable_time(0.25)
        assert hub.forwarded_microblocks == 1
        assert hub.fetch_count == 2
        assert hub.stable_times.mean == pytest.approx(0.25)

    def test_bad_window_rejected(self):
        sim, hub = self.make_hub()
        with pytest.raises(ValueError):
            hub.throughput_tps(2.0, 1.0)


class TestDigestEdgeCases:
    def test_p0_is_minimum_and_p100_is_maximum(self):
        digest = WeightedDigest()
        for value in (5.0, 1.0, 3.0):
            digest.add(value, 2.0)
        assert digest.percentile(0) == pytest.approx(1.0)
        assert digest.percentile(100) == pytest.approx(5.0)

    def test_single_sample_every_percentile(self):
        digest = WeightedDigest()
        digest.add(0.42, 7.0)
        for p in (0, 1, 50, 99, 100):
            assert digest.percentile(p) == pytest.approx(0.42)

    def test_zero_total_weight_reports_zero(self):
        digest = WeightedDigest()
        assert digest.total_weight == 0.0
        assert digest.percentile(50) == 0.0
        assert digest.mean == 0.0
        assert digest.min == 0.0
        assert digest.max == 0.0

    def test_cache_refreshes_after_interleaved_adds(self):
        """Queries between adds must see every sample (dirty-flag path)."""
        digest = WeightedDigest()
        digest.add(1.0, 1.0)
        assert digest.percentile(100) == pytest.approx(1.0)
        digest.add(9.0, 1.0)
        assert digest.percentile(100) == pytest.approx(9.0)
        assert digest.percentile(0) == pytest.approx(1.0)

    def test_matches_linear_scan_reference(self):
        import random

        rng = random.Random(3)
        digest = WeightedDigest()
        samples = []
        for _ in range(100):
            value = rng.uniform(0, 10)
            weight = rng.uniform(0.1, 5.0)
            digest.add(value, weight)
            samples.append((value, weight))
        total = sum(weight for _, weight in samples)
        for p in (0, 10, 25, 50, 75, 90, 99, 100):
            ordered = sorted(samples)
            target = total * (p / 100.0)
            cumulative = 0.0
            expected = ordered[-1][0]
            for value, weight in ordered:
                cumulative += weight
                if cumulative >= target:
                    expected = value
                    break
            assert digest.percentile(p) == pytest.approx(expected)


class TestIncrementalCommitOrder:
    def make_hub(self):
        sim = Simulator()
        return sim, MetricsHub(sim)

    def test_order_maintained_across_interleaved_queries(self):
        sim, hub = self.make_hub()
        hub.record_commit(1, 10, 1, [], commit_time=1.0)
        assert [rec.block_id for rec in hub.commits] == [1]
        hub.record_commit(3, 10, 1, [], commit_time=3.0)
        hub.record_commit(2, 10, 1, [], commit_time=2.0)
        assert [rec.block_id for rec in hub.commits] == [1, 2, 3]
        assert hub.committed_tx_total == 30

    def test_ties_keep_arrival_order(self):
        sim, hub = self.make_hub()
        hub.record_commit(7, 1, 1, [], commit_time=5.0)
        hub.record_commit(8, 1, 1, [], commit_time=1.0)
        hub.record_commit(9, 1, 1, [], commit_time=1.0)
        assert [rec.block_id for rec in hub.commits] == [8, 9, 7]

    def test_windowed_queries_after_out_of_order_insert(self):
        sim, hub = self.make_hub()
        hub.record_commit(1, 100, 1, [], commit_time=2.5)
        hub.record_commit(2, 200, 1, [], commit_time=0.5)
        assert hub.throughput_tps(0.0, 1.0) == pytest.approx(200.0)
        assert hub.throughput_tps(2.0, 3.0) == pytest.approx(100.0)
