"""Live chaos tests: shaping-hook units, backpressure/reconnect units,
and the kill/respawn + partition/heal smoke runs the acceptance criteria
demand (a SIGKILLed replica must rejoin over TCP and commit again)."""

import asyncio
import random

import pytest

from repro.config import ProtocolConfig
from repro.harness.config import ExperimentConfig
from repro.harness.presets import chaos_schedule, resolve_fault_spec
from repro.faults import (
    FaultSchedule,
    Heal,
    LossWindow,
    Partition,
    SwapBehavior,
)
from repro.live.chaos import LinkShaper, LIVE_LINK_BANDWIDTH_BPS
from repro.live.network import DATA_QUEUE_CAP, LiveNetwork, _PeerLink
from repro.live.orchestrator import LiveConfig, allocate_ports, run_live
from repro.live.scheduler import RealtimeScheduler
from repro.mempool.base import MessageKinds
from repro.sim.interfaces import Channel
from repro.sim.network import NetworkStats


class _Clock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


# -- LinkShaper units --------------------------------------------------------

def _shaper(windows, node_id=0, seed=7, clock=None):
    return LinkShaper(
        node_id, windows, clock or _Clock(), random.Random(seed)
    )


def test_shaper_partition_drops_cross_group_frames_only():
    windows = FaultSchedule([
        Partition(at=1.0, duration=2.0, groups=((0, 1),)),
    ]).shaping_spec()
    clock = _Clock(1.5)
    shaper = _shaper(windows, clock=clock)
    # 0 and 1 share a group; 2 and 3 fall into the implicit rest group.
    assert not shaper.drops(0, 1, MessageKinds.PROPOSAL, Channel.CONSENSUS)
    assert not shaper.drops(2, 3, MessageKinds.PROPOSAL, Channel.CONSENSUS)
    assert shaper.drops(0, 2, MessageKinds.PROPOSAL, Channel.CONSENSUS)
    assert shaper.drops(3, 1, MessageKinds.PROPOSAL, Channel.CONSENSUS)
    assert shaper.frames_shed == 2
    # Outside the window nothing drops.
    clock.now = 3.5
    assert not shaper.drops(0, 2, MessageKinds.PROPOSAL, Channel.CONSENSUS)


def test_shaper_heal_closes_the_partition_window():
    windows = FaultSchedule([
        Partition(at=1.0, duration=None, groups=((0, 1),)),
        Heal(at=4.0),
    ]).shaping_spec()
    clock = _Clock(2.0)
    shaper = _shaper(windows, clock=clock)
    assert shaper.drops(0, 2, MessageKinds.VOTE, Channel.CONSENSUS)
    clock.now = 4.5
    assert not shaper.drops(0, 2, MessageKinds.VOTE, Channel.CONSENSUS)


def test_shaper_loss_respects_channel_filter_and_seed():
    windows = FaultSchedule([
        LossWindow(at=0.0, duration=10.0, rate=0.5, channel="data"),
    ]).shaping_spec()

    def run(seed):
        shaper = _shaper(windows, seed=seed, clock=_Clock(1.0))
        return [
            shaper.drops(0, 1, MessageKinds.MICROBLOCK, Channel.DATA)
            for _ in range(64)
        ]

    # Consensus frames never match a data-channel loss window.
    shaper = _shaper(windows, clock=_Clock(1.0))
    assert not any(
        shaper.drops(0, 1, MessageKinds.VOTE, Channel.CONSENSUS)
        for _ in range(64)
    )
    assert shaper.frames_shed == 0
    # Same seed, same coin flips — the determinism the respawn-seeded
    # rng (seed, generation, node) relies on. Different seeds diverge.
    first, second = run(31), run(31)
    assert first == second
    assert any(first)
    assert not all(first)
    assert run(32) != first


def test_shaper_delay_window_samples_base_plus_jitter():
    # Pure latency spike: bandwidth_factor 1.0 keeps the token bucket
    # out, so the sampled hold time is exactly base ± jitter.
    windows = [{
        "kind": "delay", "start": 1.0, "end": 2.0,
        "base": 0.1, "jitter": 0.05, "bandwidth_factor": 1.0,
    }]
    clock = _Clock(1.5)
    shaper = _shaper(windows, clock=clock)
    for _ in range(32):
        delay = shaper.write_delay(1, 1024, Channel.DATA)
        assert 0.05 <= delay <= 0.15
    clock.now = 2.5
    assert shaper.write_delay(1, 1024, Channel.DATA) == 0.0


def test_shaper_bandwidth_squeeze_throttles_via_token_bucket():
    windows = [{
        "kind": "bandwidth", "start": 0.0, "end": 100.0,
        "factor": 0.1, "nodes": [0],
    }]
    clock = _Clock(1.0)
    shaper = _shaper(windows, node_id=0, clock=clock)
    rate = LIVE_LINK_BANDWIDTH_BPS * 0.1 / 8.0  # shaped bytes/s
    # The first burst's worth passes free; past it, hold time is the
    # token deficit over the shaped rate.
    assert shaper.write_delay(1, 256 * 1024, Channel.DATA) == 0.0
    delay = shaper.write_delay(1, 1024 * 1024, Channel.DATA)
    assert delay == pytest.approx(1024 * 1024 / rate, rel=0.01)
    # A squeeze scoped to node 0 leaves other nodes unshaped.
    other = _shaper(windows, node_id=2, clock=clock)
    assert other.write_delay(1, 1024 * 1024, Channel.DATA) == 0.0


# -- schedule plumbing -------------------------------------------------------

def test_resolve_fault_spec_shares_one_grammar():
    preset = resolve_fault_spec("crash-restart", 4)
    assert len(preset.process_events()) == 2
    inline = resolve_fault_spec(
        '[{"event": "loss", "at": 1.0, "duration": 2.0, "rate": 0.5}]', 4
    )
    assert inline.shaping_spec()[0]["kind"] == "loss"
    with pytest.raises(ValueError, match="not found"):
        resolve_fault_spec("@/nonexistent/schedule.json", 4)
    with pytest.raises(ValueError):
        resolve_fault_spec("crash-restart", 2)  # presets need n >= 4


def test_validate_live_rejects_behavior_swaps():
    schedule = FaultSchedule([
        SwapBehavior(at=1.0, node=0, behavior="silent"),
    ])
    schedule.validate(4)  # fine in-sim
    with pytest.raises(ValueError, match="live backend"):
        schedule.validate_live(4)
    config = ExperimentConfig(
        protocol=ProtocolConfig(n=4, mempool="stratus", consensus="hotstuff"),
        rate_tps=10.0, duration=1.0, faults=schedule,
    )
    with pytest.raises(ValueError, match="live backend"):
        LiveConfig(experiment=config)  # inherits experiment.faults


def test_every_chaos_preset_splits_cleanly_for_live():
    for name in (
        "crash-restart", "crash-partition", "fig7-disturbance",
        "flaky-data", "leader-squeeze",
    ):
        schedule = chaos_schedule(name, 4)
        schedule.validate_live(4)
        split = len(schedule.process_events()) + len(schedule.shaping_spec())
        assert split == len(schedule.events)


# -- backpressure / reconnection units ---------------------------------------

def test_peer_link_bounds_queues_and_sheds_data_first():
    async def scenario():
        stats = NetworkStats()
        link = _PeerLink(1, "127.0.0.1", 1, stats)  # nothing listens
        for _ in range(DATA_QUEUE_CAP + 10):
            link.enqueue(b"x" * 8, Channel.DATA)
        assert stats.frames_dropped == 10
        assert link.queued == DATA_QUEUE_CAP
        # Consensus frames still board: data backlog never starves votes.
        assert link.enqueue(b"v" * 8, Channel.CONSENSUS)
        assert stats.queue_high_watermark == DATA_QUEUE_CAP + 1

    asyncio.run(scenario())


def test_live_network_reconnects_after_peer_restart():
    async def scenario():
        loop = asyncio.get_running_loop()
        ports = allocate_ports(2)
        scheduler = RealtimeScheduler(loop)
        alice = LiveNetwork(0, ports, scheduler)
        received = []
        alice.register(0, lambda env: received.append(env.payload))
        await alice.start()

        # First life: wait until alice's outbound link is established
        # (a frame actually lands at bob), then kill bob.
        bob_received = []
        bob = LiveNetwork(1, ports, scheduler)
        bob.register(1, lambda env: bob_received.append(env.payload))
        await bob.start()
        bob.send(1, 0, MessageKinds.VOTE, 8, 0)
        alice.send(0, 1, MessageKinds.VOTE, 8, "ping")
        deadline = loop.time() + 5.0
        while (
            not bob_received or not received
        ) and loop.time() < deadline:
            await asyncio.sleep(0.01)
        assert received == [0] and bob_received == ["ping"]
        await bob.close()

        # Bob's port is dark now. The TCP connection *is* the heartbeat:
        # writes into the dead socket surface the reset within a write
        # or two, flipping the link down, and the writer keeps probing
        # with backoff.
        deadline = loop.time() + 5.0
        while alice.liveness()[1] and loop.time() < deadline:
            alice.send(0, 1, MessageKinds.VOTE, 8, "into the void")
            await asyncio.sleep(0.02)
        assert alice.liveness() == {1: False}

        # Respawn on the same port: alice's backoff loop must pick the
        # fresh incarnation up without any restart of alice.
        bob = LiveNetwork(1, ports, scheduler)
        await bob.start()
        bob.send(1, 0, MessageKinds.VOTE, 8, 1)
        deadline = loop.time() + 5.0
        while (
            len(received) < 2 or not alice.liveness()[1]
        ) and loop.time() < deadline:
            await asyncio.sleep(0.01)
        assert received == [0, 1]
        assert alice.liveness() == {1: True}
        assert alice.stats.reconnects >= 1
        await bob.close()
        await alice.close()

    asyncio.run(scenario())


# -- live chaos smoke runs ---------------------------------------------------

def _chaos_config(preset, duration=8.0, rate=200.0):
    protocol = ProtocolConfig(
        n=4, mempool="stratus", consensus="hotstuff",
        batch_bytes=8 * 1024, batch_timeout=0.05, view_timeout=0.5,
    )
    return LiveConfig(
        experiment=ExperimentConfig(
            protocol=protocol, rate_tps=rate, duration=duration,
            warmup=0.5, seed=7, label=f"chaos-{preset}",
            faults=chaos_schedule(preset, 4),
        ),
        startup_grace=2.5,
    )


@pytest.mark.slow
def test_live_crash_restart_respawns_and_recovers():
    result = run_live(_chaos_config("crash-restart"))
    assert result.violations == []
    assert result.committed_blocks > 0
    # The victim was SIGKILLed (its gen-0 summary died with it — only
    # its streamed event log survives) and respawned; the respawned
    # generation rejoined (TCP reconnect + chain sync) and committed
    # again before the run ended.
    victims = [row for row in result.per_replica if row["node_id"] == 3]
    assert [row["generation"] for row in victims] == [1]
    assert victims[0]["commits"] > 0
    assert [e["event"] for e in result.fault_timeline] == [
        "crash", "restart",
    ]
    # Recovery gauges are finite: commits resumed after the window.
    (window,) = result.fault_report
    assert window["kind"] == "crash"
    assert window["time_to_recover"] != float("inf")
    assert window["commit_gap"] != float("inf")


@pytest.mark.slow
def test_live_partition_heals_and_recovers():
    schedule = FaultSchedule([
        Partition(at=2.0, duration=1.5, groups=((0, 1),)),
    ])
    protocol = ProtocolConfig(
        n=4, mempool="stratus", consensus="hotstuff",
        batch_bytes=8 * 1024, batch_timeout=0.05, view_timeout=0.5,
    )
    result = run_live(LiveConfig(
        experiment=ExperimentConfig(
            protocol=protocol, rate_tps=200.0, duration=7.0,
            warmup=0.5, seed=7, label="chaos-partition",
            faults=schedule,
        ),
        startup_grace=2.5,
    ))
    assert result.violations == []
    assert result.committed_blocks > 0
    # Cross-group frames were shed at send time on real sockets.
    assert sum(row["frames_shed"] for row in result.per_replica) > 0
    # No quorum exists during a 2/2 split, so commits pause; after the
    # heal they resume — the recovery gauge must see that.
    (window,) = result.fault_report
    assert window["kind"] == "partition"
    assert window["time_to_recover"] != float("inf")


@pytest.mark.slow
def test_live_crash_restart_recovers_from_durable_state():
    from repro.durability import DurabilityConfig

    config = _chaos_config("crash-restart")
    config.durability = DurabilityConfig(fsync="interval", checkpoint_interval=8)
    result = run_live(config)
    assert result.violations == []
    assert result.committed_blocks > 0
    # The respawned generation opened the same node-keyed data dir the
    # SIGKILLed gen-0 process wrote, so its executor came back from the
    # checkpoint and/or WAL tail — not from genesis.
    rows = {
        (row["node"], row["generation"]): row
        for row in result.recovery_report
    }
    victim = rows[(3, 1)]
    assert victim["source"] in ("checkpoint", "checkpoint+wal", "wal")
    assert victim["wal_blocks_replayed"] >= 0
    # Survivors report too (gen 0, nothing on disk yet).
    assert rows[(0, 0)]["source"] == "fresh"
    # The respawned replica committed again after recovery.
    respawned = [
        row for row in result.per_replica
        if row["node_id"] == 3 and row["generation"] == 1
    ]
    assert respawned and respawned[0]["commits"] > 0
    assert respawned[0]["recovery_source"] == victim["source"]
