"""Unit tests for the network substrate: serialization, priority, limiter."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Channel, Network, TokenBucket
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology


def make_network(n=3, bandwidth=8_000_000, delay=0.01, proc=0.0):
    """8 Mb/s network: a 1 MB message takes exactly 1 s to serialize."""
    sim = Simulator()
    topo = Topology(n, one_way_delay=delay, bandwidth_bps=bandwidth,
                    proc_per_message=proc)
    net = Network(sim, topo, RngRegistry(1))
    inboxes = {i: [] for i in range(n)}
    for i in range(n):
        net.register(i, lambda env, i=i: inboxes[i].append((net.sim.now, env)))
    return sim, net, inboxes


def test_delivery_time_is_serialization_plus_propagation():
    sim, net, inboxes = make_network()
    net.send(0, 1, "m", 1_000_000, "payload")
    sim.run()
    when, env = inboxes[1][0]
    assert when == pytest.approx(1.0 + 0.01)
    assert env.payload == "payload"
    assert env.src == 0 and env.dst == 1


def test_messages_serialize_back_to_back():
    sim, net, inboxes = make_network()
    net.send(0, 1, "m", 1_000_000, "a")
    net.send(0, 1, "m", 1_000_000, "b")
    sim.run()
    times = [when for when, _ in inboxes[1]]
    assert times[0] == pytest.approx(1.01)
    assert times[1] == pytest.approx(2.01)


def test_broadcast_serializes_one_copy_per_recipient():
    sim, net, inboxes = make_network(n=4)
    net.broadcast(0, "m", 1_000_000, "x")
    sim.run()
    arrival_times = sorted(
        when for node in (1, 2, 3) for when, _ in inboxes[node]
    )
    # Copies leave the uplink at 1s, 2s, 3s.
    assert arrival_times == pytest.approx([1.01, 2.01, 3.01])


def test_consensus_priority_preempts_queued_data():
    sim, net, inboxes = make_network()
    # Two large data messages queued, then one consensus message: the
    # consensus message must jump the queue (sent after the in-flight one).
    net.send(0, 1, "data", 1_000_000, "d1", Channel.DATA)
    net.send(0, 1, "data", 1_000_000, "d2", Channel.DATA)
    net.send(0, 1, "vote", 1_000, "v", Channel.CONSENSUS)
    sim.run()
    kinds_in_order = [env.kind for _, env in inboxes[1]]
    assert kinds_in_order == ["data", "vote", "data"]


def test_loopback_is_free_and_fast():
    sim, net, inboxes = make_network()
    net.send(1, 1, "self", 1_000_000, "me")
    sim.run()
    when, env = inboxes[1][0]
    assert when == 0.0
    assert net.stats.node_bytes(1) == 0.0


def test_stats_accumulate_bytes_by_kind():
    sim, net, _ = make_network()
    net.send(0, 1, "mb", 500, None)
    net.send(0, 2, "mb", 700, None)
    net.send(1, 2, "vote", 100, None)
    sim.run()
    assert net.stats.node_bytes(0) == 1200
    assert net.stats.node_bytes(0, "mb") == 1200
    assert net.stats.kind_bytes("vote") == 100
    assert net.stats.messages_sent["mb"] == 2
    assert net.stats.messages_delivered == 3


def test_drop_filter_drops_and_counts():
    sim, net, inboxes = make_network()
    net.set_drop_filter(lambda env: env.kind == "lossy")
    net.send(0, 1, "lossy", 100, None)
    net.send(0, 1, "ok", 100, None)
    sim.run()
    assert [env.kind for _, env in inboxes[1]] == ["ok"]
    assert net.stats.messages_dropped == 1


def test_unregistered_nodes_rejected():
    sim, net, _ = make_network()
    with pytest.raises(ValueError):
        net.send(0, 99, "m", 10, None)


def test_double_registration_rejected():
    sim, net, _ = make_network()
    with pytest.raises(ValueError):
        net.register(0, lambda env: None)


def test_queued_bytes_tracks_backlog():
    sim, net, _ = make_network()
    net.send(0, 1, "m", 1_000_000, None)
    net.send(0, 1, "m", 1_000_000, None)
    net.send(0, 1, "m", 1_000_000, None)
    # First is in flight; two are queued.
    assert net.queued_bytes(0) == 2_000_000
    sim.run()
    assert net.queued_bytes(0) == 0


def test_broadcast_recipients_subset():
    sim, net, inboxes = make_network(n=4)
    net.broadcast(0, "m", 100, None, recipients=[2, 3])
    sim.run()
    assert len(inboxes[1]) == 0
    assert len(inboxes[2]) == 1
    assert len(inboxes[3]) == 1


def test_processing_cost_serializes_receives():
    sim, net, inboxes = make_network(proc=0.010)
    # Two tiny messages from different senders arrive together; the
    # receiver processes them 10 ms apart.
    net.send(0, 2, "m", 800, "a")
    net.send(1, 2, "m", 800, "b")
    sim.run()
    times = sorted(when for when, _ in inboxes[2])
    assert times[1] - times[0] == pytest.approx(0.010)


def test_processing_priority_favors_consensus():
    sim, net, inboxes = make_network(proc=0.010)
    # Queue several data messages and one consensus message arriving
    # together; the consensus one must be processed before remaining data.
    for _ in range(3):
        net.send(0, 2, "data", 800, None, Channel.DATA)
    net.send(1, 2, "vote", 800, None, Channel.CONSENSUS)
    sim.run()
    kinds = [env.kind for _, env in sorted(inboxes[2], key=lambda p: p[0])]
    assert kinds.index("vote") <= 1


class TestTokenBucket:
    def test_admits_within_burst_immediately(self):
        bucket = TokenBucket(rate_bytes_per_s=1000, burst_bytes=5000)
        assert bucket.ready_at(0.0, 5000) == 0.0

    def test_defers_when_empty(self):
        bucket = TokenBucket(rate_bytes_per_s=1000, burst_bytes=1000)
        bucket.consume(0.0, 1000)
        assert bucket.ready_at(0.0, 500) == pytest.approx(0.5)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate_bytes_per_s=1000, burst_bytes=1000)
        bucket.consume(0.0, 1000)
        assert bucket.ready_at(2.0, 1000) == pytest.approx(2.0)

    def test_burst_caps_refill(self):
        bucket = TokenBucket(rate_bytes_per_s=1000, burst_bytes=1000)
        assert bucket.ready_at(100.0, 1000) == pytest.approx(100.0)
        bucket.consume(100.0, 1000)
        assert bucket.ready_at(100.0, 1000) == pytest.approx(101.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 100)
        with pytest.raises(ValueError):
            TokenBucket(100, 0)


def test_data_limiter_throttles_data_channel():
    sim, net, inboxes = make_network()
    # 1000 B/s limiter, tiny burst: second 500-byte message waits ~0.5 s.
    net.set_data_limiter(0, rate_bytes_per_s=1000, burst_bytes=500)
    net.send(0, 1, "d", 500, "a", Channel.DATA)
    net.send(0, 1, "d", 500, "b", Channel.DATA)
    sim.run()
    times = [when for when, _ in inboxes[1]]
    assert times[1] - times[0] == pytest.approx(0.5, abs=0.01)


def test_limiter_does_not_delay_consensus():
    sim, net, inboxes = make_network()
    net.set_data_limiter(0, rate_bytes_per_s=10, burst_bytes=10)
    net.send(0, 1, "d", 1000, None, Channel.DATA)   # needs 99 s of tokens
    net.send(0, 1, "v", 1000, None, Channel.CONSENSUS)
    sim.run_until(5.0)
    kinds = [env.kind for _, env in inboxes[1]]
    assert "v" in kinds and "d" not in kinds


def test_priority_disabled_single_fifo():
    sim = Simulator()
    topo = Topology(3, one_way_delay=0.01, bandwidth_bps=8_000_000)
    net = Network(sim, topo, RngRegistry(1), priority_channels=False)
    inbox = []
    for i in range(3):
        net.register(i, lambda env, i=i: inbox.append(env.kind) if i == 1 else None)
    net.send(0, 1, "data1", 1_000_000, None, Channel.DATA)
    net.send(0, 1, "data2", 1_000_000, None, Channel.DATA)
    net.send(0, 1, "vote", 1_000, None, Channel.CONSENSUS)
    sim.run()
    # Without priority classes the vote waits its FIFO turn.
    assert inbox == ["data1", "data2", "vote"]


def test_control_channel_between_consensus_and_data():
    sim = Simulator()
    topo = Topology(3, one_way_delay=0.01, bandwidth_bps=8_000_000)
    net = Network(sim, topo, RngRegistry(1))
    inbox = []
    net.register(0, lambda env: None)
    net.register(1, lambda env: inbox.append(env.kind))
    net.register(2, lambda env: None)
    net.send(0, 1, "d1", 1_000_000, None, Channel.DATA)   # in flight
    net.send(0, 1, "d2", 1_000_000, None, Channel.DATA)
    net.send(0, 1, "ctrl", 1_000, None, Channel.CONTROL)
    net.send(0, 1, "vote", 1_000, None, Channel.CONSENSUS)
    sim.run()
    assert inbox == ["d1", "vote", "ctrl", "d2"]
