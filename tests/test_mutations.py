"""Mutation self-test: every seeded bug must trip its target oracle.

This is the verification layer's own verification. Each mutant plants a
classic BFT/SMP bug (1-chain commits, skipped availability gates, payload
replay/fabrication, muted votes); if a refactor blinds an oracle, the
corresponding case here fails. The reverse direction — oracles stay
silent on correct stacks — is covered by ``tests/test_fuzz_corpus.py``.
"""

import pytest

from repro.verification import (
    MUTANTS,
    mutant_caught,
    run_mutant,
    shrink_scenario,
)
from repro.verification.fuzzer import run_scenario


@pytest.mark.parametrize("name", sorted(MUTANTS), ids=sorted(MUTANTS))
def test_mutant_is_caught(name):
    mutant = MUTANTS[name]
    outcome = run_mutant(name)
    assert mutant_caught(mutant, outcome), (
        f"{name} produced no {mutant.expected_oracle} violation "
        f"(got {[v.kind for v in outcome.violations]})"
    )


def test_eager_commit_caught_by_safety_only():
    """The 1-chain fork is a pure safety bug: no collateral noise from
    the other oracles on this scenario."""
    outcome = run_mutant("eager-commit")
    oracles = {v.oracle for v in outcome.violations}
    assert oracles == {"safety"}


def test_mutant_scenarios_pass_without_the_bug():
    """Each mutant's scenario is clean on the unmutated stack — the
    violation comes from the seeded bug, not the schedule."""
    # Runs without strict_availability even where the mutant sets it:
    # the strict PAB bar is intentionally unfair to best-effort mempools.
    for name, mutant in sorted(MUTANTS.items()):
        outcome = run_scenario(mutant.scenario)
        assert outcome.ok, (
            f"{name}'s scenario fails even without the mutation: "
            + "; ".join(str(v) for v in outcome.violations)
        )


def test_shrinker_reduces_seeded_failure():
    """End-to-end tentpole check: pad the mute-votes scenario with a
    noise fault event, shrink it, and get the bare scenario back."""
    mutant = MUTANTS["mute-votes"]
    padded = mutant.scenario.replaced(fault_spec=[
        {"event": "loss", "at": 0.7, "duration": 0.3, "rate": 0.1},
    ])

    def runner(scenario):
        return run_scenario(scenario, mempool_cls=mutant.mempool_cls)

    result = shrink_scenario(padded, runner=runner)
    assert result.minimized.fault_spec == []
    assert mutant_caught(mutant, result.outcome)
