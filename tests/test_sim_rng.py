"""Unit tests for named deterministic RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    registry = RngRegistry(42)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_reproducible_across_registries():
    first = RngRegistry(42).stream("replica.0")
    second = RngRegistry(42).stream("replica.0")
    assert [first.random() for _ in range(10)] == [
        second.random() for _ in range(10)
    ]


def test_different_names_give_different_sequences():
    registry = RngRegistry(42)
    a = [registry.stream("a").random() for _ in range(5)]
    b = [registry.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_give_different_sequences():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_consuming_one_stream_does_not_disturb_another():
    registry = RngRegistry(7)
    reference = RngRegistry(7)
    expected = [reference.stream("b").random() for _ in range(5)]
    for _ in range(100):
        registry.stream("a").random()
    actual = [registry.stream("b").random() for _ in range(5)]
    assert actual == expected


def test_fork_creates_independent_registry():
    registry = RngRegistry(42)
    fork_a = registry.fork("child")
    fork_b = RngRegistry(42).fork("child")
    assert fork_a.root_seed == fork_b.root_seed
    assert fork_a.root_seed != registry.root_seed


def test_root_seed_exposed():
    assert RngRegistry(123).root_seed == 123
