"""Unit tests for the experiment harness."""

import pytest

from repro.config import ProtocolConfig
from repro.harness import (
    ExperimentConfig,
    PROTOCOL_PRESETS,
    build_experiment,
    run_experiment,
    tuned_protocol,
)
from repro.harness.report import format_series, format_table, mbps
from repro.replica.behavior import (
    CensoringSender,
    HonestBehavior,
    LyingProxy,
    SilentReplica,
)


class TestPresets:
    def test_all_acronyms_resolve(self):
        for preset in PROTOCOL_PRESETS:
            config = tuned_protocol(preset, n=16)
            assert config.n == 16

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            tuned_protocol("X-HS", n=16)

    def test_batch_size_rule(self):
        assert tuned_protocol("S-HS", 64).batch_bytes == 128 * 1024
        assert tuned_protocol("S-HS", 128).batch_bytes == 128 * 1024
        assert tuned_protocol("S-HS", 256).batch_bytes == 256 * 1024

    def test_overrides_win(self):
        config = tuned_protocol("S-HS", 64, batch_bytes=32 * 1024)
        assert config.batch_bytes == 32 * 1024

    def test_stratus_enables_load_balancing(self):
        assert tuned_protocol("S-HS", 16).load_balancing
        assert not tuned_protocol("SMP-HS", 16).load_balancing

    def test_native_wan_view_timeout_covers_proposal(self):
        config = tuned_protocol("N-HS", 64, topology_kind="wan")
        transmit = 63 * config.native_block_bytes * 8 / 100e6
        assert config.view_timeout >= transmit

    def test_mapping_matches_table_ii(self):
        assert PROTOCOL_PRESETS["N-HS"] == ("native", "hotstuff")
        assert PROTOCOL_PRESETS["SMP-HS-G"] == ("gossip", "hotstuff")
        assert PROTOCOL_PRESETS["S-SL"] == ("stratus", "streamlet")
        assert PROTOCOL_PRESETS["Narwhal"] == ("narwhal", "hotstuff")


class TestExperimentConfig:
    def make(self, **kwargs):
        protocol = kwargs.pop("protocol", ProtocolConfig(n=7))
        return ExperimentConfig(protocol=protocol, **kwargs)

    def test_byzantine_ids_are_highest(self):
        config = self.make(fault="silent", fault_count=2)
        assert config.byzantine_ids == frozenset({5, 6})

    def test_fault_count_bounded_by_f(self):
        with pytest.raises(ValueError):
            self.make(fault="silent", fault_count=3)  # f=2 for n=7

    def test_fault_requires_count(self):
        with pytest.raises(ValueError):
            self.make(fault="silent")
        with pytest.raises(ValueError):
            self.make(fault_count=1)

    def test_invalid_selector(self):
        with pytest.raises(ValueError):
            self.make(selector="pareto")

    def test_invalid_topology(self):
        with pytest.raises(ValueError):
            self.make(topology_kind="mars")

    def test_end_time(self):
        config = self.make(duration=5.0, warmup=2.0)
        assert config.end_time == 7.0


class TestBuildExperiment:
    def test_wiring(self):
        config = ExperimentConfig(
            protocol=ProtocolConfig(n=4), rate_tps=0.0,
        )
        exp = build_experiment(config)
        assert len(exp.replicas) == 4
        for replica in exp.replicas:
            assert replica.mempool is not None
            assert replica.consensus is not None
            assert isinstance(replica.behavior, HonestBehavior)

    def test_behaviors_assigned(self):
        for fault, cls in [
            ("silent", SilentReplica),
            ("censor", CensoringSender),
            ("lying", LyingProxy),
        ]:
            config = ExperimentConfig(
                protocol=ProtocolConfig(n=7), rate_tps=0.0,
                fault=fault, fault_count=2,
            )
            exp = build_experiment(config)
            assert isinstance(exp.replicas[6].behavior, cls)
            assert isinstance(exp.replicas[0].behavior, HonestBehavior)

    def test_leader_set_excludes_byzantine(self):
        config = ExperimentConfig(
            protocol=ProtocolConfig(n=7), rate_tps=0.0,
            fault="silent", fault_count=2,
        )
        exp = build_experiment(config)
        assert exp.replicas[0].leader_set == (0, 1, 2, 3, 4)

    def test_executor_attachment(self):
        config = ExperimentConfig(
            protocol=ProtocolConfig(n=4), rate_tps=0.0,
            attach_executor=True,
        )
        exp = build_experiment(config)
        assert exp.replicas[0].executor is not None

    def test_run_experiment_produces_result(self):
        protocol = ProtocolConfig(
            n=4, batch_bytes=512, empty_view_delay=0.002,
        )
        result = run_experiment(ExperimentConfig(
            protocol=protocol, rate_tps=200, duration=2.0, warmup=0.5,
            label="smoke",
        ))
        assert result.label == "smoke"
        assert result.throughput_tps > 0
        assert result.committed_tx > 0
        assert result.emitted_tx > 0

    def test_seed_reproducibility(self):
        def run(seed):
            protocol = ProtocolConfig(n=4, batch_bytes=512)
            return run_experiment(ExperimentConfig(
                protocol=protocol, rate_tps=500, duration=1.5,
                warmup=0.5, seed=seed,
            ))

        first, second, different = run(5), run(5), run(6)
        assert first.throughput_tps == second.throughput_tps
        assert first.latency_mean == second.latency_mean
        # A different seed perturbs jitter and thus latencies.
        assert different.latency_mean != first.latency_mean


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["proto", "tput"],
            [["N-HS", 1234.5], ["S-HS", 56789.0]],
            title="Scalability",
        )
        lines = text.splitlines()
        assert lines[0] == "Scalability"
        assert "proto" in lines[1]
        assert "1,234" in text or "1234" in text

    def test_format_series(self):
        text = format_series("tput", [(16, 100.0), (32, 90.0)],
                             x_label="n", y_label="tps")
        assert "tput" in text
        assert text.count("\n") == 2

    def test_mbps(self):
        assert mbps(1_000_000, 8.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            mbps(1, 0)
