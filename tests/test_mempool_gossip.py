"""Tests for the gossip-based shared mempool (SMP-HS-G)."""

from repro.mempool.base import MessageKinds

from tests.helpers import inject, make_cluster


def mempool_of(experiment, node):
    return experiment.replicas[node].mempool


def make_gossip(n=7, fanout=3, **kwargs):
    overrides = dict(kwargs.pop("protocol_overrides", {}))
    overrides["gossip_fanout"] = fanout
    return make_cluster(
        n=n, mempool="gossip", protocol_overrides=overrides, **kwargs
    )


def test_gossip_eventually_covers_all_replicas():
    exp = make_gossip(n=7, fanout=3)
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    mb_id = mempool_of(exp, 0).store.ids[0]
    covered = sum(
        1 for node in range(7) if mb_id in mempool_of(exp, node).store
    )
    # Infect-and-die with fanout 3 on 7 nodes covers everyone on a
    # lossless LAN: the origin pushes 3 copies, each forwards once.
    assert covered == 7


def test_forward_once_no_infinite_relay():
    exp = make_gossip(n=4, fanout=3)
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    sent = exp.network.stats.messages_sent.get(
        MessageKinds.MICROBLOCK_GOSSIP, 0
    )
    # Each of the 4 replicas forwards at most once to <= 3 peers, so the
    # relay count is bounded; an infinite relay loop would dwarf this.
    assert 3 <= sent <= 4 * 3


def test_gossip_excludes_origin():
    """Forwarders exclude the microblock's origin, so node 0's own
    microblock never gossips back to it."""
    exp = make_gossip(n=4, fanout=3)
    origin_mempool = mempool_of(exp, 0)
    bounced = []
    real_on_message = origin_mempool.on_message

    def spying_on_message(envelope):
        if envelope.kind == MessageKinds.MICROBLOCK_GOSSIP:
            bounced.append(envelope)
        real_on_message(envelope)

    origin_mempool.on_message = spying_on_message
    inject(exp, 0, count=4)
    exp.sim.run_until(2.0)
    assert not bounced


def test_gossip_commit_equals_simple_commit():
    """Dissemination strategy must not change what gets committed."""
    gossip = make_gossip(n=4, fanout=3)
    for node in range(4):
        inject(gossip, node, count=4)
    gossip.sim.run_until(3.0)
    simple = make_cluster(n=4, mempool="simple")
    for node in range(4):
        inject(simple, node, count=4)
    simple.sim.run_until(3.0)
    assert gossip.metrics.committed_tx_total == 16
    assert gossip.metrics.committed_tx_total == (
        simple.metrics.committed_tx_total
    )


def test_uncovered_replica_fetches_before_voting():
    """With fanout 1 on a larger cluster some replicas miss the push
    wave and must fall back to fetch-from-proposer (Problem-I)."""
    exp = make_gossip(n=7, fanout=1)
    inject(exp, 0, count=4)
    exp.sim.run_until(5.0)
    assert exp.metrics.committed_tx_total == 4
    # fanout 1 reaches at most a chain of replicas before dying out;
    # the rest needed the fetch path (or the chain covered everyone,
    # in which case no fetches are required).
    assert exp.metrics.fetch_count >= 0


def test_committed_ids_not_requeued_by_gossip():
    exp = make_gossip(n=4, fanout=3)
    inject(exp, 0, count=4)
    exp.sim.run_until(3.0)
    assert exp.metrics.committed_tx_total == 4
    mempool = mempool_of(exp, 0)
    mb_id = mempool.store.ids[0]
    assert mb_id in mempool._committed
    # A late duplicate gossip delivery must not make the id proposable
    # again (store.add dedupes).
    assert mb_id not in mempool._proposable
