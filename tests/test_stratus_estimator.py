"""Unit tests for the stable-time workload estimator."""

import pytest

from repro.mempool.stratus.estimator import StableTimeEstimator


def make_estimator(**kwargs):
    defaults = dict(window=10, percentile=95.0, busy_margin=2.0,
                    busy_slack=0.01)
    defaults.update(kwargs)
    return StableTimeEstimator(**defaults)


def test_no_samples_not_busy_and_status_zero():
    estimator = make_estimator()
    assert not estimator.is_busy()
    assert estimator.load_status() == 0.0
    assert estimator.estimate() is None


def test_baseline_tracks_minimum_with_slow_drift():
    estimator = make_estimator()
    for value in (0.5, 0.2, 0.8, 0.3):
        estimator.record(value)
    # The floor anchors near the minimum; it may creep up by the drift
    # factor (1% per sample) after the minimum was seen.
    assert estimator.baseline == pytest.approx(0.2, rel=0.03)


def test_baseline_recovers_from_one_lucky_sample():
    """A single unusually fast ST must not lower the busy bar forever."""
    estimator = make_estimator(window=10)
    estimator.record(0.001)  # lucky outlier
    for _ in range(500):
        estimator.record(0.1)  # the true steady state
    assert estimator.baseline > 0.05
    assert not estimator.is_busy()


def test_constant_load_is_not_busy():
    estimator = make_estimator()
    for _ in range(20):
        estimator.record(0.1)
    assert not estimator.is_busy()
    assert estimator.load_status() == pytest.approx(0.1)


def test_spike_makes_busy():
    estimator = make_estimator()
    for _ in range(10):
        estimator.record(0.1)
    for _ in range(10):
        estimator.record(1.0)  # fills the window with congested STs
    assert estimator.is_busy()
    assert estimator.load_status() is None


def test_recovery_after_spike():
    estimator = make_estimator()
    for _ in range(10):
        estimator.record(0.1)
    for _ in range(10):
        estimator.record(1.0)
    assert estimator.is_busy()
    for _ in range(10):
        estimator.record(0.1)  # window slides past the spike
    assert not estimator.is_busy()


def test_percentile_ignores_minority_outliers():
    estimator = make_estimator(percentile=50.0)
    for _ in range(9):
        estimator.record(0.1)
    estimator.record(5.0)  # single outlier above the median
    assert not estimator.is_busy()


def test_too_few_samples_never_busy():
    estimator = make_estimator()
    for _ in range(4):
        estimator.record(10.0)
    assert not estimator.is_busy()


def test_window_slides():
    estimator = make_estimator(window=5)
    for value in (1.0, 1.0, 1.0, 1.0, 1.0, 0.1, 0.1, 0.1, 0.1, 0.1):
        estimator.record(value)
    assert estimator.estimate() == pytest.approx(0.1)


def test_estimate_is_nth_percentile():
    estimator = make_estimator(window=100, percentile=90.0)
    for value in range(1, 11):
        estimator.record(float(value))
    assert estimator.estimate() == pytest.approx(9.0)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        StableTimeEstimator(window=0)
    with pytest.raises(ValueError):
        StableTimeEstimator(percentile=0)
    with pytest.raises(ValueError):
        StableTimeEstimator(busy_margin=0.5)
    estimator = make_estimator()
    with pytest.raises(ValueError):
        estimator.record(-1.0)


def test_sample_count():
    estimator = make_estimator(window=3)
    for _ in range(10):
        estimator.record(0.1)
    assert estimator.sample_count == 10


def test_estimate_computed_once_per_record_cycle():
    """is_busy() + load_status() must share one percentile computation.

    Each DLB probe used to sort the window twice (once per call); the
    cached estimate makes the pair cost a single recompute.
    """
    estimator = make_estimator()
    for _ in range(10):
        estimator.record(0.1)
    before = estimator.estimate_recomputes
    estimator.is_busy()
    estimator.load_status()
    estimator.estimate()
    estimator.is_busy()
    assert estimator.estimate_recomputes == before + 1


def test_cache_invalidated_by_record():
    estimator = make_estimator(window=5, percentile=100.0)
    estimator.record(0.1)
    assert estimator.estimate() == pytest.approx(0.1)
    count = estimator.estimate_recomputes
    estimator.record(0.9)
    assert estimator.estimate() == pytest.approx(0.9)
    assert estimator.estimate_recomputes == count + 1


def test_incremental_window_matches_full_sort():
    """The insort-maintained window must agree with a per-call sort."""
    import math as _math
    import random

    rng = random.Random(7)
    estimator = make_estimator(window=16, percentile=95.0)
    history = []
    for _ in range(200):
        value = rng.uniform(0.0, 1.0)
        estimator.record(value)
        history.append(value)
        window = history[-16:]
        ordered = sorted(window)
        rank = max(0, _math.ceil(len(ordered) * 0.95) - 1)
        assert estimator.estimate() == pytest.approx(ordered[rank])


def test_duplicate_values_evict_correctly():
    estimator = make_estimator(window=3, percentile=100.0)
    for value in (0.5, 0.5, 0.5, 0.2, 0.2, 0.2):
        estimator.record(value)
    assert estimator.estimate() == pytest.approx(0.2)
