"""Unit tests for core data types and wire sizes."""

import pytest

from repro.crypto import AvailabilityProof
from repro.types import (
    MicroBlock,
    Payload,
    PayloadEntry,
    TxBatch,
    make_microblock_id,
    sizes,
)
from repro.types.microblock import microblock_origin
from repro.types.proposal import Block, Proposal, make_block_id
from repro.crypto.certificates import GENESIS_QC


def make_mb(origin=0, counter=0, tx_count=10, payload=128, created=1.0):
    return MicroBlock(
        id=make_microblock_id(origin, counter),
        origin=origin,
        tx_count=tx_count,
        tx_payload=payload,
        created_at=created,
        sum_arrival=created * tx_count,
    )


class TestTxBatch:
    def test_totals(self):
        batch = TxBatch(count=10, payload_bytes=128, mean_arrival=2.0)
        assert batch.total_bytes == 1280
        assert batch.sum_arrival == pytest.approx(20.0)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            TxBatch(count=0, payload_bytes=128, mean_arrival=0.0)

    def test_invalid_payload(self):
        with pytest.raises(ValueError):
            TxBatch(count=1, payload_bytes=0, mean_arrival=0.0)


class TestMicroBlockId:
    def test_uniqueness_across_origins_and_counters(self):
        ids = {
            make_microblock_id(origin, counter)
            for origin in range(50)
            for counter in range(50)
        }
        assert len(ids) == 2500

    def test_origin_recoverable(self):
        mb_id = make_microblock_id(37, 123456)
        assert microblock_origin(mb_id) == 37

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            make_microblock_id(-1, 0)
        with pytest.raises(ValueError):
            make_microblock_id(0, -1)


class TestMicroBlock:
    def test_size_includes_header(self):
        mb = make_mb(tx_count=100)
        assert mb.size_bytes == sizes.MICROBLOCK_HEADER + 100 * 128

    def test_mean_arrival(self):
        mb = MicroBlock(
            id=1, origin=0, tx_count=4, tx_payload=128,
            created_at=3.0, sum_arrival=8.0,
        )
        assert mb.mean_arrival == pytest.approx(2.0)

    def test_empty_microblock_rejected(self):
        with pytest.raises(ValueError):
            MicroBlock(id=1, origin=0, tx_count=0, tx_payload=128,
                       created_at=0.0, sum_arrival=0.0)


class TestPayload:
    def test_id_payload_size(self):
        payload = Payload(entries=(
            PayloadEntry(mb_id=1), PayloadEntry(mb_id=2),
        ))
        assert payload.size_bytes == 2 * sizes.MICROBLOCK_ID
        assert payload.microblock_ids == (1, 2)
        assert not payload.is_empty

    def test_proven_payload_size_includes_proofs(self):
        proof = AvailabilityProof(mb_id=1, signers=(0, 1, 2))
        payload = Payload(entries=(PayloadEntry(mb_id=1, proof=proof),))
        expected = sizes.MICROBLOCK_ID + proof.size_bytes
        assert payload.size_bytes == expected

    def test_embedded_payload_size(self):
        mb = make_mb(tx_count=10)
        payload = Payload(embedded=(mb,))
        assert payload.size_bytes == mb.size_bytes
        assert payload.microblock_ids == (mb.id,)

    def test_empty(self):
        assert Payload().is_empty
        assert Payload().size_bytes == 0


class TestProposalAndBlock:
    def make_proposal(self, payload=None):
        return Proposal(
            block_id=make_block_id(3, 7), view=5, height=4, proposer=3,
            parent_id=0, justify=GENESIS_QC,
            payload=payload if payload is not None else Payload(),
        )

    def test_block_id_nonzero(self):
        assert make_block_id(0, 0) != 0

    def test_block_ids_unique(self):
        ids = {make_block_id(p, c) for p in range(20) for c in range(20)}
        assert len(ids) == 400

    def test_proposal_size_has_header_and_qc(self):
        proposal = self.make_proposal()
        assert proposal.size_bytes == (
            sizes.PROPOSAL_HEADER + sizes.QC
        )

    def test_block_fullness(self):
        mb = make_mb()
        payload = Payload(entries=(PayloadEntry(mb_id=mb.id),))
        block = Block(proposal=self.make_proposal(payload))
        assert not block.is_full
        assert block.missing_ids == [mb.id]
        block.microblocks[mb.id] = mb
        assert block.is_full
        assert block.tx_count == mb.tx_count

    def test_empty_block_is_full(self):
        block = Block(proposal=self.make_proposal())
        assert block.is_full
        assert block.tx_count == 0


class TestSizes:
    def test_microblock_bytes(self):
        assert sizes.microblock_bytes(0) == sizes.MICROBLOCK_HEADER
        assert sizes.microblock_bytes(10, 256) == (
            sizes.MICROBLOCK_HEADER + 2560
        )

    def test_microblock_bytes_negative(self):
        with pytest.raises(ValueError):
            sizes.microblock_bytes(-1)

    def test_proof_bytes_scale_with_quorum(self):
        small = sizes.availability_proof_bytes(2)
        large = sizes.availability_proof_bytes(20)
        assert large - small == 18 * sizes.SIGNATURE

    def test_proof_bytes_invalid(self):
        with pytest.raises(ValueError):
            sizes.availability_proof_bytes(0)
