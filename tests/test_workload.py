"""Unit tests for workload generation and replica selection."""

import pytest

from repro.sim.engine import Simulator
from repro.types import TxBatch
from repro.workload import (
    UniformSelector,
    WorkloadGenerator,
    ZipfSelector,
    zipf_weights,
)


class Sink:
    def __init__(self):
        self.batches: list[TxBatch] = []

    def on_client_batch(self, batch):
        self.batches.append(batch)

    @property
    def total(self):
        return sum(batch.count for batch in self.batches)


class TestZipf:
    def test_weights_decreasing(self):
        weights = zipf_weights(100, s=1.01, v=1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_shares_sum_to_one(self):
        selector = ZipfSelector(50, s=1.01, v=1.0)
        assert sum(selector.shares()) == pytest.approx(1.0)

    def test_zipf1_more_skewed_than_zipf10(self):
        zipf1 = ZipfSelector(100, s=1.01, v=1.0)
        zipf10 = ZipfSelector(100, s=1.01, v=10.0)
        assert zipf1.share_of(0) > zipf10.share_of(0)

    def test_zipf1_head_dominates(self):
        # With s=1.01, v=1 the most popular replica carries a large share.
        selector = ZipfSelector(100, s=1.01, v=1.0)
        assert selector.share_of(0) > 0.15

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.01, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, 1.0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, 1.01, 0.5)

    def test_uniform_shares(self):
        selector = UniformSelector(4)
        assert selector.shares() == [0.25] * 4


class TestWorkloadGenerator:
    def run_generator(self, rate, seconds=2.0, n=4, selector=None, tick=0.01):
        sim = Simulator()
        sinks = [Sink() for _ in range(n)]
        generator = WorkloadGenerator(
            sim, sinks, rate_tps=rate, tx_payload=128,
            selector=selector or UniformSelector(n), tick=tick,
        )
        generator.start()
        sim.run_until(seconds)
        return sim, sinks, generator

    def test_rate_is_exact_in_the_long_run(self):
        _, sinks, generator = self.run_generator(rate=1000, seconds=2.0)
        assert generator.emitted_tx_count == pytest.approx(2000, abs=50)
        assert sum(sink.total for sink in sinks) == generator.emitted_tx_count

    def test_uniform_split(self):
        _, sinks, _ = self.run_generator(rate=4000, seconds=1.0)
        totals = [sink.total for sink in sinks]
        for total in totals:
            assert total == pytest.approx(1000, rel=0.05)

    def test_zipf_split_skewed(self):
        selector = ZipfSelector(4, s=1.01, v=1.0)
        _, sinks, _ = self.run_generator(
            rate=4000, seconds=1.0, selector=selector)
        totals = [sink.total for sink in sinks]
        assert totals[0] > totals[1] > totals[3]

    def test_low_rate_accumulates_remainders(self):
        # 10 tps over 4 replicas at 10 ms ticks: far below 1 tx per tick.
        _, sinks, generator = self.run_generator(rate=10, seconds=4.0)
        assert generator.emitted_tx_count == pytest.approx(40, abs=5)

    def test_batches_carry_arrival_times(self):
        _, sinks, _ = self.run_generator(rate=1000, seconds=0.1)
        batch = sinks[0].batches[0]
        assert 0.0 <= batch.mean_arrival <= 0.1

    def test_stop_halts_emission(self):
        sim = Simulator()
        sinks = [Sink()]
        generator = WorkloadGenerator(
            sim, sinks, rate_tps=1000, tx_payload=128,
            selector=UniformSelector(1),
        )
        generator.start()
        sim.run_until(0.5)
        emitted = generator.emitted_tx_count
        generator.stop()
        sim.run_until(2.0)
        assert generator.emitted_tx_count == emitted

    def test_double_start_rejected(self):
        sim = Simulator()
        generator = WorkloadGenerator(
            sim, [Sink()], rate_tps=10, tx_payload=128,
            selector=UniformSelector(1),
        )
        generator.start()
        with pytest.raises(RuntimeError):
            generator.start()

    def test_selector_size_mismatch_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            WorkloadGenerator(
                sim, [Sink(), Sink()], rate_tps=10, tx_payload=128,
                selector=UniformSelector(3),
            )

    def test_zero_rate_emits_nothing(self):
        _, sinks, generator = self.run_generator(rate=0.0, seconds=1.0)
        assert generator.emitted_tx_count == 0
