"""Tests for replicated runs and heterogeneous bandwidth support."""

import pytest

from repro.config import ProtocolConfig
from repro.harness import ExperimentConfig, build_experiment, run_replicated


def small_config(**kwargs):
    protocol = ProtocolConfig(n=4, batch_bytes=512)
    return ExperimentConfig(
        protocol=protocol, rate_tps=500, duration=1.0, warmup=0.5, **kwargs
    )


class TestRunReplicated:
    def test_aggregates_over_seeds(self):
        result = run_replicated(small_config(), seeds=[1, 2, 3])
        assert len(result) == 3
        assert result.throughput_mean > 0
        assert result.latency_mean > 0
        assert result.throughput_std >= 0

    def test_single_seed_zero_std(self):
        result = run_replicated(small_config(), seeds=[7])
        assert result.throughput_std == 0.0

    def test_same_seed_identical(self):
        result = run_replicated(small_config(), seeds=[5, 5])
        assert result.throughput_std == 0.0
        assert result.runs[0].latency_mean == result.runs[1].latency_mean

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            run_replicated(small_config(), seeds=[])


class TestBandwidthMap:
    def test_overrides_apply(self):
        config = small_config(bandwidth_map={1: 5_000_000.0})
        exp = build_experiment(config)
        assert exp.topology.bandwidth(1) == 5_000_000.0
        assert exp.topology.bandwidth(0) > 5_000_000.0

    def test_slow_replica_still_commits(self):
        config = small_config(bandwidth_map={3: 2_000_000.0})
        exp = build_experiment(config)
        exp.sim.run_until(2.0)
        assert exp.metrics.committed_tx_total > 0


class TestGeoTopologyHarness:
    def test_geo_experiment_runs(self):
        config = small_config(topology_kind="geo")
        exp = build_experiment(config)
        assert exp.topology.name == "geo"
        assert exp.topology.regions[:4] == ["SG", "SN", "VG", "LD"]
        exp.sim.run_until(2.0)
        assert exp.metrics.committed_tx_total > 0

    def test_invalid_topology_rejected(self):
        import pytest
        with pytest.raises(ValueError):
            small_config(topology_kind="moon")
