"""Fair-share link model: rate splitting, admission slots, crashes.

The serial model's exact store-and-forward timings are pinned by
``tests/test_sim_network.py``; this file pins the fair-share analogue —
active transfers split uplink/downlink capacity evenly, with rates
recomputed only when a transfer starts or finishes.
"""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Channel, Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology


def make_net(n=3, bandwidth=8e6, delay=0.0, jitter=0.0, proc=0.0, **kwargs):
    topology = Topology(
        n=n, one_way_delay=delay, bandwidth_bps=bandwidth,
        delay_jitter=jitter, proc_per_message=proc,
    )
    sim = Simulator()
    network = Network(
        sim, topology, RngRegistry(7), link_model="fair-share", **kwargs
    )
    log = []
    for node in range(n):
        network.register(
            node,
            (lambda env, log=log, sim=sim: log.append(
                (round(sim.now, 6), env.src, env.dst, env.kind)
            )),
        )
    return sim, network, log


def test_uplink_capacity_is_split_between_concurrent_transfers():
    # Two 1 MB transfers on an 8 Mbit/s uplink: alone each takes 1 s,
    # concurrently each runs at half rate and both finish at 2 s.
    sim, network, log = make_net()
    network.send(0, 1, "bulk", 1_000_000, None)
    network.send(0, 2, "bulk", 1_000_000, None)
    sim.run()
    assert [t for t, *_ in log] == [2.0, 2.0]


def test_downlink_capacity_is_split_between_concurrent_senders():
    sim, network, log = make_net()
    network.send(1, 0, "bulk", 1_000_000, None)
    network.send(2, 0, "bulk", 1_000_000, None)
    sim.run()
    assert [t for t, *_ in log] == [2.0, 2.0]


def test_rate_is_min_of_uplink_and_downlink_share():
    # Receiver 0 has a 4 Mbit/s downlink while sender 1 has the default
    # 8 Mbit/s uplink: the transfer is downlink-bound and takes 2 s.
    sim, network, log = make_net()
    network.topology.set_bandwidth(0, 4e6)
    network.send(1, 0, "bulk", 1_000_000, None)
    sim.run()
    assert log == [(2.0, 1, 0, "bulk")]


def test_small_message_overtakes_bulk_transfer_to_same_peer():
    # FIFO across sizes is intentionally relaxed: a 1 KB consensus
    # message sharing the link with a 1 MB body finishes first (0.002 s
    # at half rate), and the body pays exactly the shared interval
    # (finishes at 1.001 s instead of 1.0 s).
    sim, network, log = make_net()
    network.send(0, 1, "bulk", 1_000_000, None)
    network.send(0, 1, "tiny", 1_000, None, Channel.CONSENSUS)
    sim.run()
    assert log == [(0.002, 0, 1, "tiny"), (1.001, 0, 1, "bulk")]


def test_data_slots_serialize_broadcast_copies():
    # With one DATA slot the fan-out degenerates to serial: copies leave
    # at 1 s and 2 s exactly, like the store-and-forward model.
    sim, network, log = make_net(fair_share_slots=1)
    network.broadcast(0, "mb", 1_000_000, None)
    sim.run()
    assert log == [(1.0, 0, 1, "mb"), (2.0, 0, 2, "mb")]


def test_consensus_bypasses_data_slots():
    # A consensus message admitted while the single DATA slot is busy
    # starts immediately rather than waiting for the slot.
    sim, network, log = make_net(fair_share_slots=1)
    network.broadcast(0, "mb", 1_000_000, None)
    network.send(0, 1, "vote", 1_000, None, Channel.CONSENSUS)
    sim.run()
    assert log[0][3] == "vote"
    assert log[0][0] < 1.0


def test_propagation_delay_applies_after_transfer_completes():
    sim, network, log = make_net(delay=0.05)
    network.send(0, 1, "bulk", 1_000_000, None)
    sim.run()
    assert log == [(1.05, 0, 1, "bulk")]


def test_sender_crash_kills_active_transfers_and_refunds_stats():
    sim, network, log = make_net()
    network.send(0, 1, "bulk", 1_000_000, None)
    sim.run_until(0.5)
    network.set_node_down(0)
    sim.run()
    assert log == []
    # The killed transfer's bytes were refunded at teardown.
    assert network.stats.node_bytes(0) == 0.0
    assert network.stats.messages_dropped == 1


def test_receiver_crash_kills_inbound_transfer():
    sim, network, log = make_net()
    network.send(0, 1, "bulk", 1_000_000, None)
    sim.run_until(0.5)
    network.set_node_down(1)
    sim.run()
    assert log == []


def test_peer_crash_restores_survivor_to_full_rate():
    # 0->1 and 0->2 share the uplink; when 2 dies at t=1 the surviving
    # transfer has 500 KB left and finishes it at full rate in 0.5 s.
    sim, network, log = make_net()
    network.send(0, 1, "bulk", 1_000_000, None)
    network.send(0, 2, "bulk", 1_000_000, None)
    sim.run_until(1.0)
    network.set_node_down(2)
    sim.run()
    assert log == [(1.5, 0, 1, "bulk")]


def test_queued_bytes_tracks_waiting_and_active_transfers():
    sim, network, log = make_net(fair_share_slots=1)
    network.broadcast(0, "mb", 1_000_000, None)
    # One copy active (full 1 MB remaining at t=0), one queued.
    assert network.queued_bytes(0) == pytest.approx(2_000_000)
    sim.run_until(0.5)
    assert network.queued_bytes(0) == pytest.approx(1_500_000)
    sim.run()
    assert network.queued_bytes(0) == 0.0


def test_limiter_is_rejected_under_fair_share():
    sim, network, log = make_net()
    with pytest.raises(ValueError, match="serial"):
        network.set_data_limiter(0, 1_000_000, 10_000)


def test_unknown_link_model_is_rejected():
    topology = Topology(n=2, one_way_delay=0.0, bandwidth_bps=8e6)
    with pytest.raises(ValueError, match="link_model"):
        Network(Simulator(), topology, RngRegistry(1), link_model="magic")


def test_rate_recompute_is_amortized_o1_per_event():
    # A B-send burst through one contended uplink used to settle every
    # active flow on each start/finish (~B^2/2 per-transfer settles);
    # the dirty-link flush settles each touched flow once per instant.
    # The bound is counter-based, not wall-clock, so it cannot flake:
    # with generous slop, ~10*B settles for B transfers, far under the
    # ~B^2/2 = 45,000 the eager recompute would have paid.
    sim, network, log = make_net(n=4, fair_share_slots=300)
    burst = 300
    for i in range(burst):
        network.send(0, 1 + (i % 3), "vote", 10_000, None,
                     Channel.CONSENSUS)
    sim.run()
    assert len(log) == burst
    assert network._fair.settle_ops <= 10 * burst


def test_settle_flush_is_batched_per_instant():
    # All same-instant starts are settled by a single flush pass: the
    # burst itself costs one settle per transfer, not one per pair.
    sim, network, log = make_net(n=3, fair_share_slots=100)
    for _ in range(100):
        network.send(0, 1, "mb", 1_000, None, Channel.CONSENSUS)
    ops_before = network._fair.settle_ops
    assert ops_before == 0  # nothing settled until the flush event runs
    sim.run_until(0.0)
    assert network._fair.settle_ops == 100


def test_fair_share_runs_are_deterministic():
    def run():
        sim, network, log = make_net(n=4, jitter=0.002)
        for src in range(4):
            network.broadcast(src, "mb", 250_000, None)
            network.send(src, (src + 1) % 4, "vote", 512, None,
                         Channel.CONSENSUS)
        sim.run()
        return log

    assert run() == run()
