"""Aggregate workload mode must be indistinguishable from tick mode.

The aggregate mode replays the tick carry recurrence lazily (waking only
at batcher-relevant ticks), so for any experiment it must emit identical
transaction counts and drive the protocol to an identical commit
sequence — the commit-sequence hash is the strongest available
fingerprint of "the schedules matched".
"""

import dataclasses

import pytest

from repro.faults import FaultSchedule
from repro.harness.config import ExperimentConfig
from repro.harness.presets import tuned_protocol
from repro.harness.runner import run_experiment
from repro.workload import UniformSelector, WorkloadGenerator


def both_modes(base: ExperimentConfig):
    tick = run_experiment(dataclasses.replace(base, workload_mode="ticks"))
    agg = run_experiment(dataclasses.replace(base, workload_mode="aggregate"))
    return tick, agg


@pytest.mark.parametrize("preset", ["S-HS", "SMP-HS", "Narwhal"])
def test_aggregate_matches_ticks_exactly(preset):
    base = ExperimentConfig(
        protocol=tuned_protocol(preset, n=4),
        rate_tps=5_000, duration=3.0, warmup=0.5, seed=3,
    )
    tick, agg = both_modes(base)
    assert agg.emitted_tx == tick.emitted_tx
    assert agg.committed_tx == tick.committed_tx
    assert agg.commit_hash == tick.commit_hash


def test_aggregate_matches_ticks_with_zipf_skew():
    base = ExperimentConfig(
        protocol=tuned_protocol("S-HS", n=4),
        rate_tps=4_000, duration=3.0, warmup=0.5, seed=9, selector="zipf1",
    )
    tick, agg = both_modes(base)
    assert agg.emitted_tx == tick.emitted_tx
    assert agg.commit_hash == tick.commit_hash


def test_aggregate_matches_ticks_across_crash_restart():
    # Crash/restart boundaries are the delicate part: ticks that arrive
    # while a replica is down are lost in both modes, and the tick at
    # exactly the crash instant is dropped (the injector's event fires
    # first). Two overlapping crash windows exercise both hooks.
    faults = FaultSchedule.from_spec([
        {"event": "crash", "at": 1.3, "node": 2},
        {"event": "restart", "at": 3.0, "node": 2},
        {"event": "crash", "at": 2.05, "node": 1},
        {"event": "restart", "at": 2.85, "node": 1},
    ])
    base = ExperimentConfig(
        protocol=tuned_protocol("S-HS", n=4),
        rate_tps=5_000, duration=4.0, warmup=0.5, seed=5, faults=faults,
    )
    tick, agg = both_modes(base)
    assert agg.emitted_tx == tick.emitted_tx
    assert agg.committed_tx == tick.committed_tx
    assert agg.commit_hash == tick.commit_hash


def test_aggregate_emitted_count_mid_run_matches_ticks():
    # The running emitted counter replays undigested ticks analytically;
    # it must agree with tick mode at an arbitrary mid-run instant.
    from repro.harness.runner import build_experiment

    base = ExperimentConfig(
        protocol=tuned_protocol("S-HS", n=4),
        rate_tps=3_000, duration=3.0, warmup=0.5, seed=7,
    )
    exp_tick = build_experiment(dataclasses.replace(base, workload_mode="ticks"))
    exp_agg = build_experiment(
        dataclasses.replace(base, workload_mode="aggregate")
    )
    exp_tick.sim.run_until(1.77)
    exp_agg.sim.run_until(1.77)
    assert (
        exp_agg.generator.emitted_tx_count
        == exp_tick.generator.emitted_tx_count
    )


def test_aggregate_mode_rejects_batcherless_mempools():
    # The native mempool has no microblock batcher to pull from.
    base = ExperimentConfig(
        protocol=tuned_protocol("PBFT", n=4),
        rate_tps=1_000, duration=1.0, warmup=0.0, seed=1,
        workload_mode="aggregate",
    )
    with pytest.raises(ValueError, match="batcher"):
        run_experiment(base)


def test_generator_rejects_unknown_mode_and_bad_population():
    selector = UniformSelector(1)
    with pytest.raises(ValueError, match="mode"):
        WorkloadGenerator(
            sim=None, replicas=[object()], rate_tps=10.0, tx_payload=128,
            selector=selector, mode="per-client",
        )
    with pytest.raises(ValueError, match="offered_clients"):
        WorkloadGenerator(
            sim=None, replicas=[object()], rate_tps=10.0, tx_payload=128,
            selector=selector, offered_clients=0,
        )
