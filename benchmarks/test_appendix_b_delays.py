"""Appendix B — inter-datacenter delay stability.

The paper probes Alibaba Cloud datacenter pairs every 10 ms for 24 hours
and finds delays stable and predictable (traffic stays on the provider
backbone), motivating the stable-time estimator. We cannot probe real
datacenters, so this bench probes the *simulated* WAN substrate the same
way, summarizes the distribution (the Fig. 11 heat-map/CDF data), and
contrasts it with a synthetic public-internet-style heavy-tail trace to
show what instability would look like.
"""

import random

import pytest

from repro.harness.report import format_table
from repro.sim import RngRegistry, Simulator
from repro.sim.topology import wan_topology

from _common import run_once, write_result

PROBES = 6_000  # one per 10 ms over a minute, per "hour" bucket
BUCKETS = 8     # stand-in for the 24 hourly rows of the heat map


def probe_topology() -> list[list[float]]:
    """RTT samples per time bucket over the simulated WAN."""
    sim = Simulator()
    topology = wan_topology(4)
    rng = RngRegistry(2024).stream("appendix-b")
    buckets = []
    for bucket in range(BUCKETS):
        samples = []
        for _ in range(PROBES // BUCKETS):
            rtt = (
                topology.delay(0, 1, sim.now, rng)
                + topology.delay(1, 0, sim.now, rng)
            )
            samples.append(rtt * 1000.0)
        buckets.append(samples)
    return buckets


def heavy_tail_trace(count: int) -> list[float]:
    """Public-internet contrast: lognormal body with Pareto spikes."""
    rng = random.Random(7)
    samples = []
    for _ in range(count):
        base = rng.lognormvariate(4.6, 0.35)  # ~100 ms median
        if rng.random() < 0.02:
            base += rng.paretovariate(1.5) * 40.0
        samples.append(base)
    return samples


def summarize(samples: list[float]) -> dict:
    ordered = sorted(samples)

    def pct(p):
        return ordered[min(len(ordered) - 1, int(len(ordered) * p / 100))]

    mean = sum(ordered) / len(ordered)
    return {
        "mean": mean, "p50": pct(50), "p99": pct(99), "max": ordered[-1],
        "spread": (pct(99) - pct(50)) / pct(50),
    }


def build() -> tuple[str, dict]:
    buckets = probe_topology()
    rows = []
    for index, samples in enumerate(buckets):
        stats = summarize(samples)
        rows.append([
            f"bucket {index}",
            f"{stats['mean']:.1f}", f"{stats['p50']:.1f}",
            f"{stats['p99']:.1f}", f"{stats['max']:.1f}",
        ])
    heat_table = format_table(
        ["window", "mean (ms)", "p50", "p99", "max"],
        rows,
        title="Appendix B — probed RTTs on the simulated inter-DC WAN",
    )
    flat = [sample for bucket in buckets for sample in bucket]
    stable = summarize(flat)
    tail = summarize(heavy_tail_trace(len(flat)))
    contrast = format_table(
        ["trace", "p50 (ms)", "p99 (ms)", "(p99-p50)/p50"],
        [
            ["backbone (simulated)", f"{stable['p50']:.1f}",
             f"{stable['p99']:.1f}", f"{stable['spread']:.2f}"],
            ["public-internet contrast", f"{tail['p50']:.1f}",
             f"{tail['p99']:.1f}", f"{tail['spread']:.2f}"],
        ],
        title="Delay stability: backbone vs heavy-tail contrast",
    )
    return heat_table + "\n\n" + contrast, {"stable": stable, "tail": tail,
                                            "buckets": buckets}


@pytest.mark.benchmark(group="appendix_b")
def test_appendix_b_delays(benchmark):
    text, data = run_once(benchmark, build)
    write_result("appendix_b_delays", text)

    stable, tail = data["stable"], data["tail"]
    # The backbone-style trace is tight: p99 within a few percent of p50.
    assert stable["spread"] < 0.1
    # The contrast trace is visibly heavy-tailed.
    assert tail["spread"] > 0.5
    # Bucket means are mutually consistent (no drift across "hours").
    means = [summarize(bucket)["mean"] for bucket in data["buckets"]]
    assert max(means) - min(means) < 0.05 * (sum(means) / len(means)) + 0.5
