"""Table III — outbound bandwidth by role and message type, N = 64.

The paper throttles every replica to 100 Mb/s, saturates the network,
and reports outbound Mbps at the leader and at a non-leader replica,
split into proposals / microblocks / votes / acks. The shapes:

* N-HS: the leader burns its uplink on proposals (~75 Mbps) while
  non-leaders sit nearly idle (~0.5 Mbps) — the leader bottleneck;
* SMP-HS / S-HS: leader and non-leader consumption nearly even, with
  microblock dissemination dominating both;
* S-HS adds modest proposal overhead (availability proofs) and an ack
  line (~5 Mbps) over SMP-HS — the price of availability.

Leadership is pinned to replica 0 so "leader" is well-defined for the
whole run, mirroring the paper's per-role measurement.
"""

import pytest

from repro import ExperimentConfig, tuned_protocol
from repro.harness.report import format_table, mbps
from repro.mempool.base import MessageKinds

from _common import run_once, scaled, write_result

N = scaled(default=[32], full=[64])[0]
BANDWIDTH = 100e6
DURATION = 3.0
WARMUP = 1.5

GROUPS = {
    "proposals": (MessageKinds.PROPOSAL,),
    "microblocks": MessageKinds.MICROBLOCK_KINDS,
    "votes": (MessageKinds.VOTE, MessageKinds.NEW_VIEW),
    "acks": (MessageKinds.ACK, MessageKinds.PROOF),
}

# Load at the saturation knee (not deep overload): high enough that
# microblock traffic dominates, low enough that queues stay bounded.
# Native HotStuff saturates around C/(8 B n) with its leader pinned.
RATES = {"N-HS": 4_000.0, "SMP-HS": 40_000.0, "S-HS": 40_000.0}


def run_fixed_leader(preset: str) -> dict:
    """Run one protocol with replica 0 pinned as the permanent leader."""
    from repro.harness.runner import build_experiment

    protocol = tuned_protocol(preset, n=N, topology_kind="lan")
    config = ExperimentConfig(
        protocol=protocol, topology_kind="lan", bandwidth_bps=BANDWIDTH,
        rate_tps=RATES[preset], duration=DURATION, warmup=WARMUP, seed=13,
        label=f"table3-{preset}",
    )
    experiment = build_experiment(config)
    for replica in experiment.replicas:
        replica.leader_set = (0,)
    experiment.run()
    stats = experiment.network.stats
    elapsed = config.end_time
    report: dict = {}
    for group, kinds in GROUPS.items():
        leader_bytes = sum(stats.node_bytes(0, kind) for kind in kinds)
        others = [
            sum(stats.node_bytes(node, kind) for kind in kinds)
            for node in range(1, N)
        ]
        report[("leader", group)] = mbps(leader_bytes, elapsed)
        report[("non-leader", group)] = mbps(sum(others) / len(others),
                                             elapsed)
    return report


@pytest.mark.benchmark(group="table3")
def test_table3_bandwidth(benchmark):
    def build():
        return {preset: run_fixed_leader(preset) for preset in RATES}

    reports = run_once(benchmark, build)

    rows = []
    for role in ("leader", "non-leader"):
        for group in GROUPS:
            rows.append([role, group] + [
                f"{reports[preset][(role, group)]:.1f}"
                for preset in RATES
            ])
        rows.append([role, "SUM"] + [
            f"{sum(reports[preset][(role, group)] for group in GROUPS):.1f}"
            for preset in RATES
        ])
    table = format_table(
        ["role", "messages"] + list(RATES),
        rows,
        title=(f"Table III — outbound bandwidth (Mbps), n={N}, "
               f"100 Mb/s uplinks, fixed leader"),
    )
    write_result("table3_bandwidth", table)

    nhs, smp, shs = (reports[p] for p in ("N-HS", "SMP-HS", "S-HS"))
    # Leader bottleneck: N-HS leader ships proposals at a large multiple
    # of what any non-leader sends.
    assert nhs[("leader", "proposals")] > 20.0
    # (A single view-1 proposal may escape before the bench pins the
    # leader set; anything beyond noise means pinning failed.)
    assert nhs[("non-leader", "proposals")] < 0.01
    nhs_nonleader_sum = sum(nhs[("non-leader", g)] for g in GROUPS)
    nhs_leader_sum = sum(nhs[("leader", g)] for g in GROUPS)
    assert nhs_leader_sum > 10 * nhs_nonleader_sum
    # Shared mempool: leader and non-leader loads are comparable.
    for report in (smp, shs):
        leader_sum = sum(report[("leader", g)] for g in GROUPS)
        nonleader_sum = sum(report[("non-leader", g)] for g in GROUPS)
        assert leader_sum < 3 * nonleader_sum
        assert report[("leader", "microblocks")] > 10.0
        assert report[("non-leader", "microblocks")] > 10.0
    # Stratus' extra cost vs SMP: proofs in proposals and ack traffic.
    assert shs[("leader", "proposals")] > smp[("leader", "proposals")]
    assert shs[("non-leader", "acks")] > 0.1
    assert smp[("non-leader", "acks")] == 0.0
