"""Fig. 6 — scalability: throughput and latency vs replica count, LAN+WAN.

The paper grows the network from 16 to 400 replicas and compares native
HotStuff/Streamlet against the shared-mempool protocols and Narwhal. The
shapes to reproduce:

* N-HS / N-SL throughput falls roughly like 1/n (leader bottleneck);
* SMP-HS / S-HS / S-SL stay roughly flat, overtaking the native
  protocols by growing factors (the paper reports ~5x at n = 128 LAN,
  up to ~20x in WAN);
* Narwhal sits between: better than native, but limited by its
  quadratic per-microblock message processing;
* S-HS tracks SMP-HS closely (PAB overhead is amortized away).

Scaled default: n in {16, 32, 64}, Narwhal up to 32; REPRO_BENCH_FULL=1
extends to 128 (and Narwhal 64). Each point measures capacity under an
overload run; latency is reported from a run at 70% of that capacity.
"""

import pytest

from repro.harness.report import format_table

from _common import (
    FULL,
    capacity_config,
    rate_config,
    run_grid,
    run_once,
    scaled,
    write_result,
)

SIZES = scaled(default=[16, 32, 64], full=[16, 32, 64, 128])
NARWHAL_SIZES = scaled(default=[16, 32], full=[16, 32, 64])

# Offered overload per topology: far above every capacity at these sizes.
OVERLOAD = {"lan": 400_000.0, "wan": 120_000.0}
PROTOCOLS = ("N-HS", "N-SL", "SMP-HS", "S-HS", "S-SL", "Narwhal")


def _sizes_for(preset: str) -> list:
    return NARWHAL_SIZES if preset == "Narwhal" else SIZES


def sweep(topology: str) -> tuple[str, dict]:
    # Two grid phases: every capacity cell is independent, so they all
    # run (possibly in parallel) first; the latency cells depend on the
    # measured capacities and form a second grid.
    cells = [
        (preset, n)
        for preset in PROTOCOLS
        for n in _sizes_for(preset)
    ]
    cap_runs = run_grid([
        capacity_config(
            preset, n, topology, offered=OVERLOAD[topology],
            duration=2.0, warmup=1.5,
        )
        for preset, n in cells
    ])
    capacities = {
        cell: cap_run.throughput_tps
        for cell, cap_run in zip(cells, cap_runs)
    }
    lat_runs = run_grid([
        rate_config(
            preset, n, topology, rate=max(500.0, 0.7 * capacities[(preset, n)]),
            duration=2.0, warmup=1.5,
        )
        for preset, n in cells
    ])
    rows = [
        [
            preset, n,
            f"{capacities[(preset, n)]:,.0f}",
            f"{lat_run.latency_mean * 1000:.0f}",
            f"{lat_run.latency_percentile(99) * 1000:.0f}",
        ]
        for (preset, n), lat_run in zip(cells, lat_runs)
    ]
    table = format_table(
        ["protocol", "n", "capacity (tx/s)", "lat@70% (ms)", "p99 (ms)"],
        rows,
        title=f"Fig. 6 — scalability in {topology.upper()}",
    )
    return table, capacities


@pytest.mark.benchmark(group="fig6")
def test_fig6_scalability_lan(benchmark):
    table, caps = run_once(benchmark, lambda: sweep("lan"))
    write_result("fig6_scalability_lan", table)
    _check_shapes(caps)


@pytest.mark.benchmark(group="fig6")
def test_fig6_scalability_wan(benchmark):
    table, caps = run_once(benchmark, lambda: sweep("wan"))
    write_result("fig6_scalability_wan", table)
    _check_shapes(caps)


def _check_shapes(caps: dict) -> None:
    largest = SIZES[-1]
    # Native protocols decline with n.
    assert caps[("N-HS", largest)] < caps[("N-HS", SIZES[0])]
    # Shared-mempool protocols stay roughly flat (within 2x over the sweep).
    assert caps[("S-HS", largest)] > 0.5 * caps[("S-HS", SIZES[0])]
    # SMP beats native by a growing factor; at the largest size by > 3x.
    assert caps[("S-HS", largest)] > 3 * caps[("N-HS", largest)]
    # S-HS tracks SMP-HS (PAB overhead amortized).
    assert caps[("S-HS", largest)] > 0.7 * caps[("SMP-HS", largest)]
    # Streamlet variants stay live and roughly flat across the sweep.
    assert caps[("S-SL", largest)] > 0.3 * caps[("S-SL", SIZES[0])]
    assert caps[("N-SL", largest)] < caps[("N-SL", SIZES[0])]
    # Narwhal: above native, below Stratus at its largest measured size.
    n_nw = NARWHAL_SIZES[-1]
    assert caps[("Narwhal", n_nw)] > caps[("N-HS", n_nw)]
    assert caps[("Narwhal", n_nw)] < caps[("S-HS", n_nw)]
    if FULL:
        # Paper headline: ~5x at large n (LAN); allow a generous band.
        assert caps[("S-HS", largest)] > 4 * caps[("N-HS", largest)]
