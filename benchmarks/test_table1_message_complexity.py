"""Table I — protocol comparison: message complexity per disseminated
microblock, availability guarantee, and load balancing.

The paper's table is qualitative; this bench measures the actual number
of messages each mempool family sends to disseminate one replica's
microblocks in an n-replica network, confirming the complexity classes:
gossip and Stratus are O(n) per microblock, Narwhal's reliable broadcast
is O(n^2).
"""

import pytest

from repro import ExperimentConfig, build_experiment
from repro.config import ProtocolConfig
from repro.harness.report import format_table
from repro.mempool.base import MessageKinds
from repro.types import TxBatch

from _common import run_once, write_result

N = 16
MICROBLOCKS = 5

DISSEMINATION_KINDS = (
    MessageKinds.MICROBLOCK,
    MessageKinds.MICROBLOCK_GOSSIP,
    MessageKinds.MICROBLOCK_FORWARD,
    MessageKinds.MICROBLOCK_FETCH,
    MessageKinds.ACK,
    MessageKinds.PROOF,
    MessageKinds.RB_ECHO,
    MessageKinds.RB_READY,
    MessageKinds.FETCH_REQUEST,
)


def count_dissemination_messages(mempool_kind: str) -> float:
    """Messages per microblock to fully disseminate MICROBLOCKS blocks."""
    protocol = ProtocolConfig(
        n=N, mempool=mempool_kind, batch_bytes=4 * 128,
        empty_view_delay=0.002,
    )
    experiment = build_experiment(ExperimentConfig(
        protocol=protocol, rate_tps=0.0, duration=5.0,
    ))
    replica = experiment.replicas[0]
    for index in range(MICROBLOCKS):
        replica.on_client_batch(
            TxBatch(count=4, payload_bytes=128, mean_arrival=0.0)
        )
        experiment.sim.run_until(0.3 * (index + 1))
    experiment.sim.run_until(3.0)
    stats = experiment.network.stats.messages_sent
    total = sum(stats.get(kind, 0) for kind in DISSEMINATION_KINDS)
    return total / MICROBLOCKS


@pytest.mark.benchmark(group="table1")
def test_table1_message_complexity(benchmark):
    def build_table():
        rows = []
        reference = {
            "simple": ("SMP", "no", "no", "O(n)"),
            "gossip": ("Gossip", "yes*", "partial", "O(n)"),
            "narwhal": ("SMP + RB", "yes", "no", "O(n^2)"),
            "stratus": ("SMP + PAB", "yes", "yes", "O(n)"),
        }
        measured = {}
        for kind in ("simple", "gossip", "narwhal", "stratus"):
            approach, availability, balance, complexity = reference[kind]
            per_mb = count_dissemination_messages(kind)
            measured[kind] = per_mb
            rows.append([
                kind, approach, availability, balance, complexity,
                f"{per_mb:.0f}",
            ])
        table = format_table(
            ["mempool", "approach", "availability", "load-bal",
             "paper class", f"msgs/microblock (n={N})"],
            rows,
            title="Table I — message complexity per disseminated microblock",
        )
        write_result("table1_message_complexity", table)
        return measured

    measured = run_once(benchmark, build_table)

    # Complexity classes: linear families stay within a small multiple of
    # n; the reliable-broadcast family is quadratic.
    assert measured["simple"] <= 3 * N
    assert measured["stratus"] <= 5 * N
    assert measured["gossip"] <= 6 * N
    assert measured["narwhal"] >= N * N
    # Stratus pays acks + proofs over simple best-effort, but stays O(n).
    assert measured["simple"] < measured["stratus"] < measured["narwhal"]
