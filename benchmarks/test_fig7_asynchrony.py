"""Fig. 7 — throughput timeline through a window of network asynchrony.

The paper injects 10 s of NetEm delay fluctuation (RTT 100–300 ms) into
a WAN running at 25K tx/s with a 1 s view timer. SMP-HS collapses to
zero — replicas cannot vote until they fetch missing microblocks from
the congested leader, so view-changes storm — then slowly recovers by
draining accumulated proposals. S-HS keeps committing at the speed of
the degraded network and never view-changes.

Substitution (DESIGN.md): the delay window also scales effective link
bandwidth to 15%, standing in for TCP goodput collapse under heavy
jitter, which is what actually strands microblock bodies in flight.
"""

import pytest

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.harness.report import format_series, format_table
from repro.sim.topology import FluctuationWindow

from _common import run_once, scaled, write_result

N = scaled(default=[32], full=[64])[0]
RATE = 25_000.0
WINDOW = FluctuationWindow(
    start=4.0, duration=5.0, base=0.1, jitter=0.05, throughput_factor=0.15,
)
END = 14.0


def run(preset: str):
    protocol = tuned_protocol(
        preset, n=N, topology_kind="wan", view_timeout=1.0,
        batch_bytes=32 * 1024, batch_timeout=0.4,
    )
    return run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=RATE,
        duration=END - 1.0, warmup=1.0, seed=3, label=f"fig7-{preset}",
        fluctuation=WINDOW,
    ))


@pytest.mark.benchmark(group="fig7")
def test_fig7_asynchrony(benchmark):
    results = run_once(
        benchmark, lambda: {p: run(p) for p in ("SMP-HS", "S-HS")}
    )

    parts = []
    for preset, result in results.items():
        series = result.metrics.throughput_series(0.0, END, bucket=1.0)
        parts.append(format_series(
            f"{preset} throughput (view changes: {result.view_changes})",
            [(f"{t:.0f}s", f"{v:,.0f}") for t, v in series],
            x_label="time", y_label="tx/s",
        ))
    summary_rows = []
    for preset, result in results.items():
        hub = result.metrics
        summary_rows.append([
            preset,
            f"{hub.throughput_tps(2.0, 4.0):,.0f}",
            f"{hub.throughput_tps(4.5, 9.0):,.0f}",
            f"{hub.throughput_tps(10.0, END):,.0f}",
            result.view_changes,
            hub.fetch_count,
        ])
    parts.append(format_table(
        ["protocol", "before (tx/s)", "during", "after", "view chg",
         "fetches"],
        summary_rows,
        title="Fig. 7 summary — 5 s disturbance at t=4 s",
    ))
    write_result("fig7_asynchrony", "\n\n".join(parts))

    smp, shs = results["SMP-HS"].metrics, results["S-HS"].metrics
    smp_before = smp.throughput_tps(2.0, 4.0)
    smp_during = smp.throughput_tps(4.5, 9.0)
    shs_before = shs.throughput_tps(2.0, 4.0)
    shs_during = shs.throughput_tps(4.5, 9.0)
    assert smp_during < 0.2 * smp_before          # collapse
    assert results["SMP-HS"].view_changes > 20    # view-change storm
    assert shs_during > 2 * smp_during            # Stratus keeps moving
    assert results["S-HS"].view_changes < 10
    # Both recover; SMP-HS drains its backlog after the window.
    assert smp.throughput_tps(10.0, END) > 0.8 * smp_before
    assert shs.throughput_tps(10.0, END) > 0.8 * shs_before
