"""Ablation — heterogeneous bandwidth (the other half of Problem-II).

The paper motivates DLB with *both* skewed client load and unequal
replica resources ("it is difficult to ensure that all the nodes have
identical resources like bandwidth"). This bench gives a quarter of the
replicas a fraction of the default WAN uplink under uniform client load:
the slow replicas' stable times inflate, DLB routes their excess
dissemination to fast proxies, and throughput/latency recover much of
the gap to a homogeneous deployment.
"""

import pytest

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.harness.report import format_table

from _common import run_once, write_result

N = 16
# Offered so that a slow replica's uniform share (~29 Mb/s of egress)
# exceeds its uplink: the slow nodes are genuinely overloaded, not just
# close to the edge (a steady 95%-utilized replica correctly reports
# not-busy — its stable time is high but constant).
RATE = 30_000.0
SLOW_FRACTION = 0.25
SLOW_BPS = 25e6  # quarter of the 100 Mb/s WAN default


def run(load_balancing: bool, heterogeneous: bool):
    protocol = tuned_protocol(
        "S-HS", n=N, topology_kind="wan",
        batch_bytes=16 * 1024, batch_timeout=0.1,
        load_balancing=load_balancing, lb_samples=3,
    )
    slow = int(N * SLOW_FRACTION)
    bandwidth_map = (
        {node: SLOW_BPS for node in range(slow)} if heterogeneous else None
    )
    return run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=RATE,
        duration=6.0, warmup=3.0, seed=17,
        bandwidth_map=bandwidth_map,
        label=f"hetero{heterogeneous}-dlb{load_balancing}",
    ))


@pytest.mark.benchmark(group="ablation")
def test_ablation_heterogeneous_bandwidth(benchmark):
    def sweep():
        return {
            "homogeneous": run(load_balancing=True, heterogeneous=False),
            "hetero, DLB off": run(load_balancing=False, heterogeneous=True),
            "hetero, DLB on": run(load_balancing=True, heterogeneous=True),
        }

    results = run_once(benchmark, sweep)
    rows = [
        [
            label,
            f"{result.throughput_tps:,.0f}",
            f"{result.latency_mean * 1000:.0f}",
            result.metrics.forwarded_microblocks,
        ]
        for label, result in results.items()
    ]
    table = format_table(
        ["variant", "tput (tx/s)", "lat (ms)", "forwards"],
        rows,
        title=(f"Ablation — {int(SLOW_FRACTION * N)} of {N} replicas at "
               f"{SLOW_BPS / 1e6:.0f} Mb/s (uniform load, WAN)"),
    )
    write_result("ablation_heterogeneous", table)

    base = results["homogeneous"]
    off = results["hetero, DLB off"]
    on = results["hetero, DLB on"]
    # Slow replicas detected and offloaded.
    assert on.metrics.forwarded_microblocks > 0
    assert off.metrics.forwarded_microblocks == 0
    # DLB recovers latency lost to the slow uplinks without costing
    # throughput (the slow nodes' queues stop growing once offloaded).
    assert on.latency_mean < 0.9 * off.latency_mean
    assert on.throughput_tps >= 0.98 * off.throughput_tps
    # And lands close to the homogeneous deployment.
    assert on.throughput_tps > 0.9 * base.throughput_tps
