"""Fig. 5 — throughput vs latency for S-HS while sweeping the batch size.

The paper deploys S-HS on a LAN with N = 128 and N = 256, varying the
microblock batch size (32–512 KB) and raising offered load until
saturation. The finding: bigger batches buy throughput (fewer,
better-amortized messages) with diminishing returns past 64 KB
(N = 128) / 256 KB (N = 256), at the price of latency.

Scaled default: N = 32 and N = 64 with batch sizes 16–128 KB; set
REPRO_BENCH_FULL=1 for N = 128/256 at 32–512 KB.
"""

import pytest

from repro.harness.report import format_table

from _common import rate_config, run_grid, run_once, scaled, write_result

SWEEP = scaled(
    default=[
        (32, [16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]),
        (64, [32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024]),
    ],
    full=[
        (128, [32 * 1024, 64 * 1024, 128 * 1024]),
        (256, [128 * 1024, 256 * 1024, 512 * 1024]),
    ],
)

# Offered loads walking up to saturation; measured throughput plateaus
# at capacity while latency rises, tracing the Fig. 5 curves.
LOAD_FACTORS = (0.5, 1.2)
BASE_RATE = 250_000.0  # brackets S-HS capacity at these scales


def sweep() -> tuple[str, dict]:
    cells = []
    configs = []
    for n, batch_sizes in SWEEP:
        for batch in batch_sizes:
            for factor in LOAD_FACTORS:
                rate = BASE_RATE * factor
                cells.append((n, batch, rate))
                configs.append(rate_config(
                    "S-HS", n, "lan", rate,
                    duration=2.0, warmup=1.5,
                    batch_bytes=batch, batch_timeout=1.0,
                ))
    rows = []
    curves: dict = {}
    for (n, batch, rate), result in zip(cells, run_grid(configs)):
        curves.setdefault((n, batch), []).append(
            (result.throughput_tps, result.latency_mean)
        )
        rows.append([
            f"n{n}-b{batch // 1024}K",
            f"{rate:,.0f}",
            f"{result.throughput_tps:,.0f}",
            f"{result.latency_mean * 1000:.1f}",
        ])
    table = format_table(
        ["config", "offered (tx/s)", "throughput (tx/s)", "latency (ms)"],
        rows,
        title="Fig. 5 — S-HS throughput vs latency across batch sizes (LAN)",
    )
    return table, curves


@pytest.mark.benchmark(group="fig5")
def test_fig5_batch_size(benchmark):
    table, curves = run_once(benchmark, sweep)
    write_result("fig5_batch_size", table)

    for (n, batch_sizes) in SWEEP:
        saturated = {
            batch: curves[(n, batch)][-1] for batch in batch_sizes
        }
        unsaturated = {
            batch: curves[(n, batch)][0] for batch in batch_sizes
        }
        smallest, largest = batch_sizes[0], batch_sizes[-1]
        # Bigger batches reach at least the throughput of smaller ones at
        # saturation (amortized per-microblock messaging and proofs)...
        assert saturated[largest][0] >= 0.9 * saturated[smallest][0]
        # ...but cost latency at matched (sub-saturation) load, where the
        # batch fill time dominates. (At saturation the comparison flips:
        # an overloaded small batch queues without bound.)
        assert unsaturated[largest][1] > unsaturated[smallest][1]
        low_load = curves[(n, largest)][0]
        high_load = curves[(n, largest)][-1]
        assert high_load[0] >= low_load[0] * 0.95  # throughput grows w/ load
