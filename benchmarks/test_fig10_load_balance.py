"""Fig. 10 — throughput under unbalanced (Zipfian) workloads.

The paper offers skewed client load in a WAN and compares SMP-HS,
gossip-based SMP-HS-G, and Stratus with power-of-d sampling d = 1, 2, 3.
Reported shapes:

* S-HS-dx beats SMP-HS by large factors under high skew (the hot replica
  cannot disseminate alone; DLB forwards its excess to proxies);
* SMP-HS-G sheds hot-spot load but pays ~fanout-fold redundancy, which
  costs it under *light* skew (Zipf10);
* d = 3 is the best Stratus variant, though the gap between d values is
  small under heavy skew.

Scaled default: n = 16 (hot-replica capacity ~23K tx/s, offered 30K);
REPRO_BENCH_FULL=1 uses n = 32.
"""

import pytest

from repro import ExperimentConfig, tuned_protocol
from repro.harness.report import format_table

from _common import run_grid, run_once, scaled, write_result

N = scaled(default=[16], full=[32])[0]
RATE = scaled(default=[30_000.0], full=[60_000.0])[0]

VARIANTS = (
    ("SMP-HS", "SMP-HS", 1),
    ("SMP-HS-G", "SMP-HS-G", 1),
    ("S-HS-d1", "S-HS", 1),
    ("S-HS-d2", "S-HS", 2),
    ("S-HS-d3", "S-HS", 3),
)


def cell_config(preset: str, d: int, selector: str):
    protocol = tuned_protocol(
        preset, n=N, topology_kind="wan",
        batch_bytes=16 * 1024, batch_timeout=0.1, lb_samples=d,
    )
    return ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=RATE,
        duration=6.0, warmup=3.0, seed=7, selector=selector,
        label=f"{preset}-d{d}-{selector}",
    )


def sweep() -> tuple[str, dict]:
    cells = [
        (selector, label, preset, d)
        for selector in ("zipf1", "zipf10")
        for label, preset, d in VARIANTS
    ]
    configs = [
        cell_config(preset, d, selector)
        for selector, label, preset, d in cells
    ]
    rows = []
    data: dict = {}
    for (selector, label, _, _), result in zip(cells, run_grid(configs)):
        data[(selector, label)] = result
        rows.append([
            selector, label,
            f"{result.throughput_tps:,.0f}",
            f"{result.latency_mean * 1000:.0f}",
            result.forwarded_microblocks,
            result.view_changes,
        ])
    table = format_table(
        ["workload", "protocol", "tput (tx/s)", "lat (ms)", "forwards",
         "view chg"],
        rows,
        title=f"Fig. 10 — skewed workloads, n={N}, WAN, offered {RATE:,.0f} tx/s",
    )
    return table, data


@pytest.mark.benchmark(group="fig10")
def test_fig10_load_balance(benchmark):
    table, data = run_once(benchmark, sweep)
    write_result("fig10_load_balance", table)

    for selector in ("zipf1", "zipf10"):
        best_stratus = max(
            data[(selector, label)].throughput_tps
            for label in ("S-HS-d1", "S-HS-d2", "S-HS-d3")
        )
        smp = data[(selector, "SMP-HS")].throughput_tps
        assert best_stratus > smp, selector
    # Under high skew, DLB actually forwards.
    assert data[("zipf1", "S-HS-d3")].forwarded_microblocks > 0
    # Stratus latency beats gossip's under high skew (redundancy cost).
    assert (data[("zipf1", "S-HS-d3")].latency_mean
            < data[("zipf1", "SMP-HS-G")].latency_mean)
