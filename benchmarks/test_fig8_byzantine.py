"""Fig. 8 — impact of Byzantine (censoring) senders.

The paper runs LANs of 100 and 200 replicas with up to 30% censoring
senders: against SMP-HS they share microblocks only with the leader, so
every proposal triggers a fetch storm; against S-HS they must reach an
ack quorum to be proposed at all, so fetching moves off the critical
path. Reported shapes:

* SMP-HS throughput falls and latency surges as attackers grow;
* S-HS throughput dips 20–30% at most and its latency stays flat;
* the 2f+1 PAB quorum (S-HS-2f) fetches less under attack than f+1
  (S-HS-f) at the cost of slower proof formation.

Scaled default: n = 31 and 61 with up to ~30% attackers on the paper's
1 Gb/s LAN; the offered rate is set so that the Byzantine fetch storm
(censored bodies x fetching replicas) exceeds one leader uplink, which
is the regime the paper measures. REPRO_BENCH_FULL=1 runs n = 100/200.
"""

import pytest

from repro import ExperimentConfig, tuned_protocol
from repro.harness.report import format_table

from _common import run_grid, run_once, scaled, write_result

SIZES = scaled(default=[31, 61], full=[100, 200])
BYZ_FRACTIONS = (0.0, 0.1, 0.2, 0.3)
RATE = 60_000.0


def cell_config(preset: str, n: int, byz: int, quorum: str):
    f = (n - 1) // 3
    pab_quorum = {"f": f + 1, "2f": 2 * f + 1}.get(quorum)
    protocol = tuned_protocol(
        preset, n=n, topology_kind="lan",
        batch_bytes=64 * 1024, batch_timeout=0.6,
        **({"pab_quorum": pab_quorum} if pab_quorum else {}),
    )
    return ExperimentConfig(
        protocol=protocol, topology_kind="lan",
        rate_tps=RATE, duration=4.0, warmup=1.5, seed=5,
        fault="censor" if byz else "none", fault_count=byz,
        label=f"{preset}-{quorum}-n{n}-byz{byz}",
    )


VARIANTS = (
    ("SMP-HS", "SMP-HS", ""),
    ("S-HS-f", "S-HS", "f"),
    ("S-HS-2f", "S-HS", "2f"),
)


def sweep() -> tuple[str, dict]:
    cells = []
    configs = []
    for n in SIZES:
        f = (n - 1) // 3
        for label, preset, quorum in VARIANTS:
            for fraction in BYZ_FRACTIONS:
                byz = min(int(fraction * n), f)
                cells.append((n, label, fraction, byz))
                configs.append(cell_config(preset, n, byz, quorum))
    rows = []
    data: dict = {}
    for (n, label, fraction, byz), result in zip(cells, run_grid(configs)):
        goodput = result.committed_tx / max(result.emitted_tx, 1)
        data[(n, label, fraction)] = result
        rows.append([
            n, label, byz,
            f"{result.throughput_tps:,.0f}",
            f"{goodput * 100:.0f}%",
            f"{result.latency_mean * 1000:.0f}",
            result.view_changes,
            result.fetch_count,
        ])
    table = format_table(
        ["n", "protocol", "byz", "tput (tx/s)", "goodput", "lat (ms)",
         "view chg", "fetches"],
        rows,
        title="Fig. 8 — censoring Byzantine senders (1 Gb/s LAN)",
    )
    return table, data


@pytest.mark.benchmark(group="fig8")
def test_fig8_byzantine(benchmark):
    table, data = run_once(benchmark, sweep)
    write_result("fig8_byzantine", table)

    for n in SIZES:
        smp_clean = data[(n, "SMP-HS", 0.0)]
        smp_byz = data[(n, "SMP-HS", 0.3)]
        shs_clean = data[(n, "S-HS-f", 0.0)]
        shs_byz = data[(n, "S-HS-f", 0.3)]
        # SMP-HS latency surges under attack; S-HS stays flat.
        assert smp_byz.latency_mean > 2 * smp_clean.latency_mean
        assert shs_byz.latency_mean < 1.5 * shs_clean.latency_mean + 0.05
        # S-HS keeps goodput high; SMP-HS loses a visible chunk.
        shs_goodput = shs_byz.committed_tx / shs_byz.emitted_tx
        smp_goodput = smp_byz.committed_tx / smp_byz.emitted_tx
        assert shs_goodput > 0.9
        assert smp_goodput < shs_goodput
        # Larger quorum -> fewer replicas missing the body -> fewer fetches.
        fetch_f = data[(n, "S-HS-f", 0.3)].fetch_count
        fetch_2f = data[(n, "S-HS-2f", 0.3)].fetch_count
        assert fetch_2f < fetch_f
