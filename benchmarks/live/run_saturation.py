"""Live saturation sweep: find the committed-throughput knee per codec.

Sweeps offered load over the real asyncio-TCP runtime (one OS process
per replica, see :mod:`repro.live`) for both wire codecs — ``json``
(v1) and ``binary`` (struct-packed v2) — at n in {4, 8, 16}, and
records offered vs committed tps plus p99 commit latency for every
point. The *knee* of a sweep is the point with the highest committed
throughput: past it, extra offered load only grows queues and latency.

The protocol settings deliberately shrink microblocks (8 KiB batches,
64 tx each) so the wire path — encode, frame, pump, decode — carries
thousands of frames per second and the codec choice is visible in the
knee, the same trick the chaos suite uses to stress the transport.

Usage::

    PYTHONPATH=src python benchmarks/live/run_saturation.py          # full
    PYTHONPATH=src python benchmarks/live/run_saturation.py --quick  # CI

``--quick`` restricts the sweep to n=4 and two rates per codec so the
CI smoke job finishes inside its timeout; the JSON document is written
either way (``quick: true`` marks reduced sweeps).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.config import ProtocolConfig
from repro.harness import ExperimentConfig, format_table
from repro.live import LiveConfig, run_live

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_live_saturation.json"

CODECS = ("binary", "json")

#: Offered-load ladder per cluster size (tx/s). The ladders climb past
#: the single-core knee for each n so the collapse side of the curve is
#: visible (committed falls, p99 and view changes climb); n=16 runs a
#: shorter ladder because each point costs ~startup_grace + duration
#: wall-clock seconds across 17 interpreters.
RATE_LADDERS = {
    4: (40_000.0, 80_000.0, 120_000.0, 160_000.0, 200_000.0, 240_000.0,
        280_000.0, 320_000.0),
    8: (20_000.0, 40_000.0, 80_000.0, 120_000.0),
    16: (5_000.0, 10_000.0, 20_000.0),
}
QUICK_LADDER = (40_000.0, 160_000.0)

DURATION = 4.0
WARMUP = 1.0
#: 8 KiB batches => 64 tx per microblock: the codec-bound regime.
BATCH_BYTES = 8 * 1024


def _startup_grace(n: int) -> float:
    """Seconds for n spawned interpreters to import and bind (1 core)."""
    return 2.0 + 0.75 * n


def _config(codec: str, n: int, rate: float) -> LiveConfig:
    protocol = ProtocolConfig(
        n=n, mempool="stratus", consensus="hotstuff",
        batch_bytes=BATCH_BYTES, batch_timeout=0.05,
        view_timeout=1.0 if n >= 16 else 0.5,
    )
    return LiveConfig(
        experiment=ExperimentConfig(
            protocol=protocol,
            rate_tps=rate,
            duration=DURATION,
            warmup=WARMUP,
            seed=23,
            label=f"saturation-{codec}-n{n}-r{rate:.0f}",
        ),
        startup_grace=_startup_grace(n),
        wire_codec=codec,
    )


def _run_point(codec: str, n: int, rate: float, reps: int = 1) -> dict:
    """Measure one (codec, n, rate) point; best committed tps of ``reps``.

    Saturated single-core runs are noisy — an OS hiccup near the knee
    can cost 20% committed throughput — and interference only ever
    *lowers* a run, so the max over a couple of repetitions is the
    low-variance estimate of what the point sustains. Every rep is
    kept in the document; violations from any rep count against the
    point.
    """
    best = None
    all_reps = []
    for _ in range(max(1, reps)):
        result = run_live(_config(codec, n, rate))
        rep = {
            "committed_tps": result.throughput_tps,
            "latency_p50_ms": result.latency.percentile(50) * 1000,
            "latency_p99_ms": result.latency.percentile(99) * 1000,
            "committed_blocks": result.committed_blocks,
            "committed_tx": result.committed_tx,
            "emitted_tx": result.emitted_tx,
            "view_changes": result.view_changes,
            "violations": [v.to_dict() for v in result.violations],
            "wall_clock_s": result.wall_clock_s,
        }
        all_reps.append(rep)
        if best is None or rep["committed_tps"] > best["committed_tps"]:
            best = rep
    point = dict(best)
    point["offered_tps"] = rate
    point["violations"] = [
        violation for rep in all_reps for violation in rep["violations"]
    ]
    point["reps"] = all_reps
    return point


def _knee(points: list[dict]) -> dict:
    best = max(points, key=lambda p: p["committed_tps"])
    return {
        "offered_tps": best["offered_tps"],
        "committed_tps": best["committed_tps"],
        "latency_p99_ms": best["latency_p99_ms"],
    }


def run_sweep(quick: bool = False, reps: int = 2) -> dict:
    sizes = (4,) if quick else tuple(sorted(RATE_LADDERS))
    if quick:
        reps = 1
    document = {
        "schema": "BENCH_live_saturation/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "reps_per_point": reps,
        "duration_s": DURATION,
        "warmup_s": WARMUP,
        "batch_bytes": BATCH_BYTES,
        "sweeps": {},
        "summary": {},
    }
    rows = []
    for codec in CODECS:
        document["sweeps"][codec] = {}
        for n in sizes:
            ladder = QUICK_LADDER if quick else RATE_LADDERS[n]
            points = []
            for rate in ladder:
                print(f"[saturation] codec={codec} n={n} "
                      f"offered={rate:,.0f} tx/s ...", flush=True)
                point = _run_point(codec, n, rate, reps=reps)
                points.append(point)
                print(f"[saturation]   committed={point['committed_tps']:,.0f}"
                      f" tx/s  p99={point['latency_p99_ms']:.0f} ms"
                      f"  violations={len(point['violations'])}", flush=True)
            knee = _knee(points)
            document["sweeps"][codec][f"n{n}"] = {
                "points": points, "knee": knee,
            }
            rows.append([
                codec, n,
                f"{knee['offered_tps']:,.0f}",
                f"{knee['committed_tps']:,.0f}",
                f"{knee['latency_p99_ms']:.0f}",
            ])

    for n in sizes:
        key = f"n{n}"
        binary = document["sweeps"]["binary"][key]["knee"]["committed_tps"]
        as_json = document["sweeps"]["json"][key]["knee"]["committed_tps"]
        document["summary"][f"knee_ratio_binary_over_json_{key}"] = (
            binary / as_json if as_json else None
        )

    print()
    print(format_table(
        ["codec", "n", "knee offered", "knee committed", "p99 (ms)"],
        rows,
        title=f"live saturation knees ({BATCH_BYTES // 1024} KiB batches, "
              f"{DURATION:.0f}s window, localhost)",
    ))
    for key, ratio in document["summary"].items():
        print(f"{key}: {ratio:.2f}x" if ratio else f"{key}: n/a")
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep (n=4, two rates per codec) for CI smoke",
    )
    parser.add_argument(
        "--out", type=Path, default=BENCH_PATH,
        help=f"output JSON path (default: {BENCH_PATH})",
    )
    parser.add_argument(
        "--reps", type=int, default=2,
        help="repetitions per point, best committed tps kept (full sweep "
             "only; --quick always runs 1)",
    )
    args = parser.parse_args(argv)
    document = run_sweep(quick=args.quick, reps=args.reps)
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"[written to {args.out}]")

    failures = []
    for codec, sweeps in document["sweeps"].items():
        for key, sweep in sweeps.items():
            for point in sweep["points"]:
                if point["violations"]:
                    failures.append(
                        f"{codec}/{key} @ {point['offered_tps']:,.0f}: "
                        f"{len(point['violations'])} violation(s)"
                    )
                if point["committed_blocks"] < 1:
                    failures.append(
                        f"{codec}/{key} @ {point['offered_tps']:,.0f}: "
                        "no blocks committed"
                    )
    for failure in failures:
        print(f"[saturation] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
