"""Live smoke bench: real tps/latency on localhost TCP, next to the
simulated numbers for the same protocol settings.

Runs HotStuff with the Stratus and native mempools as 4 real OS
processes over asyncio TCP (see :mod:`repro.live`), then runs the
identical :class:`ExperimentConfig` through the discrete-event
simulator, and writes both sets of numbers to ``BENCH_live.json``.
The two columns are *not* expected to match — the simulator models a
configured topology while the live run measures this machine's loopback
and scheduler — but they share the protocol code, the workload math,
and the safety bar, which is the point of the comparison.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/live/test_live_smoke.py -q

or directly: ``PYTHONPATH=src python benchmarks/live/test_live_smoke.py``.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro.config import ProtocolConfig
from repro.harness import ExperimentConfig, format_table, run_experiment
from repro.live import LiveConfig, run_live

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_live.json"

#: (mempool, consensus) pairs matching the acceptance criteria.
VARIANTS = [("stratus", "hotstuff"), ("native", "hotstuff")]

RATE_TPS = 1_000.0
DURATION = 3.0
WARMUP = 1.0


def _config(mempool: str, consensus: str) -> ExperimentConfig:
    return ExperimentConfig(
        protocol=ProtocolConfig(n=4, mempool=mempool, consensus=consensus),
        rate_tps=RATE_TPS,
        duration=DURATION,
        warmup=WARMUP,
        seed=11,
        label=f"{mempool}/{consensus}-n4",
    )


def _measure(mempool: str, consensus: str) -> dict:
    config = _config(mempool, consensus)
    live = run_live(LiveConfig(experiment=config))
    sim = run_experiment(_config(mempool, consensus))
    return {
        "label": config.label,
        "live": {
            "throughput_tps": live.throughput_tps,
            "latency_mean_ms": live.latency.mean * 1000,
            "latency_p99_ms": live.latency.percentile(99) * 1000,
            "committed_blocks": live.committed_blocks,
            "committed_tx": live.committed_tx,
            "emitted_tx": live.emitted_tx,
            "violations": [v.to_dict() for v in live.violations],
            "wall_clock_s": live.wall_clock_s,
            "per_replica": live.per_replica,
        },
        "sim": {
            "throughput_tps": sim.throughput_tps,
            "latency_mean_ms": sim.latency_mean * 1000,
            "latency_p99_ms": sim.latency_percentile(99) * 1000,
            "committed_tx": sim.committed_tx,
        },
    }


def test_live_smoke_bench():
    rows = []
    document = {
        "schema": "BENCH_live/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "offered_tps": RATE_TPS,
        "duration_s": DURATION,
        "variants": {},
    }
    for mempool, consensus in VARIANTS:
        entry = _measure(mempool, consensus)
        document["variants"][entry["label"]] = entry
        rows.append([
            entry["label"],
            f"{entry['live']['throughput_tps']:,.0f}",
            f"{entry['live']['latency_mean_ms']:.1f}",
            f"{entry['live']['latency_p99_ms']:.1f}",
            f"{entry['sim']['throughput_tps']:,.0f}",
            f"{entry['sim']['latency_mean_ms']:.1f}",
            entry["live"]["committed_blocks"],
        ])
        assert entry["live"]["committed_blocks"] >= 1, entry["label"]
        assert entry["live"]["violations"] == [], entry["label"]

    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print()
    print(format_table(
        ["variant", "live tps", "live lat (ms)", "live p99 (ms)",
         "sim tps", "sim lat (ms)", "live blocks"],
        rows,
        title=f"live vs sim @ {RATE_TPS:,.0f} tx/s offered, "
              f"{DURATION:.0f}s window (n=4, localhost)",
    ))
    print(f"[written to {BENCH_PATH}]")


if __name__ == "__main__":
    sys.exit(0 if test_live_smoke_bench() is None else 1)
