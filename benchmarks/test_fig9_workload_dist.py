"""Fig. 9 — Zipfian workload distribution across replicas.

The paper motivates DLB by showing the client-to-replica load shares
implied by the Golang Zipf generator: ``Zipf1`` (s=1.01, v=1) is highly
skewed (one replica absorbs a large share), ``Zipf10`` (s=1.01, v=10)
is lightly skewed. This bench regenerates those distributions for the
paper's network sizes and checks their invariants.
"""

import pytest

from repro.harness.report import format_table
from repro.workload import ZipfSelector

from _common import run_once, write_result

SIZES = (100, 200, 300, 400)
TOP_RANKS = 8


def build() -> tuple[str, dict]:
    data: dict = {}
    rows = []
    for n in SIZES:
        zipf1 = ZipfSelector(n, s=1.01, v=1.0)
        zipf10 = ZipfSelector(n, s=1.01, v=10.0)
        data[n] = (zipf1, zipf10)
        for rank in range(TOP_RANKS):
            rows.append([
                n, rank,
                f"{zipf1.share_of(rank) * 100:.2f}%",
                f"{zipf10.share_of(rank) * 100:.2f}%",
            ])
    table = format_table(
        ["n", "replica rank", "Zipf1 share", "Zipf10 share"],
        rows,
        title="Fig. 9 — workload shares under Golang-Zipf parameters",
    )
    return table, data


@pytest.mark.benchmark(group="fig9")
def test_fig9_workload_distribution(benchmark):
    table, data = run_once(benchmark, build)
    write_result("fig9_workload_dist", table)

    for n, (zipf1, zipf10) in data.items():
        shares1, shares10 = zipf1.shares(), zipf10.shares()
        # Both are valid, monotone-decreasing distributions.
        assert abs(sum(shares1) - 1.0) < 1e-9
        assert abs(sum(shares10) - 1.0) < 1e-9
        assert all(a >= b for a, b in zip(shares1, shares1[1:]))
        # Zipf1 is the highly skewed one: its head dominates.
        assert shares1[0] > 2 * shares10[0]
        assert shares1[0] > 0.1
        # Zipf10 is lightly skewed: no replica takes more than ~6%.
        assert shares10[0] < 0.06
        # Tail replicas are starved under Zipf1 relative to uniform.
        assert shares1[-1] < 1.0 / n
