"""Ablation — PAB recovery parameters (Algorithm 2) and quorum q.

Two dials the paper calls out:

* the stability quorum ``q`` trades push-phase latency (more acks to
  wait for) against recovery efficiency (more signers hold the body) —
  Section IV-A and the S-HS-f vs S-HS-2f variants of Fig. 8;
* the recovery fetch sampling (share of signers asked per delta round)
  trades fetch traffic against recovery time.

Both are exercised under censoring senders, which force recovery onto
the fetch path.
"""

import pytest

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.harness.report import format_table

from _common import run_once, write_result

N = 31
F = (N - 1) // 3
RATE = 20_000.0


def run(pab_quorum: int, sample_fraction: float, byz: int = 0):
    protocol = tuned_protocol(
        "S-HS", n=N, topology_kind="lan",
        batch_bytes=64 * 1024, batch_timeout=0.2,
        pab_quorum=pab_quorum, fetch_sample_fraction=sample_fraction,
    )
    return run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="lan", bandwidth_bps=100e6,
        rate_tps=RATE, duration=4.0, warmup=1.5, seed=21,
        fault="censor" if byz else "none", fault_count=byz,
        label=f"q{pab_quorum}-a{sample_fraction}-byz{byz}",
    ))


@pytest.mark.benchmark(group="ablation")
def test_ablation_recovery(benchmark):
    def sweep():
        data = {}
        for quorum in (F + 1, 2 * F + 1):
            data[("clean", quorum)] = run(quorum, 0.25)
        for fraction in (0.1, 0.5, 1.0):
            data[("byz", fraction)] = run(F + 1, fraction, byz=F)
        return data

    data = run_once(benchmark, sweep)

    rows = []
    for key, result in data.items():
        mode, value = key
        rows.append([
            mode, value,
            f"{result.throughput_tps:,.0f}",
            f"{result.metrics.stable_times.mean * 1000:.1f}",
            f"{result.latency_mean * 1000:.0f}",
            result.metrics.fetch_count,
        ])
    table = format_table(
        ["mode", "q / alpha", "tput (tx/s)", "stable time (ms)",
         "lat (ms)", "fetches"],
        rows,
        title=f"Ablation — PAB quorum and recovery sampling (S-HS, n={N})",
    )
    write_result("ablation_recovery", table)

    # Larger quorum -> slower proof formation (more acks to wait for).
    small_q = data[("clean", F + 1)]
    large_q = data[("clean", 2 * F + 1)]
    assert (large_q.metrics.stable_times.mean
            > small_q.metrics.stable_times.mean)
    # More aggressive sampling sends more fetch requests per recovery.
    assert (data[("byz", 1.0)].metrics.fetch_count
            > data[("byz", 0.1)].metrics.fetch_count)
    # All variants still commit ~everything offered.
    for result in data.values():
        assert result.committed_tx / result.emitted_tx > 0.9
