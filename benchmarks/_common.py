"""Shared helpers for the benchmark suite.

Every bench regenerates one of the paper's tables or figures and writes
the rendered rows/series to ``benchmarks/results/<name>.txt`` (also
echoed to stdout). Network sizes are scaled down by default so the full
suite finishes in tens of minutes on a laptop; set ``REPRO_BENCH_FULL=1``
for paper-scale sweeps (much slower). EXPERIMENTS.md records the mapping
and the paper-vs-measured comparison.

Grid-style figures (5, 6, 8, 10) run their independent cells through
:func:`run_grid`; set ``REPRO_BENCH_JOBS=<N>`` to fan the cells out
across worker processes. Cell results — including commit hashes — are
bit-for-bit identical either way (see ``repro.parallel``).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.parallel import RunSummary, sweep as parallel_sweep

RESULTS_DIR = Path(__file__).parent / "results"

FULL = os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")

BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1") or "1")


def scaled(default: list, full: list) -> list:
    """Pick the scaled-down or paper-scale variant of a sweep axis."""
    return full if FULL else default


def write_result(name: str, text: str) -> None:
    """Persist a bench's rendered output and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def capacity_config(
    preset: str,
    n: int,
    topology_kind: str,
    offered: float,
    duration: float = 2.5,
    warmup: float = 1.5,
    seed: int = 11,
    bandwidth_bps=None,
    **protocol_overrides,
) -> ExperimentConfig:
    """Config for a capacity measurement (overload drain rate)."""
    protocol = tuned_protocol(preset, n=n, topology_kind=topology_kind,
                              **protocol_overrides)
    return ExperimentConfig(
        protocol=protocol,
        topology_kind=topology_kind,
        bandwidth_bps=bandwidth_bps,
        rate_tps=offered,
        duration=duration,
        warmup=warmup,
        seed=seed,
        label=f"{preset}-n{n}-{topology_kind}",
    )


def rate_config(
    preset: str,
    n: int,
    topology_kind: str,
    rate: float,
    duration: float = 2.5,
    warmup: float = 1.0,
    seed: int = 11,
    bandwidth_bps=None,
    **protocol_overrides,
) -> ExperimentConfig:
    """Config for a fixed-rate (sub-capacity) measurement."""
    protocol = tuned_protocol(preset, n=n, topology_kind=topology_kind,
                              **protocol_overrides)
    return ExperimentConfig(
        protocol=protocol,
        topology_kind=topology_kind,
        bandwidth_bps=bandwidth_bps,
        rate_tps=rate,
        duration=duration,
        warmup=warmup,
        seed=seed,
        label=f"{preset}-n{n}-{topology_kind}-r{rate:.0f}",
    )


def measure_capacity(
    preset: str,
    n: int,
    topology_kind: str,
    offered: float,
    **kwargs,
):
    """Measure committed throughput under heavy offered load.

    ``offered`` should exceed the protocol's expected capacity; the
    committed rate then measures the drain rate, i.e. capacity.
    """
    return run_experiment(
        capacity_config(preset, n, topology_kind, offered, **kwargs)
    )


def measure_at_rate(
    preset: str,
    n: int,
    topology_kind: str,
    rate: float,
    **kwargs,
):
    """Measure throughput and latency at a fixed (sub-capacity) rate."""
    return run_experiment(
        rate_config(preset, n, topology_kind, rate, **kwargs)
    )


def run_grid(configs: list, jobs=None) -> list:
    """Run independent grid cells; :class:`RunSummary` list in order.

    ``jobs=None`` defers to ``REPRO_BENCH_JOBS`` (default 1 = serial,
    in-process). The serial path flattens each result through the same
    :meth:`RunSummary.from_result` a worker would use, so a figure's
    numbers do not depend on how it was executed.
    """
    if jobs is None:
        jobs = BENCH_JOBS
    if jobs > 1:
        return parallel_sweep(configs, jobs=jobs)
    return [
        RunSummary.from_result(run_experiment(config)) for config in configs
    ]


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
