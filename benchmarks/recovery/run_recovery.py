"""Recovery benchmark: how fast a durable replica comes back from disk.

Three sections, all over :class:`repro.durability.DurableKVStore`:

* ``micro`` — apply N blocks under each fsync policy (``always`` /
  ``interval`` / ``off``), then re-open the store twice: once with the
  checkpoint in place (recover = install checkpoint + short WAL tail)
  and once with checkpointing disabled (recover = full WAL replay).
  Reports apply throughput, recovery_time, wal_replay_blocks_per_sec
  and checkpoint_bytes per policy.
* ``sim_crash_restart`` — the n=4 crash-restart chaos preset on the
  simulator with the durable executor attached; asserts the victim's
  recovery came from its own disk and records the recovery report.
* ``live_crash_restart`` (full mode only) — the same preset on the
  asyncio-TCP runtime: replica 3 is SIGKILLed at t=2 s and respawned at
  t=4 s over the same data dir; the respawned generation must report a
  disk recovery source.

Usage::

    PYTHONPATH=src python benchmarks/recovery/run_recovery.py          # full
    PYTHONPATH=src python benchmarks/recovery/run_recovery.py --quick  # CI

``--quick`` shrinks the micro block count and skips the live section so
the CI smoke job finishes inside its timeout; the JSON document is
written either way (``quick: true`` marks reduced runs).
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.config import ProtocolConfig
from repro.crypto import GENESIS_QC
from repro.durability import DurabilityConfig, DurableKVStore
from repro.harness import ExperimentConfig, format_table
from repro.harness.presets import chaos_schedule
from repro.harness.runner import build_experiment
from repro.types import MicroBlock, make_microblock_id
from repro.types.proposal import Block, Payload, PayloadEntry, Proposal
from repro.verification import standard_suite

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_recovery.json"

FSYNC_POLICIES = ("always", "interval", "off")

MICRO_BLOCKS = 2_000
MICRO_BLOCKS_QUICK = 300
CHECKPOINT_INTERVAL = 128
TX_PER_BLOCK = 64


def _make_block(counter: int) -> Block:
    mb = MicroBlock(
        id=make_microblock_id(1, counter),
        origin=1, tx_count=TX_PER_BLOCK, tx_payload=128,
        created_at=0.0, sum_arrival=0.0,
    )
    proposal = Proposal(
        block_id=counter + 1, view=counter + 1, height=counter + 1,
        proposer=1, parent_id=counter, justify=GENESIS_QC,
        payload=Payload(entries=(PayloadEntry(mb_id=mb.id),)),
    )
    return Block(proposal=proposal, microblocks={mb.id: mb})


def _micro_case(fsync: str, blocks: int, checkpoint_interval: int) -> dict:
    """Apply ``blocks`` blocks, re-open, report the recovery numbers."""
    data_dir = tempfile.mkdtemp(prefix=f"bench-recovery-{fsync}-")
    try:
        store = DurableKVStore(
            data_dir,
            config=DurabilityConfig(
                fsync=fsync, checkpoint_interval=checkpoint_interval,
            ),
        )
        started = time.perf_counter()
        for counter in range(blocks):
            store.apply_block(_make_block(counter))
        apply_s = time.perf_counter() - started
        digest = store.state_digest()
        reopened = store.reopen()
        try:
            assert reopened.state_digest() == digest, "digest diverged"
            assert reopened.last_height == blocks
            return {
                "fsync": fsync,
                "blocks": blocks,
                "checkpoint_interval": checkpoint_interval,
                "apply_blocks_per_sec": blocks / max(apply_s, 1e-9),
                "recovery": reopened.recovery.to_dict(),
            }
        finally:
            reopened.close()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def run_micro(quick: bool) -> list[dict]:
    blocks = MICRO_BLOCKS_QUICK if quick else MICRO_BLOCKS
    cases = []
    for fsync in FSYNC_POLICIES:
        # Checkpointed: recovery = newest checkpoint + short WAL tail.
        print(f"[recovery] micro fsync={fsync} checkpointed ...", flush=True)
        cases.append(_micro_case(fsync, blocks, CHECKPOINT_INTERVAL))
        # WAL-only: interval > blocks, so the re-open replays every
        # record — the clean measurement of replay throughput.
        print(f"[recovery] micro fsync={fsync} wal-only ...", flush=True)
        cases.append(_micro_case(fsync, blocks, blocks + 1))
    return cases


def run_sim_crash_restart(quick: bool) -> dict:
    protocol = ProtocolConfig(
        n=4, consensus="hotstuff", mempool="stratus",
        batch_bytes=4 * 128, batch_timeout=0.05, view_timeout=0.5,
    )
    data_dir = tempfile.mkdtemp(prefix="bench-recovery-sim-")
    try:
        config = ExperimentConfig(
            protocol=protocol, rate_tps=400.0,
            duration=5.0 if quick else 8.0, warmup=0.5,
            seed=7, label="bench-recovery-sim",
            faults=chaos_schedule("crash-restart", 4),
            durability=DurabilityConfig(fsync="interval", checkpoint_interval=8),
            data_dir=data_dir,
        )
        experiment = build_experiment(config, standard_suite())
        result = experiment.run()
        victim = experiment.replicas[3].executor
        return {
            "committed_tx": result.committed_tx,
            "violations": [v.to_dict() for v in result.violations],
            "victim_recovery": victim.recovery.to_dict(),
            "recovery_report": experiment.metrics.recovery_report(),
        }
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def run_live_crash_restart() -> dict:
    from repro.live import LiveConfig, run_live

    protocol = ProtocolConfig(
        n=4, mempool="stratus", consensus="hotstuff",
        batch_bytes=8 * 1024, batch_timeout=0.05, view_timeout=0.5,
    )
    result = run_live(LiveConfig(
        experiment=ExperimentConfig(
            protocol=protocol, rate_tps=200.0, duration=8.0, warmup=0.5,
            seed=7, label="bench-recovery-live",
            faults=chaos_schedule("crash-restart", 4),
        ),
        startup_grace=3.0,
        durability=DurabilityConfig(fsync="interval", checkpoint_interval=8),
    ))
    return {
        "committed_tx": result.committed_tx,
        "violations": [v.to_dict() for v in result.violations],
        "recovery_report": result.recovery_report,
    }


def run_bench(quick: bool = False) -> dict:
    document = {
        "schema": "BENCH_recovery/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "tx_per_block": TX_PER_BLOCK,
        "micro": run_micro(quick),
        "sim_crash_restart": run_sim_crash_restart(quick),
    }
    if not quick:
        print("[recovery] live crash-restart ...", flush=True)
        document["live_crash_restart"] = run_live_crash_restart()

    rows = []
    for case in document["micro"]:
        recovery = case["recovery"]
        rows.append([
            case["fsync"],
            "ckpt" if case["checkpoint_interval"] <= case["blocks"] else "wal",
            case["blocks"],
            f"{case['apply_blocks_per_sec']:,.0f}",
            recovery["source"],
            f"{recovery['duration_s'] * 1000:.1f}",
            recovery["wal_blocks_replayed"],
            f"{recovery['wal_replay_blocks_per_sec']:,.0f}",
            f"{recovery['checkpoint_bytes']:,}",
        ])
    print()
    print(format_table(
        ["fsync", "mode", "blocks", "apply blk/s", "source",
         "recovery (ms)", "wal replayed", "replay blk/s", "ckpt bytes"],
        rows,
        title="durable store recovery micro-benchmark",
    ))
    victim = document["sim_crash_restart"]["victim_recovery"]
    print(f"sim crash-restart victim: source={victim['source']} "
          f"recovery={victim['duration_s'] * 1000:.1f} ms "
          f"wal_replayed={victim['wal_blocks_replayed']}")
    if "live_crash_restart" in document:
        for row in document["live_crash_restart"]["recovery_report"]:
            if row.get("generation", 0) > 0:
                print(f"live crash-restart node {row['node']} gen "
                      f"{row['generation']}: source={row['source']} "
                      f"recovery={row['duration_s'] * 1000:.1f} ms")
    return document


def _check(document: dict) -> list[str]:
    failures = []
    for case in document["micro"]:
        recovery = case["recovery"]
        if case["checkpoint_interval"] <= case["blocks"]:
            if recovery["source"] not in ("checkpoint", "checkpoint+wal"):
                failures.append(
                    f"micro fsync={case['fsync']} ckpt: source "
                    f"{recovery['source']!r}, expected a checkpoint recovery"
                )
        elif recovery["source"] != "wal":
            failures.append(
                f"micro fsync={case['fsync']} wal-only: source "
                f"{recovery['source']!r}, expected 'wal'"
            )
    sim = document["sim_crash_restart"]
    if sim["violations"]:
        failures.append(f"sim crash-restart: {len(sim['violations'])} violation(s)")
    if sim["victim_recovery"]["source"] not in ("checkpoint", "checkpoint+wal"):
        failures.append(
            f"sim crash-restart victim recovered from "
            f"{sim['victim_recovery']['source']!r}, not disk"
        )
    live = document.get("live_crash_restart")
    if live is not None:
        if live["violations"]:
            failures.append(f"live crash-restart: {len(live['violations'])} violation(s)")
        respawned = [
            row for row in live["recovery_report"]
            if row.get("generation", 0) > 0
        ]
        if not respawned:
            failures.append("live crash-restart: no respawned-generation recovery row")
        for row in respawned:
            if row["source"] not in ("checkpoint", "checkpoint+wal", "wal"):
                failures.append(
                    f"live node {row['node']} gen {row['generation']} "
                    f"recovered from {row['source']!r}, not disk"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced micro runs, skip the live section (CI smoke)",
    )
    parser.add_argument(
        "--out", type=Path, default=BENCH_PATH,
        help=f"output JSON path (default: {BENCH_PATH})",
    )
    args = parser.parse_args(argv)
    document = run_bench(quick=args.quick)
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"[written to {args.out}]")
    failures = _check(document)
    for failure in failures:
        print(f"[recovery] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
