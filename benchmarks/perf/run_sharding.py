"""Sharded vs. unsharded Stratus scalability bench.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_sharding.py \
        [--out benchmarks/perf/BENCH_sharding.json] [--quick] [--jobs N]

Sweeps n in {16, 32, 64, 128} for unsharded Stratus/HotStuff ("S-HS")
and sharded-stratus ("SS-HS") at shard counts {1, 2, 4, 8}, with every
replica offering 500 tps into 25 Mb/s links. The capacity math is the
point of the grid: an unsharded replica must receive every microblock
body, so committed throughput flattens near bandwidth/tx_size
(~24.6k tps) once n*500 crosses it at n=64. A shard member only
receives its own shard's bodies — consensus carries certificates — so
the s-shard ceiling is ~s times higher and the committed-tps slope
keeps climbing through n=128.

Every cell runs with the full oracle suite armed (including the
per-shard availability/conservation checks), in the worker when
``--jobs`` fans out. The report embeds per-series slopes and a
``checks`` block; the process exits non-zero if any check fails:

* ``slope``    — committed-tps slope over each segment starting at
  n >= 64 is strictly higher for 4 and 8 shards than unsharded;
* ``bytes``    — mean per-replica bytes on the wire are non-increasing
  in shard count at every n, strictly decreasing at n >= 64;
* ``oracles``  — zero violations at every measured point.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Optional

from repro.config import ShardingConfig
from repro.harness import ExperimentConfig, tuned_protocol
from repro.parallel import ParallelExecutor, experiment_job
from repro.parallel.jobs import execute_job

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_sharding.json"

#: Replica counts the paper's scalability figures sweep.
N_GRID = (16, 32, 64, 128)
#: Shard counts for the sharded-stratus series; None = unsharded S-HS.
SHARD_GRID = (None, 1, 2, 4, 8)

#: Per-replica offered load (tps) — total offered = n * RATE_PER_REPLICA,
#: so the workload grows with the committee like the paper's figure 6.
#: At 128 B/tx each origin emits 256 KB/s of body bytes.
RATE_PER_REPLICA = 2000.0
#: Deliberately tight links (100 Mb/s): an unsharded replica receives
#: every body, n * 2.05 Mb/s, which crosses link capacity between n=32
#: (66 Mb/s) and n=64 (131 Mb/s) — the unsharded series collapses
#: there. A shard member receives only its shard's bodies,
#: (n/s) * 2.05 Mb/s, so the 4- and 8-shard series stay under capacity
#: through n=128 and their committed-tps slope keeps climbing.
BANDWIDTH_BPS = 100e6
DURATION = 2.5
WARMUP = 1.5
SEED = 1
#: One certificate per origin per second (fill time just above the
#: flush timeout): the leader's per-round broadcast re-sends every
#: pending certificate n-1 times, so the sustainable certificate rate —
#: n * rate * cert_bytes * (n-1) bits/s — is the scaling limit the
#: batch knobs must respect, not body bandwidth.
BATCH_BYTES = 262_144
BATCH_TIMEOUT = 1.0

#: n at and above which the capacity gap must show up *strictly*: below
#: the saturation point (and with shard_size floored at 4 members, so
#: e.g. shards=4 and shards=8 at n=16 build the same-size shards) the
#: series legitimately tie.
STRICT_N = 64


def series_key(shards: Optional[int]) -> str:
    return "unsharded" if shards is None else f"shards{shards}"


def cell_label(n: int, shards: Optional[int]) -> str:
    if shards is None:
        return f"stratus-n{n}"
    return f"sharded{shards}-n{n}"


def build_cell_config(
    n: int, shards: Optional[int], scale: float = 1.0
) -> ExperimentConfig:
    """One measured point: fixed seed, tight links, aggregate workload."""
    overrides: dict = {
        "batch_bytes": BATCH_BYTES,
        "batch_timeout": BATCH_TIMEOUT,
    }
    preset = "S-HS"
    if shards is not None:
        preset = "SS-HS"
        overrides["sharding"] = ShardingConfig(shards=shards)
    protocol = tuned_protocol(preset, n=n, topology_kind="lan", **overrides)
    return ExperimentConfig(
        protocol=protocol,
        topology_kind="lan",
        bandwidth_bps=BANDWIDTH_BPS,
        rate_tps=n * RATE_PER_REPLICA,
        duration=max(0.5, DURATION * scale),
        warmup=WARMUP,
        seed=SEED,
        link_model="serial",
        workload_mode="aggregate",
        label=cell_label(n, shards),
    )


def grid(scale: float) -> list:
    """(n, shards, config) for every cell, n-major for readable logs."""
    return [
        (n, shards, build_cell_config(n, shards, scale))
        for n in N_GRID
        for shards in SHARD_GRID
    ]


def cell_entry(n: int, shards: Optional[int], summary: dict) -> dict:
    """Flatten one worker summary into the report's cell schema."""
    return {
        "n": n,
        "shards": shards,
        "committed_tx": summary["committed_tx"],
        "throughput_tps": round(summary["throughput_tps"], 1),
        # Mean per-replica link load; the number the certificate-only
        # proposals are supposed to push down as shards go up.
        "bytes_per_replica": round(summary["net_bytes_sent"] / n, 1),
        "commit_hash": summary["commit_hash"],
        "violations": summary["violations"],
        "events": summary["events_processed"],
        "wall_s": round(summary["wall_clock_s"], 4),
    }


def slopes_of(series: dict) -> dict:
    """Committed-tps slope (tps per added replica) per n-segment."""
    out = {}
    ns = sorted(series)
    for lo, hi in zip(ns, ns[1:]):
        out[f"{lo}-{hi}"] = round((series[hi] - series[lo]) / (hi - lo), 3)
    return out


def run_checks(cells: dict, slopes: dict) -> dict:
    """The acceptance gates; each maps to a bool plus a detail string."""
    checks: dict = {}

    # 1. Zero oracle violations at every measured point.
    violating = sorted(
        label for label, cell in cells.items() if cell["violations"]
    )
    checks["oracles"] = {
        "ok": not violating,
        "detail": "no violations" if not violating
        else f"violations in {violating}",
    }

    # 2. Committed-tps slope: sharded (s >= 4) beats unsharded on every
    # segment starting at or beyond the saturation point. Below it both
    # series track offered load, so their slopes legitimately tie.
    failures = []
    for lo, hi in zip(N_GRID, N_GRID[1:]):
        if lo < STRICT_N:
            continue
        segment = f"{lo}-{hi}"
        base = slopes["unsharded"][segment]
        for shards in (4, 8):
            got = slopes[series_key(shards)][segment]
            if not got > base:
                failures.append(
                    f"{segment}: shards={shards} slope {got} <= "
                    f"unsharded {base}"
                )
    checks["slope"] = {
        "ok": not failures,
        "detail": "sharded slope beats unsharded on every segment starting "
        f"at n>={STRICT_N}" if not failures else "; ".join(failures),
    }

    # 3. Per-replica bytes fall as shard count rises: non-increasing
    # everywhere, strictly decreasing once n reaches saturation scale.
    failures = []
    ladder = [s for s in SHARD_GRID if s is not None]
    for n in N_GRID:
        strict = n >= STRICT_N
        series = [
            (s, cells[cell_label(n, s)]["bytes_per_replica"]) for s in ladder
        ]
        for (s_lo, b_lo), (s_hi, b_hi) in zip(series, series[1:]):
            # Below saturation scale, adjacent shard counts can build
            # identical-size shards (the 4-member floor), so allow noise
            # around a tie; at n >= STRICT_N the drop must be real.
            bad = b_hi > b_lo * 1.02 if not strict else b_hi >= b_lo
            if bad:
                op = ">" if not strict else ">="
                failures.append(
                    f"n={n}: bytes/replica shards={s_hi} ({b_hi:,.0f}) "
                    f"{op} shards={s_lo} ({b_lo:,.0f})"
                )
    checks["bytes"] = {
        "ok": not failures,
        "detail": "per-replica bytes fall with shard count"
        if not failures else "; ".join(failures),
    }
    return checks


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_sharding", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="output JSON path")
    parser.add_argument("--quick", action="store_true",
                        help="halve measurement windows (CI smoke)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run cells in N worker processes; per-cell "
                             "numbers and commit hashes are identical to "
                             "--jobs 1")
    args = parser.parse_args(argv)

    scale = 0.5 if args.quick else 1.0
    work = grid(scale)
    specs = [experiment_job(config, oracles=True) for _, _, config in work]

    print(f"[sharding] {len(specs)} cell(s), jobs={args.jobs}, "
          f"quick={args.quick}", flush=True)
    started = time.perf_counter()
    if args.jobs > 1:
        executor = ParallelExecutor(jobs=args.jobs)
        results = executor.map(specs)
        summaries = []
        for (n, shards, _), job in zip(work, results):
            if job.error is not None:
                raise SystemExit(
                    f"[sharding] {cell_label(n, shards)} failed after "
                    f"{job.attempts} attempt(s): {job.error}"
                )
            summaries.append(job.value["summary"])
    else:
        summaries = []
        for (n, shards, _), spec in zip(work, specs):
            summaries.append(execute_job(spec.to_dict())["summary"])
            print(f"[sharding]   {cell_label(n, shards)}: "
                  f"{summaries[-1]['committed_tx']} tx committed", flush=True)
    elapsed = time.perf_counter() - started

    cells = {}
    series: dict = {}
    for (n, shards, _), summary in zip(work, summaries):
        entry = cell_entry(n, shards, summary)
        cells[cell_label(n, shards)] = entry
        series.setdefault(series_key(shards), {})[n] = entry["throughput_tps"]

    slopes = {key: slopes_of(points) for key, points in series.items()}
    checks = run_checks(cells, slopes)
    ok = all(check["ok"] for check in checks.values())

    report = {
        "schema": "BENCH_sharding/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": args.quick,
        "jobs": args.jobs,
        "rate_per_replica_tps": RATE_PER_REPLICA,
        "bandwidth_bps": BANDWIDTH_BPS,
        "elapsed_wall_s": round(elapsed, 4),
        "cells": cells,
        "throughput_by_series": series,
        "slopes": slopes,
        "checks": checks,
        "ok": ok,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for n in N_GRID:
        row = "  ".join(
            f"{series_key(s)}={cells[cell_label(n, s)]['throughput_tps']:>9,.0f}"
            for s in SHARD_GRID
        )
        print(f"[sharding] n={n:>3}: {row}", flush=True)
    for name, check in checks.items():
        print(f"[sharding] check {name}: "
              f"{'OK' if check['ok'] else 'FAIL'} — {check['detail']}")
    print(f"[sharding] written to {args.out} "
          f"({elapsed:.1f}s wall)", flush=True)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
