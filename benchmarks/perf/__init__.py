"""Performance benchmark harness (events/sec, wall-clock, RSS, profiles).

Unlike ``benchmarks/test_*`` — which reproduce the paper's figures —
this package measures the *simulator itself*: how many events per
second the engine sustains on fixed-seed standard scenarios. It is the
regression baseline every performance-sensitive PR is judged against.

Run it with::

    PYTHONPATH=src python benchmarks/perf/run_perf.py

which writes ``benchmarks/perf/BENCH_perf.json``. Pass ``--baseline
<file>`` to embed a previously captured run and compute speedups, and
``--profile`` to attach per-subsystem cProfile breakdowns.
"""
