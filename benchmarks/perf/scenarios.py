"""Fixed-seed standard scenarios for the perf harness.

Each scenario pins every knob (protocol, n, topology, rate, seed) so
runs are comparable across commits: the simulator is deterministic, so
two builds of the same scenario must execute the *same* event sequence
and commit the *same* blocks — only the wall-clock changes. The commit
hash emitted by the runner asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults import FaultSchedule
from repro.harness import (
    ExperimentConfig,
    NetBenchConfig,
    chaos_schedule,
    tuned_protocol,
)


@dataclass(frozen=True)
class PerfScenario:
    """One benchmark workload: a preset protocol under a fixed seed.

    ``kind`` selects the runner: ``"protocol"`` cells build a full
    experiment; ``"netbench"`` cells run the dissemination microbench
    (``repro.harness.netbench``), where ``rate_tps`` is re-read as
    broadcasts per second per node and ``msg_bytes`` sizes each payload.
    """

    name: str
    preset: str
    n: int
    rate_tps: float
    duration: float
    warmup: float = 1.0
    topology: str = "lan"
    seed: int = 1
    chaos: Optional[str] = None
    view_timeout: Optional[float] = None
    link_model: str = "serial"
    workload_mode: str = "ticks"
    offered_clients: Optional[int] = None
    kind: str = "protocol"
    msg_bytes: float = 128 * 1024

    def build_netbench(self, scale: float = 1.0) -> NetBenchConfig:
        """Materialize a dissemination-bench config (kind="netbench")."""
        return NetBenchConfig(
            n=self.n,
            msg_bytes=self.msg_bytes,
            rate_per_node=self.rate_tps,
            duration=max(0.25, self.duration * scale),
            seed=self.seed,
            label=self.name,
        )

    def build_config(self, scale: float = 1.0) -> ExperimentConfig:
        """Materialize the experiment config, optionally time-scaled.

        ``scale`` shrinks the measurement window (CI smoke runs pass
        0.5); the warmup and fault schedule are left untouched so the
        scenario still exercises the same phases.
        """
        overrides = {}
        if self.view_timeout is not None:
            overrides["view_timeout"] = self.view_timeout
        protocol = tuned_protocol(
            self.preset, n=self.n, topology_kind=self.topology, **overrides
        )
        faults: Optional[FaultSchedule] = None
        if self.chaos is not None:
            faults = chaos_schedule(self.chaos, self.n)
        return ExperimentConfig(
            protocol=protocol,
            topology_kind=self.topology,
            rate_tps=self.rate_tps,
            duration=max(0.5, self.duration * scale),
            warmup=self.warmup,
            seed=self.seed,
            faults=faults,
            link_model=self.link_model,
            workload_mode=self.workload_mode,
            offered_clients=self.offered_clients,
            label=self.name,
        )


#: The standard suite. Keep this list stable: BENCH_perf.json numbers
#: are only comparable across commits when the scenarios don't move.
SCENARIOS: tuple[PerfScenario, ...] = (
    # The paper's headline configuration: Stratus mempool under chained
    # HotStuff. Exercises PAB pushes, the DLB estimator, and proposals.
    PerfScenario(
        name="stratus-hotstuff",
        preset="S-HS", n=16, rate_tps=20_000.0, duration=3.0,
    ),
    # Broadcast-everything shared mempool: the densest message load per
    # committed transaction, so the network/event-loop cost dominates.
    PerfScenario(
        name="simple-smp",
        preset="SMP-HS", n=16, rate_tps=20_000.0, duration=3.0,
    ),
    # Chaos preset: crash + partition + loss. Cancels many view/fetch
    # timers, which is exactly what stresses heap compaction.
    PerfScenario(
        name="chaos-crash-partition",
        preset="S-HS", n=8, rate_tps=5_000.0, duration=5.0,
        chaos="crash-partition", view_timeout=0.5,
    ),
    # Dissemination fabric ceiling at n=128: every node broadcasts
    # 128 KB (the paper's microblock size) at 100/s into trivial
    # handlers, saturating each 1 Gb/s uplink ~13x so segments stay
    # full. rate_tps is broadcasts/s per node here (see PerfScenario).
    PerfScenario(
        name="disseminate-128",
        preset="none", n=128, rate_tps=100.0, duration=1.0,
        kind="netbench", seed=7,
    ),
    # WAN contention under fair-share links: every transfer splits the
    # 100 Mb/s uplinks/downlinks, and retransmission timers must ride
    # the adaptive (RTT/backlog-aware) backoff instead of the old fixed
    # 0.3 s — a fixed timer here re-pushes bodies that are merely slow.
    PerfScenario(
        name="stratus-wan-fair-share",
        preset="S-HS", n=16, rate_tps=10_000.0, duration=3.0,
        topology="wan", link_model="fair-share", seed=3,
    ),
    # Fig. 6's far edge: Stratus/HotStuff at n=128 with one million
    # offered clients, arrivals generated in aggregate (flow-level)
    # mode so the client population costs O(ticks), not O(tx).
    PerfScenario(
        name="stratus-hotstuff-128",
        preset="S-HS", n=128, rate_tps=250_000.0, duration=2.0,
        workload_mode="aggregate", offered_clients=1_000_000,
    ),
)


def get_scenarios(names: Optional[list] = None) -> list:
    """Resolve scenario names (None = the full standard suite)."""
    if not names:
        return list(SCENARIOS)
    by_name = {scenario.name: scenario for scenario in SCENARIOS}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise SystemExit(
            f"unknown scenario(s) {missing}; choose from {sorted(by_name)}"
        )
    return [by_name[name] for name in names]
