"""Fixed-seed standard scenarios for the perf harness.

Each scenario pins every knob (protocol, n, topology, rate, seed) so
runs are comparable across commits: the simulator is deterministic, so
two builds of the same scenario must execute the *same* event sequence
and commit the *same* blocks — only the wall-clock changes. The commit
hash emitted by the runner asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults import FaultSchedule
from repro.harness import ExperimentConfig, chaos_schedule, tuned_protocol


@dataclass(frozen=True)
class PerfScenario:
    """One benchmark workload: a preset protocol under a fixed seed."""

    name: str
    preset: str
    n: int
    rate_tps: float
    duration: float
    warmup: float = 1.0
    topology: str = "lan"
    seed: int = 1
    chaos: Optional[str] = None
    view_timeout: Optional[float] = None

    def build_config(self, scale: float = 1.0) -> ExperimentConfig:
        """Materialize the experiment config, optionally time-scaled.

        ``scale`` shrinks the measurement window (CI smoke runs pass
        0.5); the warmup and fault schedule are left untouched so the
        scenario still exercises the same phases.
        """
        overrides = {}
        if self.view_timeout is not None:
            overrides["view_timeout"] = self.view_timeout
        protocol = tuned_protocol(
            self.preset, n=self.n, topology_kind=self.topology, **overrides
        )
        faults: Optional[FaultSchedule] = None
        if self.chaos is not None:
            faults = chaos_schedule(self.chaos, self.n)
        return ExperimentConfig(
            protocol=protocol,
            topology_kind=self.topology,
            rate_tps=self.rate_tps,
            duration=max(0.5, self.duration * scale),
            warmup=self.warmup,
            seed=self.seed,
            faults=faults,
            label=self.name,
        )


#: The standard suite. Keep this list stable: BENCH_perf.json numbers
#: are only comparable across commits when the scenarios don't move.
SCENARIOS: tuple[PerfScenario, ...] = (
    # The paper's headline configuration: Stratus mempool under chained
    # HotStuff. Exercises PAB pushes, the DLB estimator, and proposals.
    PerfScenario(
        name="stratus-hotstuff",
        preset="S-HS", n=16, rate_tps=20_000.0, duration=3.0,
    ),
    # Broadcast-everything shared mempool: the densest message load per
    # committed transaction, so the network/event-loop cost dominates.
    PerfScenario(
        name="simple-smp",
        preset="SMP-HS", n=16, rate_tps=20_000.0, duration=3.0,
    ),
    # Chaos preset: crash + partition + loss. Cancels many view/fetch
    # timers, which is exactly what stresses heap compaction.
    PerfScenario(
        name="chaos-crash-partition",
        preset="S-HS", n=8, rate_tps=5_000.0, duration=5.0,
        chaos="crash-partition", view_timeout=0.5,
    ),
)


def get_scenarios(names: Optional[list] = None) -> list:
    """Resolve scenario names (None = the full standard suite)."""
    if not names:
        return list(SCENARIOS)
    by_name = {scenario.name: scenario for scenario in SCENARIOS}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise SystemExit(
            f"unknown scenario(s) {missing}; choose from {sorted(by_name)}"
        )
    return [by_name[name] for name in names]
