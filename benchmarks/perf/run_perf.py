"""Perf harness runner: events/sec, wall-clock, peak RSS, profiles.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py \
        [--out benchmarks/perf/BENCH_perf.json] \
        [--baseline benchmarks/perf/baseline.json] \
        [--scenario stratus-hotstuff ...] [--profile] [--quick]

For every scenario the runner reports:

* ``events_per_sec`` — simulator events executed / wall-clock seconds,
  the headline number regression gates compare;
* ``commit_hash`` — sha256 over the deterministic commit sequence
  (block id, commit time, tx count). Two builds of the same scenario
  must agree byte-for-byte; a differing hash means an optimization
  changed behavior, not just speed;
* ``peak_rss_bytes`` — process high-water mark after the scenario;
* with ``--profile``, a per-subsystem cProfile rollup (tottime grouped
  by ``repro.<package>``) plus the top-N hottest functions.

``--baseline`` embeds a previous run's numbers and computes per-scenario
speedups, which is how the "new vs pre-PR" comparison lands in one file.
"""

from __future__ import annotations

import argparse
import cProfile
import hashlib
import json
import os
import platform
import pstats
import resource
import sys
import time
from pathlib import Path
from typing import Optional

if __package__ in (None, ""):  # direct script invocation
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from scenarios import PerfScenario, get_scenarios
else:  # pragma: no cover - package import (pytest collection)
    from benchmarks.perf.scenarios import PerfScenario, get_scenarios

from repro.harness import build_experiment

DEFAULT_OUT = Path(__file__).resolve().parent / "BENCH_perf.json"
PROFILE_TOP_N = 15


def commit_sequence_hash(metrics) -> str:
    """Deterministic digest of the run's commit sequence."""
    hasher = hashlib.sha256()
    for record in metrics.commits:
        hasher.update(
            f"{record.block_id}:{record.commit_time:.9f}:"
            f"{record.tx_count}:{record.microblock_count};".encode()
        )
    return hasher.hexdigest()


def peak_rss_bytes() -> int:
    """Process peak RSS; ru_maxrss is KiB on Linux, bytes on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":  # pragma: no cover
        return int(peak)
    return int(peak) * 1024


def _subsystem_of(func: tuple) -> Optional[str]:
    """Map a pstats (file, line, name) key to a repro subpackage."""
    filename = func[0].replace("\\", "/")
    marker = "/repro/"
    index = filename.rfind(marker)
    if index < 0:
        return None
    tail = filename[index + len(marker):]
    first = tail.split("/", 1)[0]
    if first.endswith(".py"):
        first = first[:-3]
    return f"repro.{first}"


def profile_breakdown(profiler: cProfile.Profile) -> dict:
    """Roll a profile up into per-subsystem tottime plus a top-N list."""
    stats = pstats.Stats(profiler)
    subsystems: dict[str, float] = {}
    rows = []
    for func, (_cc, ncalls, tottime, cumtime, _callers) in stats.stats.items():
        subsystem = _subsystem_of(func)
        if subsystem is not None:
            subsystems[subsystem] = subsystems.get(subsystem, 0.0) + tottime
        rows.append((tottime, cumtime, ncalls, func))
    rows.sort(reverse=True)
    top = [
        {
            "function": f"{Path(func[0]).name}:{func[1]}:{func[2]}",
            "tottime_s": round(tottime, 4),
            "cumtime_s": round(cumtime, 4),
            "ncalls": ncalls,
        }
        for tottime, cumtime, ncalls, func in rows[:PROFILE_TOP_N]
    ]
    return {
        "subsystem_tottime_s": {
            name: round(total, 4)
            for name, total in sorted(
                subsystems.items(), key=lambda item: -item[1]
            )
        },
        "top_functions": top,
    }


def run_netbench_scenario(
    scenario: PerfScenario, scale: float, profile: bool
) -> dict:
    """Run one dissemination-bench cell (kind="netbench")."""
    from repro.harness import run_netbench

    result = run_netbench(scenario.build_netbench(scale))
    entry = {
        "kind": "netbench",
        "events": result.events_processed,
        "wall_s": round(result.wall_clock_s, 4),
        "events_per_sec": round(result.events_per_sec, 1),
        "sim_seconds": result.sim_seconds,
        "delivered": result.delivered,
        "dropped": result.dropped,
        # The bench's determinism digest plays the commit hash's role:
        # serial and --jobs runs must agree byte for byte.
        "commit_hash": result.fingerprint,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if profile:
        profiler = cProfile.Profile()
        profiler.enable()
        run_netbench(scenario.build_netbench(scale))
        profiler.disable()
        entry["profile"] = profile_breakdown(profiler)
    return entry


def run_scenario(
    scenario: PerfScenario, scale: float, profile: bool
) -> dict:
    """Run one scenario and measure it; profiling is a separate pass.

    The timed pass never runs under the profiler — instrumentation
    overhead would poison the events/sec number.
    """
    if scenario.kind == "netbench":
        return run_netbench_scenario(scenario, scale, profile)
    experiment = build_experiment(scenario.build_config(scale))
    result = experiment.run()
    # The result's own wall-clock covers exactly the event loop (the
    # same definition the --jobs worker path reports), not the summary
    # bookkeeping around it.
    wall = result.wall_clock_s
    events = experiment.sim.processed
    entry = {
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "sim_seconds": experiment.sim.now,
        "committed_tx": result.committed_tx,
        "throughput_tps": round(result.throughput_tps, 1),
        "commit_hash": commit_sequence_hash(result.metrics),
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if profile:
        profiled = build_experiment(scenario.build_config(scale))
        profiler = cProfile.Profile()
        profiler.enable()
        profiled.run()
        profiler.disable()
        entry["profile"] = profile_breakdown(profiler)
    return entry


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_perf", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="output JSON path")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="embed a previous run and compute speedups")
    parser.add_argument("--scenario", nargs="+", default=None,
                        help="run only these scenarios")
    parser.add_argument("--profile", action="store_true",
                        help="attach per-subsystem cProfile breakdowns "
                             "(forces --jobs 1)")
    parser.add_argument("--quick", action="store_true",
                        help="halve measurement windows (CI smoke)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run scenarios in N worker processes; per-"
                             "scenario numbers and commit hashes are "
                             "identical to --jobs 1")
    args = parser.parse_args(argv)

    jobs = args.jobs
    if args.profile and jobs > 1:
        print("[perf] note: --profile forces --jobs 1 (cProfile cannot "
              "see worker processes)")
        jobs = 1

    scale = 0.5 if args.quick else 1.0
    report: dict = {
        "schema": "BENCH_perf/1",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": args.quick,
        "jobs": jobs,
        "scenarios": {},
    }

    scenarios = get_scenarios(args.scenario)
    if jobs > 1:
        from repro.parallel import ParallelExecutor, experiment_job, netbench_job

        executor = ParallelExecutor(jobs=jobs)
        specs = [
            netbench_job(scenario.build_netbench(scale))
            if scenario.kind == "netbench"
            else experiment_job(scenario.build_config(scale))
            for scenario in scenarios
        ]
        print(f"[perf] {len(specs)} scenario(s) across {jobs} workers ...",
              flush=True)
        started = time.perf_counter()
        results = executor.map(specs)
        elapsed = time.perf_counter() - started
        worker_wall_total = 0.0
        for scenario, job in zip(scenarios, results):
            if job.error is not None:
                raise SystemExit(
                    f"[perf] {scenario.name} failed after "
                    f"{job.attempts} attempt(s): {job.error}"
                )
            worker_wall_total += job.value["worker_wall_s"]
            if scenario.kind == "netbench":
                bench = job.value["netbench"]
                wall = bench["wall_clock_s"]
                entry = {
                    "kind": "netbench",
                    "events": bench["events_processed"],
                    "wall_s": round(wall, 4),
                    "events_per_sec": round(
                        bench["events_processed"] / wall, 1
                    ) if wall > 0 else 0.0,
                    "sim_seconds": bench["sim_seconds"],
                    "delivered": bench["delivered"],
                    "dropped": bench["dropped"],
                    "commit_hash": bench["fingerprint"],
                    "peak_rss_bytes": job.value["worker_peak_rss_bytes"],
                }
            else:
                summary = job.summary
                entry = {
                    "events": summary.events_processed,
                    "wall_s": round(summary.wall_clock_s, 4),
                    "events_per_sec": round(summary.events_per_sec, 1),
                    "sim_seconds": scenario.build_config(scale).end_time,
                    "committed_tx": summary.committed_tx,
                    "throughput_tps": round(summary.throughput_tps, 1),
                    "commit_hash": summary.commit_hash,
                    "peak_rss_bytes": summary.peak_rss_bytes,
                }
            report["scenarios"][scenario.name] = entry
            print(
                f"[perf]   {scenario.name}: {entry['events']} events in "
                f"{entry['wall_s']:.2f}s -> "
                f"{entry['events_per_sec']:,.0f} events/s, "
                f"commit_hash={entry['commit_hash'][:12]}",
                flush=True,
            )
        report["parallel"] = {
            "jobs": jobs,
            "host_cpus": os.cpu_count(),
            "elapsed_wall_s": round(elapsed, 4),
            "worker_wall_total_s": round(worker_wall_total, 4),
            # How much wall-clock the fan-out saved vs running the same
            # worker jobs back to back (the serial lower bound).
            "speedup_vs_serial": round(worker_wall_total / elapsed, 3)
            if elapsed > 0 else 0.0,
            "peak_rss_max_bytes": max(
                entry["peak_rss_bytes"]
                for entry in report["scenarios"].values()
            ),
        }
        print(
            f"[perf] parallel: {worker_wall_total:.2f}s of work in "
            f"{elapsed:.2f}s wall "
            f"({report['parallel']['speedup_vs_serial']:.2f}x, "
            f"{jobs} workers)",
            flush=True,
        )
    else:
        for scenario in scenarios:
            print(f"[perf] {scenario.name} ...", flush=True)
            entry = run_scenario(scenario, scale, args.profile)
            report["scenarios"][scenario.name] = entry
            print(
                f"[perf]   {entry['events']} events in "
                f"{entry['wall_s']:.2f}s "
                f"-> {entry['events_per_sec']:,.0f} events/s, "
                f"commit_hash={entry['commit_hash'][:12]}",
                flush=True,
            )

    if args.baseline is not None and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        report["baseline"] = {
            "generated_at": baseline.get("generated_at"),
            "scenarios": baseline.get("scenarios", {}),
        }
        speedups = {}
        for name, entry in report["scenarios"].items():
            base = baseline.get("scenarios", {}).get(name)
            if not base or not base.get("events_per_sec"):
                continue
            speedups[name] = {
                "events_per_sec_before": base["events_per_sec"],
                "events_per_sec_after": entry["events_per_sec"],
                "speedup": round(
                    entry["events_per_sec"] / base["events_per_sec"], 3
                ),
                "commit_hash_matches": (
                    base.get("commit_hash") == entry["commit_hash"]
                ),
            }
        report["speedup"] = speedups
        for name, gain in speedups.items():
            match = "OK" if gain["commit_hash_matches"] else "MISMATCH"
            print(
                f"[perf] {name}: {gain['speedup']:.2f}x "
                f"({gain['events_per_sec_before']:,.0f} -> "
                f"{gain['events_per_sec_after']:,.0f} ev/s), "
                f"determinism {match}"
            )

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[perf] written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
