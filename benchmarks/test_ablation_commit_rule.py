"""Ablation — commit-rule depth: two-chain vs three-chain HotStuff.

Bamboo (the paper's framework) ships both chained variants. The commit
rule is orthogonal to the mempool: Stratus removes the *proposing*
bottleneck, while the chain depth only changes how many certified
descendants a block needs before committing. Expect one consensus round
(~one view) less latency under two-chain at equal throughput.
"""

import pytest

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.harness.report import format_table

from _common import run_once, write_result

N = 16
RATE = 20_000.0


def run(preset: str):
    protocol = tuned_protocol(
        preset, n=N, topology_kind="wan",
        batch_bytes=16 * 1024, batch_timeout=0.1,
    )
    return run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=RATE,
        duration=4.0, warmup=1.5, seed=23, label=preset,
    ))


@pytest.mark.benchmark(group="ablation")
def test_ablation_commit_rule(benchmark):
    def sweep():
        return {preset: run(preset) for preset in ("S-HS", "S-HS2")}

    results = run_once(benchmark, sweep)
    rows = [
        [
            label,
            f"{result.throughput_tps:,.0f}",
            f"{result.latency_mean * 1000:.0f}",
            f"{result.latency_percentile(99) * 1000:.0f}",
        ]
        for label, result in results.items()
    ]
    table = format_table(
        ["variant", "tput (tx/s)", "lat mean (ms)", "lat p99 (ms)"],
        rows,
        title=(f"Ablation — three-chain (S-HS) vs two-chain (S-HS2) "
               f"commit rule, n={N}, WAN"),
    )
    write_result("ablation_commit_rule", table)

    three = results["S-HS"]
    two = results["S-HS2"]
    # Equal throughput (both commit everything offered)...
    assert two.throughput_tps == pytest.approx(
        three.throughput_tps, rel=0.05)
    # ...but the two-chain rule saves about one consensus round.
    assert two.latency_mean < three.latency_mean
    assert three.latency_mean - two.latency_mean > 0.03  # > 30 ms on WAN
