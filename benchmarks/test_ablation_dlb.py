"""Ablation — distributed load balancing on/off and the ST probe.

Removes DLB from Stratus under a Zipf-1 workload (the Fig. 10 setting):
without forwarding, the hottest replica's uplink is the system
bottleneck and its queue grows without bound; with DLB the excess load
moves to proxies. Also exercises the self-push probe interval, this
implementation's addition that keeps the stable-time estimator alive
while a replica forwards (DESIGN.md design decision).
"""

import pytest

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.harness.report import format_table

from _common import run_once, write_result

N = 16
RATE = 30_000.0


def run(load_balancing: bool, probe_interval: int = 8):
    protocol = tuned_protocol(
        "S-HS", n=N, topology_kind="wan",
        batch_bytes=16 * 1024, batch_timeout=0.1,
        load_balancing=load_balancing, lb_samples=3,
        lb_probe_interval=probe_interval,
    )
    return run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=RATE,
        duration=6.0, warmup=3.0, seed=7, selector="zipf1",
        label=f"dlb{load_balancing}-probe{probe_interval}",
    ))


@pytest.mark.benchmark(group="ablation")
def test_ablation_dlb(benchmark):
    def sweep():
        return {
            "DLB off": run(False),
            "DLB on (probe 8)": run(True, 8),
            "DLB on (probe 32)": run(True, 32),
        }

    results = run_once(benchmark, sweep)
    rows = [
        [
            label,
            f"{result.throughput_tps:,.0f}",
            f"{result.latency_mean * 1000:.0f}",
            result.metrics.forwarded_microblocks,
        ]
        for label, result in results.items()
    ]
    table = format_table(
        ["variant", "tput (tx/s)", "lat (ms)", "forwards"],
        rows,
        title=(f"Ablation — DLB under Zipf-1 skew "
               f"(S-HS, n={N}, WAN @ {RATE:,.0f} tx/s)"),
    )
    write_result("ablation_dlb", table)

    off = results["DLB off"]
    on = results["DLB on (probe 8)"]
    assert on.metrics.forwarded_microblocks > 0
    assert off.metrics.forwarded_microblocks == 0
    # DLB lifts throughput and/or cuts latency under skew.
    assert (
        on.throughput_tps > 1.1 * off.throughput_tps
        or on.latency_mean < 0.7 * off.latency_mean
    )
    # The probe variant still functions with a sparser refresh.
    sparse = results["DLB on (probe 32)"]
    assert sparse.metrics.forwarded_microblocks > 0
    assert sparse.throughput_tps > 0.8 * on.throughput_tps
