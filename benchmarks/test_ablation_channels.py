"""Ablation — the priority-channel optimization (Section VI).

The implementation transmits and processes consensus messages ahead of
bulk microblock traffic ("we give the consensus channel a higher
priority") and can rate-limit the data channel with a token bucket. Two
measurements show the optimization is load-bearing for Stratus:

* steady state near saturation: without priority, proposals and votes
  queue behind bodies and consensus latency inflates ~30–40%;
* under the Fig. 7 disturbance: without priority, even S-HS collapses
  into a view-change storm — proofs cannot rescue consensus messages
  that are themselves stuck behind the body backlog.
"""

import pytest

from repro import ExperimentConfig, run_experiment, tuned_protocol
from repro.harness.report import format_table
from repro.sim.topology import FluctuationWindow

from _common import run_once, write_result

N_STEADY = 16
RATE_STEADY = 62_000.0
N_DISTURB = 32
WINDOW = FluctuationWindow(
    start=4.0, duration=5.0, base=0.1, jitter=0.05, throughput_factor=0.15,
)


def run_steady(priority: bool, limiter: bool = False):
    protocol = tuned_protocol(
        "S-HS", n=N_STEADY, topology_kind="wan",
        batch_bytes=64 * 1024, batch_timeout=0.3, view_timeout=0.5,
    )
    return run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=RATE_STEADY,
        duration=5.0, warmup=2.0, seed=9,
        priority_channels=priority,
        data_limiter=(11e6, 2e6) if limiter else None,
        label=f"steady-prio{priority}-lim{limiter}",
    ))


def run_disturbed(priority: bool):
    protocol = tuned_protocol(
        "S-HS", n=N_DISTURB, topology_kind="wan", view_timeout=1.0,
        batch_bytes=32 * 1024, batch_timeout=0.4,
    )
    return run_experiment(ExperimentConfig(
        protocol=protocol, topology_kind="wan", rate_tps=25_000.0,
        duration=11.0, warmup=1.0, seed=3,
        priority_channels=priority, fluctuation=WINDOW,
        label=f"disturbed-prio{priority}",
    ))


@pytest.mark.benchmark(group="ablation")
def test_ablation_priority_channels(benchmark):
    def sweep():
        return {
            "steady, priority on": run_steady(True),
            "steady, priority off": run_steady(False),
            "steady, priority + limiter": run_steady(True, limiter=True),
            "disturbed, priority on": run_disturbed(True),
            "disturbed, priority off": run_disturbed(False),
        }

    results = run_once(benchmark, sweep)

    rows = []
    for label, result in results.items():
        hub = result.metrics
        during = (
            f"{hub.throughput_tps(4.5, 9.0):,.0f}"
            if label.startswith("disturbed") else "-"
        )
        rows.append([
            label,
            f"{result.throughput_tps:,.0f}",
            during,
            f"{result.latency_mean * 1000:.0f}",
            result.view_changes,
        ])
    table = format_table(
        ["variant", "tput (tx/s)", "during window", "lat (ms)", "view chg"],
        rows,
        title="Ablation — consensus/data priority channels (S-HS, WAN)",
    )
    write_result("ablation_channels", table)

    on = results["steady, priority on"]
    off = results["steady, priority off"]
    # Steady state: FIFO mixing inflates consensus latency visibly.
    assert off.latency_mean > 1.2 * on.latency_mean
    # The token bucket does not hurt a healthy system.
    limited = results["steady, priority + limiter"]
    assert limited.view_changes <= on.view_changes + 2
    assert limited.throughput_tps > 0.9 * on.throughput_tps
    # Disturbance: priority is the difference between graceful degradation
    # and a view-change storm, even with PAB in place.
    d_on = results["disturbed, priority on"]
    d_off = results["disturbed, priority off"]
    assert d_off.view_changes > 5 * max(d_on.view_changes, 1)
    assert (d_on.metrics.throughput_tps(4.5, 9.0)
            > 2 * d_off.metrics.throughput_tps(4.5, 9.0))
