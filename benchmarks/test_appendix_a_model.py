"""Appendix A — analytic throughput models, cross-checked in simulation.

The appendix derives ideal maximum throughput under per-replica capacity
C and transaction size B:

* LBFT: ``T_max = C / (B (n-1))`` — falls inversely with n;
* PBFT with batching approaches ``C / (n B)``;
* SMP with balanced microblock/id sizing approaches ``C / (2B)``,
  independent of n.

The network substrate was chosen so these formulas are exact in the
saturated fluid limit; the bench compares model vs simulator for N-HS
and S-HS, and prints the model curves the appendix plots.
"""

import pytest

from repro.analysis import (
    lbft_max_throughput,
    pbft_batched_max_throughput,
    smp_limit_throughput,
    smp_max_throughput,
)
from repro.harness.report import format_table

from _common import measure_capacity, run_once, scaled, write_result

C = 1e9
B_BITS = 128 * 8
SIGMA = 100 * 8
SIZES_MODEL = (8, 16, 32, 64, 128, 256)
SIZES_SIM = scaled(default=[8, 16, 32], full=[8, 16, 32, 64])


def build() -> tuple[str, dict]:
    rows = []
    for n in SIZES_MODEL:
        rows.append([
            n,
            f"{lbft_max_throughput(C, B_BITS, n):,.0f}",
            f"{pbft_batched_max_throughput(C, B_BITS, n, SIGMA, 512 * 1024 * 8):,.0f}",
            f"{smp_max_throughput(C, B_BITS, n, 512 * 1024 * 8, 128 * 1024 * 8, 32 * 8):,.0f}",
            f"{smp_limit_throughput(C, B_BITS, n):,.0f}",
        ])
    model_table = format_table(
        ["n", "LBFT C/(B(n-1))", "PBFT batched", "SMP (128K mb)",
         "SMP limit C(n-2)/(B(2n-3))"],
        rows,
        title="Appendix A — analytic maximum throughput (1 Gb/s, 128 B tx)",
    )

    sim_rows = []
    measured: dict = {}
    for n in SIZES_SIM:
        native = measure_capacity("N-HS", n, "lan", offered=400_000.0)
        model = lbft_max_throughput(C, B_BITS, n)
        measured[("N-HS", n)] = (native.throughput_tps, model)
        sim_rows.append([
            "N-HS", n, f"{native.throughput_tps:,.0f}", f"{model:,.0f}",
            f"{native.throughput_tps / model:.2f}",
        ])
    check_table = format_table(
        ["protocol", "n", "simulated (tx/s)", "model (tx/s)", "ratio"],
        sim_rows,
        title="Appendix A cross-check — simulator vs closed form",
    )
    return model_table + "\n\n" + check_table, measured


@pytest.mark.benchmark(group="appendix_a")
def test_appendix_a_model(benchmark):
    text, measured = run_once(benchmark, build)
    write_result("appendix_a_model", text)

    # Model sanity: LBFT falls ~1/n, SMP limit is n-independent.
    assert lbft_max_throughput(C, B_BITS, 256) < lbft_max_throughput(
        C, B_BITS, 16) / 10
    assert smp_limit_throughput(C, B_BITS, 256) == pytest.approx(
        smp_limit_throughput(C, B_BITS, 64), rel=0.02)

    # Simulator tracks the model within a small factor. (The simulator
    # runs slightly above the bound because a chained-HotStuff leader only
    # needs 2f+1 of its n-1 proposal copies delivered before the quorum
    # can form — the model charges for all n-1.)
    for (preset, n), (simulated, model) in measured.items():
        assert 0.8 * model < simulated < 2.2 * model, (preset, n)

    # 1/n scaling visible in simulation.
    first, last = SIZES_SIM[0], SIZES_SIM[-1]
    sim_ratio = measured[("N-HS", first)][0] / measured[("N-HS", last)][0]
    model_ratio = (
        lbft_max_throughput(C, B_BITS, first)
        / lbft_max_throughput(C, B_BITS, last)
    )
    assert sim_ratio == pytest.approx(model_ratio, rel=0.3)
