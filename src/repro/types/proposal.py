"""Proposals and blocks (Section III-D).

A *proposal* is what the leader broadcasts: consensus metadata plus a
payload. The payload comes in three flavors matching the evaluated
protocol families:

* **embedded** — full transaction data inside the proposal (native
  mempool: N-HS, N-SL);
* **id list** — microblock ids only (simple/gossip/Narwhal SMP);
* **proven id list** — microblock ids each carrying an availability
  proof (Stratus).

A *block* is a proposal whose referenced microblocks have all been
resolved locally ("full block"); until then it is a partial block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.types import sizes
from repro.types.microblock import MicroBlock, MicroBlockId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.crypto.certificates import QuorumCert
    from repro.crypto.proofs import AvailabilityProof
    from repro.sharding.certificate import ShardCertificate


@dataclass(frozen=True)
class PayloadEntry:
    """One microblock reference inside a proposal, optionally carrying
    the evidence consensus votes on: an availability proof (Stratus) or
    a shard certificate (sharded-stratus). ``cert`` is appended last so
    the binary codec's positional layout stays backward-ordered."""

    mb_id: MicroBlockId
    proof: Optional["AvailabilityProof"] = None
    cert: Optional["ShardCertificate"] = None

    @property
    def size_bytes(self) -> int:
        size = sizes.MICROBLOCK_ID
        if self.proof is not None:
            size += self.proof.size_bytes
        if self.cert is not None:
            size += self.cert.size_bytes
        return size


@dataclass
class Payload:
    """Proposal payload: referenced entries and/or embedded microblocks.

    ``entries``/``embedded`` are never mutated after construction (code
    that needs a different payload builds a new one), so the derived
    ``size_bytes`` and ``microblock_ids`` are computed once and cached —
    both are re-read by every receiver of the proposal.
    """

    entries: tuple[PayloadEntry, ...] = ()
    embedded: tuple[MicroBlock, ...] = ()

    # Lazy caches (plain class attributes, not dataclass fields).
    _size_cache = None
    _ids_cache = None

    @property
    def size_bytes(self) -> int:
        size = self._size_cache
        if size is None:
            referenced = sum(entry.size_bytes for entry in self.entries)
            full = sum(mb.size_bytes for mb in self.embedded)
            size = referenced + full
            self._size_cache = size
        return size

    @property
    def microblock_ids(self) -> tuple[MicroBlockId, ...]:
        ids = self._ids_cache
        if ids is None:
            if self.embedded:
                ids = tuple(mb.id for mb in self.embedded)
            else:
                ids = tuple(entry.mb_id for entry in self.entries)
            self._ids_cache = ids
        return ids

    @property
    def is_empty(self) -> bool:
        return not self.entries and not self.embedded


def make_block_id(proposer: int, counter: int) -> int:
    """Deterministic unique block id, offset to avoid genesis (0)."""
    return ((proposer + 1) << 40) | counter


@dataclass
class Proposal:
    """Leader's proposal for one consensus slot."""

    block_id: int
    view: int
    height: int
    proposer: int
    parent_id: int
    justify: "QuorumCert"
    payload: Payload
    created_at: float = 0.0

    @property
    def size_bytes(self) -> float:
        return (
            sizes.PROPOSAL_HEADER
            + self.justify.size_bytes
            + self.payload.size_bytes
        )


@dataclass
class Block:
    """A proposal plus resolved microblocks; ``is_full`` gates execution."""

    proposal: Proposal
    microblocks: dict[MicroBlockId, MicroBlock] = field(default_factory=dict)
    committed_at: Optional[float] = None
    filled_at: Optional[float] = None

    @property
    def block_id(self) -> int:
        return self.proposal.block_id

    @property
    def is_full(self) -> bool:
        return all(
            mb_id in self.microblocks
            for mb_id in self.proposal.payload.microblock_ids
        )

    @property
    def missing_ids(self) -> list[MicroBlockId]:
        return [
            mb_id
            for mb_id in self.proposal.payload.microblock_ids
            if mb_id not in self.microblocks
        ]

    @property
    def tx_count(self) -> int:
        return sum(mb.tx_count for mb in self.microblocks.values())
