"""Core data structures shared by every protocol.

Transactions are *counted*, not materialized: a microblock records how many
transactions it batches, their total byte size, and the sum of their client
arrival times (for latency accounting). This keeps multi-hundred-replica
simulations tractable without changing protocol-visible behaviour.
"""

from repro.types import sizes
from repro.types.batch import TxBatch
from repro.types.microblock import MicroBlock, MicroBlockId, make_microblock_id
from repro.types.proposal import Block, Payload, PayloadEntry, Proposal

__all__ = [
    "sizes",
    "TxBatch",
    "MicroBlock",
    "MicroBlockId",
    "make_microblock_id",
    "Payload",
    "PayloadEntry",
    "Proposal",
    "Block",
]
