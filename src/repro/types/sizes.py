"""Wire-size constants (bytes) used for bandwidth accounting.

The values follow the paper's setting: 128-byte transaction payloads,
~100-byte consensus messages (votes, acks), 32-byte ids/hashes, and
64-byte ECDSA signatures (the prototype concatenates f+1 ECDSA signatures
instead of using threshold signatures; we model proof size accordingly).
"""

from __future__ import annotations

TX_PAYLOAD_DEFAULT = 128
"""Default transaction payload in bytes (Section VII-A)."""

HASH = 32
"""Size of a hash / id (SHA-256)."""

SIGNATURE = 64
"""Size of one ECDSA signature."""

MICROBLOCK_ID = HASH
"""A microblock id is a hash over its transaction ids."""

MICROBLOCK_HEADER = HASH + 8 + 8 + SIGNATURE
"""id + origin + tx count + sender signature."""

PROPOSAL_HEADER = HASH + HASH + 8 + 8 + SIGNATURE
"""previous-block hash + payload root hash + view + height + signature."""

VOTE = 100
"""Consensus vote message (signature share + block id + view)."""

ACK = 100
"""PAB-Ack message (signature over microblock id)."""

NEW_VIEW = 200
"""Pacemaker timeout / new-view message (carries highest QC)."""

FETCH_REQUEST = 48
"""PAB-Request / missing-microblock fetch request (id + requester)."""

LB_QUERY = 48
"""DLB load-status query."""

LB_INFO = 56
"""DLB load-status reply (status + id)."""

QC = 3 * HASH + 8
"""Aggregated quorum certificate carried inside proposals."""


def microblock_bytes(tx_count: int, tx_payload: int = TX_PAYLOAD_DEFAULT) -> int:
    """Total wire size of a microblock carrying ``tx_count`` transactions."""
    if tx_count < 0:
        raise ValueError(f"tx_count must be >= 0, got {tx_count}")
    return MICROBLOCK_HEADER + tx_count * tx_payload


def availability_proof_bytes(quorum: int) -> int:
    """Wire size of an availability proof: ``quorum`` concatenated sigs."""
    if quorum <= 0:
        raise ValueError(f"quorum must be positive, got {quorum}")
    return quorum * SIGNATURE + MICROBLOCK_ID


SHARD_CERT_HEADER = MICROBLOCK_ID + 8 + 8 + 8 + 8
"""id + shard + origin + tx count + mean arrival timestamp."""


def shard_certificate_bytes(quorum: int) -> int:
    """Wire size of a shard certificate.

    Unlike :func:`availability_proof_bytes` (concatenated signatures),
    certificates ride inside every proposal broadcast — an O(n)-copy
    cost per certificate — so they are modeled as BLS-style aggregates:
    one constant signature plus a 2-byte member index per signer. This
    keeps certificate-only ordering cheap even for wide shards, which is
    the whole point of ordering certificates instead of proofs.
    """
    if quorum <= 0:
        raise ValueError(f"quorum must be positive, got {quorum}")
    return SHARD_CERT_HEADER + SIGNATURE + 2 * quorum
