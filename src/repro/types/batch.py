"""Client transaction batches.

A :class:`TxBatch` is the unit in which the workload generator hands
transactions to a replica: ``count`` transactions of ``payload_bytes``
each, arriving around ``mean_arrival``. Batches are merged into
microblocks; per-transaction objects are never created.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TxBatch:
    """A group of client transactions delivered to one replica."""

    count: int
    payload_bytes: int
    mean_arrival: float

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"batch must contain transactions, got {self.count}")
        if self.payload_bytes <= 0:
            raise ValueError(
                f"payload must be positive, got {self.payload_bytes}"
            )

    @property
    def total_bytes(self) -> int:
        return self.count * self.payload_bytes

    @property
    def sum_arrival(self) -> float:
        return self.count * self.mean_arrival
