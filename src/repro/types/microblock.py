"""Microblocks: the unit of shared-mempool dissemination (Section III-D)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import sizes

MicroBlockId = int


def make_microblock_id(origin: int, counter: int) -> MicroBlockId:
    """Deterministic unique microblock id.

    The paper derives the id by hashing the contained transaction ids; for
    the simulation a collision-free ``(origin, counter)`` encoding has the
    same uniqueness property at zero cost.
    """
    if origin < 0 or counter < 0:
        raise ValueError("origin and counter must be non-negative")
    return (origin << 40) | counter


def microblock_origin(mb_id: MicroBlockId) -> int:
    """Recover the creating replica from a microblock id."""
    return mb_id >> 40


@dataclass
class MicroBlock:
    """A batch of transactions disseminated as one unit.

    ``sum_arrival`` accumulates the client arrival times of the contained
    transactions so that ``mean_arrival`` supports commit-latency
    accounting without per-transaction objects.
    """

    id: MicroBlockId
    origin: int
    tx_count: int
    tx_payload: int
    created_at: float
    sum_arrival: float

    def __post_init__(self) -> None:
        if self.tx_count <= 0:
            raise ValueError(f"microblock needs transactions, got {self.tx_count}")
        if self.tx_payload <= 0:
            raise ValueError(f"tx payload must be positive, got {self.tx_payload}")

    @property
    def size_bytes(self) -> int:
        """Wire size of the microblock including its header."""
        return sizes.microblock_bytes(self.tx_count, self.tx_payload)

    @property
    def mean_arrival(self) -> float:
        """Mean client arrival time of the batched transactions."""
        return self.sum_arrival / self.tx_count
