"""repro: a reproduction of "Scaling Blockchain Consensus via a Robust
Shared Mempool" (Stratus, ICDE 2023).

The package implements the Stratus shared mempool — provably available
broadcast (PAB) plus distributed load balancing (DLB) — together with the
full substrate the paper's evaluation needs: a deterministic discrete-event
network simulator with bandwidth serialization, chained HotStuff,
Streamlet, and PBFT consensus engines, four baseline mempools, Byzantine
behaviours, workload generation, and an experiment harness.

Quickstart::

    from repro import ExperimentConfig, run_experiment, tuned_protocol

    protocol = tuned_protocol("S-HS", n=16, topology_kind="lan")
    result = run_experiment(ExperimentConfig(
        protocol=protocol, rate_tps=20_000, duration=3.0, warmup=1.0,
    ))
    print(result.throughput_tps, result.latency_mean)
"""

from repro.config import ProtocolConfig
from repro.harness import (
    ExperimentConfig,
    ExperimentResult,
    build_experiment,
    run_experiment,
    run_replicated,
    tuned_protocol,
)
from repro.tracing import Tracer

__version__ = "1.0.0"

__all__ = [
    "ProtocolConfig",
    "ExperimentConfig",
    "ExperimentResult",
    "build_experiment",
    "run_experiment",
    "run_replicated",
    "tuned_protocol",
    "Tracer",
    "__version__",
]
