"""Invariant oracles over deterministic simulation runs.

Each oracle encodes one claim the paper makes about the protocols under
test and checks it against *every* honest replica's observed execution:

* :class:`SafetyOracle` — BFT agreement: no two honest replicas commit
  conflicting blocks at a height, and each honest replica's committed
  chain is prefix-consistent through its parent links.
* :class:`AvailabilityOracle` — the PAB proof claim (Section IV-A) and
  Narwhal's certificate claim: every microblock id referenced by a
  committed block is retrievable from enough honest stores at commit
  time.
* :class:`LedgerOracle` — SMP integrity (Section III): committed content
  is exactly client content. Nothing fabricated, nothing committed
  twice, per-microblock transaction counts conserved.
* :class:`LivenessOracle` — the robustness experiments' recovery claim
  (Section VII): commit progress resumes within a bound after each
  injected fault window heals.

Oracles record :class:`Violation` objects on an :class:`OracleSuite`
instead of raising, so one run surfaces every broken invariant and the
fuzzer can attach the full list to its seed artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.faults.schedule import SwapBehavior

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.config import ExperimentConfig
    from repro.harness.runner import RunningExperiment
    from repro.replica.node import Replica
    from repro.types.microblock import MicroBlock
    from repro.types.proposal import Block, Proposal

#: Block id of the implicit genesis block; also the ``parent_id`` used by
#: engines (PBFT) whose slots do not chain through parent links.
GENESIS_ID = 0


def _shard_map_for(protocol) -> Optional["object"]:
    """Build the run's :class:`~repro.sharding.ShardMap`, or ``None``.

    Oracles reach the protocol config through a ``getattr`` chain rather
    than :attr:`Oracle.config` so the live replay's duck-typed suite
    (:class:`repro.live.verify._LiveSuite`), which may omit the config
    entirely, still works — it just falls back to the unsharded checks.
    """
    if protocol is None or protocol.mempool != "sharded-stratus":
        return None
    from repro.config import ShardingConfig
    from repro.sharding import ShardMap

    return ShardMap(protocol.n, protocol.sharding or ShardingConfig())


@dataclass
class Violation:
    """One observed invariant breach, with enough context to debug it."""

    oracle: str
    kind: str
    time: float
    message: str
    node: Optional[int] = None
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "kind": self.kind,
            "time": self.time,
            "message": self.message,
            "node": self.node,
            "details": self.details,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        return cls(**data)

    def __str__(self) -> str:
        where = f" (replica {self.node})" if self.node is not None else ""
        return (
            f"[{self.oracle}/{self.kind}] t={self.time:.3f}{where}: "
            f"{self.message}"
        )


def honest_ids(config: "ExperimentConfig") -> frozenset[int]:
    """Replicas whose observations the oracles trust.

    Configured Byzantine replicas and any replica a scripted
    :class:`~repro.faults.schedule.SwapBehavior` turns non-honest are
    excluded for the whole run; crashed-and-restarted replicas stay
    honest (crash-recovery model).
    """
    suspect = set(config.byzantine_ids)
    if config.faults is not None:
        for event in config.faults.events:
            if isinstance(event, SwapBehavior) and event.behavior != "honest":
                suspect.add(event.node)
    return frozenset(
        node for node in range(config.protocol.n) if node not in suspect
    )


class Oracle:
    """Base oracle: bound to a suite, observing one experiment."""

    name = "abstract"

    def __init__(self) -> None:
        self.suite: Optional["OracleSuite"] = None

    def bind(self, suite: "OracleSuite") -> None:
        self.suite = suite

    @property
    def experiment(self) -> "RunningExperiment":
        return self.suite.experiment

    @property
    def config(self) -> "ExperimentConfig":
        return self.suite.experiment.config

    def report(
        self,
        kind: str,
        message: str,
        node: Optional[int] = None,
        **details,
    ) -> None:
        self.suite.record(Violation(
            oracle=self.name,
            kind=kind,
            time=self.suite.now,
            message=message,
            node=node,
            details=details,
        ))

    # -- hooks (all optional) ----------------------------------------------

    def on_attach(self) -> None:
        """The suite was attached to an experiment; reset state."""

    def on_local_commit(
        self, replica: "Replica", proposal: "Proposal"
    ) -> None:
        """An honest replica's consensus engine committed ``proposal``."""

    def on_microblock_created(
        self, replica: "Replica", microblock: "MicroBlock"
    ) -> None:
        """An honest replica batched a new microblock."""

    def on_block_resolved(self, replica: "Replica", block: "Block") -> None:
        """A committed block became full at an honest replica."""

    def finalize(self) -> None:
        """The run ended; check end-of-run invariants."""


class OracleSuite:
    """Fan-out observer installed on every replica of one experiment."""

    def __init__(self, oracles) -> None:
        self.oracles = list(oracles)
        self.violations: list[Violation] = []
        self.experiment: Optional["RunningExperiment"] = None
        self._honest: frozenset[int] = frozenset()

    @property
    def now(self) -> float:
        return self.experiment.sim.now if self.experiment is not None else 0.0

    @property
    def honest(self) -> frozenset[int]:
        return self._honest

    def attach(self, experiment: "RunningExperiment") -> "OracleSuite":
        """Install this suite as every replica's observer."""
        self.experiment = experiment
        self._honest = honest_ids(experiment.config)
        for replica in experiment.replicas:
            replica.observer = self
        for oracle in self.oracles:
            oracle.bind(self)
            oracle.on_attach()
        return self

    def honest_replicas(self) -> list["Replica"]:
        return [
            replica for replica in self.experiment.replicas
            if replica.node_id in self._honest
        ]

    def record(self, violation: Violation) -> None:
        self.violations.append(violation)

    # -- replica observer interface ----------------------------------------

    def on_local_commit(
        self, replica: "Replica", proposal: "Proposal"
    ) -> None:
        if replica.node_id not in self._honest:
            return
        for oracle in self.oracles:
            oracle.on_local_commit(replica, proposal)

    def on_microblock_created(
        self, replica: "Replica", microblock: "MicroBlock"
    ) -> None:
        if replica.node_id not in self._honest:
            return
        for oracle in self.oracles:
            oracle.on_microblock_created(replica, microblock)

    def on_block_resolved(self, replica: "Replica", block: "Block") -> None:
        if replica.node_id not in self._honest:
            return
        for oracle in self.oracles:
            oracle.on_block_resolved(replica, block)

    def finalize(self) -> list[Violation]:
        for oracle in self.oracles:
            oracle.finalize()
        return self.violations


class SafetyOracle(Oracle):
    """Agreement and prefix consistency of honest committed chains.

    Parent-link checks are skipped for proposals with ``parent_id == 0``:
    PBFT slots do not chain through parents (and may commit out of slot
    order within the window), so only the height-agreement checks apply
    there.
    """

    name = "safety"

    def on_attach(self) -> None:
        # height -> (block_id, first committing honest replica)
        self._global: dict[int, tuple[int, int]] = {}
        self._height_of: dict[int, int] = {}
        # replica -> height -> block_id
        self._chains: dict[int, dict[int, int]] = {}
        self._reported: set[tuple] = set()

    def _report_once(self, key: tuple, kind: str, message: str,
                     node: Optional[int], **details) -> None:
        if key in self._reported:
            return
        self._reported.add(key)
        self.report(kind, message, node=node, **details)

    def on_local_commit(
        self, replica: "Replica", proposal: "Proposal"
    ) -> None:
        node = replica.node_id
        height = proposal.height
        block_id = proposal.block_id
        chain = self._chains.setdefault(node, {})

        prev = chain.get(height)
        if prev is not None and prev != block_id:
            self._report_once(
                ("local-fork", node, height, min(prev, block_id)),
                "local-fork",
                f"replica {node} committed conflicting blocks "
                f"{prev:#x} and {block_id:#x} at height {height}",
                node, height=height, blocks=[prev, block_id],
            )
        chain[height] = block_id

        known = self._height_of.setdefault(block_id, height)
        if known != height:
            self._report_once(
                ("height-mismatch", block_id),
                "height-mismatch",
                f"block {block_id:#x} committed at heights "
                f"{known} and {height}",
                node, block=block_id, heights=[known, height],
            )

        first = self._global.get(height)
        if first is None:
            self._global[height] = (block_id, node)
        elif first[0] != block_id:
            self._report_once(
                ("fork", height, min(first[0], block_id)),
                "fork",
                f"honest replicas {first[1]} and {node} committed "
                f"conflicting blocks {first[0]:#x} and {block_id:#x} "
                f"at height {height}",
                node, height=height, blocks=[first[0], block_id],
            )

        if proposal.parent_id != GENESIS_ID:
            parent = chain.get(height - 1)
            if parent is not None and parent != proposal.parent_id:
                self._report_once(
                    ("broken-prefix", node, height),
                    "broken-prefix",
                    f"replica {node}'s block at height {height} links to "
                    f"parent {proposal.parent_id:#x} but the replica "
                    f"committed {parent:#x} at height {height - 1}",
                    node, height=height,
                    parent=proposal.parent_id, committed=parent,
                )


class AvailabilityOracle(Oracle):
    """Committed microblocks must be held by enough honest stores.

    Armed by default only for the *certifying* mempools whose protocols
    actually promise this at commit time — Stratus (a PAB proof carries
    ``q`` storage acks, so at least ``q - byz`` honest replicas hold the
    body) and Narwhal (a certificate roots in a ``2f + 1`` echo quorum,
    and honest replicas only echo bodies they stored). The best-effort
    mempools make no such promise — that *is* the weakness the paper
    fixes — so checking them would flag the baseline, not a bug. Pass
    ``strict=True`` to arm the PAB bar (``f + 1 - byz``) anyway, which is
    how the mutation self-test catches a mempool that skips the proof
    gate.

    For ``sharded-stratus`` the claim is *per shard*: a certificate
    carries ``quorum(s)`` member acks, so at least ``quorum(s) - byz_s``
    honest *members of shard s* hold the body — non-members are expected
    to commit certificates without bodies, so only member stores count.
    """

    name = "availability"

    CERTIFYING = ("stratus", "narwhal", "sharded-stratus")

    def __init__(
        self, strict: bool = False, threshold: Optional[int] = None
    ) -> None:
        super().__init__()
        self._strict = strict
        self._override = threshold

    def on_attach(self) -> None:
        self._checked: set[int] = set()
        protocol = self.config.protocol
        self._armed = self._strict or protocol.mempool in self.CERTIFYING
        self._shard_map = _shard_map_for(protocol)
        byz = len(self.config.byzantine_ids)
        if self._override is not None:
            self._threshold = self._override
        elif protocol.mempool == "narwhal":
            self._threshold = max(1, protocol.consensus_quorum - byz)
        elif protocol.mempool == "stratus":
            self._threshold = max(1, protocol.stability_quorum - byz)
        else:
            self._threshold = max(1, protocol.f + 1 - byz)

    def _shard_bar(self, mb_id) -> tuple[Optional[frozenset[int]], int]:
        """(eligible holders, required count) for one microblock."""
        if self._shard_map is None:
            return None, self._threshold
        shard = self._shard_map.shard_of_microblock(mb_id)
        members = self._shard_map.member_set(shard)
        if self._override is not None:
            return members, self._override
        byz_in = sum(
            1 for node in self.config.byzantine_ids if node in members
        )
        return members, max(1, self._shard_map.quorum(shard) - byz_in)

    @staticmethod
    def _holds(replica: "Replica", mb_id) -> bool:
        store = getattr(replica.mempool, "store", None)
        return store is not None and mb_id in store

    def on_local_commit(
        self, replica: "Replica", proposal: "Proposal"
    ) -> None:
        if not self._armed or proposal.block_id in self._checked:
            return
        self._checked.add(proposal.block_id)
        if proposal.payload.embedded:
            return  # data travelled inside the proposal itself
        for mb_id in proposal.payload.microblock_ids:
            eligible, threshold = self._shard_bar(mb_id)
            holders = [
                peer.node_id for peer in self.suite.honest_replicas()
                if (eligible is None or peer.node_id in eligible)
                and self._holds(peer, mb_id)
            ]
            if len(holders) < threshold:
                where = (
                    "honest store(s)" if eligible is None
                    else "honest shard-member store(s)"
                )
                self.report(
                    "unavailable",
                    f"microblock {mb_id:#x} committed in block "
                    f"{proposal.block_id:#x} is held by only "
                    f"{len(holders)} {where}, need {threshold}",
                    node=replica.node_id,
                    microblock=mb_id, block=proposal.block_id,
                    holders=holders, threshold=threshold,
                )


class LedgerOracle(Oracle):
    """SMP integrity: committed content is exactly client content.

    Under ``sharded-stratus``, commits are certificate-level: a replica
    may never resolve a foreign shard's bodies, and throughput is
    accounted from certificate tx counts. Conservation is therefore
    checked *per shard* as well — certified transactions committed in a
    shard must not exceed transactions batched by that shard's origins —
    and each committed certificate's embedded tx count is cross-checked
    against the honest origin's creation record.
    """

    name = "smp-integrity"

    def on_attach(self) -> None:
        # mb_id -> (tx_count, origin) at creation
        self._created: dict[int, tuple[int, int]] = {}
        # mb_id -> block_id that committed it
        self._committed: dict[int, int] = {}
        # (node, mb_id) -> earliest time that node locally committed it
        self._local_commits: dict[tuple[int, int], float] = {}
        # Transactions over *unique* committed microblocks — the
        # execution-level count where a fork-race double commit of the
        # same microblock applies once (real deployments dedupe there).
        self._committed_tx = 0
        self._seen_blocks: set[int] = set()
        self._resolved_blocks: set[int] = set()
        # Per-shard conservation (sharded-stratus only). The getattr
        # chain tolerates the live replay's duck-typed suite, which may
        # not carry a config at all.
        protocol = getattr(
            getattr(self.suite.experiment, "config", None), "protocol", None
        )
        self._shard_map = _shard_map_for(protocol)
        self._shard_created: dict[int, int] = {}
        self._shard_committed: dict[int, int] = {}

    def on_microblock_created(
        self, replica: "Replica", microblock: "MicroBlock"
    ) -> None:
        record = (microblock.tx_count, microblock.origin)
        first_time = microblock.id not in self._created
        existing = self._created.setdefault(microblock.id, record)
        if first_time and self._shard_map is not None:
            shard = self._shard_map.shard_of_origin(microblock.origin)
            self._shard_created[shard] = (
                self._shard_created.get(shard, 0) + microblock.tx_count
            )
        if existing != record:
            self.report(
                "id-collision",
                f"microblock id {microblock.id:#x} created twice with "
                f"different content: {existing} vs {record}",
                node=replica.node_id, microblock=microblock.id,
            )

    def on_local_commit(
        self, replica: "Replica", proposal: "Proposal"
    ) -> None:
        now = self.suite.now
        for mb_id in proposal.payload.microblock_ids:
            self._local_commits.setdefault((replica.node_id, mb_id), now)
        if proposal.block_id in self._seen_blocks:
            return
        self._seen_blocks.add(proposal.block_id)
        certs = {
            entry.mb_id: entry.cert
            for entry in proposal.payload.entries
            if getattr(entry, "cert", None) is not None
        }
        for mb_id in proposal.payload.microblock_ids:
            owner = self._committed.get(mb_id)
            if owner is not None and owner != proposal.block_id:
                # Only flag *knowing* replays: the proposer had already
                # committed this microblock locally before building the
                # block. An honest leader cut off by a partition can
                # legitimately re-propose ids whose first commit it never
                # saw — real deployments dedupe those at execution.
                first = self._local_commits.get((proposal.proposer, mb_id))
                if first is not None and first < proposal.created_at:
                    self.report(
                        "duplicate",
                        f"microblock {mb_id:#x} committed twice: in blocks "
                        f"{owner:#x} and {proposal.block_id:#x}, and "
                        f"proposer {proposal.proposer} had committed it "
                        f"locally at t={first:.3f} before proposing again "
                        f"at t={proposal.created_at:.3f}",
                        node=replica.node_id,
                        microblock=mb_id,
                        blocks=[owner, proposal.block_id],
                        proposer=proposal.proposer,
                    )
                continue
            self._committed[mb_id] = proposal.block_id
            created_tx = self._created.get(mb_id, (0, 0))[0]
            self._committed_tx += created_tx
            cert = certs.get(mb_id)
            if cert is not None:
                if self._shard_map is not None:
                    shard = self._shard_map.shard_of_microblock(mb_id)
                    self._shard_committed[shard] = (
                        self._shard_committed.get(shard, 0) + cert.tx_count
                    )
                if mb_id in self._created and cert.tx_count != created_tx:
                    self.report(
                        "cert-mismatch",
                        f"certificate for microblock {mb_id:#x} claims "
                        f"{cert.tx_count} txs but the origin batched "
                        f"{created_tx}",
                        node=replica.node_id,
                        microblock=mb_id, block=proposal.block_id,
                        certified=cert.tx_count, created=created_tx,
                    )
            if mb_id not in self._created:
                self.report(
                    "fabricated",
                    f"committed microblock {mb_id:#x} (block "
                    f"{proposal.block_id:#x}) was never produced by any "
                    f"honest replica",
                    node=replica.node_id,
                    microblock=mb_id, block=proposal.block_id,
                )

    def on_block_resolved(self, replica: "Replica", block: "Block") -> None:
        if block.block_id in self._resolved_blocks:
            return
        self._resolved_blocks.add(block.block_id)
        for microblock in block.microblocks.values():
            created = self._created.get(microblock.id)
            if created is not None and created[0] != microblock.tx_count:
                self.report(
                    "mutated",
                    f"microblock {microblock.id:#x} resolved with "
                    f"{microblock.tx_count} txs but was created with "
                    f"{created[0]}",
                    node=replica.node_id, microblock=microblock.id,
                )

    def finalize(self) -> None:
        emitted = self.experiment.generator.emitted_tx_count
        if self._committed_tx > emitted:
            self.report(
                "conservation",
                f"{self._committed_tx} txs committed (unique microblocks) "
                f"but clients only submitted {emitted}",
                committed=self._committed_tx, emitted=emitted,
            )
        if self._shard_map is not None:
            for shard in sorted(self._shard_committed):
                committed = self._shard_committed[shard]
                created = self._shard_created.get(shard, 0)
                if committed > created:
                    self.report(
                        "shard-conservation",
                        f"shard {shard} committed {committed} certified "
                        f"txs but its origins only batched {created}",
                        shard=shard, committed=committed, created=created,
                    )


class LivenessOracle(Oracle):
    """Commit progress resumes within a bound after faults heal.

    ``bound`` defaults to a multiple of the protocol's view/epoch timers
    (see :func:`repro.verification.fuzzer.default_liveness_bound`). A
    fault window is only judged when it healed early enough that a
    recovery inside the bound was possible before the run ended;
    never-healed windows are skipped (nothing to recover *from*).
    """

    name = "liveness"

    def __init__(self, bound: Optional[float] = None) -> None:
        super().__init__()
        self._bound = bound

    def on_attach(self) -> None:
        if self._bound is None:
            from repro.verification.fuzzer import default_liveness_bound

            self._bound = default_liveness_bound(self.config.protocol)

    def finalize(self) -> None:
        metrics = self.experiment.metrics
        now = self.experiment.sim.now
        if (
            self.config.rate_tps > 0
            and now >= self._bound
            and not metrics.commits
        ):
            self.report(
                "no-progress",
                f"no block committed in {now:.1f}s of simulated time "
                f"(liveness bound {self._bound:.1f}s)",
                bound=self._bound,
            )
            return
        for window in metrics.fault_windows:
            if math.isinf(window.end) or window.end + self._bound > now:
                continue
            recover = metrics.time_to_recover(window)
            if recover > self._bound:
                self.report(
                    "stalled",
                    f"{window.kind} window healed at {window.end:.2f}s "
                    f"but the next commit took "
                    f"{'forever' if math.isinf(recover) else f'{recover:.2f}s'}"
                    f" (bound {self._bound:.1f}s)",
                    window=window.kind,
                    healed_at=window.end,
                    time_to_recover=recover,
                    bound=self._bound,
                )


def standard_suite(
    liveness_bound: Optional[float] = None,
    strict_availability: bool = False,
) -> OracleSuite:
    """The default four-oracle suite the fuzzer and CLI arm."""
    return OracleSuite([
        SafetyOracle(),
        AvailabilityOracle(strict=strict_availability),
        LedgerOracle(),
        LivenessOracle(bound=liveness_bound),
    ])
