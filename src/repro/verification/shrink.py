"""Automatic shrinking of failing fuzz scenarios.

Greedy delta-debugging over a scenario's degrees of freedom: drop whole
fault events (a crash and its restart move as one unit), narrow the
surviving windows, halve the run duration, reduce the cluster size, and
thin the workload — accepting each step only while the original oracle
still fires. The minimized scenario round-trips through a JSON artifact
(:func:`write_artifact` / :func:`replay_artifact`) so a failure found by
a nightly fuzz run can be reproduced from the file alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Optional

from repro.verification.fuzzer import FuzzOutcome, Scenario, run_scenario

ARTIFACT_FORMAT = "repro-fuzz-artifact-v1"

Runner = Callable[[Scenario], FuzzOutcome]


@dataclass
class ShrinkResult:
    """A minimized failing scenario plus the search's bookkeeping."""

    original: Scenario
    minimized: Scenario
    outcome: FuzzOutcome  # the minimized scenario's failing outcome
    runs: int  # total experiment executions spent shrinking

    @property
    def removed_events(self) -> int:
        return len(self.original.fault_spec) - len(self.minimized.fault_spec)


def _fails(outcome: FuzzOutcome, targets: set) -> bool:
    """Does the outcome reproduce a violation from the target oracles?"""
    return any(v.oracle in targets for v in outcome.violations)


def _event_units(spec: list) -> list[list[int]]:
    """Indices grouped into removable units (a crash owns its restart)."""
    units: list[list[int]] = []
    used: set[int] = set()
    for i, entry in enumerate(spec):
        if i in used:
            continue
        used.add(i)
        unit = [i]
        if entry["event"] == "crash":
            for j in range(i + 1, len(spec)):
                if (
                    j not in used
                    and spec[j]["event"] == "restart"
                    and spec[j]["node"] == entry["node"]
                ):
                    unit.append(j)
                    used.add(j)
                    break
        units.append(unit)
    return units


def _max_node(entry: dict) -> int:
    nodes = []
    if "node" in entry:
        nodes.append(entry["node"])
    nodes.extend(entry.get("nodes", ()))
    for group in entry.get("groups", ()):
        nodes.extend(group)
    return max(nodes) if nodes else -1


def shrink_scenario(
    scenario: Scenario,
    runner: Runner = run_scenario,
    max_runs: int = 60,
) -> ShrinkResult:
    """Minimize a failing scenario while the violation reproduces.

    ``runner`` exists so callers (the mutation self-test, the CLI) can
    inject class overrides or oracle settings; it must be deterministic
    for the greedy walk to make sense.
    """
    baseline = runner(scenario)
    if baseline.ok:
        raise ValueError(
            f"scenario {scenario.label} does not fail; nothing to shrink"
        )
    targets = {violation.oracle for violation in baseline.violations}
    runs = 1
    current, current_outcome = scenario, baseline

    def attempt(candidate: Scenario) -> Optional[FuzzOutcome]:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        try:
            outcome = runner(candidate)
        except ValueError:
            return None  # candidate assembled an invalid experiment
        return outcome if _fails(outcome, targets) else None

    # Pass 1: drop whole fault events, greedily, to a fixpoint.
    changed = True
    while changed and runs < max_runs:
        changed = False
        spec = current.fault_spec
        for unit in _event_units(spec):
            drop = set(unit)
            pruned = [e for i, e in enumerate(spec) if i not in drop]
            outcome = attempt(current.replaced(fault_spec=pruned))
            if outcome is not None:
                current = current.replaced(fault_spec=pruned)
                current_outcome = outcome
                changed = True
                break  # indices shifted; regroup

    # Pass 2: narrow the surviving windows.
    changed = True
    while changed and runs < max_runs:
        changed = False
        spec = current.fault_spec
        for i, entry in enumerate(spec):
            candidate_spec = None
            if entry.get("duration", 0.0) > 0.2:
                shorter = dict(entry)
                shorter["duration"] = round(entry["duration"] / 2, 3)
                candidate_spec = spec[:i] + [shorter] + spec[i + 1:]
            elif entry["event"] == "restart":
                crash_at = next(
                    (
                        e["at"] for e in spec
                        if e["event"] == "crash"
                        and e["node"] == entry["node"]
                        and e["at"] < entry["at"]
                    ),
                    None,
                )
                if crash_at is not None and entry["at"] - crash_at > 0.2:
                    earlier = dict(entry)
                    earlier["at"] = round(
                        crash_at + (entry["at"] - crash_at) / 2, 3
                    )
                    candidate_spec = spec[:i] + [earlier] + spec[i + 1:]
            if candidate_spec is None:
                continue
            outcome = attempt(current.replaced(fault_spec=candidate_spec))
            if outcome is not None:
                current = current.replaced(fault_spec=candidate_spec)
                current_outcome = outcome
                changed = True
                break

    # Pass 3: halve the run duration while the failure still fits.
    while runs < max_runs and current.duration > 1.0:
        shorter = round(current.duration / 2, 3)
        last_fault = max(
            (e["at"] + e.get("duration", 0.0) for e in current.fault_spec),
            default=0.0,
        )
        if current.warmup + shorter <= last_fault + 0.2:
            break
        outcome = attempt(current.replaced(duration=shorter))
        if outcome is None:
            break
        current = current.replaced(duration=shorter)
        current_outcome = outcome

    # Pass 4: shrink the cluster when no event references high replicas.
    for smaller in (4, 5):
        if smaller >= current.n or runs >= max_runs:
            continue
        if any(_max_node(e) >= smaller for e in current.fault_spec):
            continue
        outcome = attempt(current.replaced(n=smaller))
        if outcome is not None:
            current = current.replaced(n=smaller)
            current_outcome = outcome
            break

    # Pass 5: thin the workload.
    while runs < max_runs and current.rate_tps > 100.0:
        thinner = round(current.rate_tps / 2, 1)
        outcome = attempt(current.replaced(rate_tps=thinner))
        if outcome is None:
            break
        current = current.replaced(rate_tps=thinner)
        current_outcome = outcome

    return ShrinkResult(
        original=scenario,
        minimized=current,
        outcome=current_outcome,
        runs=runs,
    )


# -- repro artifacts -------------------------------------------------------


def write_artifact(
    path: str,
    outcome: FuzzOutcome,
    original: Optional[Scenario] = None,
    shrink_runs: Optional[int] = None,
    mutant: Optional[str] = None,
) -> dict:
    """Serialize a failing outcome (optionally shrunk) to a JSON file."""
    artifact = {
        "format": ARTIFACT_FORMAT,
        "scenario": outcome.scenario.to_dict(),
        "violations": [v.to_dict() for v in outcome.violations],
        "commit_hash": outcome.commit_hash,
        "committed_tx": outcome.committed_tx,
    }
    if original is not None:
        artifact["original_scenario"] = original.to_dict()
    if shrink_runs is not None:
        artifact["shrink_runs"] = shrink_runs
    if mutant is not None:
        artifact["mutant"] = mutant
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return artifact


def load_artifact(path: str) -> dict:
    with open(path) as handle:
        artifact = json.load(handle)
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path} is not a {ARTIFACT_FORMAT} file "
            f"(format={artifact.get('format')!r})"
        )
    return artifact


def replay_artifact(path: str) -> FuzzOutcome:
    """Re-run the scenario stored in an artifact, oracles armed.

    Artifacts recorded from a mutation self-test name their mutant; the
    replay re-applies the same broken classes so the violation is
    reproducible from the file alone.
    """
    artifact = load_artifact(path)
    scenario = Scenario.from_dict(artifact["scenario"])
    mutant_name = artifact.get("mutant")
    if mutant_name is not None:
        from repro.verification.mutations import MUTANTS

        mutant = MUTANTS[mutant_name]
        return run_scenario(
            scenario,
            strict_availability=mutant.strict_availability,
            mempool_cls=mutant.mempool_cls,
            consensus_cls=mutant.consensus_cls,
        )
    return run_scenario(scenario)
