"""Automatic shrinking of failing fuzz scenarios.

Greedy delta-debugging over a scenario's degrees of freedom: drop whole
fault events (a crash and its restart move as one unit), narrow the
surviving windows, halve the run duration, reduce the cluster size, and
thin the workload — accepting each step only while the original oracle
still fires. The minimized scenario round-trips through a JSON artifact
(:func:`write_artifact` / :func:`replay_artifact`) so a failure found by
a nightly fuzz run can be reproduced from the file alone.

With an :class:`~repro.parallel.executor.ParallelExecutor`, the walk
**speculates**: each pass launches its next batch of delta-debugging
candidates concurrently and accepts the first failing candidate in
deterministic candidate order, so the minimized scenario is identical to
the serial walk's. Every launched candidate is charged against
``max_runs`` (speculation spends budget for wall-clock), so the ``runs``
bookkeeping may differ from a serial shrink even though the result does
not.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.verification.fuzzer import FuzzOutcome, Scenario, run_scenario

ARTIFACT_FORMAT = "repro-fuzz-artifact-v1"

Runner = Callable[[Scenario], FuzzOutcome]


@dataclass
class ShrinkResult:
    """A minimized failing scenario plus the search's bookkeeping."""

    original: Scenario
    minimized: Scenario
    outcome: FuzzOutcome  # the minimized scenario's failing outcome
    runs: int  # total experiment executions spent shrinking

    @property
    def removed_events(self) -> int:
        return len(self.original.fault_spec) - len(self.minimized.fault_spec)


def _fails(outcome: FuzzOutcome, targets: set) -> bool:
    """Does the outcome reproduce a violation from the target oracles?"""
    return any(v.oracle in targets for v in outcome.violations)


def _event_units(spec: list) -> list[list[int]]:
    """Indices grouped into removable units (a crash owns its restart)."""
    units: list[list[int]] = []
    used: set[int] = set()
    for i, entry in enumerate(spec):
        if i in used:
            continue
        used.add(i)
        unit = [i]
        if entry["event"] == "crash":
            for j in range(i + 1, len(spec)):
                if (
                    j not in used
                    and spec[j]["event"] == "restart"
                    and spec[j]["node"] == entry["node"]
                ):
                    unit.append(j)
                    used.add(j)
                    break
        units.append(unit)
    return units


def _max_node(entry: dict) -> int:
    nodes = []
    if "node" in entry:
        nodes.append(entry["node"])
    nodes.extend(entry.get("nodes", ()))
    for group in entry.get("groups", ()):
        nodes.extend(group)
    return max(nodes) if nodes else -1


class _CandidateEvaluator:
    """Runs shrink candidates serially or speculatively in worker processes.

    The greedy walk only ever asks two questions — "which is the first
    candidate (in order) that still fails?" and "how deep into this
    chain of candidates does the failure survive?" — so those are the
    two primitives here. The speculative answers are computed by
    launching a batch of up to ``executor.jobs`` candidates at once and
    scanning the results in candidate order, which makes them equal to
    the serial answers; only the ``runs`` accounting differs (every
    launched candidate is charged).
    """

    def __init__(
        self,
        runner: Runner,
        targets: set,
        max_runs: int,
        executor=None,
        job_options: Optional[dict] = None,
    ) -> None:
        self.runner = runner
        self.targets = targets
        self.max_runs = max_runs
        self.runs = 1  # the baseline reproduction is charged up front
        # Speculation needs to rebuild the runner inside a fresh worker,
        # which only works for the stock run_scenario (plus the knobs
        # scenario_job can carry). A bespoke runner closure falls back
        # to the serial walk.
        self.executor = (
            executor
            if executor is not None
            and (runner is run_scenario or job_options is not None)
            else None
        )
        self.job_options = job_options or {}

    @property
    def exhausted(self) -> bool:
        return self.runs >= self.max_runs

    def _check(self, outcome: FuzzOutcome) -> Optional[FuzzOutcome]:
        return outcome if _fails(outcome, self.targets) else None

    def _attempt(self, candidate: Scenario) -> Optional[FuzzOutcome]:
        if self.exhausted:
            return None
        self.runs += 1
        try:
            outcome = self.runner(candidate)
        except ValueError:
            return None  # candidate assembled an invalid experiment
        return self._check(outcome)

    def _evaluate_batch(
        self, batch: List[Scenario]
    ) -> List[Optional[FuzzOutcome]]:
        """Run a batch concurrently; outcome-or-None per candidate."""
        from repro.parallel.jobs import scenario_job

        self.runs += len(batch)
        specs = [
            scenario_job(candidate, **self.job_options)
            for candidate in batch
        ]
        results: List[Optional[FuzzOutcome]] = []
        for job in self.executor.map(specs):
            if job.error is not None:
                if "ValueError" in job.error:
                    results.append(None)  # invalid candidate, as serial
                    continue
                raise RuntimeError(
                    f"shrink candidate {job.spec.label} failed: {job.error}"
                )
            outcome = FuzzOutcome.from_dict(job.value["outcome"])
            results.append(self._check(outcome))
        return results

    def _batched(self, candidates: List[Scenario]):
        """Yield (candidate, outcome-or-None) pairs, in candidate order."""
        if self.executor is None:
            for candidate in candidates:
                if self.exhausted:
                    return
                yield candidate, self._attempt(candidate)
            return
        cursor = 0
        while cursor < len(candidates) and not self.exhausted:
            width = min(
                self.executor.jobs,
                self.max_runs - self.runs,
                len(candidates) - cursor,
            )
            batch = candidates[cursor:cursor + width]
            for candidate, outcome in zip(batch, self._evaluate_batch(batch)):
                yield candidate, outcome
            cursor += width

    def first_failing(
        self, candidates: List[Scenario]
    ) -> Optional[Tuple[Scenario, FuzzOutcome]]:
        """First candidate, in order, that reproduces the violation."""
        for candidate, outcome in self._batched(candidates):
            if outcome is not None:
                return candidate, outcome
        return None

    def longest_failing_prefix(
        self, chain: List[Scenario]
    ) -> Optional[Tuple[Scenario, FuzzOutcome]]:
        """Deepest entry of a monotone chain that still fails.

        Mirrors the serial "keep halving until it stops failing" loop:
        the walk stops at the first non-failing link, and whatever
        speculative links were already launched past it are discarded
        (but still charged).
        """
        accepted: Optional[Tuple[Scenario, FuzzOutcome]] = None
        for candidate, outcome in self._batched(chain):
            if outcome is None:
                break
            accepted = (candidate, outcome)
        return accepted


def _window_candidates(current: Scenario) -> List[Scenario]:
    """Pass-2 candidates: each surviving window, narrowed once."""
    spec = current.fault_spec
    candidates: List[Scenario] = []
    for i, entry in enumerate(spec):
        candidate_spec = None
        if entry.get("duration", 0.0) > 0.2:
            shorter = dict(entry)
            shorter["duration"] = round(entry["duration"] / 2, 3)
            candidate_spec = spec[:i] + [shorter] + spec[i + 1:]
        elif entry["event"] == "restart":
            crash_at = next(
                (
                    e["at"] for e in spec
                    if e["event"] == "crash"
                    and e["node"] == entry["node"]
                    and e["at"] < entry["at"]
                ),
                None,
            )
            if crash_at is not None and entry["at"] - crash_at > 0.2:
                earlier = dict(entry)
                earlier["at"] = round(
                    crash_at + (entry["at"] - crash_at) / 2, 3
                )
                candidate_spec = spec[:i] + [earlier] + spec[i + 1:]
        if candidate_spec is not None:
            candidates.append(current.replaced(fault_spec=candidate_spec))
    return candidates


def _duration_chain(current: Scenario) -> List[Scenario]:
    """Pass-3 chain: successive halvings that still cover the faults."""
    chain: List[Scenario] = []
    duration = current.duration
    last_fault = max(
        (e["at"] + e.get("duration", 0.0) for e in current.fault_spec),
        default=0.0,
    )
    while duration > 1.0:
        shorter = round(duration / 2, 3)
        if current.warmup + shorter <= last_fault + 0.2:
            break
        chain.append(current.replaced(duration=shorter))
        duration = shorter
    return chain


def _rate_chain(current: Scenario) -> List[Scenario]:
    """Pass-5 chain: successive workload halvings down to 100 tps."""
    chain: List[Scenario] = []
    rate = current.rate_tps
    while rate > 100.0:
        rate = round(rate / 2, 1)
        chain.append(current.replaced(rate_tps=rate))
    return chain


def shrink_scenario(
    scenario: Scenario,
    runner: Runner = run_scenario,
    max_runs: int = 60,
    executor=None,
    job_options: Optional[dict] = None,
) -> ShrinkResult:
    """Minimize a failing scenario while the violation reproduces.

    ``runner`` exists so callers (the mutation self-test, the CLI) can
    inject class overrides or oracle settings; it must be deterministic
    for the greedy walk to make sense.

    ``executor`` (a :class:`~repro.parallel.executor.ParallelExecutor`)
    turns the walk speculative: batches of candidates run concurrently
    and the first failing candidate in candidate order wins, so the
    minimized scenario equals the serial one. Speculation only engages
    for the stock ``run_scenario`` runner — or when ``job_options``
    (:func:`~repro.parallel.jobs.scenario_job` keywords such as
    ``mutant`` or ``strict_availability``) spells out how a worker can
    rebuild the runner; any other custom runner shrinks serially. The
    baseline reproduction always runs in-process through ``runner``.
    """
    baseline = runner(scenario)
    if baseline.ok:
        raise ValueError(
            f"scenario {scenario.label} does not fail; nothing to shrink"
        )
    targets = {violation.oracle for violation in baseline.violations}
    evaluator = _CandidateEvaluator(
        runner, targets, max_runs, executor=executor, job_options=job_options,
    )
    current, current_outcome = scenario, baseline

    # Pass 1: drop whole fault events, greedily, to a fixpoint.
    changed = True
    while changed and not evaluator.exhausted:
        changed = False
        spec = current.fault_spec
        candidates = []
        for unit in _event_units(spec):
            drop = set(unit)
            pruned = [e for i, e in enumerate(spec) if i not in drop]
            candidates.append(current.replaced(fault_spec=pruned))
        accepted = evaluator.first_failing(candidates)
        if accepted is not None:
            current, current_outcome = accepted
            changed = True  # indices shifted; regroup and go again

    # Pass 2: narrow the surviving windows.
    changed = True
    while changed and not evaluator.exhausted:
        changed = False
        accepted = evaluator.first_failing(_window_candidates(current))
        if accepted is not None:
            current, current_outcome = accepted
            changed = True

    # Pass 3: halve the run duration while the failure still fits.
    accepted = evaluator.longest_failing_prefix(_duration_chain(current))
    if accepted is not None:
        current, current_outcome = accepted

    # Pass 4: shrink the cluster when no event references high replicas.
    candidates = [
        current.replaced(n=smaller)
        for smaller in (4, 5)
        if smaller < current.n
        and not any(_max_node(e) >= smaller for e in current.fault_spec)
    ]
    accepted = evaluator.first_failing(candidates)
    if accepted is not None:
        current, current_outcome = accepted

    # Pass 5: thin the workload.
    accepted = evaluator.longest_failing_prefix(_rate_chain(current))
    if accepted is not None:
        current, current_outcome = accepted

    return ShrinkResult(
        original=scenario,
        minimized=current,
        outcome=current_outcome,
        runs=evaluator.runs,
    )


# -- repro artifacts -------------------------------------------------------


def write_artifact(
    path: str,
    outcome: FuzzOutcome,
    original: Optional[Scenario] = None,
    shrink_runs: Optional[int] = None,
    mutant: Optional[str] = None,
) -> dict:
    """Serialize a failing outcome (optionally shrunk) to a JSON file."""
    artifact = {
        "format": ARTIFACT_FORMAT,
        "scenario": outcome.scenario.to_dict(),
        "violations": [v.to_dict() for v in outcome.violations],
        "commit_hash": outcome.commit_hash,
        "committed_tx": outcome.committed_tx,
    }
    if original is not None:
        artifact["original_scenario"] = original.to_dict()
    if shrink_runs is not None:
        artifact["shrink_runs"] = shrink_runs
    if mutant is not None:
        artifact["mutant"] = mutant
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return artifact


def load_artifact(path: str) -> dict:
    with open(path) as handle:
        artifact = json.load(handle)
    if artifact.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path} is not a {ARTIFACT_FORMAT} file "
            f"(format={artifact.get('format')!r})"
        )
    return artifact


def replay_artifact(path: str) -> FuzzOutcome:
    """Re-run the scenario stored in an artifact, oracles armed.

    Artifacts recorded from a mutation self-test name their mutant; the
    replay re-applies the same broken classes so the violation is
    reproducible from the file alone.
    """
    artifact = load_artifact(path)
    scenario = Scenario.from_dict(artifact["scenario"])
    mutant_name = artifact.get("mutant")
    if mutant_name is not None:
        from repro.verification.mutations import MUTANTS

        mutant = MUTANTS[mutant_name]
        return run_scenario(
            scenario,
            strict_availability=mutant.strict_availability,
            mempool_cls=mutant.mempool_cls,
            consensus_cls=mutant.consensus_cls,
        )
    return run_scenario(scenario)
