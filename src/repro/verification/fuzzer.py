"""Randomized scenario fuzzer driven by a single root seed.

One integer root seed determines everything: iteration ``i`` derives its
own RNG stream (``scenario.{i}``) from an :class:`RngRegistry`, draws a
protocol/mempool/topology/workload combination and a randomized
self-healing :class:`FaultSchedule`, and runs the experiment with the
invariant oracles armed. The per-run simulation seed is itself derived
from the registry, so replaying a recorded scenario reproduces the run
bit-for-bit — the FoundationDB-style property the shrinker depends on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.config import CONSENSUS_KINDS, ProtocolConfig
from repro.faults.schedule import FaultSchedule
from repro.harness.config import ExperimentConfig
from repro.harness.runner import ExperimentResult, run_experiment
from repro.metrics import commit_sequence_hash as metrics_commit_hash
from repro.sim.rng import RngRegistry
from repro.verification.oracles import OracleSuite, standard_suite

#: Protocol overrides shared by every fuzz scenario: small microblocks
#: and fast timers so short simulated runs still exercise full commit
#: pipelines (mirrors ``tests/helpers.py``).
QUICK_PROTOCOL = {
    "batch_bytes": 4 * 128,
    "batch_timeout": 0.05,
    "view_timeout": 0.5,
    "empty_view_delay": 0.002,
    "streamlet_epoch": 0.1,
    # Keep the production ratio between the fetch grace period (delta in
    # Algorithm 2) and the view timeout. Leaving delta at its 0.5s
    # default would make any fetch-gated vote take a full view, so every
    # view with a not-yet-disseminated microblock would time out.
    "fetch_timeout": 0.125,
}

#: Extra slack the fuzzer leaves between the last fault healing and the
#: end of the run, on top of the liveness bound.
LIVENESS_MARGIN = 0.5

FAULT_KINDS = ("crash", "partition", "loss", "bandwidth", "delay")

#: Mempool pool the fuzzer draws from by default. Pinned rather than
#: aliased to ``MEMPOOL_KINDS``: scenario ``i`` is a pure function of
#: the root seed *and this tuple*, so growing the global registry (e.g.
#: adding ``sharded-stratus``) must not silently re-point every recorded
#: corpus cell at a different configuration. New kinds get their own
#: hand-rolled corpus cells instead (see ``tests/test_fuzz_corpus.py``).
FUZZ_MEMPOOL_KINDS = ("native", "simple", "gossip", "narwhal", "stratus")


def default_liveness_bound(protocol: ProtocolConfig) -> float:
    """How long after a heal the liveness oracle allows the next commit.

    Several view timeouts (a view-change cascade may need to walk past
    every crashed leader) or epoch lengths, with a one-second floor.
    """
    return max(
        4 * protocol.view_timeout,
        8 * protocol.streamlet_epoch,
        1.0,
    )


def random_fault_schedule(
    rng: random.Random,
    n: int,
    consensus: str = "hotstuff",
    earliest: float = 0.5,
    deadline: float = 3.0,
    max_events: int = 4,
) -> list[dict]:
    """Draw a valid, self-healing fault-schedule spec from ``rng``.

    Every disturbance heals by ``deadline`` (crashes restart, partitions
    expire), at most ``f`` replicas ever crash, and PBFT's fixed leader
    (replica 0) is never crashed — constraints under which the liveness
    oracle's recovery bound is a fair demand.
    """
    if deadline - earliest < 0.2 or max_events <= 0:
        return []
    f = (n - 1) // 3
    crash_pool = [
        node for node in range(n)
        if not (consensus == "pbft" and node == 0)
    ]
    crashed: set[int] = set()
    spec: list[dict] = []
    for _ in range(rng.randint(1, max_events)):
        kind = rng.choice(FAULT_KINDS)
        start = round(rng.uniform(earliest, deadline - 0.2), 3)
        duration = round(rng.uniform(0.2, deadline - start), 3)
        if kind == "crash":
            pool = [node for node in crash_pool if node not in crashed]
            if len(crashed) >= f or not pool:
                continue
            node = rng.choice(pool)
            crashed.add(node)
            spec.append({"event": "crash", "at": start, "node": node})
            spec.append({
                "event": "restart", "at": round(start + duration, 3),
                "node": node,
            })
        elif kind == "partition":
            nodes = list(range(n))
            rng.shuffle(nodes)
            cut = rng.randint(1, n - 1)
            spec.append({
                "event": "partition", "at": start, "duration": duration,
                "groups": [sorted(nodes[:cut]), sorted(nodes[cut:])],
            })
        elif kind == "loss":
            entry = {
                "event": "loss", "at": start, "duration": duration,
                "rate": round(rng.uniform(0.05, 0.35), 3),
            }
            channel = rng.choice(("data", "consensus", None))
            if channel is not None:
                entry["channel"] = channel
            spec.append(entry)
        elif kind == "bandwidth":
            spec.append({
                "event": "bandwidth", "at": start, "duration": duration,
                "factor": round(rng.uniform(0.2, 0.7), 3),
                "nodes": sorted(rng.sample(
                    range(n), rng.randint(1, max(1, n // 2))
                )),
            })
        else:  # delay
            spec.append({
                "event": "delay", "at": start, "duration": duration,
                "base": round(rng.uniform(0.02, 0.08), 4),
                "jitter": round(rng.uniform(0.0, 0.04), 4),
                "bandwidth_factor": round(rng.uniform(0.4, 1.0), 3),
            })
    spec.sort(key=lambda entry: entry["at"])
    return spec


@dataclass
class Scenario:
    """One fully determined fuzz case; JSON round-trips for artifacts.

    The derived configuration objects (protocol, fault schedule, full
    experiment config) are memoized per instance: the shrinker re-runs
    the same candidate scenario's config accessors in a tight loop, and
    rebuilding a :class:`FaultSchedule` from dicts each time was pure
    waste. Mutating ``fault_spec`` in place after a config accessor has
    been called is unsupported — use :meth:`replaced`, which returns a
    fresh (cache-empty) instance.
    """

    seed: int
    consensus: str
    mempool: str
    n: int
    duration: float
    topology: str = "lan"
    rate_tps: float = 500.0
    warmup: float = 0.5
    fault_spec: list = field(default_factory=list)
    index: int = 0
    root_seed: Optional[int] = None
    _protocol_cache: Optional[ProtocolConfig] = field(
        default=None, init=False, repr=False, compare=False,
    )
    _schedule_cache: Optional[FaultSchedule] = field(
        default=None, init=False, repr=False, compare=False,
    )
    _experiment_cache: Optional[ExperimentConfig] = field(
        default=None, init=False, repr=False, compare=False,
    )

    @property
    def label(self) -> str:
        return (
            f"fuzz[{self.index}]-{self.mempool}/{self.consensus}"
            f"-n{self.n}-seed{self.seed}"
        )

    @property
    def end_time(self) -> float:
        return self.warmup + self.duration

    def fault_schedule(self) -> Optional[FaultSchedule]:
        if not self.fault_spec:
            return None
        if self._schedule_cache is None:
            self._schedule_cache = FaultSchedule.from_spec(self.fault_spec)
        return self._schedule_cache

    def protocol_config(self) -> ProtocolConfig:
        if self._protocol_cache is None:
            self._protocol_cache = ProtocolConfig(
                n=self.n, consensus=self.consensus, mempool=self.mempool,
                **QUICK_PROTOCOL,
            )
        return self._protocol_cache

    def experiment_config(self) -> ExperimentConfig:
        if self._experiment_cache is None:
            self._experiment_cache = ExperimentConfig(
                protocol=self.protocol_config(),
                topology_kind=self.topology,
                rate_tps=self.rate_tps,
                duration=self.duration,
                warmup=self.warmup,
                seed=self.seed,
                faults=self.fault_schedule(),
                label=self.label,
            )
        return self._experiment_cache

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "consensus": self.consensus,
            "mempool": self.mempool,
            "n": self.n,
            "duration": self.duration,
            "topology": self.topology,
            "rate_tps": self.rate_tps,
            "warmup": self.warmup,
            "fault_spec": self.fault_spec,
            "index": self.index,
            "root_seed": self.root_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(**data)

    def replaced(self, **changes) -> "Scenario":
        data = self.to_dict()
        data.update(changes)
        return Scenario.from_dict(data)


@dataclass
class FuzzOutcome:
    """Result of one oracle-armed scenario run."""

    scenario: Scenario
    violations: list
    committed_tx: int
    commit_hash: str
    events_processed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "violations": [v.to_dict() for v in self.violations],
            "committed_tx": self.committed_tx,
            "commit_hash": self.commit_hash,
            "events_processed": self.events_processed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzOutcome":
        from repro.verification.oracles import Violation

        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            violations=[
                Violation.from_dict(v) for v in data["violations"]
            ],
            committed_tx=data["committed_tx"],
            commit_hash=data["commit_hash"],
            events_processed=data.get("events_processed", 0),
        )


def commit_sequence_hash(result: ExperimentResult) -> str:
    """Digest of the committed sequence — the determinism fingerprint.

    Two runs of the same scenario must produce identical hashes; any
    divergence means nondeterminism leaked into the simulation.
    """
    return metrics_commit_hash(
        result.metrics.commits, include_microblocks=False, length=16,
    )


def run_scenario(
    scenario: Scenario,
    liveness_bound: Optional[float] = None,
    strict_availability: bool = False,
    mempool_cls: Optional[type] = None,
    consensus_cls: Optional[type] = None,
    suite: Optional[OracleSuite] = None,
) -> FuzzOutcome:
    """Run one scenario with the oracles armed."""
    if suite is None:
        suite = standard_suite(
            liveness_bound=liveness_bound,
            strict_availability=strict_availability,
        )
    result = run_experiment(
        scenario.experiment_config(), suite,
        mempool_cls=mempool_cls, consensus_cls=consensus_cls,
    )
    return FuzzOutcome(
        scenario=scenario,
        violations=list(result.violations),
        committed_tx=result.committed_tx,
        commit_hash=commit_sequence_hash(result),
        events_processed=result.events_processed,
    )


class ScenarioFuzzer:
    """Derives and runs scenarios from one root seed."""

    def __init__(
        self,
        root_seed: int,
        protocols: Sequence[str] = CONSENSUS_KINDS,
        mempools: Sequence[str] = FUZZ_MEMPOOL_KINDS,
        n_choices: Sequence[int] = (4, 5, 7),
        duration_range: tuple[float, float] = (3.0, 5.0),
        rate_range: tuple[float, float] = (100.0, 600.0),
        max_fault_events: int = 4,
    ) -> None:
        self.root_seed = root_seed
        self.protocols = tuple(protocols)
        self.mempools = tuple(mempools)
        self.n_choices = tuple(n_choices)
        self.duration_range = duration_range
        self.rate_range = rate_range
        self.max_fault_events = max_fault_events
        self._registry = RngRegistry(root_seed)

    def scenario(self, index: int) -> Scenario:
        """Derive scenario ``index`` (pure function of the root seed)."""
        rng = self._registry.stream(f"scenario.{index}")
        consensus = rng.choice(self.protocols)
        mempool = rng.choice(self.mempools)
        n = rng.choice(self.n_choices)
        duration = round(rng.uniform(*self.duration_range), 3)
        rate = round(rng.uniform(*self.rate_range), 1)
        warmup = 0.5
        protocol = ProtocolConfig(
            n=n, consensus=consensus, mempool=mempool, **QUICK_PROTOCOL
        )
        bound = default_liveness_bound(protocol)
        deadline = warmup + duration - bound - LIVENESS_MARGIN
        fault_spec = random_fault_schedule(
            rng, n=n, consensus=consensus,
            earliest=warmup * 0.8, deadline=deadline,
            max_events=self.max_fault_events,
        )
        return Scenario(
            seed=self._registry.derive_seed(f"scenario.{index}.run"),
            consensus=consensus,
            mempool=mempool,
            n=n,
            duration=duration,
            rate_tps=rate,
            warmup=warmup,
            fault_spec=fault_spec,
            index=index,
            root_seed=self.root_seed,
        )

    def run(
        self,
        iterations: int,
        start: int = 0,
        stop_on_failure: bool = False,
        on_outcome: Optional[Callable[[FuzzOutcome], None]] = None,
        jobs: int = 1,
        executor: Optional[object] = None,
    ) -> list[FuzzOutcome]:
        """Run ``iterations`` scenarios; optionally stop at first failure.

        With ``jobs > 1`` (or an explicit :class:`repro.parallel.
        ParallelExecutor`), scenarios fan out across worker processes.
        Outcomes are still reported in submission (index) order, so
        ``stop_on_failure`` and resume-index semantics are identical to
        the serial path: the returned list is always the contiguous
        prefix ``start..k`` ending at the first failure. Each scenario's
        simulation is seeded from the root seed alone, so the outcomes
        — including every commit-sequence hash — are bit-for-bit the
        same as a serial sweep's.
        """
        if executor is None and jobs > 1:
            from repro.parallel import ParallelExecutor

            executor = ParallelExecutor(jobs=jobs)
        if executor is not None and executor.jobs > 1:
            return self._run_parallel(
                executor, iterations, start, stop_on_failure, on_outcome,
            )
        outcomes: list[FuzzOutcome] = []
        for index in range(start, start + iterations):
            outcome = run_scenario(self.scenario(index))
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
            if stop_on_failure and not outcome.ok:
                break
        return outcomes

    def _run_parallel(
        self,
        executor,
        iterations: int,
        start: int,
        stop_on_failure: bool,
        on_outcome: Optional[Callable[[FuzzOutcome], None]],
    ) -> list[FuzzOutcome]:
        from repro.parallel import scenario_job

        specs = [
            scenario_job(self.scenario(index))
            for index in range(start, start + iterations)
        ]
        outcomes: list[FuzzOutcome] = []
        for job in executor.imap(specs):
            if job.error is not None:
                raise RuntimeError(
                    f"fuzz worker failed on {specs[job.index].label} "
                    f"after {job.attempts} attempt(s): {job.error}"
                )
            outcome = FuzzOutcome.from_dict(job.value["outcome"])
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(outcome)
            if stop_on_failure and not outcome.ok:
                break  # imap cleanup cancels the still-running jobs
        return outcomes
