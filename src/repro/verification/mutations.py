"""Intentionally broken protocol variants — the oracles' self-test.

Deterministic simulation testing is only trustworthy if the oracles
demonstrably *catch* the bug classes they claim to cover. Each mutant
here seeds one classic BFT/SMP bug into an otherwise standard stack, and
the registry pairs it with a canned scenario under which the expected
oracle must fire. ``tests/test_mutations.py`` asserts exactly that, so a
refactor that silently blinds an oracle breaks the suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.consensus.hotstuff import GENESIS_ID, HotStuff
from repro.mempool.simple_smp import SimpleSharedMempool
from repro.types.microblock import make_microblock_id
from repro.types.proposal import Payload, PayloadEntry, Proposal
from repro.verification.fuzzer import FuzzOutcome, Scenario, run_scenario

#: Fabricated microblock counters start here so they can never collide
#: with ids the real batcher hands out during a short run.
_FABRICATED_BASE = 1 << 20


class EagerCommitHotStuff(HotStuff):
    """Commits on a bare 1-chain instead of the three-chain rule.

    A certified block that later loses a view-change race is abandoned by
    the canonical chain but was already committed here, so a replica cut
    off right after certification commits a block the healed majority
    replaces — conflicting commits the safety oracle must catch.
    """

    name = "hotstuff-eager"

    def _process_qc(self, qc) -> None:
        if qc.view > self.high_qc.view:
            self.high_qc = qc
        certified = self.proposals.get(qc.block_id)
        if certified is None or certified.block_id == GENESIS_ID:
            return
        parent = self.proposals.get(certified.parent_id)
        if (
            parent is not None
            and certified.view == parent.view + 1
            and parent.view > self.locked_view
        ):
            self.locked_view = parent.view
        if certified.block_id not in self.committed:
            self._commit_chain(certified)


class UngatedSimpleMempool(SimpleSharedMempool):
    """Votes without holding the proposal's microblock bodies.

    Skipping the fetch-before-vote gate is the moral equivalent of
    Stratus skipping proof verification: commits no longer imply the
    data is anywhere retrievable, which the availability oracle (armed
    strictly) must flag under dissemination loss.
    """

    name = "simple-ungated"

    def prepare(self, proposal: Proposal, on_ready) -> None:
        for entry in proposal.payload.entries:
            self._referenced.add(entry.mb_id)
        on_ready()


class ReplayingMempool(SimpleSharedMempool):
    """Re-proposes an already committed microblock (double commit)."""

    name = "simple-replaying"

    def make_payload(self) -> Payload:
        payload = super().make_payload()
        if self._committed:
            replayed = min(self._committed)
            return Payload(
                entries=payload.entries + (PayloadEntry(mb_id=replayed),),
                embedded=payload.embedded,
            )
        return payload


class FabricatingMempool(UngatedSimpleMempool):
    """Proposes microblock ids no client batch ever produced.

    Builds on the ungated variant: a gated mempool would deadlock
    waiting for the nonexistent body instead of committing it, and the
    fabrication would never reach the ledger oracle.
    """

    name = "simple-fabricating"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._fabricated = 0

    def make_payload(self) -> Payload:
        payload = super().make_payload()
        fake = make_microblock_id(
            self.node_id, _FABRICATED_BASE + self._fabricated
        )
        self._fabricated += 1
        return Payload(
            entries=payload.entries + (PayloadEntry(mb_id=fake),),
            embedded=payload.embedded,
        )


class SilentPrepareMempool(SimpleSharedMempool):
    """Never reports readiness, so no replica ever votes."""

    name = "simple-mute"

    def prepare(self, proposal: Proposal, on_ready) -> None:
        for entry in proposal.payload.entries:
            self._referenced.add(entry.mb_id)
        # BUG under test: on_ready is never invoked.


@dataclass(frozen=True)
class Mutant:
    """One seeded bug plus the scenario under which it must be caught."""

    name: str
    description: str
    expected_oracle: str
    scenario: Scenario
    mempool_cls: Optional[type] = None
    consensus_cls: Optional[type] = None
    strict_availability: bool = False


def _scenario(**overrides) -> Scenario:
    base = {
        "seed": 1,
        "consensus": "hotstuff",
        "mempool": "simple",
        "n": 4,
        "duration": 3.0,
        "rate_tps": 400.0,
        "fault_spec": [],
    }
    base.update(overrides)
    return Scenario(**base)


MUTANTS: dict[str, Mutant] = {
    mutant.name: mutant
    for mutant in (
        Mutant(
            name="eager-commit",
            description=(
                "HotStuff commits on a 1-chain; a replica partitioned "
                "away right after certifying a block commits it while "
                "the majority abandons it for a competing chain"
            ),
            expected_oracle="safety",
            consensus_cls=EagerCommitHotStuff,
            scenario=_scenario(
                # Seed re-tuned when the network moved to per-sender
                # jitter streams (the fork window is schedule-sensitive).
                seed=15,
                mempool="native",
                n=7,
                duration=5.5,
                rate_tps=300.0,
                fault_spec=[
                    {"event": "partition", "at": 1.162, "duration": 2.318,
                     "groups": [[3], [0, 1, 2, 4, 5, 6]]},
                ],
            ),
        ),
        Mutant(
            name="skip-proof-gate",
            description=(
                "mempool votes without bodies (no proof/data gate); "
                "commits stop implying retrievability under loss"
            ),
            expected_oracle="availability",
            mempool_cls=UngatedSimpleMempool,
            strict_availability=True,
            scenario=_scenario(
                n=7,
                duration=4.0,
                fault_spec=[
                    {"event": "loss", "at": 0.6, "duration": 1.5,
                     "rate": 0.8, "channel": "data"},
                ],
            ),
        ),
        Mutant(
            name="replay-payload",
            description="leader re-proposes an already committed microblock",
            expected_oracle="smp-integrity",
            mempool_cls=ReplayingMempool,
            scenario=_scenario(),
        ),
        Mutant(
            name="fabricate-payload",
            description="leader proposes microblock ids no client produced",
            expected_oracle="smp-integrity",
            mempool_cls=FabricatingMempool,
            scenario=_scenario(),
        ),
        Mutant(
            name="mute-votes",
            description="prepare never signals readiness; nothing commits",
            expected_oracle="liveness",
            mempool_cls=SilentPrepareMempool,
            scenario=_scenario(duration=2.5),
        ),
    )
}


def run_mutant(
    name: str, scenario: Optional[Scenario] = None
) -> FuzzOutcome:
    """Run a registered mutant under its (or a custom) scenario."""
    mutant = MUTANTS[name]
    return run_scenario(
        scenario if scenario is not None else mutant.scenario,
        strict_availability=mutant.strict_availability,
        mempool_cls=mutant.mempool_cls,
        consensus_cls=mutant.consensus_cls,
    )


def mutant_caught(mutant: Mutant, outcome: FuzzOutcome) -> bool:
    """Did the oracle the mutant targets actually fire?"""
    return any(
        violation.oracle == mutant.expected_oracle
        for violation in outcome.violations
    )
