"""Deterministic-simulation verification layer.

Invariant oracles observe a running experiment through the replica
observer tap (:meth:`repro.replica.node.Replica.notify_commit` and
friends) and record :class:`Violation` objects instead of raising, so a
single run can surface every broken invariant at once. The scenario
fuzzer composes randomized experiments from one root seed, and the
shrinker minimizes a failing scenario into a replayable artifact.
"""

from repro.verification.fuzzer import (
    FuzzOutcome,
    Scenario,
    ScenarioFuzzer,
    commit_sequence_hash,
    default_liveness_bound,
    random_fault_schedule,
    run_scenario,
)
from repro.verification.mutations import (
    MUTANTS,
    Mutant,
    mutant_caught,
    run_mutant,
)
from repro.verification.oracles import (
    AvailabilityOracle,
    LedgerOracle,
    LivenessOracle,
    Oracle,
    OracleSuite,
    SafetyOracle,
    Violation,
    standard_suite,
)
from repro.verification.shrink import (
    ShrinkResult,
    load_artifact,
    replay_artifact,
    shrink_scenario,
    write_artifact,
)

__all__ = [
    "AvailabilityOracle",
    "FuzzOutcome",
    "LedgerOracle",
    "LivenessOracle",
    "MUTANTS",
    "Mutant",
    "Oracle",
    "OracleSuite",
    "SafetyOracle",
    "Scenario",
    "ScenarioFuzzer",
    "ShrinkResult",
    "Violation",
    "commit_sequence_hash",
    "default_liveness_bound",
    "load_artifact",
    "mutant_caught",
    "random_fault_schedule",
    "replay_artifact",
    "run_mutant",
    "run_scenario",
    "shrink_scenario",
    "standard_suite",
    "write_artifact",
]
