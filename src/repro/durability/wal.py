"""Append-only write-ahead log of applied blocks.

Record framing is length-prefixed and CRC-checked::

    [u32 payload length][u32 crc32(payload)][payload bytes]

The payload is compact JSON carrying the only inputs the deterministic
KV state machine needs to re-apply a block: the block id, its height,
and the ``(microblock_id, tx_count)`` pairs in payload order. Replay
tolerates a torn final record (a crash mid-append leaves a short or
CRC-failing tail): the log is read up to the last fully valid record
and the damaged suffix is discarded, never applied.

fsync policy is configurable:

- ``always``   — fsync after every append (no committed-block loss on
  power failure, slowest),
- ``interval`` — fsync at most once per ``fsync_interval`` seconds of
  wall clock (bounded loss window),
- ``off``      — never fsync explicitly (page cache only; survives
  process kill, not host crash).

Writes always ``flush()`` the user-space buffer so a reader — including
a recovering incarnation in the same OS — sees every appended record
even under ``off``.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Optional

_HEADER = struct.Struct("!II")

#: Sanity bound on one record's payload; a length prefix above this is
#: treated as corruption (stops replay) rather than a huge allocation.
MAX_RECORD_BYTES = 16 * 1024 * 1024

FSYNC_POLICIES = ("always", "interval", "off")

#: Failpoint names the WAL can trigger (crash-point test matrix).
WAL_FAILPOINTS = (
    "wal.before_append",
    "wal.after_append",
    "wal.after_fsync",
    "wal.before_truncate",
)


@dataclass(frozen=True)
class AppliedBlockRecord:
    """One applied block, as persisted in the WAL."""

    block_id: int
    height: int
    #: ``(microblock_id, tx_count)`` in payload order.
    microblocks: tuple = ()

    def tx_count(self) -> int:
        return sum(count for _, count in self.microblocks)


def encode_payload(record: AppliedBlockRecord) -> bytes:
    doc = {
        "b": record.block_id,
        "h": record.height,
        "m": [[mb_id, count] for mb_id, count in record.microblocks],
    }
    return json.dumps(doc, separators=(",", ":")).encode("ascii")


def decode_payload(raw: bytes) -> AppliedBlockRecord:
    doc = json.loads(raw.decode("ascii"))
    return AppliedBlockRecord(
        block_id=int(doc["b"]),
        height=int(doc["h"]),
        microblocks=tuple((int(m), int(c)) for m, c in doc["m"]),
    )


def encode_record(record: AppliedBlockRecord) -> bytes:
    """Full framed record: header + payload, ready to append."""
    payload = encode_payload(record)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalReplay:
    """Result of scanning a WAL file."""

    records: list = field(default_factory=list)
    #: Byte offset of the end of the last valid record.
    valid_bytes: int = 0
    #: True when bytes past ``valid_bytes`` were discarded (torn final
    #: record after a crash, or a corrupt record mid-log).
    torn: bool = False


def read_wal(path: str) -> WalReplay:
    """Scan a WAL file, returning every valid record in order.

    Stops at the first short, oversized, or CRC-failing record; the
    conservative prefix up to that point is the recovered log. A missing
    file is an empty log.
    """
    replay = WalReplay()
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return replay
    offset = 0
    total = len(blob)
    while offset < total:
        if total - offset < _HEADER.size:
            replay.torn = True
            break
        length, crc = _HEADER.unpack_from(blob, offset)
        if length > MAX_RECORD_BYTES or total - offset - _HEADER.size < length:
            replay.torn = True
            break
        start = offset + _HEADER.size
        payload = blob[start:start + length]
        if zlib.crc32(payload) != crc:
            replay.torn = True
            break
        try:
            record = decode_payload(payload)
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            replay.torn = True
            break
        replay.records.append(record)
        offset = start + length
        replay.valid_bytes = offset
    return replay


class WriteAheadLog:
    """Appender over one WAL file.

    ``failpoint`` is an optional callable invoked with a failpoint name
    at each write boundary; the crash-point tests raise from it to
    simulate a kill at that exact point.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "always",
        fsync_interval: float = 0.05,
        failpoint: Optional[Callable[[str], None]] = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = path
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self._failpoint = failpoint
        self._last_sync = time.monotonic()
        self.records_appended = 0
        self.bytes_appended = 0
        self._handle = open(path, "ab")

    def _fp(self, name: str) -> None:
        if self._failpoint is not None:
            self._failpoint(name)

    def append(self, record: AppliedBlockRecord) -> None:
        self._fp("wal.before_append")
        frame = encode_record(record)
        self._handle.write(frame)
        self._handle.flush()
        self.records_appended += 1
        self.bytes_appended += len(frame)
        self._fp("wal.after_append")
        if self.fsync == "always":
            os.fsync(self._handle.fileno())
            self._fp("wal.after_fsync")
        elif self.fsync == "interval":
            now = time.monotonic()
            if now - self._last_sync >= self.fsync_interval:
                os.fsync(self._handle.fileno())
                self._last_sync = now
                self._fp("wal.after_fsync")

    def sync(self) -> None:
        """Force an fsync regardless of policy."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._last_sync = time.monotonic()

    def truncate(self) -> None:
        """Drop every record (called after a checkpoint supersedes them)."""
        self._fp("wal.before_truncate")
        self._handle.truncate(0)
        self._handle.seek(0)
        self._handle.flush()
        if self.fsync != "off":
            os.fsync(self._handle.fileno())

    def truncate_to(self, valid_bytes: int) -> None:
        """Cut a torn tail off the file (recovery repair step)."""
        self._handle.truncate(valid_bytes)
        self._handle.seek(0, os.SEEK_END)
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()
