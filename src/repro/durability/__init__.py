"""Durability layer: WAL, checkpoints, and snapshot state transfer."""

from repro.durability.checkpoint import (
    Checkpoint,
    CheckpointStore,
    decode_checkpoint,
)
from repro.durability.manager import (
    DurabilityConfig,
    DurableKVStore,
    RecoveryInfo,
)
from repro.durability.wal import (
    FSYNC_POLICIES,
    AppliedBlockRecord,
    WriteAheadLog,
    encode_payload,
    encode_record,
    decode_payload,
    read_wal,
)

__all__ = [
    "AppliedBlockRecord",
    "Checkpoint",
    "CheckpointStore",
    "DurabilityConfig",
    "DurableKVStore",
    "FSYNC_POLICIES",
    "RecoveryInfo",
    "WriteAheadLog",
    "decode_checkpoint",
    "decode_payload",
    "encode_payload",
    "encode_record",
    "read_wal",
]
