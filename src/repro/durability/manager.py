"""Durable KV state machine: WAL + checkpoints + snapshot install.

``DurableKVStore`` wraps the deterministic in-memory state machine with
a per-replica data directory::

    <data_dir>/wal.log                      append-only applied-block log
    <data_dir>/checkpoints/checkpoint-*.ckpt  atomic full-state snapshots

Every applied block is WAL-appended *before* it mutates memory; every
``checkpoint_interval`` blocks the full state is checkpointed and the
WAL truncated. Opening a store on an existing directory runs recovery:
load the newest valid checkpoint, replay the WAL tail (records at or
below the checkpoint height are skipped — they are the stale prefix a
crash between checkpoint and truncate leaves behind), and repair any
torn final record by cutting the file back to the valid prefix.

A recovered replica that is still behind the cluster's commit frontier
closes the gap with snapshot state transfer (``state.snap_req`` /
``state.snap``, see :mod:`repro.replica.node`) rather than full
protocol replay.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.durability.checkpoint import Checkpoint, CheckpointStore
from repro.durability.wal import (
    FSYNC_POLICIES,
    AppliedBlockRecord,
    WriteAheadLog,
    read_wal,
)
from repro.kvstore.store import KVStore, kv_digest

WAL_FILENAME = "wal.log"
CHECKPOINT_DIRNAME = "checkpoints"


@dataclass(frozen=True)
class DurabilityConfig:
    """Knobs for the durability layer (spawn-safe JSON round-trip)."""

    fsync: str = "always"
    fsync_interval: float = 0.05
    #: Blocks applied between checkpoints (and WAL truncations).
    checkpoint_interval: int = 32
    #: Allow a recovered replica to request/serve peer snapshots.
    snapshot_transfer: bool = True

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.fsync_interval <= 0:
            raise ValueError("fsync_interval must be positive")
        if self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")

    def to_spec(self) -> dict:
        return {
            "fsync": self.fsync,
            "fsync_interval": self.fsync_interval,
            "checkpoint_interval": self.checkpoint_interval,
            "snapshot_transfer": self.snapshot_transfer,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "DurabilityConfig":
        return cls(
            fsync=spec.get("fsync", "always"),
            fsync_interval=float(spec.get("fsync_interval", 0.05)),
            checkpoint_interval=int(spec.get("checkpoint_interval", 32)),
            snapshot_transfer=bool(spec.get("snapshot_transfer", True)),
        )


@dataclass
class RecoveryInfo:
    """What one store-open recovered, and how fast."""

    source: str = "fresh"  # fresh | checkpoint | wal | checkpoint+wal | snapshot
    duration_s: float = 0.0
    checkpoint_height: int = 0
    checkpoint_bytes: int = 0
    wal_blocks_replayed: int = 0
    wal_torn_tail: bool = False

    @property
    def wal_replay_blocks_per_sec(self) -> float:
        if self.wal_blocks_replayed == 0:
            return 0.0
        return self.wal_blocks_replayed / max(self.duration_s, 1e-9)

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "duration_s": self.duration_s,
            "checkpoint_height": self.checkpoint_height,
            "checkpoint_bytes": self.checkpoint_bytes,
            "wal_blocks_replayed": self.wal_blocks_replayed,
            "wal_replay_blocks_per_sec": self.wal_replay_blocks_per_sec,
            "wal_torn_tail": self.wal_torn_tail,
        }


class DurableKVStore(KVStore):
    """KV state machine persisted under a per-replica data directory."""

    def __init__(
        self,
        data_dir: str,
        config: Optional[DurabilityConfig] = None,
        key_space: int = 10_000,
        failpoint: Optional[Callable[[str], None]] = None,
    ) -> None:
        super().__init__(key_space=key_space)
        self.data_dir = data_dir
        self.config = config if config is not None else DurabilityConfig()
        self._failpoint = failpoint
        os.makedirs(data_dir, exist_ok=True)
        self._checkpoints = CheckpointStore(
            os.path.join(data_dir, CHECKPOINT_DIRNAME), failpoint=failpoint
        )
        self._wal_path = os.path.join(data_dir, WAL_FILENAME)
        self._blocks_since_checkpoint = 0
        self.checkpoint_bytes = 0
        self.checkpoints_written = 0
        self.snapshot_installs = 0
        self.recovery = self._recover()

    # -- recovery -------------------------------------------------------

    def _recover(self) -> RecoveryInfo:
        started = time.perf_counter()
        info = RecoveryInfo()
        loaded = self._checkpoints.load_latest()
        if loaded is not None:
            checkpoint, size = loaded
            self._install_checkpoint(checkpoint)
            info.source = "checkpoint"
            info.checkpoint_height = checkpoint.height
            info.checkpoint_bytes = size
            self.checkpoint_bytes = size
        replay = read_wal(self._wal_path)
        info.wal_torn_tail = replay.torn
        for record in replay.records:
            if record.height <= self._last_height:
                continue  # stale prefix: checkpointed but not yet truncated
            if record.height != self._last_height + 1:
                # Non-contiguous tail: the records bridging the gap are
                # gone (e.g. the checkpoint they superseded was rejected
                # as corrupt). Applying them would fabricate state;
                # stop here and let snapshot transfer close the gap.
                break
            self._apply(record.block_id, record.height, record.microblocks)
            info.wal_blocks_replayed += 1
        if info.wal_blocks_replayed:
            info.source = (
                "checkpoint+wal" if info.source == "checkpoint" else "wal"
            )
        self._wal = WriteAheadLog(
            self._wal_path,
            fsync=self.config.fsync,
            fsync_interval=self.config.fsync_interval,
            failpoint=self._failpoint,
        )
        if replay.torn:
            self._wal.truncate_to(replay.valid_bytes)
        self._blocks_since_checkpoint = info.wal_blocks_replayed
        info.duration_s = time.perf_counter() - started
        return info

    def _install_checkpoint(self, checkpoint: Checkpoint) -> None:
        self._data = dict(checkpoint.data)
        self._tx_applied = checkpoint.tx_applied
        self._blocks_applied = checkpoint.blocks_applied
        self._last_height = checkpoint.height
        self._last_block_id = checkpoint.last_block_id
        # Per-id history before the checkpoint is not retained; the
        # cursor above is what recovery and the oracles need.
        self._applied_blocks = []

    def reopen(self) -> "DurableKVStore":
        """Close this instance and recover a fresh one from the same
        directory — the sim's stand-in for a process restart."""
        self.close()
        return DurableKVStore(
            self.data_dir,
            config=self.config,
            key_space=self._key_space,
            failpoint=self._failpoint,
        )

    # -- apply path -----------------------------------------------------

    def _apply(self, block_id: int, height: int, pairs) -> None:
        if hasattr(self, "_wal"):  # absent only during recovery replay
            self._wal.append(AppliedBlockRecord(block_id, height, tuple(pairs)))
        super()._apply(block_id, height, pairs)
        if hasattr(self, "_wal"):
            self._blocks_since_checkpoint += 1
            if self._blocks_since_checkpoint >= self.config.checkpoint_interval:
                self.write_checkpoint()

    def write_checkpoint(self) -> None:
        """Persist the full state and truncate the superseded WAL."""
        checkpoint = Checkpoint(
            height=self._last_height,
            last_block_id=self._last_block_id,
            digest=self.state_digest(),
            tx_applied=self._tx_applied,
            blocks_applied=self._blocks_applied,
            data=dict(self._data),
        )
        self.checkpoint_bytes = self._checkpoints.save(checkpoint)
        self.checkpoints_written += 1
        self._wal.truncate()
        self._blocks_since_checkpoint = 0

    # -- snapshot state transfer ---------------------------------------

    def snapshot_payload(self) -> tuple:
        """Wire payload for ``state.snap`` (see MESSAGE_REGISTRY)."""
        return (
            self._last_height,
            self._last_block_id,
            self.state_digest(),
            self._tx_applied,
            self._blocks_applied,
            dict(self._data),
        )

    def install_snapshot(self, payload) -> bool:
        """Adopt a peer snapshot if it is ahead of us and self-consistent.

        Returns True when installed. A snapshot whose digest does not
        match its own data is rejected (defence against a damaged or
        byzantine-mangled payload).
        """
        height, last_block_id, digest, tx_applied, blocks_applied, data = payload
        height = int(height)
        if height <= self._last_height:
            return False
        data = {int(k): int(v) for k, v in data.items()}
        if kv_digest(data) != digest:
            return False
        self._install_checkpoint(Checkpoint(
            height=height,
            last_block_id=int(last_block_id),
            digest=digest,
            tx_applied=int(tx_applied),
            blocks_applied=int(blocks_applied),
            data=data,
        ))
        self.snapshot_installs += 1
        if self.recovery.source == "fresh":
            # A freshly-joined replica with no local state at all counts
            # the transfer as its recovery source.
            self.recovery.source = "snapshot"
        self.write_checkpoint()  # persist immediately: survive the next crash
        return True

    @property
    def wal_records_appended(self) -> int:
        return self._wal.records_appended

    def close(self) -> None:
        self._wal.close()
