"""Checkpoint snapshots of the KV state machine.

A checkpoint is a single file holding the full key/value map plus the
recovery cursor, keyed by ``(last_applied_block_id, state_digest)``::

    [8-byte magic][u32 payload length][u32 crc32(payload)][JSON payload]

Writes are atomic: the payload goes to a ``.tmp`` sibling, is fsynced,
and is renamed over the final name — a crash mid-write leaves either the
previous checkpoint intact or a ``.tmp`` litter file that recovery
ignores. ``load_latest`` scans checkpoints newest-first and skips any
file that is empty, short, CRC-damaged, or whose stored digest does not
match the digest recomputed from its own payload, so a partial or
corrupt checkpoint is rejected rather than silently applied.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.kvstore.store import kv_digest

MAGIC = b"SMPCKPT1"
_HEADER = struct.Struct("!II")
_SUFFIX = ".ckpt"

#: Failpoint names the checkpoint writer can trigger.
CHECKPOINT_FAILPOINTS = (
    "checkpoint.before_write",
    "checkpoint.before_rename",
    "checkpoint.after_rename",
)


@dataclass(frozen=True)
class Checkpoint:
    """Materialized KV state at one applied-block boundary."""

    height: int
    last_block_id: int
    digest: str
    tx_applied: int
    blocks_applied: int
    data: dict

    def encode(self) -> bytes:
        doc = {
            "height": self.height,
            "last_block_id": self.last_block_id,
            "digest": self.digest,
            "tx_applied": self.tx_applied,
            "blocks_applied": self.blocks_applied,
            "data": [[k, v] for k, v in sorted(self.data.items())],
        }
        payload = json.dumps(doc, separators=(",", ":")).encode("ascii")
        return MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_checkpoint(blob: bytes) -> Checkpoint:
    """Parse and *validate* one checkpoint file's bytes.

    Raises ``ValueError`` on any structural damage or digest mismatch.
    """
    if len(blob) < len(MAGIC) + _HEADER.size:
        raise ValueError("checkpoint file too short")
    if blob[:len(MAGIC)] != MAGIC:
        raise ValueError("bad checkpoint magic")
    length, crc = _HEADER.unpack_from(blob, len(MAGIC))
    start = len(MAGIC) + _HEADER.size
    payload = blob[start:start + length]
    if len(payload) != length:
        raise ValueError("truncated checkpoint payload")
    if zlib.crc32(payload) != crc:
        raise ValueError("checkpoint crc mismatch")
    doc = json.loads(payload.decode("ascii"))
    data = {int(k): int(v) for k, v in doc["data"]}
    checkpoint = Checkpoint(
        height=int(doc["height"]),
        last_block_id=int(doc["last_block_id"]),
        digest=str(doc["digest"]),
        tx_applied=int(doc["tx_applied"]),
        blocks_applied=int(doc["blocks_applied"]),
        data=data,
    )
    if kv_digest(data) != checkpoint.digest:
        raise ValueError("checkpoint digest mismatch")
    return checkpoint


class CheckpointStore:
    """Directory of checkpoint files, newest wins."""

    def __init__(
        self,
        directory: str,
        failpoint: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.directory = directory
        self._failpoint = failpoint
        os.makedirs(directory, exist_ok=True)

    def _fp(self, name: str) -> None:
        if self._failpoint is not None:
            self._failpoint(name)

    def _path(self, height: int) -> str:
        return os.path.join(self.directory, f"checkpoint-{height:012d}{_SUFFIX}")

    def save(self, checkpoint: Checkpoint) -> int:
        """Atomically persist a checkpoint; returns its size in bytes."""
        blob = checkpoint.encode()
        final = self._path(checkpoint.height)
        tmp = final + ".tmp"
        self._fp("checkpoint.before_write")
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        self._fp("checkpoint.before_rename")
        os.replace(tmp, final)
        dir_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        self._fp("checkpoint.after_rename")
        self._prune(keep=final)
        return len(blob)

    def _prune(self, keep: str) -> None:
        for name in os.listdir(self.directory):
            path = os.path.join(self.directory, name)
            if path != keep and (
                name.endswith(_SUFFIX) or name.endswith(".tmp")
            ):
                try:
                    os.remove(path)
                except OSError:
                    pass

    def load_latest(self) -> Optional[tuple[Checkpoint, int]]:
        """Newest valid checkpoint and its file size, or None.

        Invalid files (empty, partial, corrupt, digest mismatch) are
        skipped — an older valid checkpoint still recovers the store.
        """
        candidates = sorted(
            (
                name for name in os.listdir(self.directory)
                if name.endswith(_SUFFIX)
            ),
            reverse=True,
        )
        for name in candidates:
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
                return decode_checkpoint(blob), len(blob)
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return None
