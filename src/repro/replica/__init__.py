"""Replica assembly and fault behaviours."""

from repro.replica.behavior import (
    BEHAVIOR_KINDS,
    Behavior,
    CensoringSender,
    HonestBehavior,
    LyingProxy,
    ProofWithholder,
    SilentReplica,
    behavior_for,
)
from repro.replica.node import Replica

__all__ = [
    "Replica",
    "Behavior",
    "HonestBehavior",
    "SilentReplica",
    "CensoringSender",
    "LyingProxy",
    "ProofWithholder",
    "BEHAVIOR_KINDS",
    "behavior_for",
]
