"""Replica assembly and fault behaviours."""

from repro.replica.behavior import (
    Behavior,
    CensoringSender,
    HonestBehavior,
    LyingProxy,
    ProofWithholder,
    SilentReplica,
)
from repro.replica.node import Replica

__all__ = [
    "Replica",
    "Behavior",
    "HonestBehavior",
    "SilentReplica",
    "CensoringSender",
    "LyingProxy",
    "ProofWithholder",
]
