"""Replica: one node assembling network, mempool, consensus, executor."""

from __future__ import annotations

import random
from typing import Optional, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.metrics import MetricsHub
from repro.replica.behavior import Behavior, HonestBehavior, SilentReplica
from repro.sim.interfaces import Channel, Envelope, Scheduler, Transport
from repro.types import TxBatch
from repro.types.proposal import Block

#: Estimated wire size of a snapshot-request control message.
_SNAP_REQ_BYTES = 64
#: Fixed overhead of a snapshot reply on top of its key/value entries.
_SNAP_ENTRY_BYTES = 16

if TYPE_CHECKING:  # pragma: no cover
    from repro.consensus.base import ConsensusEngine
    from repro.kvstore import KVStore
    from repro.mempool.base import Mempool


class Replica:
    """A single BFT replica.

    Construction is two-phase: the replica registers with the network
    first, then :meth:`attach` wires in the mempool and consensus engine
    (which need a reference back to the replica).
    """

    def __init__(
        self,
        node_id: int,
        config: ProtocolConfig,
        sim: Scheduler,
        network: Transport,
        rng: random.Random,
        metrics: MetricsHub,
        behavior: Optional[Behavior] = None,
        leader_set: Optional[tuple[int, ...]] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.sim = sim
        self.network = network
        self.rng = rng
        self.metrics = metrics
        self.behavior = behavior if behavior is not None else HonestBehavior()
        self.leader_set = (
            leader_set if leader_set is not None else tuple(range(config.n))
        )
        self.mempool: Optional["Mempool"] = None
        self.consensus: Optional["ConsensusEngine"] = None
        self.executor: Optional["KVStore"] = None
        #: Optional protocol-event tracer (see :mod:`repro.tracing`).
        self.tracer = None
        #: Optional invariant observer (see :mod:`repro.verification`):
        #: receives consensus commits, microblock creations, and resolved
        #: blocks. One attribute check per event when unset.
        self.observer = None
        #: Crash-recovery lifecycle (see :meth:`crash` / :meth:`restart`).
        self.crashed = False
        self.restart_count = 0
        self._pre_crash_behavior: Optional[Behavior] = None
        self._exec_buffer: dict[int, Block] = {}
        self._exec_height = 0
        #: Snapshot state-transfer counters (durable executors only).
        self.snapshots_served = 0
        self.snapshots_installed = 0
        #: kind -> bound handler method; filled lazily by :meth:`handle`.
        self._kind_routes: dict = {}
        network.register(node_id, self.handle)

    def attach(
        self,
        mempool: "Mempool",
        consensus: "ConsensusEngine",
        executor: Optional["KVStore"] = None,
    ) -> None:
        self.mempool = mempool
        self.consensus = consensus
        self.executor = executor
        self._kind_routes = {}
        if executor is not None:
            # A durable executor may already hold recovered state; resume
            # execution where its WAL/checkpoint cursor left off.
            self._exec_height = getattr(executor, "last_height", 0)

    # -- event entry points --------------------------------------------

    def start(self) -> None:
        if self.consensus is None:
            raise RuntimeError("attach() must be called before start()")
        self.consensus.start()

    def crash(self) -> None:
        """Crash the replica (crash-recovery model, durable state).

        The network endpoint goes down and its egress/ingress queues are
        flushed, the behavior is swapped to silent so stray timer
        callbacks contribute nothing, and consensus timers are suspended.
        Protocol state (votes, locks, stored microblocks) survives, which
        matches a process whose consensus-critical state is persisted —
        safety never depends on forgetting.
        """
        if self.crashed:
            return
        if self.mempool is not None:
            # Before the gate closes: an attached arrival stream digests
            # the ticks that reached this replica while it was still up.
            self.mempool.on_crash()
        self.crashed = True
        self._pre_crash_behavior = self.behavior
        self.behavior = SilentReplica()
        self.network.set_node_down(self.node_id)
        if self.consensus is not None:
            self.consensus.suspend()
        self.trace("crash")

    def restart(self) -> None:
        """Bring a crashed replica back: re-register with the network,
        restore the pre-crash behavior, and re-arm consensus timers.

        No state is transferred here — the replica catches up through the
        ordinary recovery paths (chain sync for missed proposals,
        PAB-fetch for missing microblock bodies)."""
        if not self.crashed:
            return
        self.crashed = False
        self.restart_count += 1
        self.behavior = self._pre_crash_behavior or HonestBehavior()
        self._pre_crash_behavior = None
        self.network.set_node_up(self.node_id)
        if self.consensus is not None:
            self.consensus.resume()
        if self.mempool is not None:
            self.mempool.on_restart()
        if self.executor is not None and hasattr(self.executor, "reopen"):
            self._recover_executor()
        self.trace("restart")

    def _recover_executor(self) -> None:
        """Durable restart: the in-memory executor state is lost with the
        process; recover a fresh store from the same data directory
        (checkpoint + WAL tail), then ask peers for a snapshot in case
        the cluster's commit frontier moved on while we were down."""
        self.executor = self.executor.reopen()
        self._exec_height = self.executor.last_height
        # The pre-crash buffer lived in the dead process's memory.
        self._exec_buffer.clear()
        recovery = self.executor.recovery
        self.metrics.record_recovery(self.node_id, recovery.to_dict())
        self.trace(
            "executor_recovered",
            source=recovery.source,
            height=self._exec_height,
            wal_blocks=recovery.wal_blocks_replayed,
        )
        if self.executor.config.snapshot_transfer:
            self.request_state_snapshot()

    def handle(self, envelope: Envelope) -> None:
        """Network delivery: route by message-kind prefix.

        Kinds are a small fixed set of interned strings, so the prefix
        match runs once per kind and the resolved bound method is cached
        (``attach`` resets the cache).
        """
        if self.crashed:
            return  # defence in depth; the network drops these already
        kind = envelope.kind
        route = self._kind_routes.get(kind)
        if route is None:
            if kind.startswith("ce."):
                route = self.consensus.on_message
            elif kind.startswith("state."):
                route = self.on_state_message
            else:
                route = self.mempool.on_message
            self._kind_routes[kind] = route
        route(envelope)

    def on_client_batch(self, batch: TxBatch) -> None:
        """ReceiveTx entry point for the workload generator."""
        if self.crashed:
            return  # a dead server accepts nothing; clients lose the txs
        self.mempool.on_client_batch(batch)

    def on_block_executed(self, block: Block) -> None:
        """A committed block became full: apply it in height order.

        Blocks can become full out of order (Stratus fills missing bodies
        in the background), so execution buffers until the chain prefix
        is contiguous — committed ids may be executed only once their
        content is available (Section IV-B).
        """
        if self.executor is None:
            return
        height = block.proposal.height
        if height <= self._exec_height:
            return  # already covered by recovered/snapshot state
        self._exec_buffer[height] = block
        self._drain_exec_buffer()

    def _drain_exec_buffer(self) -> None:
        while self._exec_height + 1 in self._exec_buffer:
            self._exec_height += 1
            self.executor.apply_block(self._exec_buffer.pop(self._exec_height))

    # -- snapshot state transfer ---------------------------------------

    def request_state_snapshot(self) -> None:
        """Broadcast ``state.snap_req`` carrying our applied height; any
        peer that is ahead replies with a full snapshot."""
        executor = self.executor
        if executor is None or not hasattr(executor, "snapshot_payload"):
            return
        from repro.mempool.base import MessageKinds
        self.network.broadcast(
            self.node_id,
            MessageKinds.STATE_SNAPSHOT_REQ,
            _SNAP_REQ_BYTES,
            executor.last_height,
            Channel.CONTROL,
        )
        self.trace("snapshot_request", height=executor.last_height)

    def on_state_message(self, envelope: Envelope) -> None:
        """Serve and install snapshot state transfer messages."""
        executor = self.executor
        if executor is None or not hasattr(executor, "snapshot_payload"):
            return
        from repro.mempool.base import MessageKinds
        if envelope.kind == MessageKinds.STATE_SNAPSHOT_REQ:
            their_height = int(envelope.payload)
            if executor.last_height <= their_height:
                return  # nothing to offer
            payload = executor.snapshot_payload()
            size = _SNAP_REQ_BYTES + _SNAP_ENTRY_BYTES * len(payload[5])
            self.network.send(
                self.node_id, envelope.src, MessageKinds.STATE_SNAPSHOT,
                size, payload, Channel.DATA,
            )
            self.snapshots_served += 1
            self.trace(
                "snapshot_served", to=envelope.src, height=payload[0]
            )
        elif envelope.kind == MessageKinds.STATE_SNAPSHOT:
            if executor.install_snapshot(envelope.payload):
                self._exec_height = executor.last_height
                # Buffered blocks at or below the snapshot height are
                # superseded; keep only the frontier.
                self._exec_buffer = {
                    h: b for h, b in self._exec_buffer.items()
                    if h > self._exec_height
                }
                self.snapshots_installed += 1
                self.trace("snapshot_install", height=self._exec_height)
                self._drain_exec_buffer()

    # -- verification taps ---------------------------------------------

    def notify_commit(self, proposal) -> None:
        """Consensus committed ``proposal`` locally (oracle tap point)."""
        if self.observer is not None:
            self.observer.on_local_commit(self, proposal)

    def notify_microblock(self, microblock) -> None:
        """This replica batched a new microblock (oracle tap point)."""
        if self.observer is not None:
            self.observer.on_microblock_created(self, microblock)

    def notify_block_resolved(self, block: Block) -> None:
        """A committed block became full locally (oracle tap point)."""
        if self.observer is not None:
            self.observer.on_block_resolved(self, block)

    def trace(self, kind: str, **details) -> None:
        """Record a protocol event if a tracer is attached (no-op cost
        of one attribute check otherwise)."""
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.node_id, kind, **details)

    @property
    def is_byzantine(self) -> bool:
        return self.node_id in self.config.byzantine
