"""Replica: one node assembling network, mempool, consensus, executor."""

from __future__ import annotations

import random
from typing import Optional, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.metrics import MetricsHub
from repro.replica.behavior import Behavior, HonestBehavior
from repro.sim.engine import Simulator
from repro.sim.network import Envelope, Network
from repro.types import TxBatch
from repro.types.proposal import Block

if TYPE_CHECKING:  # pragma: no cover
    from repro.consensus.base import ConsensusEngine
    from repro.kvstore import KVStore
    from repro.mempool.base import Mempool


class Replica:
    """A single BFT replica.

    Construction is two-phase: the replica registers with the network
    first, then :meth:`attach` wires in the mempool and consensus engine
    (which need a reference back to the replica).
    """

    def __init__(
        self,
        node_id: int,
        config: ProtocolConfig,
        sim: Simulator,
        network: Network,
        rng: random.Random,
        metrics: MetricsHub,
        behavior: Optional[Behavior] = None,
        leader_set: Optional[tuple[int, ...]] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.sim = sim
        self.network = network
        self.rng = rng
        self.metrics = metrics
        self.behavior = behavior if behavior is not None else HonestBehavior()
        self.leader_set = (
            leader_set if leader_set is not None else tuple(range(config.n))
        )
        self.mempool: Optional["Mempool"] = None
        self.consensus: Optional["ConsensusEngine"] = None
        self.executor: Optional["KVStore"] = None
        #: Optional protocol-event tracer (see :mod:`repro.tracing`).
        self.tracer = None
        self._exec_buffer: dict[int, Block] = {}
        self._exec_height = 0
        network.register(node_id, self.handle)

    def attach(
        self,
        mempool: "Mempool",
        consensus: "ConsensusEngine",
        executor: Optional["KVStore"] = None,
    ) -> None:
        self.mempool = mempool
        self.consensus = consensus
        self.executor = executor

    # -- event entry points --------------------------------------------

    def start(self) -> None:
        if self.consensus is None:
            raise RuntimeError("attach() must be called before start()")
        self.consensus.start()

    def handle(self, envelope: Envelope) -> None:
        """Network delivery: route by message-kind prefix."""
        if envelope.kind.startswith("ce."):
            self.consensus.on_message(envelope)
        else:
            self.mempool.on_message(envelope)

    def on_client_batch(self, batch: TxBatch) -> None:
        """ReceiveTx entry point for the workload generator."""
        self.mempool.on_client_batch(batch)

    def on_block_executed(self, block: Block) -> None:
        """A committed block became full: apply it in height order.

        Blocks can become full out of order (Stratus fills missing bodies
        in the background), so execution buffers until the chain prefix
        is contiguous — committed ids may be executed only once their
        content is available (Section IV-B).
        """
        if self.executor is None:
            return
        self._exec_buffer[block.proposal.height] = block
        while self._exec_height + 1 in self._exec_buffer:
            self._exec_height += 1
            self.executor.apply_block(self._exec_buffer.pop(self._exec_height))

    def trace(self, kind: str, **details) -> None:
        """Record a protocol event if a tracer is attached (no-op cost
        of one attribute check otherwise)."""
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.node_id, kind, **details)

    @property
    def is_byzantine(self) -> bool:
        return self.node_id in self.config.byzantine
