"""Replica: one node assembling network, mempool, consensus, executor."""

from __future__ import annotations

import random
from typing import Optional, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.metrics import MetricsHub
from repro.replica.behavior import Behavior, HonestBehavior, SilentReplica
from repro.sim.interfaces import Envelope, Scheduler, Transport
from repro.types import TxBatch
from repro.types.proposal import Block

if TYPE_CHECKING:  # pragma: no cover
    from repro.consensus.base import ConsensusEngine
    from repro.kvstore import KVStore
    from repro.mempool.base import Mempool


class Replica:
    """A single BFT replica.

    Construction is two-phase: the replica registers with the network
    first, then :meth:`attach` wires in the mempool and consensus engine
    (which need a reference back to the replica).
    """

    def __init__(
        self,
        node_id: int,
        config: ProtocolConfig,
        sim: Scheduler,
        network: Transport,
        rng: random.Random,
        metrics: MetricsHub,
        behavior: Optional[Behavior] = None,
        leader_set: Optional[tuple[int, ...]] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.sim = sim
        self.network = network
        self.rng = rng
        self.metrics = metrics
        self.behavior = behavior if behavior is not None else HonestBehavior()
        self.leader_set = (
            leader_set if leader_set is not None else tuple(range(config.n))
        )
        self.mempool: Optional["Mempool"] = None
        self.consensus: Optional["ConsensusEngine"] = None
        self.executor: Optional["KVStore"] = None
        #: Optional protocol-event tracer (see :mod:`repro.tracing`).
        self.tracer = None
        #: Optional invariant observer (see :mod:`repro.verification`):
        #: receives consensus commits, microblock creations, and resolved
        #: blocks. One attribute check per event when unset.
        self.observer = None
        #: Crash-recovery lifecycle (see :meth:`crash` / :meth:`restart`).
        self.crashed = False
        self.restart_count = 0
        self._pre_crash_behavior: Optional[Behavior] = None
        self._exec_buffer: dict[int, Block] = {}
        self._exec_height = 0
        network.register(node_id, self.handle)

    def attach(
        self,
        mempool: "Mempool",
        consensus: "ConsensusEngine",
        executor: Optional["KVStore"] = None,
    ) -> None:
        self.mempool = mempool
        self.consensus = consensus
        self.executor = executor

    # -- event entry points --------------------------------------------

    def start(self) -> None:
        if self.consensus is None:
            raise RuntimeError("attach() must be called before start()")
        self.consensus.start()

    def crash(self) -> None:
        """Crash the replica (crash-recovery model, durable state).

        The network endpoint goes down and its egress/ingress queues are
        flushed, the behavior is swapped to silent so stray timer
        callbacks contribute nothing, and consensus timers are suspended.
        Protocol state (votes, locks, stored microblocks) survives, which
        matches a process whose consensus-critical state is persisted —
        safety never depends on forgetting.
        """
        if self.crashed:
            return
        self.crashed = True
        self._pre_crash_behavior = self.behavior
        self.behavior = SilentReplica()
        self.network.set_node_down(self.node_id)
        if self.consensus is not None:
            self.consensus.suspend()
        self.trace("crash")

    def restart(self) -> None:
        """Bring a crashed replica back: re-register with the network,
        restore the pre-crash behavior, and re-arm consensus timers.

        No state is transferred here — the replica catches up through the
        ordinary recovery paths (chain sync for missed proposals,
        PAB-fetch for missing microblock bodies)."""
        if not self.crashed:
            return
        self.crashed = False
        self.restart_count += 1
        self.behavior = self._pre_crash_behavior or HonestBehavior()
        self._pre_crash_behavior = None
        self.network.set_node_up(self.node_id)
        if self.consensus is not None:
            self.consensus.resume()
        if self.mempool is not None:
            self.mempool.on_restart()
        self.trace("restart")

    def handle(self, envelope: Envelope) -> None:
        """Network delivery: route by message-kind prefix."""
        if self.crashed:
            return  # defence in depth; the network drops these already
        if envelope.kind.startswith("ce."):
            self.consensus.on_message(envelope)
        else:
            self.mempool.on_message(envelope)

    def on_client_batch(self, batch: TxBatch) -> None:
        """ReceiveTx entry point for the workload generator."""
        if self.crashed:
            return  # a dead server accepts nothing; clients lose the txs
        self.mempool.on_client_batch(batch)

    def on_block_executed(self, block: Block) -> None:
        """A committed block became full: apply it in height order.

        Blocks can become full out of order (Stratus fills missing bodies
        in the background), so execution buffers until the chain prefix
        is contiguous — committed ids may be executed only once their
        content is available (Section IV-B).
        """
        if self.executor is None:
            return
        self._exec_buffer[block.proposal.height] = block
        while self._exec_height + 1 in self._exec_buffer:
            self._exec_height += 1
            self.executor.apply_block(self._exec_buffer.pop(self._exec_height))

    # -- verification taps ---------------------------------------------

    def notify_commit(self, proposal) -> None:
        """Consensus committed ``proposal`` locally (oracle tap point)."""
        if self.observer is not None:
            self.observer.on_local_commit(self, proposal)

    def notify_microblock(self, microblock) -> None:
        """This replica batched a new microblock (oracle tap point)."""
        if self.observer is not None:
            self.observer.on_microblock_created(self, microblock)

    def notify_block_resolved(self, block: Block) -> None:
        """A committed block became full locally (oracle tap point)."""
        if self.observer is not None:
            self.observer.on_block_resolved(self, block)

    def trace(self, kind: str, **details) -> None:
        """Record a protocol event if a tracer is attached (no-op cost
        of one attribute check otherwise)."""
        if self.tracer is not None:
            self.tracer.record(self.sim.now, self.node_id, kind, **details)

    @property
    def is_byzantine(self) -> bool:
        return self.node_id in self.config.byzantine
