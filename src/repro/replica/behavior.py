"""Byzantine behaviour strategies.

A :class:`Behavior` object is consulted by the mempool and consensus code
at the points where the paper's attackers deviate:

* :class:`SilentReplica` — crash-like: never votes, acks, or serves
  fetches (the "less than one-third remain silent" common-case setting of
  Section VII-B).
* :class:`CensoringSender` — the Fig. 8 attacker: shares its microblocks
  only with the current leader (plus, under Stratus, the minimum set of
  extra replicas needed to obtain an availability proof), so that honest
  replicas see missing transactions.
* :class:`LyingProxy` — the DLB attacker: advertises zero load to attract
  forwards, then censors them; defeated by the banList + proof timeout.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import ProtocolConfig
    from repro.replica.node import Replica


class Behavior:
    """Honest-by-default strategy hooks."""

    #: Whether the replica participates in consensus voting/proposing.
    silent = False
    #: Whether the replica acks microblock bodies it receives.
    acks_microblocks = True
    #: Whether the replica answers fetch requests for bodies it holds.
    serves_fetches = True
    #: Whether the replica performs proxy duty for forwarded microblocks.
    handles_forwards = True
    #: Whether the replica suppresses its own availability proofs
    #: (Section VIII's bandwidth-wasting attack).
    withholds_proofs = False

    def share_targets(
        self, host: "Replica", default_targets: list[int]
    ) -> list[int]:
        """Recipients for a microblock this replica originated."""
        return default_targets

    def load_status(self, real_status: Optional[float]) -> Optional[float]:
        """Load status advertised to DLB queries."""
        return real_status


class HonestBehavior(Behavior):
    """The default, fully correct behaviour."""


class SilentReplica(Behavior):
    """Crashed / muted replica: contributes nothing."""

    silent = True
    acks_microblocks = False
    serves_fetches = False
    handles_forwards = False

    def share_targets(
        self, host: "Replica", default_targets: list[int]
    ) -> list[int]:
        return []

    def load_status(self, real_status: Optional[float]) -> Optional[float]:
        return None


class CensoringSender(Behavior):
    """Byzantine sender inducing missing transactions (Fig. 8).

    Against the simple SMP it shares each microblock with the leader
    only; against availability-guaranteeing mempools it must additionally
    reach enough witnesses for its content to become proposable at all —
    an ack quorum minus its own ack under Stratus (PAB), an echo quorum
    minus its own echo under reliable broadcast (Narwhal). It refuses to
    serve the resulting fetches.

    ``min_witnesses`` is that number of *other* replicas; 0 models the
    pure leader-only attack on the simple SMP.
    """

    serves_fetches = False
    handles_forwards = False

    def __init__(self, min_witnesses: int = 0) -> None:
        if min_witnesses < 0:
            raise ValueError(
                f"min_witnesses must be >= 0, got {min_witnesses}"
            )
        self._min_witnesses = min_witnesses

    def share_targets(
        self, host: "Replica", default_targets: list[int]
    ) -> list[int]:
        leader = host.consensus.current_leader()
        targets = {leader} - {host.node_id}
        missing = self._min_witnesses - len(targets)
        if missing > 0:
            candidates = [
                node for node in default_targets if node not in targets
            ]
            extra = host.rng.sample(
                candidates, min(missing, len(candidates))
            )
            targets.update(extra)
        return sorted(targets)


class LyingProxy(Behavior):
    """Byzantine proxy: advertises zero load, censors forwarded blocks."""

    handles_forwards = False
    serves_fetches = False

    def load_status(self, real_status: Optional[float]) -> Optional[float]:
        return 0.0


class ProofWithholder(Behavior):
    """Byzantine sender that wastes bandwidth by withholding proofs.

    Section VIII: the attacker broadcasts microblock bodies (consuming
    every replica's ingress bandwidth) but never publishes the
    availability proof, so the content is never proposed. The transactions
    it censors are its *own* clients'; the paper's mitigation is the
    client-side timeout (resend to another replica), which is outside the
    replica protocol.
    """

    withholds_proofs = True


#: Behavior names accepted by ``behavior_for`` (harness faults, chaos
#: SwapBehavior events). "none" and "honest" are synonyms.
BEHAVIOR_KINDS = ("none", "honest", "silent", "censor", "lying", "withhold")


def behavior_for(kind: str, config: "ProtocolConfig") -> Behavior:
    """Build a behavior from its name, tuned to the protocol under test.

    The censoring attacker needs protocol-specific witness counts: under
    Stratus it must reach an ack quorum minus its own ack, under Narwhal
    an echo quorum minus its own echo; against the simple SMP the pure
    leader-only attack suffices.
    """
    if kind in ("none", "honest"):
        return HonestBehavior()
    if kind == "silent":
        return SilentReplica()
    if kind == "censor":
        if config.mempool == "stratus":
            witnesses = config.stability_quorum - 1
        elif config.mempool == "narwhal":
            witnesses = 2 * config.f
        else:
            witnesses = 0
        return CensoringSender(min_witnesses=witnesses)
    if kind == "lying":
        return LyingProxy()
    if kind == "withhold":
        return ProofWithholder()
    raise ValueError(
        f"unknown behavior {kind!r}; choose from {BEHAVIOR_KINDS}"
    )
