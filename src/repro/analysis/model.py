"""Closed-form throughput models (Appendix A).

All formulas bound throughput by per-replica network capacity ``C``
(bits per second) and express workloads in bits: the maximum throughput
is ``min(C / W_l, C / W_nl)`` where ``W_l`` and ``W_nl`` are the
per-transaction workloads of the leader and of a non-leader replica.

These models are cross-checked against the simulator in
``benchmarks/test_appendix_a_model.py`` — the network substrate was
chosen precisely so that the formulas are exact in the saturated limit.
"""

from __future__ import annotations


def _check(capacity_bps: float, tx_bits: float, n: int) -> None:
    if capacity_bps <= 0:
        raise ValueError(f"capacity must be positive, got {capacity_bps}")
    if tx_bits <= 0:
        raise ValueError(f"transaction size must be positive, got {tx_bits}")
    if n < 2:
        raise ValueError(f"need at least 2 replicas, got {n}")


def lbft_max_throughput(capacity_bps: float, tx_bits: float, n: int) -> float:
    """Ideal LBFT throughput: ``C / (B (n - 1))`` (Appendix A-A).

    The leader disseminates each transaction to ``n - 1`` replicas, so its
    per-transaction workload is ``B (n - 1)`` while non-leaders only
    receive (reception is not counted against egress capacity).
    """
    _check(capacity_bps, tx_bits, n)
    return capacity_bps / (tx_bits * (n - 1))


def pbft_max_throughput(
    capacity_bps: float, tx_bits: float, n: int, vote_bits: float
) -> float:
    """PBFT without batching (Appendix A-A, Eq. 1).

    ``W_l = nB + 4(n-1)sigma`` and ``W_nl = B + 4(n-1)sigma``.
    """
    _check(capacity_bps, tx_bits, n)
    leader = n * tx_bits + 4 * (n - 1) * vote_bits
    non_leader = tx_bits + 4 * (n - 1) * vote_bits
    return min(capacity_bps / leader, capacity_bps / non_leader)


def pbft_batched_max_throughput(
    capacity_bps: float,
    tx_bits: float,
    n: int,
    vote_bits: float,
    batch_bits: float,
) -> float:
    """PBFT with proposals of ``K`` bits batching ``K / B`` transactions.

    As ``K`` grows this tends to ``C / (nB)``: batching amortizes votes
    but cannot remove the leader's dissemination bottleneck.
    """
    _check(capacity_bps, tx_bits, n)
    if batch_bits < tx_bits:
        raise ValueError("batch must hold at least one transaction")
    leader = n * batch_bits + 4 * (n - 1) * vote_bits
    non_leader = batch_bits + 4 * (n - 1) * vote_bits
    per_batch = min(capacity_bps / leader, capacity_bps / non_leader)
    return (batch_bits / tx_bits) * per_batch


def smp_max_throughput(
    capacity_bps: float,
    tx_bits: float,
    n: int,
    batch_bits: float,
    microblock_bits: float,
    id_bits: float,
) -> float:
    """Shared-mempool throughput (Appendix A-B).

    A proposal of ``K`` bits references ``K / gamma`` microblocks of
    ``eta`` bits each, disseminated by the ``n - 1`` non-leader replicas:

    ``W_l  = K eta / gamma + (n - 1) K``
    ``W_nl = 2 K eta / gamma + K``

    per proposal, which represents ``(K / gamma) (eta / B)`` transactions.
    """
    _check(capacity_bps, tx_bits, n)
    if microblock_bits <= 0 or id_bits <= 0 or batch_bits <= 0:
        raise ValueError("microblock, id, and batch sizes must be positive")
    txs_per_proposal = (batch_bits / id_bits) * (microblock_bits / tx_bits)
    leader = batch_bits * microblock_bits / id_bits + (n - 1) * batch_bits
    non_leader = 2 * batch_bits * microblock_bits / id_bits + batch_bits
    per_proposal = min(capacity_bps / leader, capacity_bps / non_leader)
    return txs_per_proposal * per_proposal


def smp_optimal_microblock_bytes(n: int, id_bits: float) -> float:
    """Workload-balancing microblock size ``eta = (n - 2) gamma``.

    At this size leader and non-leader workloads equalize and throughput
    approaches the scalability-optimal ``C (n-2) / (B (2n-3)) ~ C / 2B``.
    """
    if n < 3:
        raise ValueError(f"need n >= 3, got {n}")
    if id_bits <= 0:
        raise ValueError(f"id size must be positive, got {id_bits}")
    return (n - 2) * id_bits / 8.0


def smp_limit_throughput(capacity_bps: float, tx_bits: float, n: int) -> float:
    """SMP throughput at the optimal microblock size: ``C(n-2)/(B(2n-3))``."""
    _check(capacity_bps, tx_bits, n)
    if n < 3:
        raise ValueError(f"need n >= 3, got {n}")
    return capacity_bps * (n - 2) / (tx_bits * (2 * n - 3))
