"""Analytic throughput models from Appendix A."""

from repro.analysis.model import (
    lbft_max_throughput,
    pbft_max_throughput,
    pbft_batched_max_throughput,
    smp_max_throughput,
    smp_limit_throughput,
    smp_optimal_microblock_bytes,
)

__all__ = [
    "lbft_max_throughput",
    "pbft_max_throughput",
    "pbft_batched_max_throughput",
    "smp_max_throughput",
    "smp_limit_throughput",
    "smp_optimal_microblock_bytes",
]
