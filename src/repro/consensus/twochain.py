"""Two-chain HotStuff (the Bamboo variant the paper also ships).

Identical to chained HotStuff except for the commit rule: a block
commits when it heads a *two*-chain of consecutive-view certified blocks
(like Jolteon/DiemBFT v4), saving one round of commit latency at the
cost of a heavier view-change responsibility — which this normal-case
implementation inherits unchanged from the three-chain engine.

The lock moves to one-chain: a replica locks on the certified block
itself rather than its parent.
"""

from __future__ import annotations

from repro.consensus.hotstuff import HotStuff
from repro.crypto import QuorumCert


class TwoChainHotStuff(HotStuff):
    """Chained HotStuff with the two-chain commit rule."""

    name = "twochain"

    def _process_qc(self, qc: QuorumCert) -> None:
        if qc.view > self.high_qc.view:
            self.high_qc = qc
        certified = self.proposals.get(qc.block_id)
        if certified is None or certified.block_id == 0:
            return
        # One-chain lock: lock directly on the certified block's view.
        if certified.view > self.locked_view:
            self.locked_view = certified.view
        parent = self.proposals.get(certified.parent_id)
        if parent is None or parent.block_id == 0:
            return
        # Two-chain commit: parent <- certified with consecutive views.
        if (
            certified.view == parent.view + 1
            and parent.block_id not in self.committed
        ):
            self._commit_chain(parent)
