"""BFT consensus engines.

Four engines exercise the mempools: chained HotStuff (the paper's main
integration target), its two-chain variant (Bamboo ships both),
Streamlet (epoch-based, all-to-all votes), and PBFT (used by the
Appendix-A analytic benches).
"""

from repro.consensus.base import ConsensusEngine
from repro.consensus.hotstuff import HotStuff
from repro.consensus.twochain import TwoChainHotStuff
from repro.consensus.streamlet import Streamlet
from repro.consensus.pbft import Pbft

CONSENSUS_CLASSES = {
    "hotstuff": HotStuff,
    "twochain": TwoChainHotStuff,
    "streamlet": Streamlet,
    "pbft": Pbft,
}

__all__ = [
    "ConsensusEngine",
    "HotStuff",
    "TwoChainHotStuff",
    "Streamlet",
    "Pbft",
    "CONSENSUS_CLASSES",
]
