"""Chained HotStuff (three-chain commit rule) with a round-robin pacemaker.

The implementation follows the chained variant the paper integrates with
(via Bamboo): one proposal per view, votes sent to the next leader, a
quorum certificate formed from ``2f + 1`` votes justifies the next
proposal, and a block commits when it heads a three-chain of
consecutive-view certified blocks. View changes use timeout (new-view)
messages carrying the sender's highest QC.

Mempool integration points:

* ``make_payload`` when this replica proposes;
* ``verify_payload`` on receipt — a failing payload (bad availability
  proof) triggers a view-change against the leader;
* ``prepare`` gates the vote: the engine votes only when the mempool says
  the proposal may enter the commit phase;
* ``on_commit`` / ``on_abandoned`` on three-chain commits.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.consensus.base import ConsensusEngine
from repro.crypto import (
    GENESIS_QC,
    QuorumCert,
    Signature,
    make_quorum_cert,
    verify_quorum_cert,
    vote_signature,
)
from repro.mempool.base import MessageKinds
from repro.sim.engine import Timer
from repro.sim.network import Envelope
from repro.types import sizes
from repro.types.proposal import Payload, Proposal, make_block_id

if TYPE_CHECKING:  # pragma: no cover
    from repro.mempool.base import Mempool
    from repro.replica.node import Replica

GENESIS_ID = 0


class HotStuff(ConsensusEngine):
    """Chained HotStuff engine for one replica."""

    name = "hotstuff"

    def __init__(
        self, host: "Replica", mempool: "Mempool", config: ProtocolConfig
    ) -> None:
        super().__init__(host, mempool, config)
        genesis = Proposal(
            block_id=GENESIS_ID, view=0, height=0, proposer=-1,
            parent_id=GENESIS_ID, justify=GENESIS_QC, payload=Payload(),
        )
        self.proposals: dict[int, Proposal] = {GENESIS_ID: genesis}
        self.cur_view = 0
        self.voted_view = 0
        self.high_qc: QuorumCert = GENESIS_QC
        self.locked_view = 0
        self.committed: set[int] = {GENESIS_ID}
        self.committed_height = 0
        self._abandoned: set[int] = set()
        # Proposals neither committed nor abandoned yet, in insertion
        # order. The abandonment sweep walks this instead of the full
        # proposal store, which otherwise makes every commit O(all
        # proposals ever seen).
        self._unresolved: dict[int, Proposal] = {}
        self._votes: dict[tuple[int, int], dict[int, Signature]] = {}
        self._qc_done: set[tuple[int, int]] = set()
        self._new_views: dict[int, dict[int, QuorumCert]] = {}
        self._proposed_views: set[int] = set()
        self._view_timer: Optional[Timer] = None
        self._block_counter = 0
        self._pacing_view: Optional[int] = None
        # Large parent proposals can still be in flight when small votes
        # or child proposals arrive; both are parked until the parent lands.
        self._orphans: dict[int, list[Proposal]] = {}
        # Block ids sitting in ``_orphans`` — already received, only
        # waiting on ancestry, so sync must not re-request them.
        self._orphaned: set[int] = set()
        self._deferred_propose: dict[int, tuple[int, QuorumCert]] = {}
        self._sync_requested: set[int] = set()
        # Highest view each peer has announced via NEW_VIEW. When f + 1
        # distinct peers claim a higher view, at least one honest replica
        # is there, so jumping is safe — without this, a long fault can
        # leave the cluster split into view cohorts more than one timeout
        # apart, where every new-view quorum completes just after its
        # leader moved on (a permanent pacemaker livelock).
        self._view_claims: dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._enter_view(1, justify=GENESIS_QC)

    def current_leader(self) -> int:
        return self.leader_of(max(self.cur_view, 1))

    def suspend(self) -> None:
        if self._view_timer is not None:
            self._view_timer.cancel()
            self._view_timer = None

    def resume(self) -> None:
        view = self.cur_view
        if view <= 0:
            return
        self._view_timer = self.host.sim.schedule(
            self.config.view_timeout, lambda: self._on_timeout(view)
        )

    def rebase_block_ids(self, base: int) -> None:
        if self._block_counter:
            raise RuntimeError("cannot rebase after proposing blocks")
        self._block_counter = base

    # -- view management -----------------------------------------------

    def _enter_view(self, view: int, justify: Optional[QuorumCert] = None) -> None:
        if view <= self.cur_view:
            return
        self.cur_view = view
        if self._view_timer is not None:
            self._view_timer.cancel()
        self._view_timer = self.host.sim.schedule(
            self.config.view_timeout, lambda: self._on_timeout(view)
        )
        if (
            self.leader_of(view) == self.node_id
            and not self.host.behavior.silent
        ):
            if justify is not None:
                self._try_propose(view, justify)
            elif view == 1:
                self._try_propose(view, GENESIS_QC)

    def _on_timeout(self, view: int) -> None:
        if self.cur_view != view:
            return
        self.host.trace("view_change", view=view)
        self.host.metrics.record_view_change(self.node_id, view)
        next_view = view + 1
        if not self.host.behavior.silent:
            # Broadcast (DiemBFT-style timeout messages) rather than
            # sending to the next leader alone: every replica sees the
            # view claim, so cohorts split by a long fault re-synchronize
            # via _maybe_catch_up instead of livelocking one view apart.
            message = (next_view, self.high_qc)
            self.broadcast(
                MessageKinds.NEW_VIEW, sizes.NEW_VIEW, message
            )
            self._record_new_view(next_view, self.node_id, self.high_qc)
        self._enter_view(next_view)

    # -- proposing -----------------------------------------------------

    def _try_propose(self, view: int, justify: QuorumCert) -> None:
        if view in self._proposed_views or self.host.behavior.silent:
            return
        if justify.block_id not in self.proposals:
            # The certified block (votes outran the proposal body) has not
            # arrived yet; propose as soon as it does.
            self._deferred_propose[justify.block_id] = (view, justify)
            return
        payload = self.mempool.make_payload()
        if payload.is_empty and self._pacing_view != view:
            # Pace empty views briefly so an idle chain does not spin at
            # wire speed (Bamboo regulates proposal frequency similarly).
            self._pacing_view = view
            self.host.sim.schedule(
                self.config.empty_view_delay,
                lambda: self._try_propose(view, justify),
            )
            return
        if view in self._proposed_views or self.cur_view > view:
            return
        self._proposed_views.add(view)
        parent = self.proposals[justify.block_id]
        proposal = Proposal(
            block_id=make_block_id(self.node_id, self._block_counter),
            view=view,
            height=parent.height + 1,
            proposer=self.node_id,
            parent_id=parent.block_id,
            justify=justify,
            payload=payload,
            created_at=self.host.sim.now,
        )
        self._block_counter += 1
        self.host.trace(
            "propose", view=view, block=proposal.block_id,
            entries=len(payload.microblock_ids),
        )
        self.broadcast(
            MessageKinds.PROPOSAL, proposal.size_bytes, proposal
        )
        self._handle_proposal(proposal)

    # -- message handling ----------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        kind = envelope.kind
        if kind == MessageKinds.PROPOSAL:
            self._handle_proposal(envelope.payload)
        elif kind == MessageKinds.VOTE:
            block_id, view, signature = envelope.payload
            self._handle_vote(block_id, view, signature)
        elif kind == MessageKinds.NEW_VIEW:
            view, qc = envelope.payload
            self._record_new_view(view, envelope.src, qc)
        elif kind == MessageKinds.SYNC_REQUEST:
            self._serve_sync(envelope.src, envelope.payload)

    def _handle_proposal(self, proposal: Proposal) -> None:
        if proposal.block_id in self.proposals:
            return
        if not verify_quorum_cert(
            proposal.justify, self.config.consensus_quorum, self.config.n
        ):
            return
        if proposal.parent_id not in self.proposals:
            # Parent still in flight (or lost): park until it arrives and
            # ask for a retransmission in case it was actually lost.
            self._orphans.setdefault(proposal.parent_id, []).append(proposal)
            self._orphaned.add(proposal.block_id)
            self._request_sync(proposal.parent_id, proposal.proposer)
            return
        self._orphaned.discard(proposal.block_id)
        self.proposals[proposal.block_id] = proposal
        self._unresolved[proposal.block_id] = proposal
        self._process_qc(proposal.justify)
        if proposal.view > self.cur_view:
            self._enter_view(proposal.view)
        if not self.mempool.verify_payload(proposal.payload):
            # Invalid availability proof: blame the leader, change view
            # (CE-VIEWCHANGE in Algorithm 3). _on_timeout records the
            # view-change metric.
            self._on_timeout(self.cur_view)
            self._release_dependents(proposal)
            return
        self._maybe_vote(proposal)
        self._release_dependents(proposal)

    def _maybe_vote(self, proposal: Proposal) -> None:
        if self.host.behavior.silent:
            return
        if proposal.view != self.cur_view or self.voted_view >= proposal.view:
            return
        if proposal.justify.view < self.locked_view:
            return  # safety rule: never contradict the lock
        self.voted_view = proposal.view
        next_leader = self.leader_of(proposal.view + 1)

        def cast_vote() -> None:
            signature = vote_signature(
                self.node_id, proposal.block_id, proposal.view
            )
            message = (proposal.block_id, proposal.view, signature)
            if next_leader == self.node_id:
                self._handle_vote(proposal.block_id, proposal.view, signature)
            else:
                self.send(
                    next_leader, MessageKinds.VOTE, sizes.VOTE, message
                )

        self.mempool.prepare(proposal, cast_vote)

    def _request_sync(self, block_id: int, holder: int) -> None:
        """Ask ``holder`` (who extended the block) to retransmit it.

        Chain sync: broadcast delivers proposals exactly once, so a
        dropped copy would otherwise leave this replica parked on an
        orphan forever. Requests repeat on a view-timeout cadence against
        rotating holders until the block arrives.
        """
        if block_id in self.proposals or self.host.behavior.silent:
            return
        if block_id in self._sync_requested or block_id in self._orphaned:
            return
        self._sync_requested.add(block_id)
        if holder == self.node_id:
            # A respawned replica walking back through its lost chain
            # hits blocks it proposed in a previous incarnation; asking
            # itself wastes a whole retry round per ancestor and turns
            # catch-up from O(RTT) into O(view_timeout) per block.
            holder = self._next_sync_holder(holder)
        self._send_sync_round(block_id, holder, rounds_left=10)

    def _next_sync_holder(self, holder: int) -> int:
        """Next replica to ask for a retransmission — never ourselves."""
        leaders = self.host.leader_set
        index = leaders.index(holder) if holder in leaders else -1
        for step in range(1, len(leaders) + 1):
            candidate = leaders[(index + step) % len(leaders)]
            if candidate != self.node_id:
                return candidate
        return holder

    def _send_sync_round(
        self, block_id: int, holder: int, rounds_left: int
    ) -> None:
        if (block_id in self.proposals or block_id in self._orphaned
                or rounds_left <= 0):
            self._sync_requested.discard(block_id)
            return
        self.send(holder, MessageKinds.SYNC_REQUEST, sizes.FETCH_REQUEST,
                  block_id)
        self.host.sim.schedule(
            self.config.view_timeout,
            lambda: self._send_sync_round(
                block_id, self._next_sync_holder(holder), rounds_left - 1
            ),
        )

    def _serve_sync(self, requester: int, block_id: int) -> None:
        proposal = self.proposals.get(block_id)
        if proposal is None or self.host.behavior.silent:
            return
        self.send(requester, MessageKinds.PROPOSAL, proposal.size_bytes,
                  proposal)

    def _release_dependents(self, proposal: Proposal) -> None:
        """Process work that was blocked on this proposal's arrival."""
        deferred = self._deferred_propose.pop(proposal.block_id, None)
        if deferred is not None:
            view, justify = deferred
            if view >= self.cur_view:
                self._enter_view(view)
                self._try_propose(view, justify)
        for orphan in self._orphans.pop(proposal.block_id, []):
            self._handle_proposal(orphan)

    def _handle_vote(
        self, block_id: int, view: int, signature: Signature
    ) -> None:
        key = (block_id, view)
        if key in self._qc_done:
            return
        votes = self._votes.setdefault(key, {})
        votes[signature.signer] = signature
        if len(votes) < self.config.consensus_quorum:
            return
        self._qc_done.add(key)
        qc = make_quorum_cert(
            block_id, view, list(votes.values()),
            self.config.consensus_quorum, self.config.n,
        )
        del self._votes[key]
        self._process_qc(qc)
        next_view = view + 1
        if (
            self.leader_of(next_view) == self.node_id
            and next_view >= self.cur_view
        ):
            self._enter_view(next_view)
            self._try_propose(next_view, qc)

    def _record_new_view(self, view: int, src: int, qc: QuorumCert) -> None:
        if not verify_quorum_cert(qc, self.config.consensus_quorum, self.config.n):
            return
        self._process_qc(qc)
        if view > self._view_claims.get(src, 0):
            self._view_claims[src] = view
            self._maybe_catch_up()
        if self.leader_of(view) != self.node_id or view in self._proposed_views:
            return
        entries = self._new_views.setdefault(view, {})
        entries[src] = qc
        if len(entries) >= self.config.consensus_quorum:
            best = max(entries.values(), key=lambda cert: cert.view)
            self._enter_view(view)
            if self.cur_view == view:
                self._try_propose(view, best)

    def _maybe_catch_up(self) -> None:
        """Jump forward once f + 1 peers have announced a higher view."""
        needed = self.config.n - self.config.consensus_quorum + 1
        claims = sorted(self._view_claims.values(), reverse=True)
        if len(claims) < needed:
            return
        target = claims[needed - 1]
        if target > self.cur_view:
            self._enter_view(target)

    # -- chain logic -------------------------------------------------------

    def _process_qc(self, qc: QuorumCert) -> None:
        if qc.view > self.high_qc.view:
            self.high_qc = qc
        certified = self.proposals.get(qc.block_id)
        if certified is None or certified.block_id == GENESIS_ID:
            return
        parent = self.proposals.get(certified.parent_id)
        if parent is None:
            return
        # Two-chain lock: certified extends its parent by one view.
        if certified.view == parent.view + 1 and parent.view > self.locked_view:
            self.locked_view = parent.view
        # Three-chain commit: consecutive views b0 <- b1 <- b2 (=certified).
        grandparent = self.proposals.get(parent.parent_id)
        if grandparent is None:
            return
        consecutive = (
            certified.view == parent.view + 1
            and parent.view == grandparent.view + 1
        )
        if consecutive and grandparent.block_id not in self.committed:
            self._commit_chain(grandparent)

    def _commit_chain(self, tip: Proposal) -> None:
        chain: list[Proposal] = []
        cursor: Optional[Proposal] = tip
        while cursor is not None and cursor.block_id not in self.committed:
            chain.append(cursor)
            cursor = self.proposals.get(cursor.parent_id)
        for proposal in reversed(chain):
            self.committed.add(proposal.block_id)
            self.committed_height = max(self.committed_height, proposal.height)
            self._unresolved.pop(proposal.block_id, None)
            self.host.trace(
                "commit", block=proposal.block_id, height=proposal.height,
            )
            self.handle_commit(proposal)
        self._sweep_abandoned()

    def _sweep_abandoned(self) -> None:
        """Notify the mempool of forks ruled out by the latest commit.

        Only unresolved proposals (neither committed nor abandoned) are
        scanned; each is visited at most once across the whole run. The
        walk preserves proposal insertion order, exactly like the full
        store scan it replaces, so ``on_abandoned`` ordering — and with
        it the event schedule — is unchanged.
        """
        abandoned = [
            proposal for proposal in self._unresolved.values()
            if proposal.height <= self.committed_height
        ]
        for proposal in abandoned:
            del self._unresolved[proposal.block_id]
            self._abandoned.add(proposal.block_id)
            self.mempool.on_abandoned(proposal)
