"""Shared consensus-engine interface and helpers."""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.sim.interfaces import Channel, Envelope
from repro.types.proposal import Proposal

if TYPE_CHECKING:  # pragma: no cover
    from repro.mempool.base import Mempool
    from repro.replica.node import Replica


class ConsensusEngine(abc.ABC):
    """One replica's consensus endpoint.

    The engine drives views/epochs, asks the mempool for payloads when
    this replica leads, gates votes through :meth:`Mempool.prepare`, and
    reports commits back through :meth:`Mempool.on_commit`.
    """

    name = "abstract"

    def __init__(
        self,
        host: "Replica",
        mempool: "Mempool",
        config: ProtocolConfig,
    ) -> None:
        self.host = host
        self.mempool = mempool
        self.config = config

    @abc.abstractmethod
    def start(self) -> None:
        """Begin participating (enter the first view/epoch)."""

    @abc.abstractmethod
    def on_message(self, envelope: Envelope) -> None:
        """Handle a consensus message."""

    @abc.abstractmethod
    def current_leader(self) -> int:
        """Leader of the current view/epoch (used by attackers too)."""

    def suspend(self) -> None:
        """Freeze local timers; the replica crashed.

        Message delivery is already cut off by the network's down state;
        this hook only stops the engine's self-scheduled clocks (view
        timers, epoch clocks, proposal pumps) so a dead replica neither
        records view-changes nor proposes into the void."""

    def resume(self) -> None:
        """Re-arm the timers cancelled by :meth:`suspend` (restart).

        The engine rejoins at its pre-crash view/epoch; catching up to the
        rest of the network happens through ordinary message handling
        (newer proposals, chain sync)."""

    def rebase_block_ids(self, base: int) -> None:
        """Start this replica's local block counter at ``base``.

        Live crash/restart support, mirroring
        :meth:`repro.mempool.base.Mempool.rebase_microblock_ids`: a
        respawned interpreter forgets how many blocks its predecessor
        minted, and ``(proposer, counter)`` block ids must stay unique
        across incarnations — peers silently drop a proposal whose id they
        have already accepted, so a colliding id wedges every view the
        respawned replica leads. Engines whose counter is protocol state
        rather than a local id (PBFT sequence numbers) override this as a
        no-op.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support block-id rebasing"
        )

    # -- helpers -----------------------------------------------------------

    @property
    def node_id(self) -> int:
        return self.host.node_id

    def leader_of(self, view: int) -> int:
        """Round-robin leader rotation over the configured leader set."""
        leaders = self.host.leader_set
        return leaders[view % len(leaders)]

    def send(self, dst: int, kind: str, size_bytes: float, payload: object) -> None:
        self.host.network.send(
            self.node_id, dst, kind, size_bytes, payload, Channel.CONSENSUS
        )

    def broadcast(self, kind: str, size_bytes: float, payload: object) -> None:
        self.host.network.broadcast(
            self.node_id, kind, size_bytes, payload, Channel.CONSENSUS
        )

    def handle_commit(self, proposal: Proposal) -> None:
        """Common commit path: notify mempool (metrics + GC + execution).

        The observer tap fires at the *consensus* commit, before the
        mempool resolves missing bodies — the moment the safety and
        availability oracles reason about.
        """
        self.host.notify_commit(proposal)
        self.mempool.on_commit(proposal, self.host.sim.now)
