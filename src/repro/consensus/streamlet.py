"""Streamlet (Chan & Shi, AFT 2020): epoch-based textbook consensus.

Epochs of fixed duration advance by (synchronized) local clocks. The
epoch's leader proposes a block extending the tip of a longest notarized
chain; every replica broadcasts its vote to everyone (the all-to-all
pattern that gives Streamlet its ``O(n^2)`` vote complexity); a block is
*notarized* at ``2f + 1`` votes; three notarized blocks in consecutive
epochs finalize the middle one and its prefix.

With a native mempool this is N-SL; with Stratus it is S-SL.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.consensus.base import ConsensusEngine
from repro.crypto import (
    GENESIS_QC,
    QuorumCert,
    Signature,
    verify_quorum_cert,
    vote_signature,
)
from repro.mempool.base import MessageKinds
from repro.sim.network import Envelope
from repro.types import sizes
from repro.types.proposal import Payload, Proposal, make_block_id

if TYPE_CHECKING:  # pragma: no cover
    from repro.mempool.base import Mempool
    from repro.replica.node import Replica

GENESIS_ID = 0


class Streamlet(ConsensusEngine):
    """Streamlet engine for one replica."""

    name = "streamlet"

    def __init__(
        self, host: "Replica", mempool: "Mempool", config: ProtocolConfig
    ) -> None:
        super().__init__(host, mempool, config)
        genesis = Proposal(
            block_id=GENESIS_ID, view=0, height=0, proposer=-1,
            parent_id=GENESIS_ID, justify=GENESIS_QC, payload=Payload(),
        )
        self.proposals: dict[int, Proposal] = {GENESIS_ID: genesis}
        self.epoch = 0
        self.notarized: set[int] = {GENESIS_ID}
        self.finalized: set[int] = {GENESIS_ID}
        self._finalized_height = 0
        self._votes: dict[int, set[int]] = {}
        self._voted_epochs: set[int] = set()
        self._abandoned: set[int] = set()
        # Proposals neither finalized nor abandoned yet, in insertion
        # order — same incremental sweep structure as HotStuff's.
        self._unresolved: dict[int, Proposal] = {}
        self._block_counter = 0
        self._epoch_timer = None
        # Proposals whose parent has not arrived yet (lost or still in
        # flight) park here; chain sync asks for a retransmission so one
        # dropped proposal cannot hide the rest of the chain forever.
        self._orphans: dict[int, list[Proposal]] = {}
        # Block ids sitting in ``_orphans`` — already received, only
        # waiting on ancestry, so sync must not re-request them.
        self._orphaned: set[int] = set()
        self._sync_requested: set[int] = set()
        # Notarization certificates, piggybacked on proposals through the
        # ``justify`` field (implicit echoing): a replica whose vote copies
        # were lost still learns the parent is notarized from any child
        # extending it, so vote loss cannot split the notarized views.
        self._certs: dict[int, QuorumCert] = {GENESIS_ID: GENESIS_QC}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._next_epoch()

    def current_leader(self) -> int:
        return self.leader_of(max(self.epoch, 1))

    def suspend(self) -> None:
        if self._epoch_timer is not None:
            self._epoch_timer.cancel()
            self._epoch_timer = None

    def resume(self) -> None:
        # Epochs advance by synchronized local clocks, so a restarted
        # replica rejoins at the wall-clock epoch, not where it left off.
        period = self.config.streamlet_epoch
        now = self.host.sim.now
        self.epoch = max(self.epoch, int(now / period) + 1)
        self._epoch_timer = self.host.sim.schedule_at(
            max(self.epoch * period, now), self._next_epoch
        )

    def rebase_block_ids(self, base: int) -> None:
        if self._block_counter:
            raise RuntimeError("cannot rebase after proposing blocks")
        self._block_counter = base

    # -- epochs ------------------------------------------------------------

    def _next_epoch(self) -> None:
        self.epoch += 1
        self._epoch_timer = self.host.sim.schedule(
            self.config.streamlet_epoch, self._next_epoch
        )
        if (
            self.leader_of(self.epoch) == self.node_id
            and not self.host.behavior.silent
        ):
            self._propose(self.epoch)

    def _propose(self, epoch: int) -> None:
        tip = self._longest_notarized_tip()
        payload = self.mempool.make_payload()
        proposal = Proposal(
            block_id=make_block_id(self.node_id, self._block_counter),
            view=epoch,
            height=tip.height + 1,
            proposer=self.node_id,
            parent_id=tip.block_id,
            justify=self._certs.get(tip.block_id, GENESIS_QC),
            payload=payload,
            created_at=self.host.sim.now,
        )
        self._block_counter += 1
        self.broadcast(MessageKinds.PROPOSAL, proposal.size_bytes, proposal)
        self._handle_proposal(proposal)

    def _longest_notarized_tip(self) -> Proposal:
        tip = self.proposals[GENESIS_ID]
        for block_id in self.notarized:
            proposal = self.proposals[block_id]
            if (proposal.height, proposal.view) > (tip.height, tip.view):
                tip = proposal
        return tip

    # -- message handling ----------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        kind = envelope.kind
        if kind == MessageKinds.PROPOSAL:
            self._handle_proposal(envelope.payload)
        elif kind == MessageKinds.VOTE:
            block_id, signature = envelope.payload
            self._handle_vote(block_id, signature)
        elif kind == MessageKinds.SYNC_REQUEST:
            self._serve_sync(envelope.src, envelope.payload)

    def _handle_proposal(self, proposal: Proposal) -> None:
        if proposal.block_id in self.proposals:
            return
        parent = self.proposals.get(proposal.parent_id)
        if parent is None:
            # Parent lost or still in flight: park and ask the proposer
            # (who must hold the whole ancestry it extended) for a
            # retransmission, else this hole hides all descendants.
            self._orphans.setdefault(proposal.parent_id, []).append(proposal)
            self._orphaned.add(proposal.block_id)
            self._request_sync(proposal.parent_id, proposal.proposer)
            return
        self._orphaned.discard(proposal.block_id)
        self.proposals[proposal.block_id] = proposal
        self._unresolved[proposal.block_id] = proposal
        self._adopt_cert(proposal.justify)
        self._release_orphans(proposal)
        # Votes can outrun the proposal under loss-induced reordering;
        # a quorum that already accumulated notarizes immediately.
        self._try_notarize(proposal.block_id)
        if self.host.behavior.silent:
            return
        if proposal.view != self.epoch or proposal.view in self._voted_epochs:
            return
        if proposal.proposer != self.leader_of(proposal.view):
            return
        # Streamlet voting rule: the proposal must extend a longest
        # notarized chain the voter has seen.
        longest = self._longest_notarized_tip()
        if parent.block_id not in self.notarized and parent.block_id != GENESIS_ID:
            return
        if parent.height < longest.height:
            return
        if not self.mempool.verify_payload(proposal.payload):
            return
        self._voted_epochs.add(proposal.view)

        def cast_vote() -> None:
            signature = vote_signature(
                self.node_id, proposal.block_id, proposal.view
            )
            self.broadcast(
                MessageKinds.VOTE, sizes.VOTE, (proposal.block_id, signature)
            )
            self._handle_vote(proposal.block_id, signature)

        self.mempool.prepare(proposal, cast_vote)

    def _handle_vote(self, block_id: int, signature: Signature) -> None:
        if signature.forged or block_id in self.notarized:
            return
        voters = self._votes.setdefault(block_id, set())
        voters.add(signature.signer)
        self._try_notarize(block_id)

    def _try_notarize(self, block_id: int) -> None:
        """Notarize once both the quorum and the proposal body are here."""
        if block_id in self.notarized:
            return
        voters = self._votes.get(block_id)
        if voters is None or len(voters) < self.config.consensus_quorum:
            return
        if block_id not in self.proposals:
            return
        proposal = self.proposals[block_id]
        self.notarized.add(block_id)
        self._certs[block_id] = QuorumCert(
            block_id=block_id, view=proposal.view,
            signers=tuple(sorted(voters)),
        )
        self._votes.pop(block_id, None)
        self._check_finalization(proposal)

    def _adopt_cert(self, qc: QuorumCert) -> None:
        """Notarize from a piggybacked certificate instead of votes."""
        if qc.block_id == GENESIS_ID or qc.block_id in self.notarized:
            return
        if qc.block_id not in self.proposals:
            return
        if not verify_quorum_cert(
            qc, self.config.consensus_quorum, self.config.n
        ):
            return
        self._certs[qc.block_id] = qc
        self.notarized.add(qc.block_id)
        self._votes.pop(qc.block_id, None)
        self._check_finalization(self.proposals[qc.block_id])

    # -- chain sync ----------------------------------------------------

    def _release_orphans(self, proposal: Proposal) -> None:
        for orphan in self._orphans.pop(proposal.block_id, []):
            self._handle_proposal(orphan)

    def _request_sync(self, block_id: int, holder: int) -> None:
        """Ask ``holder`` to retransmit a missing ancestor.

        Requests repeat on an epoch cadence against rotating holders
        until the block arrives, bounding the damage of one lost or
        crashed holder.
        """
        if block_id in self.proposals or self.host.behavior.silent:
            return
        if block_id in self._sync_requested or block_id in self._orphaned:
            return
        self._sync_requested.add(block_id)
        if holder == self.node_id:
            # Never ask ourselves (a respawned replica's own pre-crash
            # blocks name it as proposer): it stalls catch-up for a full
            # retry round per ancestor.
            holder = self._next_sync_holder(holder)
        self._send_sync_round(block_id, holder, rounds_left=10)

    def _next_sync_holder(self, holder: int) -> int:
        """Next replica to ask for a retransmission — never ourselves."""
        leaders = self.host.leader_set
        index = leaders.index(holder) if holder in leaders else -1
        for step in range(1, len(leaders) + 1):
            candidate = leaders[(index + step) % len(leaders)]
            if candidate != self.node_id:
                return candidate
        return holder

    def _send_sync_round(
        self, block_id: int, holder: int, rounds_left: int
    ) -> None:
        if (block_id in self.proposals or block_id in self._orphaned
                or rounds_left <= 0):
            self._sync_requested.discard(block_id)
            return
        self.send(holder, MessageKinds.SYNC_REQUEST, sizes.FETCH_REQUEST,
                  block_id)
        self.host.sim.schedule(
            self.config.streamlet_epoch,
            lambda: self._send_sync_round(
                block_id, self._next_sync_holder(holder), rounds_left - 1
            ),
        )

    def _serve_sync(self, requester: int, block_id: int) -> None:
        proposal = self.proposals.get(block_id)
        if proposal is None or self.host.behavior.silent:
            return
        self.send(requester, MessageKinds.PROPOSAL, proposal.size_bytes,
                  proposal)

    # -- finalization --------------------------------------------------

    def _check_finalization(self, newest: Proposal) -> None:
        """Three adjacent-epoch notarized blocks finalize the middle one."""
        middle = self.proposals.get(newest.parent_id)
        if middle is None or middle.block_id == GENESIS_ID:
            return
        oldest = self.proposals.get(middle.parent_id)
        if oldest is None:
            return
        # Genesis sits at epoch 0, so it participates in the adjacency
        # check like any other block (epochs 0,1,2 form a valid 3-chain).
        adjacent = (
            newest.view == middle.view + 1
            and middle.view == oldest.view + 1
        )
        if not adjacent:
            return
        if middle.block_id not in self.notarized:
            return
        if oldest.block_id != GENESIS_ID and oldest.block_id not in self.notarized:
            return
        if middle.block_id not in self.finalized:
            self._finalize_chain(middle)

    def _finalize_chain(self, tip: Proposal) -> None:
        chain: list[Proposal] = []
        cursor: Optional[Proposal] = tip
        while cursor is not None and cursor.block_id not in self.finalized:
            chain.append(cursor)
            cursor = self.proposals.get(cursor.parent_id)
        for proposal in reversed(chain):
            self.finalized.add(proposal.block_id)
            self._finalized_height = max(
                self._finalized_height, proposal.height
            )
            self._unresolved.pop(proposal.block_id, None)
            self.handle_commit(proposal)
        self._sweep_abandoned()

    def _sweep_abandoned(self) -> None:
        abandoned = [
            proposal for proposal in self._unresolved.values()
            if proposal.height <= self._finalized_height
        ]
        for proposal in abandoned:
            del self._unresolved[proposal.block_id]
            self._abandoned.add(proposal.block_id)
            self.mempool.on_abandoned(proposal)
