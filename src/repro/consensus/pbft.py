"""PBFT normal-case protocol (pre-prepare / prepare / commit).

Used by the Appendix-A benches to cross-check the analytic throughput
model: the fixed leader broadcasts full proposals (pre-prepare), and all
replicas exchange all-to-all prepare and commit votes — ``O(n^2)``
message complexity per slot. Instances are pipelined up to a
configurable window. View changes are out of scope (the analysis and the
benches that use PBFT are normal-case only).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.consensus.base import ConsensusEngine
from repro.crypto import GENESIS_QC
from repro.mempool.base import MessageKinds
from repro.sim.network import Envelope
from repro.types import sizes
from repro.types.proposal import Proposal, make_block_id

if TYPE_CHECKING:  # pragma: no cover
    from repro.mempool.base import Mempool
    from repro.replica.node import Replica


class _SlotState:
    """Prepare/commit vote accumulation for one sequence number."""

    __slots__ = (
        "proposal", "prepares", "commits",
        "prepare_sent", "prepared", "committed",
    )

    def __init__(self) -> None:
        self.proposal = None
        self.prepares: set[int] = set()
        self.commits: set[int] = set()
        self.prepare_sent = False
        self.prepared = False
        self.committed = False


class Pbft(ConsensusEngine):
    """PBFT engine for one replica (normal case, pipelined window)."""

    name = "pbft"

    def __init__(
        self, host: "Replica", mempool: "Mempool", config: ProtocolConfig
    ) -> None:
        super().__init__(host, mempool, config)
        self._slots: dict[int, _SlotState] = {}
        self._next_seq = 0
        self._last_committed = -1
        self._pump_scheduled = False
        self._retransmit_timer = None

    def start(self) -> None:
        if self.current_leader() == self.node_id:
            self._pump()
            self._arm_retransmit()

    def current_leader(self) -> int:
        return self.leader_of(0)

    def suspend(self) -> None:
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None

    def resume(self) -> None:
        # The pump chain dies while the replica is silent (crashed); the
        # leader must restart it or the pipeline stalls forever.
        if self.current_leader() == self.node_id:
            self._pump()
            self._arm_retransmit()

    def rebase_block_ids(self, base: int) -> None:
        # PBFT block ids embed the sequence number — protocol state, not
        # a locally-minted counter. Offsetting them would skip slots, so
        # respawn id-disambiguation is a no-op here (a respawned leader
        # re-proposing committed slots is rejected by the seq window).
        pass

    # -- leader ----------------------------------------------------------

    def _pump(self) -> None:
        """Propose while the pipeline window has room and data is pending."""
        self._pump_scheduled = False
        if self.host.behavior.silent:
            return
        while self._next_seq - self._last_committed <= self.config.pbft_window:
            payload = self.mempool.make_payload()
            if payload.is_empty:
                break
            seq = self._next_seq
            self._next_seq += 1
            proposal = Proposal(
                block_id=make_block_id(self.node_id, seq),
                view=0,
                height=seq + 1,  # heights are 1-based (genesis is 0)
                proposer=self.node_id,
                parent_id=0,
                justify=GENESIS_QC,
                payload=payload,
                created_at=self.host.sim.now,
            )
            self.broadcast(
                MessageKinds.PROPOSAL, proposal.size_bytes, (seq, proposal)
            )
            self._on_pre_prepare(seq, proposal)
        self._schedule_pump()

    def _schedule_pump(self) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        self.host.sim.schedule(self.config.empty_view_delay, self._pump)

    def _arm_retransmit(self) -> None:
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
        self._retransmit_timer = self.host.sim.schedule(
            self.config.view_timeout, self._retransmit
        )

    def _retransmit(self) -> None:
        """Rebroadcast pre-prepares for slots stuck in the window.

        The normal case has no view change, so a pre-prepare or vote lost
        to a partition would jam the pipelined window forever: the window
        check ``_next_seq - _last_committed <= pbft_window`` never opens
        again. The leader periodically re-broadcasts every uncommitted
        in-window proposal; replicas answer duplicates by re-sending their
        own votes (see :meth:`_on_pre_prepare`), repairing the quorums.
        """
        self._retransmit_timer = None
        if self.host.behavior.silent:
            return
        for seq in range(self._last_committed + 1, self._next_seq):
            slot = self._slots.get(seq)
            if slot is None or slot.committed or slot.proposal is None:
                continue
            self.broadcast(
                MessageKinds.PROPOSAL, slot.proposal.size_bytes,
                (seq, slot.proposal),
            )
            self._resend_votes(seq, slot)
        self._arm_retransmit()

    def _resend_votes(self, seq: int, slot: _SlotState) -> None:
        if slot.prepare_sent:
            self.broadcast(
                MessageKinds.PBFT_PREPARE, sizes.VOTE, (seq, self.node_id)
            )
        if slot.prepared:
            self.broadcast(
                MessageKinds.PBFT_COMMIT, sizes.VOTE, (seq, self.node_id)
            )

    # -- message handling ----------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        kind = envelope.kind
        if kind == MessageKinds.PROPOSAL:
            seq, proposal = envelope.payload
            self._on_pre_prepare(seq, proposal)
        elif kind == MessageKinds.PBFT_PREPARE:
            seq, voter = envelope.payload
            self._on_prepare(seq, voter)
        elif kind == MessageKinds.PBFT_COMMIT:
            seq, voter = envelope.payload
            self._on_commit_vote(seq, voter)

    def _slot(self, seq: int) -> _SlotState:
        if seq not in self._slots:
            self._slots[seq] = _SlotState()
        return self._slots[seq]

    def _on_pre_prepare(self, seq: int, proposal: Proposal) -> None:
        slot = self._slot(seq)
        if slot.proposal is not None:
            # Leader retransmission: our earlier votes may be the ones
            # that were lost, so answer the duplicate by re-sending them.
            if not slot.committed and not self.host.behavior.silent:
                self._resend_votes(seq, slot)
            return
        if not self.mempool.verify_payload(proposal.payload):
            return
        slot.proposal = proposal
        if self.host.behavior.silent:
            return

        def send_prepare() -> None:
            slot.prepare_sent = True
            self.broadcast(
                MessageKinds.PBFT_PREPARE, sizes.VOTE, (seq, self.node_id)
            )
            self._on_prepare(seq, self.node_id)

        self.mempool.prepare(proposal, send_prepare)

    def _on_prepare(self, seq: int, voter: int) -> None:
        slot = self._slot(seq)
        slot.prepares.add(voter)
        if (
            slot.prepared
            or slot.proposal is None
            or len(slot.prepares) < self.config.consensus_quorum
            or self.host.behavior.silent
        ):
            return
        slot.prepared = True
        self.broadcast(
            MessageKinds.PBFT_COMMIT, sizes.VOTE, (seq, self.node_id)
        )
        self._on_commit_vote(seq, self.node_id)

    def _on_commit_vote(self, seq: int, voter: int) -> None:
        slot = self._slot(seq)
        slot.commits.add(voter)
        if (
            slot.committed
            or slot.proposal is None
            or len(slot.commits) < self.config.consensus_quorum
        ):
            return
        slot.committed = True
        self._last_committed = max(self._last_committed, seq)
        self.handle_commit(slot.proposal)
        if self.current_leader() == self.node_id:
            self._pump()
