"""Client workload generation: arrival processes and replica selection."""

from repro.workload.zipf import ZipfSelector, UniformSelector, zipf_weights
from repro.workload.generator import WorkloadGenerator

__all__ = [
    "WorkloadGenerator",
    "ZipfSelector",
    "UniformSelector",
    "zipf_weights",
]
