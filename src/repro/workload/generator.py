"""Open-loop client workload generator.

Clients submit fixed-size transactions at a configured aggregate rate;
each replica receives the share assigned by the selector (uniform or
Zipfian). Generation is tick-based: every ``tick`` seconds the generator
hands each replica one :class:`~repro.types.batch.TxBatch` covering the
transactions that arrived during the tick, carrying fractional remainders
forward so the long-run rate is exact and deterministic.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

from repro.sim.interfaces import Scheduler, TimerHandle
from repro.types import TxBatch


class _Selector(Protocol):  # pragma: no cover - typing helper
    def shares(self) -> list[float]: ...


class _Receiver(Protocol):  # pragma: no cover - typing helper
    def on_client_batch(self, batch: TxBatch) -> None: ...


class WorkloadGenerator:
    """Drives client transactions into replicas at a target rate."""

    def __init__(
        self,
        sim: Scheduler,
        replicas: Sequence[_Receiver],
        rate_tps: float,
        tx_payload: int,
        selector: _Selector,
        tick: float = 0.01,
    ) -> None:
        if rate_tps < 0:
            raise ValueError(f"rate must be >= 0, got {rate_tps}")
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        shares = selector.shares()
        if len(shares) != len(replicas):
            raise ValueError(
                f"selector covers {len(shares)} replicas, "
                f"but {len(replicas)} are registered"
            )
        self._sim = sim
        self._replicas = list(replicas)
        self._rate = rate_tps
        self._payload = tx_payload
        self._shares = shares
        self._tick = tick
        self._carry = [0.0] * len(replicas)
        self._emitted = 0
        self._timer: Optional[TimerHandle] = None
        self._stopped = False

    @property
    def emitted_tx_count(self) -> int:
        return self._emitted

    def start(self) -> None:
        if self._timer is not None:
            raise RuntimeError("generator already started")
        self._timer = self._sim.schedule(self._tick, self._on_tick)

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()

    def _on_tick(self) -> None:
        if self._stopped:
            return
        now = self._sim.now
        for index, replica in enumerate(self._replicas):
            self._carry[index] += self._rate * self._shares[index] * self._tick
            count = int(self._carry[index])
            if count <= 0:
                continue
            self._carry[index] -= count
            self._emitted += count
            batch = TxBatch(
                count=count,
                payload_bytes=self._payload,
                mean_arrival=now - self._tick / 2.0,
            )
            replica.on_client_batch(batch)
        self._timer = self._sim.schedule(self._tick, self._on_tick)
