"""Open-loop client workload generator.

Clients submit fixed-size transactions at a configured aggregate rate;
each replica receives the share assigned by the selector (uniform or
Zipfian). Two generation modes produce *identical* arrival sequences:

**ticks** (default) — every ``tick`` seconds the generator hands each
replica one :class:`~repro.types.batch.TxBatch` covering the
transactions that arrived during the tick, carrying fractional
remainders forward so the long-run rate is exact and deterministic.

**aggregate** — no per-tick events at all. Each replica gets an
:class:`ArrivalStream` that replays the same tick arithmetic lazily:
the stream wakes only at ticks that change its batcher's behavior
(the tick that arms the flush timer, the tick that fills a microblock)
and digests the backlog in bulk, and the batcher pulls the remaining
backlog just before its flush timer fires. Identical floats, identical
delivery times, identical commit hashes — but the event count scales
with *microblocks emitted* rather than with ticks, so an offered load
standing in for a million clients costs no more to simulate than a
small one. Requires every replica's mempool to expose a
:class:`~repro.mempool.batching.MicroBlockBatcher`.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

from repro.sim.interfaces import Scheduler, TimerHandle
from repro.types import TxBatch

WORKLOAD_MODES = ("ticks", "aggregate")


class _Selector(Protocol):  # pragma: no cover - typing helper
    def shares(self) -> list[float]: ...


class _Receiver(Protocol):  # pragma: no cover - typing helper
    def on_client_batch(self, batch: TxBatch) -> None: ...


class ArrivalStream:
    """Lazily-replayed tick sequence for one replica (aggregate mode).

    The stream mirrors the tick loop's state — the fractional carry and
    the next tick's timestamp (accumulated ``t + tick`` exactly like the
    tick timer chain, so the floats match bit for bit) — and *digests*
    ticks on demand: each digested tick runs the same carry recurrence
    and hands the replica the same :class:`TxBatch` the tick mode would
    have, just later in wall-clock order and within one event.

    Digestion points are chosen so the batcher can't tell the difference:

    * a *wake* fires exactly at the next tick that changes batcher
      behavior — the tick that takes pending from zero (arming the flush
      timer at the tick-true time) or the tick that fills a microblock
      (emitting at the tick-true time);
    * the batcher itself pulls ticks strictly before its flush deadline
      (:meth:`settle_before`) so a partial flush covers the same
      transactions it would have covered under per-tick delivery;
    * crash/restart hooks digest the boundary exactly: ticks before the
      crash instant were delivered while the replica was up, ticks in
      the outage window are digested without delivery (clients lose
      them, as the tick mode's gated ``on_client_batch`` does).
    """

    __slots__ = (
        "_sim", "_replica", "_per_tick", "_payload", "_tick", "_carry",
        "_next_tick", "_emitted", "_timer", "_stopped", "_batcher",
    )

    def __init__(
        self,
        sim: Scheduler,
        replica: _Receiver,
        per_tick_txs: float,
        tx_payload: int,
        tick: float,
        first_tick: float,
    ) -> None:
        self._sim = sim
        self._replica = replica
        self._per_tick = per_tick_txs
        self._payload = tx_payload
        self._tick = tick
        self._carry = 0.0
        self._next_tick = first_tick
        self._emitted = 0
        self._timer: Optional[TimerHandle] = None
        self._stopped = False
        self._batcher = None

    def bind(self, batcher) -> None:
        """Called by ``MicroBlockBatcher.attach_arrivals`` (back-pointer)."""
        self._batcher = batcher

    # -- digestion -------------------------------------------------------

    def _advance(self, limit: float, inclusive: bool, deliver: bool) -> None:
        """Digest ticks with time < ``limit`` (<= when ``inclusive``)."""
        next_tick = self._next_tick
        carry = self._carry
        per_tick = self._per_tick
        tick = self._tick
        payload = self._payload
        replica = self._replica
        emitted = 0
        while next_tick <= limit if inclusive else next_tick < limit:
            carry += per_tick
            count = int(carry)
            if count > 0:
                carry -= count
                emitted += count
                if deliver:
                    replica.on_client_batch(TxBatch(
                        count=count,
                        payload_bytes=payload,
                        mean_arrival=next_tick - tick / 2.0,
                    ))
            next_tick += tick
        self._next_tick = next_tick
        self._carry = carry
        self._emitted += emitted

    def settle_before(self, time: float) -> None:
        """Deliver ticks strictly before ``time`` (flush-pull path)."""
        self._advance(time, False, True)

    def settle_through(self, time: float) -> None:
        """Deliver ticks up to and including ``time`` (wake path)."""
        self._advance(time, True, True)

    # -- lifecycle hooks (forwarded by the batcher) ----------------------

    def on_crash(self) -> None:
        """The replica is about to crash: ticks before this instant
        reached it while it was still up; digest them now, before the
        gate closes. The tick at exactly the crash time is *not*
        digested — the injector's crash event precedes it, so the tick
        mode drops it too."""
        self._advance(self._sim.now, False, True)

    def on_restart(self) -> None:
        """The replica restarted: the outage window's ticks were lost
        (a dead server accepts nothing), so digest them without
        delivery, then resume waking against the live batcher state."""
        self._advance(self._sim.now, False, False)
        self.reschedule()

    def stop(self) -> None:
        self._stopped = True
        self._advance(self._sim.now, False, True)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- wake scheduling -------------------------------------------------

    def _wake(self) -> None:
        self._timer = None
        if self._stopped:
            return
        self._advance(self._sim.now, True, True)
        self.reschedule()

    def reschedule(self) -> None:
        """Arm a wake at the next tick that changes batcher behavior.

        Simulates the carry recurrence forward (without mutating it) to
        find the first tick that either arms the flush timer (pending
        leaves zero) or fills a microblock. While a flush is armed, the
        scan stops at the deadline: the flush itself pulls the backlog
        (``settle_before``) and calls back here afterwards.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._stopped or self._per_tick <= 0.0:
            return
        batcher = self._batcher
        full = batcher.capacity
        pending = batcher.pending_tx_count
        deadline = batcher.flush_deadline
        carry = self._carry
        t = self._next_tick
        tick = self._tick
        per_tick = self._per_tick
        while deadline is None or t < deadline:
            carry += per_tick
            count = int(carry)
            if count > 0:
                if deadline is None or pending + count >= full:
                    self._timer = self._sim.schedule_at(t, self._wake)
                    return
                carry -= count
                pending += count
            t += tick

    # -- accounting ------------------------------------------------------

    @property
    def emitted_tx_count(self) -> int:
        """Transactions offered so far (including undigested ticks).

        Replays the recurrence through ``now`` without mutating stream
        state, so mid-run reads match the tick mode's running counter.
        """
        if self._stopped:
            return self._emitted
        extra = 0
        carry = self._carry
        t = self._next_tick
        now = self._sim.now
        per_tick = self._per_tick
        tick = self._tick
        while t <= now:
            carry += per_tick
            count = int(carry)
            if count > 0:
                carry -= count
                extra += count
            t += tick
        return self._emitted + extra


class WorkloadGenerator:
    """Drives client transactions into replicas at a target rate."""

    def __init__(
        self,
        sim: Scheduler,
        replicas: Sequence[_Receiver],
        rate_tps: float,
        tx_payload: int,
        selector: _Selector,
        tick: float = 0.01,
        mode: str = "ticks",
        offered_clients: Optional[int] = None,
    ) -> None:
        if rate_tps < 0:
            raise ValueError(f"rate must be >= 0, got {rate_tps}")
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        if mode not in WORKLOAD_MODES:
            raise ValueError(
                f"mode must be one of {WORKLOAD_MODES}, got {mode!r}"
            )
        if offered_clients is not None and offered_clients <= 0:
            raise ValueError(
                f"offered_clients must be positive, got {offered_clients}"
            )
        shares = selector.shares()
        if len(shares) != len(replicas):
            raise ValueError(
                f"selector covers {len(shares)} replicas, "
                f"but {len(replicas)} are registered"
            )
        self._sim = sim
        self._replicas = list(replicas)
        self._rate = rate_tps
        self._payload = tx_payload
        self._shares = shares
        self._tick = tick
        self._mode = mode
        #: Size of the client population the offered rate stands for.
        #: Purely descriptive: arrivals are modeled in aggregate, which
        #: is exactly why a million offered clients cost no more to
        #: simulate than a hundred (see DESIGN.md "Simulator scale-out").
        self.offered_clients = offered_clients
        self._carry = [0.0] * len(replicas)
        self._emitted = 0
        self._timer: Optional[TimerHandle] = None
        self._streams: list[ArrivalStream] = []
        self._stopped = False

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def emitted_tx_count(self) -> int:
        if self._mode == "aggregate":
            return sum(s.emitted_tx_count for s in self._streams)
        return self._emitted

    def start(self) -> None:
        if self._timer is not None or self._streams:
            raise RuntimeError("generator already started")
        if self._mode == "aggregate":
            self._start_aggregate()
        else:
            self._timer = self._sim.schedule(self._tick, self._on_tick)

    def stop(self) -> None:
        self._stopped = True
        if self._timer is not None:
            self._timer.cancel()
        for stream in self._streams:
            stream.stop()

    # -- tick mode -------------------------------------------------------

    def _on_tick(self) -> None:
        if self._stopped:
            return
        now = self._sim.now
        for index, replica in enumerate(self._replicas):
            self._carry[index] += self._rate * self._shares[index] * self._tick
            count = int(self._carry[index])
            if count <= 0:
                continue
            self._carry[index] -= count
            self._emitted += count
            batch = TxBatch(
                count=count,
                payload_bytes=self._payload,
                mean_arrival=now - self._tick / 2.0,
            )
            replica.on_client_batch(batch)
        self._timer = self._sim.schedule(self._tick, self._on_tick)

    # -- aggregate mode --------------------------------------------------

    def _start_aggregate(self) -> None:
        first_tick = self._sim.now + self._tick
        for index, replica in enumerate(self._replicas):
            mempool = getattr(replica, "mempool", None)
            batcher = mempool.batcher if mempool is not None else None
            if batcher is None:
                raise ValueError(
                    "aggregate workload mode requires every replica's "
                    "mempool to expose a microblock batcher; "
                    f"replica {index} has none (use workload_mode='ticks')"
                )
            # The same per-tick expression the tick loop evaluates, so
            # the carry recurrence produces bit-identical floats.
            per_tick = self._rate * self._shares[index] * self._tick
            stream = ArrivalStream(
                self._sim, replica, per_tick, self._payload,
                self._tick, first_tick,
            )
            batcher.attach_arrivals(stream)
            self._streams.append(stream)
        for stream in self._streams:
            stream.reschedule()
