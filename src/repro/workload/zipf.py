"""Client-to-replica assignment distributions.

The paper's unbalanced-workload experiments use the Golang Zipf
generator (``math/rand.Zipf``) with parameters ``s`` (skew) and ``v``
(value offset): replica ``k`` receives load proportional to
``(v + k) ** -s``. ``Zipf1`` (s=1.01, v=1) is highly skewed — the first
replica absorbs a large share — while ``Zipf10`` (s=1.01, v=10) is
lightly skewed (Fig. 9).
"""

from __future__ import annotations


def zipf_weights(n: int, s: float, v: float) -> list[float]:
    """Unnormalized Golang-Zipf probabilities for ranks ``0..n-1``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if s <= 1.0:
        raise ValueError(f"Zipf requires s > 1, got {s}")
    if v < 1.0:
        raise ValueError(f"Zipf requires v >= 1, got {v}")
    return [(v + rank) ** (-s) for rank in range(n)]


class UniformSelector:
    """Every replica receives an equal share of the client load."""

    name = "uniform"

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n

    def shares(self) -> list[float]:
        return [1.0 / self.n] * self.n


class ZipfSelector:
    """Zipfian load shares across replicas (most-loaded first)."""

    name = "zipf"

    def __init__(self, n: int, s: float = 1.01, v: float = 1.0) -> None:
        self.n = n
        self.s = s
        self.v = v
        weights = zipf_weights(n, s, v)
        total = sum(weights)
        self._shares = [weight / total for weight in weights]

    def shares(self) -> list[float]:
        return list(self._shares)

    def share_of(self, rank: int) -> float:
        return self._shares[rank]
