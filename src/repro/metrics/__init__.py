"""Measurement collection: throughput, latency, bandwidth, view changes."""

from repro.metrics.collector import CommitRecord, FaultWindow, MetricsHub
from repro.metrics.digest import WeightedDigest, commit_sequence_hash

__all__ = [
    "MetricsHub",
    "CommitRecord",
    "FaultWindow",
    "WeightedDigest",
    "commit_sequence_hash",
]
