"""Run-wide metrics hub.

Commits are deduplicated by block id: the first (earliest simulated time)
correct replica to commit a block reports it, mirroring the server-side
measurement in the paper's benchmark. Throughput and latency queries take
a measurement window so warmup can be excluded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.metrics.digest import WeightedDigest
from repro.sim.engine import Simulator


@dataclass
class CommitRecord:
    """One committed block as observed by the first committing replica."""

    block_id: int
    commit_time: float
    tx_count: int
    microblock_count: int


class MetricsHub:
    """Aggregates commits, latencies, and protocol events for one run."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._commits: dict[int, CommitRecord] = {}
        self._latency = WeightedDigest()
        self._latency_samples: list[tuple[float, float, float]] = []
        self._view_changes: list[tuple[float, int, int]] = []
        self._stable_times = WeightedDigest()
        self._forwarded_microblocks = 0
        self._fetches = 0

    # -- recording ---------------------------------------------------------

    def record_commit(
        self,
        block_id: int,
        tx_count: int,
        microblock_count: int,
        latencies: list[tuple[float, float]],
        commit_time: Optional[float] = None,
    ) -> bool:
        """Record a block commit; returns False on duplicate block ids.

        ``latencies`` holds per-microblock ``(latency_seconds, tx_weight)``
        pairs computed against the commit time.
        """
        if block_id in self._commits:
            return False
        when = self._sim.now if commit_time is None else commit_time
        self._commits[block_id] = CommitRecord(
            block_id=block_id,
            commit_time=when,
            tx_count=tx_count,
            microblock_count=microblock_count,
        )
        for latency, weight in latencies:
            if weight > 0:
                self._latency.add(max(0.0, latency), weight)
                self._latency_samples.append((when, max(0.0, latency), weight))
        return True

    def record_view_change(self, replica: int, view: int) -> None:
        self._view_changes.append((self._sim.now, replica, view))

    def record_stable_time(self, seconds: float) -> None:
        self._stable_times.add(max(0.0, seconds))

    def record_forward(self) -> None:
        self._forwarded_microblocks += 1

    def record_fetch(self) -> None:
        self._fetches += 1

    # -- queries -----------------------------------------------------------

    @property
    def commits(self) -> list[CommitRecord]:
        return sorted(self._commits.values(), key=lambda rec: rec.commit_time)

    @property
    def committed_tx_total(self) -> int:
        return sum(rec.tx_count for rec in self._commits.values())

    @property
    def view_change_count(self) -> int:
        return len(self._view_changes)

    @property
    def forwarded_microblocks(self) -> int:
        return self._forwarded_microblocks

    @property
    def fetch_count(self) -> int:
        return self._fetches

    def throughput_tps(self, start: float, end: float) -> float:
        """Committed transactions per second over ``[start, end)``."""
        if end <= start:
            raise ValueError(f"bad window [{start}, {end})")
        txs = sum(
            rec.tx_count
            for rec in self._commits.values()
            if start <= rec.commit_time < end
        )
        return txs / (end - start)

    def throughput_series(
        self, start: float, end: float, bucket: float = 1.0
    ) -> list[tuple[float, float]]:
        """Time-bucketed throughput (for the Fig. 7 timeline)."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        buckets: dict[int, int] = {}
        for rec in self._commits.values():
            if start <= rec.commit_time < end:
                index = int((rec.commit_time - start) / bucket)
                buckets[index] = buckets.get(index, 0) + rec.tx_count
        count = int((end - start) / bucket + 0.5)
        return [
            (start + i * bucket, buckets.get(i, 0) / bucket)
            for i in range(count)
        ]

    def latency_stats(
        self, start: float = 0.0, end: float = float("inf")
    ) -> WeightedDigest:
        """Latency digest restricted to commits inside the window."""
        digest = WeightedDigest()
        for when, latency, weight in self._latency_samples:
            if start <= when < end:
                digest.add(latency, weight)
        return digest

    @property
    def latency(self) -> WeightedDigest:
        return self._latency

    @property
    def stable_times(self) -> WeightedDigest:
        return self._stable_times

    def view_changes_in(self, start: float, end: float) -> int:
        return sum(1 for when, _, _ in self._view_changes if start <= when < end)
