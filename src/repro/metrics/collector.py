"""Run-wide metrics hub.

Commits are deduplicated by block id: the first (earliest simulated time)
correct replica to commit a block reports it, mirroring the server-side
measurement in the paper's benchmark. Throughput and latency queries take
a measurement window so warmup can be excluded.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Optional

from repro.metrics.digest import WeightedDigest
from repro.sim.interfaces import Scheduler


@dataclass
class CommitRecord:
    """One committed block as observed by the first committing replica."""

    block_id: int
    commit_time: float
    tx_count: int
    microblock_count: int


@dataclass(frozen=True)
class FaultWindow:
    """One fault's active interval, for per-window recovery metrics.

    ``end`` is ``math.inf`` for faults never healed within the run (a
    crash without a restart); recovery gauges then report infinity,
    which the fault report renders as "never".
    """

    kind: str
    start: float
    end: float
    nodes: tuple[int, ...] = ()
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


class MetricsHub:
    """Aggregates commits, latencies, and protocol events for one run."""

    def __init__(self, sim: Scheduler) -> None:
        self._sim = sim
        self._commits: dict[int, CommitRecord] = {}
        # Commit-time order is maintained incrementally: commits arrive
        # in (almost always) nondecreasing simulated time, so the insort
        # is O(1) amortized and every windowed query below bisects
        # instead of re-sorting the full commit set.
        self._commit_times: list[float] = []
        self._commit_order: list[CommitRecord] = []
        self._tx_total = 0
        self._latency = WeightedDigest()
        self._latency_samples: list[tuple[float, float, float]] = []
        self._view_changes: list[tuple[float, int, int]] = []
        self._stable_times = WeightedDigest()
        self._forwarded_microblocks = 0
        self._fetches = 0
        self._fetches_abandoned = 0
        self._fault_windows: list[FaultWindow] = []
        self._recoveries: list[dict] = []

    # -- recording ---------------------------------------------------------

    def record_commit(
        self,
        block_id: int,
        tx_count: int,
        microblock_count: int,
        latencies: list[tuple[float, float]],
        commit_time: Optional[float] = None,
    ) -> bool:
        """Record a block commit; returns False on duplicate block ids.

        ``latencies`` holds per-microblock ``(latency_seconds, tx_weight)``
        pairs computed against the commit time.
        """
        if block_id in self._commits:
            return False
        when = self._sim.now if commit_time is None else commit_time
        record = CommitRecord(
            block_id=block_id,
            commit_time=when,
            tx_count=tx_count,
            microblock_count=microblock_count,
        )
        self._commits[block_id] = record
        if not self._commit_times or when >= self._commit_times[-1]:
            self._commit_times.append(when)
            self._commit_order.append(record)
        else:
            # Out-of-order commit time (explicit commit_time in the
            # past): insert right of equal keys to keep ties in arrival
            # order, matching the stable sort this replaces.
            index = bisect_right(self._commit_times, when)
            self._commit_times.insert(index, when)
            self._commit_order.insert(index, record)
        self._tx_total += tx_count
        for latency, weight in latencies:
            if weight > 0:
                self._latency.add(max(0.0, latency), weight)
                self._latency_samples.append((when, max(0.0, latency), weight))
        return True

    def record_view_change(self, replica: int, view: int) -> None:
        self._view_changes.append((self._sim.now, replica, view))

    def record_stable_time(self, seconds: float) -> None:
        self._stable_times.add(max(0.0, seconds))

    def record_forward(self) -> None:
        self._forwarded_microblocks += 1

    def record_fetch(self) -> None:
        self._fetches += 1

    def record_fetch_abandoned(self) -> None:
        """A fetch gave up after ``fetch_max_rounds`` retry rounds."""
        self._fetches_abandoned += 1

    def record_fault_window(self, window: FaultWindow) -> None:
        """Register an injected fault's active interval (FaultInjector)."""
        self._fault_windows.append(window)

    def record_recovery(self, node: int, info: dict) -> None:
        """Register one durable-executor recovery (restart or join).

        ``info`` is ``RecoveryInfo.to_dict()``: recovery source
        (checkpoint / wal / checkpoint+wal / snapshot / fresh),
        recovery_time, WAL replay throughput, and checkpoint size.
        """
        self._recoveries.append({"node": node, "at": self._sim.now, **info})

    # -- queries -----------------------------------------------------------

    @property
    def commits(self) -> list[CommitRecord]:
        """Commits in commit-time order (maintained incrementally)."""
        return list(self._commit_order)

    @property
    def committed_tx_total(self) -> int:
        return self._tx_total

    @property
    def view_change_count(self) -> int:
        return len(self._view_changes)

    @property
    def forwarded_microblocks(self) -> int:
        return self._forwarded_microblocks

    @property
    def fetch_count(self) -> int:
        return self._fetches

    @property
    def fetch_abandoned_count(self) -> int:
        return self._fetches_abandoned

    @property
    def fault_windows(self) -> list[FaultWindow]:
        return sorted(self._fault_windows, key=lambda w: (w.start, w.kind))

    def recovery_report(self) -> list[dict]:
        """Durable-executor recoveries in injection order."""
        return [dict(entry) for entry in self._recoveries]

    def throughput_tps(self, start: float, end: float) -> float:
        """Committed transactions per second over ``[start, end)``."""
        if end <= start:
            raise ValueError(f"bad window [{start}, {end})")
        lo = bisect_left(self._commit_times, start)
        hi = bisect_left(self._commit_times, end)
        txs = sum(rec.tx_count for rec in self._commit_order[lo:hi])
        return txs / (end - start)

    def throughput_series(
        self, start: float, end: float, bucket: float = 1.0
    ) -> list[tuple[float, float]]:
        """Time-bucketed throughput (for the Fig. 7 timeline)."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        buckets: dict[int, int] = {}
        lo = bisect_left(self._commit_times, start)
        hi = bisect_left(self._commit_times, end)
        for rec in self._commit_order[lo:hi]:
            index = int((rec.commit_time - start) / bucket)
            buckets[index] = buckets.get(index, 0) + rec.tx_count
        count = int((end - start) / bucket + 0.5)
        return [
            (start + i * bucket, buckets.get(i, 0) / bucket)
            for i in range(count)
        ]

    def latency_stats(
        self, start: float = 0.0, end: float = float("inf")
    ) -> WeightedDigest:
        """Latency digest restricted to commits inside the window."""
        digest = WeightedDigest()
        for when, latency, weight in self._latency_samples:
            if start <= when < end:
                digest.add(latency, weight)
        return digest

    @property
    def latency(self) -> WeightedDigest:
        return self._latency

    @property
    def latency_samples(self) -> list[tuple[float, float, float]]:
        """Raw ``(commit_time, latency, tx_weight)`` samples.

        The live runtime ships these across process boundaries so the
        orchestrator can rebuild windowed digests after merging runs.
        """
        return list(self._latency_samples)

    @property
    def stable_times(self) -> WeightedDigest:
        return self._stable_times

    def view_changes_in(self, start: float, end: float) -> int:
        return sum(1 for when, _, _ in self._view_changes if start <= when < end)

    # -- fault-window gauges -----------------------------------------------

    def time_to_recover(self, window: FaultWindow) -> float:
        """Seconds from the fault healing to the next commit.

        Measured from ``window.end`` to the first commit at or after it;
        infinity when the fault never healed or no commit followed (the
        system did not recover within the run).
        """
        if math.isinf(window.end):
            return math.inf
        index = bisect_left(self._commit_times, window.end)
        if index >= len(self._commit_times):
            return math.inf
        return self._commit_times[index] - window.end

    def commit_gap(self, window: FaultWindow) -> float:
        """Longest commit-free interval overlapping the fault window.

        The gauge the paper's Fig. 7 discussion cares about: how long the
        chain stalls while the fault is active. Gaps are measured between
        consecutive commits (run start counts as a commit at t=0) and
        count when they intersect ``[window.start, window.end)``;
        infinity when commits never resume after the window opens.
        """
        end = min(window.end, self._sim.now)
        times = self._commit_times
        longest = 0.0
        prev = 0.0
        for t in times:
            if t > window.start and prev < end:
                longest = max(longest, t - prev)
            prev = t
            if prev >= end:
                break
        if prev < end:
            # Commits never resumed once the window opened: unresolved stall.
            return math.inf
        return longest

    def fault_report(self) -> list[dict]:
        """Per-fault-window recovery summary (one dict per window)."""
        report = []
        for window in self.fault_windows:
            end = min(window.end, self._sim.now)
            tps = (
                self.throughput_tps(window.start, end)
                if end > window.start
                else 0.0
            )
            report.append(
                {
                    "kind": window.kind,
                    "label": window.label,
                    "start": window.start,
                    "end": window.end,
                    "nodes": window.nodes,
                    "throughput_tps": tps,
                    "commit_gap": self.commit_gap(window),
                    "time_to_recover": self.time_to_recover(window),
                }
            )
        return report
