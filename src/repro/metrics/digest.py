"""Weighted sample digest for latency percentiles.

Commit latency is recorded per microblock weighted by its transaction
count, so percentiles are over *transactions* without materializing one
sample per transaction.

Percentile queries used to re-sort every sample and scan cumulative
weights linearly — O(n log n) per query. The digest now consolidates
once per add-batch (a dirty flag marks the cached order stale) into a
sorted value array plus a prefix-sum array, and answers each percentile
with one bisect: repeated queries (p50/p95/p99 on the same window) cost
O(log n), and min/max are tracked incrementally at add time.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from itertools import accumulate
from typing import Iterable


class WeightedDigest:
    """Collects (value, weight) samples; answers mean and percentiles."""

    def __init__(self) -> None:
        self._samples: list[tuple[float, float]] = []
        self._total_weight = 0.0
        self._weighted_sum = 0.0
        self._min = 0.0
        self._max = 0.0
        self._dirty = True
        self._ordered_values: list[float] = []
        self._cum_weights: list[float] = []

    def add(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if not self._samples:
            self._min = value
            self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._samples.append((value, weight))
        self._total_weight += weight
        self._weighted_sum += value * weight
        self._dirty = True

    def extend(self, samples: Iterable[tuple[float, float]]) -> None:
        for value, weight in samples:
            self.add(value, weight)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def mean(self) -> float:
        if self._total_weight == 0:
            return 0.0
        return self._weighted_sum / self._total_weight

    def _consolidate(self) -> None:
        """Rebuild the sorted-value and prefix-weight caches."""
        ordered = sorted(self._samples)
        self._ordered_values = [value for value, _ in ordered]
        self._cum_weights = list(
            accumulate(weight for _, weight in ordered)
        )
        self._dirty = False

    def percentile(self, p: float) -> float:
        """Weighted percentile, ``p`` in [0, 100].

        The answer is the smallest sample value whose cumulative weight
        reaches ``p`` percent of the total; ``p=0`` is the minimum and
        ``p=100`` the maximum. An empty digest reports 0.0.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        if self._dirty:
            self._consolidate()
        target = self._total_weight * (p / 100.0)
        # Weights are strictly positive, so the prefix sums increase
        # strictly and bisect finds the first bucket reaching target.
        # Clamp: float summation order can leave target a hair above
        # the final prefix sum when p == 100.
        index = bisect_left(self._cum_weights, target)
        if index >= len(self._ordered_values):
            index = len(self._ordered_values) - 1
        return self._ordered_values[index]

    @property
    def max(self) -> float:
        return self._max

    @property
    def min(self) -> float:
        return self._min


def commit_sequence_hash(
    commits: Iterable,
    *,
    include_microblocks: bool = True,
    length: int = 0,
) -> str:
    """Digest of a run's committed sequence — the determinism fingerprint.

    Two runs of the same configuration must produce identical hashes;
    any divergence means nondeterminism leaked into the simulation. The
    parallel executor gates every fan-out path on this: a worker
    process's hash must equal the serial run's.

    ``include_microblocks`` selects between the two historical formats
    (the perf harness hashes the per-block microblock count too; the
    fuzzer does not). ``length`` truncates the hex digest (0 = full).
    """
    digest = hashlib.sha256()
    for record in commits:
        if include_microblocks:
            piece = (
                f"{record.block_id}:{record.commit_time:.9f}:"
                f"{record.tx_count}:{record.microblock_count};"
            )
        else:
            piece = (
                f"{record.block_id}:{record.commit_time:.9f}:"
                f"{record.tx_count};"
            )
        digest.update(piece.encode())
    hexdigest = digest.hexdigest()
    return hexdigest[:length] if length else hexdigest
