"""Weighted sample digest for latency percentiles.

Commit latency is recorded per microblock weighted by its transaction
count, so percentiles are over *transactions* without materializing one
sample per transaction.
"""

from __future__ import annotations

from typing import Iterable


class WeightedDigest:
    """Collects (value, weight) samples; answers mean and percentiles."""

    def __init__(self) -> None:
        self._samples: list[tuple[float, float]] = []
        self._total_weight = 0.0
        self._weighted_sum = 0.0

    def add(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._samples.append((value, weight))
        self._total_weight += weight
        self._weighted_sum += value * weight

    def extend(self, samples: Iterable[tuple[float, float]]) -> None:
        for value, weight in samples:
            self.add(value, weight)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def total_weight(self) -> float:
        return self._total_weight

    @property
    def mean(self) -> float:
        if self._total_weight == 0:
            return 0.0
        return self._weighted_sum / self._total_weight

    def percentile(self, p: float) -> float:
        """Weighted percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        target = self._total_weight * (p / 100.0)
        cumulative = 0.0
        for value, weight in ordered:
            cumulative += weight
            if cumulative >= target:
                return value
        return ordered[-1][0]

    @property
    def max(self) -> float:
        if not self._samples:
            return 0.0
        return max(value for value, _ in self._samples)

    @property
    def min(self) -> float:
        if not self._samples:
            return 0.0
        return min(value for value, _ in self._samples)
