"""In-memory key-value store (the Bamboo benchmark state machine).

Committed full blocks are applied in commit order. Transactions in the
simulation are counted rather than materialized, so the applied
operations are synthesized deterministically from the block identity —
each transaction becomes a ``set`` on a key derived from
``(block_id, index)``. Two replicas applying the same block sequence end
in the same state, which the integration tests assert.
"""

from __future__ import annotations

from repro.types.proposal import Block


class KVStore:
    """Deterministic KV state machine."""

    def __init__(self, key_space: int = 10_000) -> None:
        if key_space <= 0:
            raise ValueError(f"key_space must be positive, got {key_space}")
        self._key_space = key_space
        self._data: dict[int, int] = {}
        self._applied_blocks: list[int] = []
        self._tx_applied = 0

    @property
    def applied_block_ids(self) -> list[int]:
        return list(self._applied_blocks)

    @property
    def tx_applied(self) -> int:
        return self._tx_applied

    def apply_block(self, block: Block) -> None:
        """Execute every transaction of a full block, in microblock order."""
        if not block.is_full:
            raise ValueError(
                f"cannot execute partial block {block.block_id}: "
                f"missing {block.missing_ids}"
            )
        self._applied_blocks.append(block.block_id)
        for mb_id in block.proposal.payload.microblock_ids:
            microblock = block.microblocks[mb_id]
            for index in range(microblock.tx_count):
                key = (mb_id * 1_000_003 + index) % self._key_space
                self._data[key] = self._data.get(key, 0) + 1
                self._tx_applied += 1

    def get(self, key: int) -> int:
        return self._data.get(key, 0)

    def state_digest(self) -> int:
        """Order-independent digest of the store contents (for replica
        state comparison in tests)."""
        digest = 0
        for key, value in self._data.items():
            digest ^= hash((key, value))
        return digest
