"""In-memory key-value store (the Bamboo benchmark state machine).

Committed full blocks are applied in commit order. Transactions in the
simulation are counted rather than materialized, so the applied
operations are synthesized deterministically from the block identity —
each transaction becomes a ``set`` on a key derived from
``(block_id, index)``. Two replicas applying the same block sequence end
in the same state, which the integration tests assert.
"""

from __future__ import annotations

import hashlib

from repro.types.proposal import Block


def kv_digest(data: dict[int, int]) -> str:
    """Order-independent sha256-based digest of a key/value map.

    Each ``key:value`` pair hashes independently and the 32-byte digests
    XOR together, so insertion order is irrelevant and the result is
    stable across processes and restarts (unlike the builtin ``hash``,
    which is salted per process). This is the checkpoint integrity key:
    a checkpoint whose stored digest does not match the recomputed
    digest of its payload is rejected at recovery.
    """
    acc = bytearray(32)
    for key, value in data.items():
        pair = hashlib.sha256(b"%d:%d" % (key, value)).digest()
        for i in range(32):
            acc[i] ^= pair[i]
    return bytes(acc).hex()


class KVStore:
    """Deterministic KV state machine."""

    def __init__(self, key_space: int = 10_000) -> None:
        if key_space <= 0:
            raise ValueError(f"key_space must be positive, got {key_space}")
        self._key_space = key_space
        self._data: dict[int, int] = {}
        self._applied_blocks: list[int] = []
        self._tx_applied = 0
        self._blocks_applied = 0
        self._last_height = 0
        self._last_block_id = 0

    @property
    def applied_block_ids(self) -> list[int]:
        return list(self._applied_blocks)

    @property
    def tx_applied(self) -> int:
        return self._tx_applied

    @property
    def blocks_applied(self) -> int:
        return self._blocks_applied

    @property
    def last_height(self) -> int:
        """Height of the last applied block (0 before any block)."""
        return self._last_height

    @property
    def last_block_id(self) -> int:
        return self._last_block_id

    def apply_block(self, block: Block) -> None:
        """Execute every transaction of a full block, in microblock order."""
        if not block.is_full:
            raise ValueError(
                f"cannot execute partial block {block.block_id}: "
                f"missing {block.missing_ids}"
            )
        pairs = tuple(
            (mb_id, block.microblocks[mb_id].tx_count)
            for mb_id in block.proposal.payload.microblock_ids
        )
        self._apply(block.block_id, block.proposal.height, pairs)

    def _apply(self, block_id: int, height: int, pairs) -> None:
        """Apply one block's synthesized operations.

        ``pairs`` is the ``(microblock_id, tx_count)`` sequence in payload
        order — the only inputs the deterministic op synthesis needs,
        which is also exactly what the WAL persists per block.
        """
        self._applied_blocks.append(block_id)
        self._blocks_applied += 1
        self._last_height = height
        self._last_block_id = block_id
        for mb_id, tx_count in pairs:
            for index in range(tx_count):
                key = (mb_id * 1_000_003 + index) % self._key_space
                self._data[key] = self._data.get(key, 0) + 1
                self._tx_applied += 1

    def get(self, key: int) -> int:
        return self._data.get(key, 0)

    def state_digest(self) -> str:
        """Order-independent digest of the store contents, stable across
        processes and restarts (see :func:`kv_digest`)."""
        return kv_digest(self._data)
