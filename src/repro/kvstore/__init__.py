"""In-memory key-value state machine executed over committed blocks."""

from repro.kvstore.store import KVStore

__all__ = ["KVStore"]
