"""In-memory key-value state machine executed over committed blocks."""

from repro.kvstore.store import KVStore, kv_digest

__all__ = ["KVStore", "kv_digest"]
