"""Sharded shared-mempool subsystem (Arma / BigDipper directions).

Partitions the microblock space into shards with independent per-shard
PAB quorums; consensus orders compact :class:`ShardCertificate`s instead
of bodies. See DESIGN.md "Sharding" for the architecture.
"""

from repro.config import ShardingConfig
from repro.sharding.certificate import (
    CertificateError,
    ShardCertificate,
    make_shard_certificate,
    verify_shard_certificate,
)
from repro.sharding.map import ShardMap
from repro.sharding.pab import ShardPabEngine

__all__ = [
    "CertificateError",
    "ShardCertificate",
    "ShardMap",
    "ShardPabEngine",
    "ShardingConfig",
    "make_shard_certificate",
    "verify_shard_certificate",
]
