"""Deterministic shard assignment and membership (Arma's parties).

Two mappings live here:

* **Keying** — which shard owns a piece of content. Clients key by id
  (``shard_of_client``); microblocks key by their origin replica
  (``shard_of_origin``), which composes the client keying with the
  workload's client->replica assignment: all of a client's transactions
  are batched by one replica, so they land in that replica's shard.
* **Membership** — which replicas disseminate and certify a shard's
  microblocks. Memberships are strided orbits over the replica ring
  (shard ``s`` owns ``s, s + S, s + 2S, ...``), padded along the ring
  when the orbit is smaller than the requested size, then rotated by the
  config ``epoch`` for rebalancing. Every replica is a member of its own
  shard, so the pusher's local copy counts toward the quorum.

Each shard tolerates ``f_s = (m - 1) // 3`` Byzantine members out of its
``m``-member subset and certifies availability with ``f_s + 1`` acks —
at least one from a correct member, so a certified body is always
recoverable (the per-shard PAB-Provable-Availability property).
"""

from __future__ import annotations

from repro.config import ShardingConfig
from repro.types.microblock import MicroBlockId, microblock_origin


class ShardMap:
    """Derived shard structure for an ``n``-replica network."""

    __slots__ = (
        "n", "config", "shards", "shard_size", "_members", "_member_sets",
        "_quorums",
    )

    def __init__(self, n: int, config: ShardingConfig) -> None:
        if n < 1:
            raise ValueError(f"need at least one replica, got n={n}")
        if config.shards > n:
            raise ValueError(
                f"cannot split {n} replicas into {config.shards} shards"
            )
        self.n = n
        self.config = config
        self.shards = config.shards
        size = config.shard_size
        if size is None:
            size = min(n, max(4, -(-n // config.shards)))
        if size > n:
            raise ValueError(
                f"shard_size {size} exceeds replica count {n}"
            )
        self.shard_size = size
        self._members = tuple(
            self._build_members(shard) for shard in range(self.shards)
        )
        self._member_sets = tuple(frozenset(m) for m in self._members)
        self._quorums = tuple(
            self.f_of(shard) + 1 for shard in range(self.shards)
        )

    def _build_members(self, shard: int) -> tuple[int, ...]:
        members: list[int] = []
        seen: set[int] = set()
        stride = self.shards
        for j in range(self.n):
            node = (shard + j * stride) % self.n
            if node not in seen:
                seen.add(node)
                members.append(node)
            if len(members) >= self.shard_size:
                break
        offset = 1
        while len(members) < self.shard_size:
            node = (shard + offset) % self.n
            if node not in seen:
                seen.add(node)
                members.append(node)
            offset += 1
        epoch = self.config.epoch
        if epoch:
            members = [(node + epoch) % self.n for node in members]
        return tuple(sorted(members))

    # -- keying --------------------------------------------------------

    def shard_of_client(self, client_id: int) -> int:
        """Deterministic client-id -> shard assignment."""
        return client_id % self.shards

    def shard_of_origin(self, origin: int) -> int:
        """Shard that disseminates microblocks cut by ``origin``.

        Inverts the epoch rotation so a replica stays a member of the
        shard that owns its own microblocks across rebalances.
        """
        return (origin - self.config.epoch) % self.shards

    def shard_of_microblock(self, mb_id: MicroBlockId) -> int:
        return self.shard_of_origin(microblock_origin(mb_id))

    # -- membership ----------------------------------------------------

    def members(self, shard: int) -> tuple[int, ...]:
        return self._members[shard]

    def member_set(self, shard: int) -> frozenset[int]:
        return self._member_sets[shard]

    def is_member(self, node: int, shard: int) -> bool:
        return node in self._member_sets[shard]

    def f_of(self, shard: int) -> int:
        """Faults tolerated inside ``shard``'s membership."""
        return (len(self._members[shard]) - 1) // 3

    def quorum(self, shard: int) -> int:
        """Acks needed for a shard certificate (``f_s + 1``)."""
        return self._quorums[shard]
