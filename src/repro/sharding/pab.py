"""Per-shard provably available broadcast.

The shard variant of :class:`repro.mempool.stratus.pab.PabEngine`: the
push phase fans out only to the owning shard's members, the quorum is
the *shard* quorum (``f_s + 1`` of the membership), and quorum
completion mints a :class:`repro.sharding.ShardCertificate` instead of
an availability proof. Certificates — not bodies — are what the rest of
the network sees: they are broadcast to everyone on the control channel
and later ride inside consensus proposals.

Recovery is certificate-driven: a replica that needs a certified body it
never received (shard members that missed the push, or an executor
outside the shard) fetches it from a random sample of the certificate's
signers via the shared :class:`repro.mempool.fetching.FetchManager`.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.crypto import Signature, sign
from repro.mempool.base import MessageKinds
from repro.mempool.fetching import (
    FetchManager,
    adaptive_retry_delay,
    sampled_signers,
)
from repro.mempool.store import MicroBlockStore
from repro.sharding.certificate import (
    CertificateError,
    ShardCertificate,
    make_shard_certificate,
    verify_shard_certificate,
)
from repro.sharding.map import ShardMap
from repro.sim.interfaces import Channel, Envelope
from repro.types import sizes
from repro.types.microblock import MicroBlock, MicroBlockId

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica

OnCertified = Callable[[MicroBlockId, ShardCertificate], None]

#: EWMA smoothing weight for the push->first-remote-ack RTT sample.
RTT_EWMA_ALPHA = 0.2


class _ShardPush:
    """Ack bookkeeping for one shard-PAB instance at its pusher."""

    __slots__ = (
        "microblock", "acks", "signers", "started_at", "on_certified",
        "done", "targets", "timer", "rounds",
    )

    def __init__(
        self,
        microblock: MicroBlock,
        started_at: float,
        on_certified: OnCertified,
        targets: tuple[int, ...],
    ) -> None:
        self.microblock = microblock
        self.acks: list[Signature] = []
        self.signers: set[int] = set()
        self.started_at = started_at
        self.on_certified = on_certified
        self.done = False
        self.targets = targets
        self.timer = None
        self.rounds = 1


class ShardPabEngine:
    """One replica's shard-PAB endpoint (pusher, witness, recoverer)."""

    def __init__(
        self,
        host: "Replica",
        config: ProtocolConfig,
        shard_map: ShardMap,
        store: MicroBlockStore,
        fetcher: FetchManager,
        on_certificate: OnCertified,
        on_stable: Optional[Callable[[MicroBlockId, float], None]] = None,
        retry_floor: Optional[Callable[[], Optional[float]]] = None,
    ) -> None:
        self._host = host
        self._config = config
        self._map = shard_map
        self._store = store
        self._fetcher = fetcher
        self._on_certificate = on_certificate
        self._on_stable = on_stable
        self._retry_floor = retry_floor
        self._ack_rtt: Optional[float] = None
        self._pushes: dict[MicroBlockId, _ShardPush] = {}
        self._certs: dict[MicroBlockId, ShardCertificate] = {}
        #: This replica's own shard (the one its microblocks land in)
        #: and the push fan-out inside it, computed once.
        self.own_shard = shard_map.shard_of_origin(host.node_id)
        self._own_members = shard_map.members(self.own_shard)
        self._own_quorum = shard_map.quorum(self.own_shard)
        self._targets: tuple[int, ...] = tuple(
            node for node in self._own_members if node != host.node_id
        )

    # -- pusher role ---------------------------------------------------

    def push(self, microblock: MicroBlock, on_certified: OnCertified) -> None:
        """Start the shard push phase for a locally cut microblock."""
        self._store.add(microblock)
        state = _ShardPush(
            microblock, self._host.sim.now, on_certified, self._targets
        )
        self._pushes[microblock.id] = state
        if self._host.node_id in self._map.member_set(self.own_shard):
            # The pusher's local copy counts toward the shard quorum,
            # like Algorithm 1's self-ack — but only if it is a member.
            state.acks.append(sign(self._host.node_id, microblock.id))
            state.signers.add(self._host.node_id)
        if state.targets:
            self._host.network.broadcast(
                self._host.node_id,
                MessageKinds.SHARD_MICROBLOCK,
                microblock.size_bytes,
                microblock,
                recipients=list(state.targets),
            )
        self._arm_retry(state)
        self._maybe_complete(state)

    def repush_pending(self) -> int:
        """Retransmit pushes that never reached their shard quorum.

        Crash-restart recovery: acks sent while the pusher was down died
        with its ingress queue; without a nudge a stalled instance waits
        a full backoff period. Returns the number retransmitted.
        """
        stalled = [
            state for state in self._pushes.values() if not state.done
        ]
        for state in stalled:
            if state.timer is not None:
                state.timer.cancel()
                state.timer = None
            self._retry_push(state)
        return len(stalled)

    def _arm_retry(self, state: _ShardPush) -> None:
        stable = self._retry_floor() if self._retry_floor else None
        pending = len(state.targets) - max(0, len(state.signers) - 1)
        delay = adaptive_retry_delay(
            self._config, state.rounds, self._host,
            state.microblock.size_bytes, max(1, pending),
            stable_estimate=stable, rtt_estimate=self._ack_rtt,
        )
        state.timer = self._host.sim.schedule(
            delay, lambda: self._retry_push(state)
        )

    def _retry_push(self, state: _ShardPush) -> None:
        if state.done or state.microblock.id not in self._pushes:
            return
        state.rounds += 1
        acked = state.signers
        missing = [node for node in state.targets if node not in acked]
        if missing:
            self._host.network.broadcast(
                self._host.node_id,
                MessageKinds.SHARD_MICROBLOCK,
                state.microblock.size_bytes,
                state.microblock,
                recipients=missing,
            )
        self._arm_retry(state)

    def _maybe_complete(self, state: _ShardPush) -> None:
        if len(state.signers) < self._own_quorum:
            return
        try:
            cert = make_shard_certificate(
                state.microblock, self.own_shard, state.acks,
                self._own_members, self._own_quorum, self._config.n,
            )
        except CertificateError:
            return
        state.done = True
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        elapsed = self._host.sim.now - state.started_at
        if self._on_stable is not None:
            self._on_stable(state.microblock.id, elapsed)
        del self._pushes[state.microblock.id]
        self._certs[state.microblock.id] = cert
        state.on_certified(state.microblock.id, cert)

    # -- certificate dissemination / recovery --------------------------

    def broadcast_certificate(self, cert: ShardCertificate) -> None:
        """Tell every replica the microblock is certified-available."""
        self._certs[cert.mb_id] = cert
        self._host.network.broadcast(
            self._host.node_id,
            MessageKinds.SHARD_CERT,
            cert.size_bytes,
            (cert.mb_id, cert),
            Channel.CONTROL,
        )

    def certificate_for(
        self, mb_id: MicroBlockId
    ) -> Optional[ShardCertificate]:
        return self._certs.get(mb_id)

    def fetch(self, mb_id: MicroBlockId, cert: ShardCertificate) -> None:
        """Lazily retrieve a certified body from the cert's signers."""
        provider = sampled_signers(
            self._config, self._host.rng, cert.signers, self._host.node_id
        )
        self._fetcher.request(
            mb_id, provider, delay=self._config.effective_recovery_delay
        )

    def discard(self, mb_id: MicroBlockId) -> None:
        """Garbage-collect certificate state for a committed microblock."""
        self._certs.pop(mb_id, None)
        state = self._pushes.pop(mb_id, None)
        if state is not None and state.timer is not None:
            state.timer.cancel()
        self._fetcher.cancel(mb_id)

    # -- message handling ----------------------------------------------

    def on_message(self, envelope: Envelope) -> bool:
        """Process shard-PAB traffic; returns False for other kinds."""
        kind = envelope.kind
        if kind in (
            MessageKinds.SHARD_MICROBLOCK,
            MessageKinds.MICROBLOCK_FETCH,
        ):
            self._on_body(envelope)
            return True
        if kind == MessageKinds.SHARD_ACK:
            self._on_ack(envelope)
            return True
        if kind == MessageKinds.SHARD_CERT:
            self._on_cert_message(envelope)
            return True
        if kind == MessageKinds.FETCH_REQUEST:
            self._fetcher.handle_request(envelope.src, envelope.payload)
            return True
        return False

    def _on_body(self, envelope: Envelope) -> None:
        microblock: MicroBlock = envelope.payload
        self._store.add(microblock)
        if (
            envelope.kind == MessageKinds.SHARD_MICROBLOCK
            and self._host.behavior.acks_microblocks
        ):
            # Witness: ack back to the pusher, even for duplicates.
            self._host.network.send(
                self._host.node_id,
                envelope.src,
                MessageKinds.SHARD_ACK,
                sizes.ACK,
                sign(self._host.node_id, microblock.id),
                Channel.CONTROL,
            )

    def _on_ack(self, envelope: Envelope) -> None:
        ack: Signature = envelope.payload
        state = self._pushes.get(ack.digest)
        if state is None or state.done:
            return
        if not state.signers - {self._host.node_id} and state.rounds == 1:
            sample = self._host.sim.now - state.started_at
            if self._ack_rtt is None:
                self._ack_rtt = sample
            else:
                self._ack_rtt += RTT_EWMA_ALPHA * (sample - self._ack_rtt)
        state.acks.append(ack)
        state.signers.add(ack.signer)
        self._maybe_complete(state)

    def _on_cert_message(self, envelope: Envelope) -> None:
        mb_id, cert = envelope.payload
        if not verify_shard_certificate(cert, mb_id, self._map):
            return
        first_time = mb_id not in self._certs
        self._certs[mb_id] = cert
        if (
            mb_id not in self._store
            and self._map.is_member(self._host.node_id, cert.shard)
        ):
            # A member that missed the push recovers eagerly — it is part
            # of the availability quorum peers will fetch from. Everyone
            # else stays lazy: the certificate alone is enough to vote.
            self.fetch(mb_id, cert)
        if first_time:
            self._on_certificate(mb_id, cert)
