"""Shard availability certificates (BigDipper-style ordered certificates).

A :class:`ShardCertificate` asserts that a quorum of the owning shard's
members hold a microblock body. It is what consensus orders instead of
the body: proposals reference ``(id, certificate)`` pairs, replicas vote
on certificate validity, and bodies are fetched lazily from certificate
signers only where execution needs them.

Unlike :class:`repro.crypto.AvailabilityProof`, the certificate carries
the commit-accounting scalars (``tx_count``, ``mean_arrival``) so a
replica outside the shard can record throughput and latency for a
committed block without ever receiving the bodies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.signatures import Signature, verify_signature
from repro.sharding.map import ShardMap
from repro.types import sizes
from repro.types.microblock import MicroBlock, microblock_origin


class CertificateError(ValueError):
    """Raised when a certificate cannot be assembled from the given acks."""


@dataclass(frozen=True)
class ShardCertificate:
    """Proof that shard ``shard``'s quorum holds microblock ``mb_id``."""

    mb_id: int
    shard: int
    origin: int
    tx_count: int
    mean_arrival: float
    signers: tuple[int, ...]
    forged: bool = False

    @property
    def quorum(self) -> int:
        return len(self.signers)

    @property
    def size_bytes(self) -> int:
        return sizes.shard_certificate_bytes(max(1, len(self.signers)))

    # Memoized verification key (plain class attribute, not a dataclass
    # field): one certificate object is shared by every receiver of the
    # broadcast or proposal carrying it, so the O(quorum) structural
    # check runs once per certificate instead of once per receiver. Only
    # successful checks are cached; the ``mb_id`` binding is re-checked
    # on every call.
    _verified_key = None


def make_shard_certificate(
    microblock: MicroBlock,
    shard: int,
    acks: list[Signature],
    members: tuple[int, ...],
    quorum: int,
    n: int,
) -> ShardCertificate:
    """Aggregate member acks into a certificate.

    Raises :class:`CertificateError` if the acks do not form a valid
    shard quorum: too few distinct valid *member* signers, wrong digest,
    or forged signatures. Acks from non-members are discarded — a quorum
    of outsiders says nothing about the shard's availability.
    """
    member_set = set(members)
    valid_signers: set[int] = set()
    for ack in acks:
        if ack.signer in member_set and verify_signature(
            ack, microblock.id, n
        ):
            valid_signers.add(ack.signer)
    if len(valid_signers) < quorum:
        raise CertificateError(
            f"need {quorum} distinct member acks over mb {microblock.id} "
            f"in shard {shard}, got {len(valid_signers)}"
        )
    return ShardCertificate(
        mb_id=microblock.id,
        shard=shard,
        origin=microblock.origin,
        tx_count=microblock.tx_count,
        mean_arrival=microblock.mean_arrival,
        signers=tuple(sorted(valid_signers)),
    )


def verify_shard_certificate(
    cert: ShardCertificate, mb_id: int, shard_map: ShardMap
) -> bool:
    """Certificate-validity vote: structural + binding checks.

    The verifier recomputes the owning shard from the microblock id, so
    a certificate signed by the wrong shard's members (or claiming a
    foreign origin) is rejected even if its signatures check out.
    """
    if cert.mb_id != mb_id:
        return False
    key = (shard_map.n, shard_map.config)
    if cert._verified_key == key:
        return True
    if cert.forged:
        return False
    if cert.tx_count <= 0:
        return False
    if cert.origin != microblock_origin(mb_id):
        return False
    if not 0 <= cert.shard < shard_map.shards:
        return False
    if cert.shard != shard_map.shard_of_origin(cert.origin):
        return False
    signers = set(cert.signers)
    if len(signers) != len(cert.signers):
        return False
    if not signers <= shard_map.member_set(cert.shard):
        return False
    if len(signers) < shard_map.quorum(cert.shard):
        return False
    object.__setattr__(cert, "_verified_key", key)
    return True
