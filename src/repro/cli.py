"""Command-line experiment runner.

Run a single configured experiment and print its summary::

    python -m repro --preset S-HS --n 32 --topology lan \
        --rate 50000 --duration 3 --warmup 1

Or sweep a parameter::

    python -m repro --preset S-HS N-HS --n 16 32 64 --rate 200000

Every (preset, n) combination runs once; results print as an aligned
table. This is the quickest way to poke at the system without writing a
script.

Two verification subcommands ride alongside the flat experiment
interface::

    python -m repro fuzz --seed 42 --iterations 20 --shrink \
        --out artifacts/
    python -m repro replay artifacts/fuzz-42-0007.json

``fuzz`` derives oracle-armed scenarios from one root seed and exits
non-zero if any violation survives; with ``--shrink`` each failure is
minimized and written as a replayable JSON artifact that ``replay``
re-runs bit-for-bit.

A third subcommand leaves the simulator entirely: ``live`` runs the
same protocol stack as real OS processes over localhost TCP::

    python -m repro live --protocol hotstuff --mempool stratus -n 4 \
        --duration 10

and exits non-zero if the cluster commits nothing or a safety oracle
fires on the merged commit log (see :mod:`repro.live`). Both runners
take the same ``--faults`` grammar; under ``live`` the schedule runs as
real chaos — SIGKILL + respawn for crashes, frame shaping for link
faults::

    python -m repro live -n 4 --duration 8 --faults crash-restart
"""

from __future__ import annotations

import argparse
import cProfile
import json
import math
import pstats
from pathlib import Path
from typing import Optional, Sequence

from repro.config import MEMPOOL_KINDS, ShardingConfig
from repro.faults import FaultSchedule
from repro.harness import (
    CHAOS_PRESET_NAMES,
    ExperimentConfig,
    PROTOCOL_PRESETS,
    format_table,
    resolve_fault_spec,
    run_experiment,
    tuned_protocol,
)
from repro.sim.topology import FluctuationWindow

#: The ``--faults`` help text shared by the sim and live parsers — one
#: grammar, resolved by :func:`repro.harness.resolve_fault_spec`.
FAULTS_HELP = (
    "scripted fault schedule: a chaos preset name "
    f"({', '.join(CHAOS_PRESET_NAMES)}), inline JSON "
    '(\'[{"event": "crash", "at": 2.0, "node": 3}, ...]\'), '
    "or @file.json"
)


def _resolve_faults_arg(
    spec: Optional[str], n: int, live: bool = False
) -> Optional[FaultSchedule]:
    """CLI wrapper over :func:`resolve_fault_spec`: ``SystemExit`` on error."""
    if spec is None:
        return None
    try:
        return resolve_fault_spec(spec, n, live=live)
    except ValueError as exc:
        # Covers JSONDecodeError too; a typo'd preset name lands here.
        raise SystemExit(
            f"bad --faults spec: {exc}\n"
            f"expected a chaos preset ({', '.join(CHAOS_PRESET_NAMES)}), "
            "@file, or an inline JSON schedule"
        ) from exc


def _print_fault_report(label: str, report: list[dict]) -> None:
    """Render per-fault-window recovery metrics (sim and live runs)."""
    rows = [
        [
            entry["kind"],
            entry["label"] or "-",
            f"{entry['start']:.2f}",
            _fmt_time(entry["end"]),
            ",".join(map(str, entry["nodes"])) or "all",
            f"{entry['throughput_tps']:,.0f}",
            _fmt_time(entry["commit_gap"]),
            _fmt_time(entry["time_to_recover"]),
        ]
        for entry in report
    ]
    print()
    print(format_table(
        ["fault", "label", "start", "end", "nodes", "tput (tx/s)",
         "commit gap (s)", "recover (s)"],
        rows,
        title=f"{label} fault windows",
    ))


def _add_durability_args(parser: argparse.ArgumentParser) -> None:
    """``--durability`` knobs shared by the sim and live parsers."""
    parser.add_argument(
        "--durability", choices=["always", "interval", "off"], default=None,
        metavar="FSYNC",
        help="persist the state machine (WAL + checkpoints) with this "
             "fsync policy: always | interval | off",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=32, metavar="BLOCKS",
        help="blocks applied between checkpoints (with --durability)",
    )
    parser.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="root directory for per-replica durable state "
             "(a temp dir when unset)",
    )


def _durability_from_args(args):
    if args.durability is None:
        return None
    from repro.durability import DurabilityConfig

    return DurabilityConfig(
        fsync=args.durability,
        checkpoint_interval=args.checkpoint_interval,
    )


def _print_recovery_report(label: str, report: list[dict]) -> None:
    """Render durable-executor recovery rows (sim and live runs)."""
    rows = [
        [
            entry.get("node", "-"),
            entry.get("generation", "-"),
            entry["source"],
            f"{entry['duration_s'] * 1000:.2f}",
            entry["wal_blocks_replayed"],
            f"{entry['wal_replay_blocks_per_sec']:,.0f}",
            f"{entry['checkpoint_bytes']:,}",
        ]
        for entry in report
    ]
    print()
    print(format_table(
        ["node", "gen", "source", "recovery (ms)", "wal blocks",
         "replay (blk/s)", "ckpt bytes"],
        rows,
        title=f"{label} durable recoveries",
    ))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run Stratus / baseline BFT experiments on the "
                    "simulated network.",
    )
    parser.add_argument(
        "--preset", nargs="+", default=["S-HS"],
        choices=sorted(PROTOCOL_PRESETS),
        help="protocol acronym(s) from the paper's Table II",
    )
    parser.add_argument("--n", nargs="+", type=int, default=[16],
                        help="network size(s)")
    parser.add_argument("--mempool", choices=MEMPOOL_KINDS, default=None,
                        help="override the preset's mempool (e.g. "
                             "sharded-stratus)")
    parser.add_argument("--shards", type=int, default=None, metavar="S",
                        help="shard count for the sharded-stratus "
                             "mempool (implies --mempool sharded-stratus "
                             "when no mempool is given)")
    parser.add_argument("--topology", choices=["lan", "wan", "geo"],
                        default="lan")
    parser.add_argument("--rate", type=float, default=20_000.0,
                        help="offered load, tx/s")
    parser.add_argument("--duration", type=float, default=3.0,
                        help="measurement window, seconds")
    parser.add_argument("--warmup", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--bandwidth", type=float, default=None,
                        help="per-replica bandwidth override, bits/s")
    parser.add_argument("--selector", choices=["uniform", "zipf1", "zipf10"],
                        default="uniform")
    parser.add_argument("--fault", choices=["none", "silent", "censor",
                                            "lying"], default="none")
    parser.add_argument("--fault-count", type=int, default=0)
    parser.add_argument("--batch-bytes", type=int, default=None)
    parser.add_argument("--batch-timeout", type=float, default=None)
    parser.add_argument("--pab-quorum", type=int, default=None)
    parser.add_argument("--lb-samples", type=int, default=None)
    parser.add_argument("--view-timeout", type=float, default=None)
    parser.add_argument("--link-model", choices=["serial", "fair-share"],
                        default="serial",
                        help="uplink model: store-and-forward serialization "
                             "or fair-share capacity splitting")
    parser.add_argument("--workload-mode", choices=["ticks", "aggregate"],
                        default="ticks",
                        help="client arrival generation: per-tick batches "
                             "or lazily-replayed aggregate streams "
                             "(identical schedules, far fewer events)")
    parser.add_argument("--clients", type=int, default=None,
                        metavar="COUNT",
                        help="offered client population the rate stands "
                             "for (recorded in results; requires "
                             "--workload-mode aggregate to be cheap at "
                             "large counts)")
    parser.add_argument("--disturb", nargs=2, type=float, default=None,
                        metavar=("START", "DURATION"),
                        help="inject a Fig.7-style disturbance window")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help=FAULTS_HELP)
    parser.add_argument("--timeline", action="store_true",
                        help="print a per-second throughput timeline")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run independent (preset, n) sweep cells in N "
                             "worker processes; results (and hashes) are "
                             "identical to --jobs 1")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the hottest "
                             "functions after the results table "
                             "(forces --jobs 1)")
    parser.add_argument("--profile-top", type=int, default=20,
                        metavar="N",
                        help="with --profile, how many functions to show")
    _add_durability_args(parser)
    return parser


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Run oracle-armed randomized scenarios derived from "
                    "one root seed; exit non-zero on any violation.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed; every scenario derives from it")
    parser.add_argument("--iterations", type=int, default=10,
                        help="how many scenarios to derive and run")
    parser.add_argument("--start", type=int, default=0,
                        help="first scenario index (resume a sweep)")
    parser.add_argument("--shrink", action="store_true",
                        help="minimize each failing scenario before "
                             "writing its artifact")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="directory for failing-scenario artifacts "
                             "(created if missing)")
    parser.add_argument("--stop-on-failure", action="store_true",
                        help="stop the sweep at the first violation")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run scenarios in N worker processes; outcome "
                             "order and hashes are identical to --jobs 1")
    return parser


def run_fuzz(argv: Sequence[str]) -> int:
    from repro.verification import (
        ScenarioFuzzer,
        shrink_scenario,
        write_artifact,
    )

    args = build_fuzz_parser().parse_args(argv)
    out_dir: Optional[Path] = None
    if args.out is not None:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
    fuzzer = ScenarioFuzzer(args.seed)
    executor = None
    if args.jobs > 1:
        from repro.parallel import ParallelExecutor

        executor = ParallelExecutor(jobs=args.jobs)
    failures = []

    def report(outcome) -> None:
        status = "ok" if outcome.ok else (
            f"FAIL ({len(outcome.violations)} violations)"
        )
        print(f"  {outcome.scenario.label:<44} "
              f"tx={outcome.committed_tx:<8,} "
              f"hash={outcome.commit_hash}  {status}")
        for violation in outcome.violations:
            print(f"    [{violation.oracle}/{violation.kind}] "
                  f"{violation.message}")

    print(f"fuzz: root seed {args.seed}, scenarios "
          f"{args.start}..{args.start + args.iterations - 1}")
    outcomes = fuzzer.run(
        args.iterations, start=args.start,
        stop_on_failure=args.stop_on_failure, on_outcome=report,
        executor=executor,
    )
    for outcome in outcomes:
        if outcome.ok:
            continue
        failures.append(outcome)
        original = outcome.scenario
        shrink_runs = None
        if args.shrink:
            result = shrink_scenario(original, executor=executor)
            outcome = result.outcome
            shrink_runs = result.runs
            print(f"  shrunk {original.label}: "
                  f"{len(original.fault_spec)} -> "
                  f"{len(outcome.scenario.fault_spec)} fault events, "
                  f"duration {original.duration} -> "
                  f"{outcome.scenario.duration}s ({result.runs} runs)")
        if out_dir is not None:
            path = out_dir / (
                f"fuzz-{args.seed}-{original.index:04d}.json"
            )
            write_artifact(
                str(path), outcome,
                original=original if args.shrink else None,
                shrink_runs=shrink_runs,
            )
            print(f"  wrote {path}")
    print(f"fuzz: {len(outcomes)} scenarios, {len(failures)} failing")
    return 1 if failures else 0


def build_live_parser() -> argparse.ArgumentParser:
    from repro.config import CONSENSUS_KINDS, MEMPOOL_KINDS

    parser = argparse.ArgumentParser(
        prog="repro live",
        description="Run the real protocol stack over asyncio TCP on "
                    "localhost, one OS process per replica, and verify "
                    "the commit sequences against the safety oracles.",
    )
    parser.add_argument("--protocol", choices=CONSENSUS_KINDS,
                        default="hotstuff", help="consensus engine")
    parser.add_argument("--mempool", choices=MEMPOOL_KINDS,
                        default="stratus")
    parser.add_argument("--shards", type=int, default=None, metavar="S",
                        help="shard count for --mempool sharded-stratus")
    parser.add_argument("-n", type=int, default=4, help="replica count")
    parser.add_argument("--duration", type=float, default=10.0,
                        help="measurement window, seconds of wall clock")
    parser.add_argument("--warmup", type=float, default=1.0)
    parser.add_argument("--rate", type=float, default=1_000.0,
                        help="offered load, tx/s")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--selector", choices=["uniform", "zipf1", "zipf10"],
                        default="uniform")
    parser.add_argument("--tick", type=float, default=0.01,
                        help="client submission tick, seconds")
    parser.add_argument("--view-timeout", type=float, default=None,
                        help="view/epoch timer override, seconds — short "
                             "timers make crash recovery fit short runs")
    parser.add_argument("--startup-grace", type=float, default=None,
                        help="seconds allowed for replica processes to "
                             "boot before protocol t=0")
    parser.add_argument("--wire-codec", choices=["binary", "json"],
                        default="binary",
                        help="frame format on the wire: struct-packed "
                             "binary v2 (default) or the v1 JSON codec")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help=FAULTS_HELP + " — crashes become SIGKILL + "
                             "respawn, link faults become real frame "
                             "shaping (see repro.live.chaos)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full result document to PATH")
    _add_durability_args(parser)
    return parser


def run_live_cmd(argv: Sequence[str]) -> int:
    from repro.config import ProtocolConfig
    from repro.live import LiveConfig, run_live

    args = build_live_parser().parse_args(argv)
    overrides = {}
    if args.view_timeout is not None:
        overrides["view_timeout"] = args.view_timeout
        overrides["streamlet_epoch"] = args.view_timeout
    if args.shards is not None:
        overrides["sharding"] = ShardingConfig(shards=args.shards)
    protocol = ProtocolConfig(
        n=args.n, mempool=args.mempool, consensus=args.protocol, **overrides
    )
    config = ExperimentConfig(
        protocol=protocol,
        rate_tps=args.rate,
        duration=args.duration,
        warmup=args.warmup,
        seed=args.seed,
        selector=args.selector,
        tick=args.tick,
        label=f"live-{args.mempool}/{args.protocol}-n{args.n}",
    )
    live = LiveConfig(
        experiment=config,
        faults=_resolve_faults_arg(args.faults, args.n, live=True),
        wire_codec=args.wire_codec,
        durability=_durability_from_args(args),
        data_dir=args.data_dir,
    )
    if args.startup_grace is not None:
        live.startup_grace = args.startup_grace

    print(f"live: {config.label} for {config.end_time:.0f}s wall clock "
          f"at {config.rate_tps:,.0f} tx/s offered "
          f"({args.wire_codec} frames)"
          + (f", faults: {args.faults}" if args.faults else ""))
    result = run_live(live)

    # Backpressure drops (bounded send queues) and chaos sheds (shaper
    # partitions/loss) are different failure modes; conflating them in
    # one column made saturated runs look like chaos and vice versa.
    print(format_table(
        ["node", "gen", "commits", "MB in", "MB out", "msgs", "bp-drop",
         "shed", "reconn"],
        [
            [
                entry["node_id"],
                entry["generation"],
                entry["commits"],
                f"{entry['bytes_in'] / 1e6:.2f}",
                f"{entry['bytes_out'] / 1e6:.2f}",
                entry["messages_delivered"],
                entry["frames_dropped"],
                entry["frames_shed"],
                entry["reconnects"],
            ]
            for entry in result.per_replica
        ],
        title=f"{result.label}: {result.throughput_tps:,.0f} tx/s, "
              f"lat mean {result.latency.mean * 1000:.1f} ms / "
              f"p99 {result.latency.percentile(99) * 1000:.1f} ms, "
              f"{result.committed_blocks} blocks "
              f"({result.committed_tx:,} tx) committed",
    ))
    for entry in result.fault_timeline:
        print(f"  fault: {entry['event']} node {entry['node']} "
              f"scheduled t={entry['at']:.2f} "
              f"applied t={entry['applied_at']:.2f}")
    if result.fault_report:
        _print_fault_report(result.label, result.fault_report)
    if result.recovery_report:
        _print_recovery_report(result.label, result.recovery_report)
    for violation in result.violations:
        print(f"  VIOLATION {violation}")
    if args.json is not None:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(json.dumps(result.to_dict(), indent=2))
        print(f"live: wrote {args.json}")
    if not result.ok:
        print("live: FAILED "
              f"({len(result.violations)} violations, "
              f"{result.committed_blocks} blocks committed)")
        return 1
    return 0


def run_replay(argv: Sequence[str]) -> int:
    from repro.verification import replay_artifact

    parser = argparse.ArgumentParser(
        prog="repro replay",
        description="Re-run the scenario stored in a fuzz artifact; "
                    "exit non-zero if the violation still reproduces.",
    )
    parser.add_argument("artifact", help="path to a fuzz artifact JSON")
    args = parser.parse_args(argv)
    outcome = replay_artifact(args.artifact)
    print(f"replay: {outcome.scenario.label} "
          f"tx={outcome.committed_tx:,} hash={outcome.commit_hash}")
    for violation in outcome.violations:
        print(f"  [{violation.oracle}/{violation.kind}] {violation.message}")
    if outcome.ok:
        print("replay: no violations reproduced")
        return 0
    print(f"replay: {len(outcome.violations)} violations reproduced")
    return 1


def run_cli(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        import sys

        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "fuzz":
        return run_fuzz(argv[1:])
    if argv and argv[0] == "replay":
        return run_replay(argv[1:])
    if argv and argv[0] == "live":
        return run_live_cmd(argv[1:])
    args = build_parser().parse_args(argv)
    mempool_override = args.mempool
    if args.shards is not None and mempool_override is None:
        mempool_override = "sharded-stratus"
    overrides = {
        key: value
        for key, value in (
            ("mempool", mempool_override),
            ("sharding", ShardingConfig(shards=args.shards)
             if args.shards is not None else None),
            ("batch_bytes", args.batch_bytes),
            ("batch_timeout", args.batch_timeout),
            ("pab_quorum", args.pab_quorum),
            ("lb_samples", args.lb_samples),
            ("view_timeout", args.view_timeout),
        )
        if value is not None
    }
    fluctuation = None
    if args.disturb is not None:
        start, duration = args.disturb
        fluctuation = FluctuationWindow(
            start=start, duration=duration,
            base=0.1, jitter=0.05, throughput_factor=0.15,
        )

    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    jobs = args.jobs
    if args.profile and jobs > 1:
        print("note: --profile forces --jobs 1 (cProfile cannot see "
              "worker processes)")
        jobs = 1

    durability = _durability_from_args(args)
    cells = []  # (preset, n, ExperimentConfig)
    for preset in args.preset:
        for n in args.n:
            protocol = tuned_protocol(
                preset, n=n, topology_kind=args.topology, **overrides
            )
            # With an explicit --data-dir, each sweep cell gets its own
            # subtree so concurrent cells never share a WAL.
            cell_data_dir = (
                str(Path(args.data_dir) / f"{preset}-n{n}")
                if args.data_dir is not None and durability is not None
                else None
            )
            cells.append((preset, n, ExperimentConfig(
                protocol=protocol,
                topology_kind=args.topology,
                bandwidth_bps=args.bandwidth,
                rate_tps=args.rate,
                duration=args.duration,
                warmup=args.warmup,
                seed=args.seed,
                selector=args.selector,
                fault=args.fault,
                fault_count=args.fault_count,
                link_model=args.link_model,
                workload_mode=args.workload_mode,
                offered_clients=args.clients,
                fluctuation=fluctuation,
                # Preset schedules depend on n (the crash victim is the
                # highest id), so resolution happens per sweep cell.
                faults=_resolve_faults_arg(args.faults, n),
                durability=durability,
                data_dir=cell_data_dir,
                label=f"{preset}-n{n}",
            )))

    timeline_bucket = 1.0 if args.timeline else None
    profiler: Optional[cProfile.Profile] = None
    if jobs > 1:
        from repro.parallel import sweep

        summaries = sweep(
            [config for _, _, config in cells],
            jobs=jobs,
            timeline_bucket=timeline_bucket,
        )
    else:
        from repro.parallel import RunSummary

        if args.profile:
            profiler = cProfile.Profile()
            profiler.enable()
        summaries = [
            RunSummary.from_result(
                run_experiment(config), timeline_bucket=timeline_bucket,
            )
            for _, _, config in cells
        ]
        if profiler is not None:
            profiler.disable()

    rows = []
    timelines = []
    fault_reports = []
    recovery_reports = []
    for (preset, n, _), summary in zip(cells, summaries):
        if summary.fault_report is not None:
            fault_reports.append((summary.label, summary.fault_report))
        if summary.recovery_report:
            recovery_reports.append((summary.label, summary.recovery_report))
        rows.append([
            preset, n,
            f"{summary.throughput_tps:,.0f}",
            f"{summary.latency_mean * 1000:.1f}",
            f"{summary.latency_percentile(99) * 1000:.1f}",
            summary.view_changes,
            f"{summary.committed_tx:,}",
        ])
        if summary.timeline is not None:
            timelines.append((summary.label, summary.timeline))
    print(format_table(
        ["protocol", "n", "tput (tx/s)", "lat mean (ms)", "lat p99 (ms)",
         "view chg", "committed"],
        rows,
        title=(f"{args.topology.upper()} @ {args.rate:,.0f} tx/s offered, "
               f"{args.duration:.0f}s window"),
    ))
    for label, report in fault_reports:
        _print_fault_report(label, report)
    for label, report in recovery_reports:
        _print_recovery_report(label, report)
    for label, series in timelines:
        print(f"\n{label} timeline (t -> tx/s):")
        for t, value in series:
            print(f"  {t:5.0f}s  {value:>12,.0f}")
    if profiler is not None:
        print(f"\ncProfile — top {args.profile_top} by internal time:")
        stats = pstats.Stats(profiler)
        stats.sort_stats("tottime").print_stats(args.profile_top)
    return 0


def _fmt_time(value: Optional[float]) -> str:
    # None is the JSON-serialized form of "never" (see LiveRunResult).
    if value is None or math.isinf(value):
        return "never"
    return f"{value:.2f}"


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(run_cli())
