"""Protocol event tracing.

A :class:`Tracer` attached to a replica records timestamped protocol
events (proposals, votes, commits, microblock lifecycle, DLB decisions)
into a bounded ring buffer. Tracing is opt-in: replicas default to no
tracer and every call site guards with a truthiness check, so the hot
path pays one attribute read when disabled.

Usage::

    from repro.tracing import Tracer
    experiment = build_experiment(config)
    tracer = Tracer()
    experiment.replicas[0].tracer = tracer
    experiment.run()
    for event in tracer.query(kind="commit"):
        print(event)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One protocol event at one replica."""

    time: float
    node: int
    kind: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        fields = " ".join(
            f"{key}={value}" for key, value in sorted(self.details.items())
        )
        return f"[{self.time:10.6f}] r{self.node} {self.kind} {fields}".rstrip()


class Tracer:
    """Bounded in-memory event log."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0
        self._capacity = capacity

    def record(self, time: float, node: int, kind: str, **details) -> None:
        if len(self._events) == self._capacity:
            self._dropped += 1
        self._events.append(
            TraceEvent(time=time, node=node, kind=kind, details=details)
        )

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring buffer."""
        return self._dropped

    def query(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
        start: float = 0.0,
        end: float = float("inf"),
    ) -> Iterator[TraceEvent]:
        """Iterate events matching the filters, in recording order."""
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if node is not None and event.node != node:
                continue
            if not start <= event.time < end:
                continue
            yield event

    def counts(self) -> dict[str, int]:
        """Event counts by kind."""
        totals: dict[str, int] = {}
        for event in self._events:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return totals

    def render(self, limit: int = 50, **filters) -> str:
        """Human-readable tail of the (filtered) event log."""
        matched = list(self.query(**filters))
        lines = [str(event) for event in matched[-limit:]]
        if len(matched) > limit:
            lines.insert(0, f"... ({len(matched) - limit} earlier events)")
        return "\n".join(lines)
