"""Spawn-safe job specifications and compact run summaries.

A :class:`JobSpec` is the unit of work the :class:`~repro.parallel.
executor.ParallelExecutor` ships to a worker process. It deliberately
contains nothing but plain data — the existing JSON round-trips do the
heavy lifting (:meth:`repro.harness.config.ExperimentConfig.to_dict` for
harness jobs, :meth:`repro.verification.fuzzer.Scenario.to_dict` for
fuzz jobs) — so a spec survives the ``spawn`` start method, where the
child interpreter re-imports this module from scratch and receives the
spec by pickling plain dicts, never live simulator objects.

The worker's answer crosses the boundary the same way: a
:class:`RunSummary` flattens the interesting slice of an
:class:`~repro.harness.runner.ExperimentResult` (throughput, latency
percentiles, commit-sequence hash, counters, optional fault report and
timeline) into primitives. The full ``MetricsHub``/``Network`` object
graph stays in the worker and dies with it.
"""

from __future__ import annotations

import os
import platform
import resource
import time
import traceback
from dataclasses import dataclass, field
from typing import Optional

from repro.harness.config import ExperimentConfig
from repro.harness.runner import ExperimentResult, run_experiment

#: Latency percentiles every summary carries. Benchmarks and the CLI
#: only ever render p50/p95/p99; carrying the values (rather than the
#: digest) keeps the summary a few hundred bytes.
SUMMARY_PERCENTILES = (50, 95, 99)


def worker_peak_rss_bytes() -> int:
    """This process's peak RSS; ru_maxrss is KiB on Linux, bytes on macOS."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":  # pragma: no cover
        return int(peak)
    return int(peak) * 1024


@dataclass
class RunSummary:
    """Compact, process-boundary-safe summary of one experiment run.

    Attribute names mirror :class:`~repro.harness.runner.
    ExperimentResult` (``throughput_tps``, ``latency_mean``,
    ``view_changes``, ``events_per_sec``, ``commit_hash``...) so
    aggregation code — :class:`repro.harness.repeat.ReplicatedResult`,
    the CLI's results table, the benchmark grids — works identically on
    either type.
    """

    label: str
    seed: int
    throughput_tps: float
    latency_mean: float
    latency_percentiles: dict
    committed_tx: int
    emitted_tx: int
    view_changes: int
    events_processed: int
    wall_clock_s: float
    commit_hash: str
    violations: list = field(default_factory=list)
    fetch_count: int = 0
    forwarded_microblocks: int = 0
    #: Bytes serialized network-wide (``NetworkStats.total_bytes``);
    #: benches divide by n for mean per-replica link load.
    net_bytes_sent: float = 0.0
    peak_rss_bytes: int = 0
    fault_report: Optional[list] = None
    timeline: Optional[list] = None
    #: Durable-executor recovery rows (durability runs only); recovery
    #: durations are host wall clock, so parallel and serial runs may
    #: differ here — keep it out of determinism-gated output.
    recovery_report: Optional[list] = None

    @property
    def events_per_sec(self) -> float:
        if self.wall_clock_s <= 0:
            return 0.0
        return self.events_processed / self.wall_clock_s

    def latency_percentile(self, p: float) -> float:
        """Latency percentile, limited to :data:`SUMMARY_PERCENTILES`."""
        key = int(p)
        if key not in self.latency_percentiles:
            raise ValueError(
                f"summary only carries percentiles "
                f"{sorted(self.latency_percentiles)}, asked for {p}"
            )
        return self.latency_percentiles[key]

    @classmethod
    def from_result(
        cls,
        result: ExperimentResult,
        timeline_bucket: Optional[float] = None,
    ) -> "RunSummary":
        """Flatten a full result; the one place the conversion lives.

        The serial (``jobs=1``) paths run this in-process on the same
        :class:`ExperimentResult` a worker would have produced, so serial
        and parallel sweeps render from identical summaries.
        """
        metrics = result.metrics
        timeline = None
        if timeline_bucket is not None:
            timeline = [
                (t, tps) for t, tps in metrics.throughput_series(
                    0.0, result.config.end_time, timeline_bucket,
                )
            ]
        fault_report = None
        if result.config.faults is not None:
            fault_report = metrics.fault_report()
        recovery_report = None
        if result.config.durability is not None:
            recovery_report = metrics.recovery_report()
        return cls(
            label=result.label,
            seed=result.config.seed,
            throughput_tps=result.throughput_tps,
            latency_mean=result.latency_mean,
            latency_percentiles={
                p: result.latency_percentile(p) for p in SUMMARY_PERCENTILES
            },
            committed_tx=result.committed_tx,
            emitted_tx=result.emitted_tx,
            view_changes=result.view_changes,
            events_processed=result.events_processed,
            wall_clock_s=result.wall_clock_s,
            commit_hash=result.commit_hash,
            violations=[v.to_dict() for v in result.violations],
            fetch_count=metrics.fetch_count,
            forwarded_microblocks=metrics.forwarded_microblocks,
            net_bytes_sent=result.network.stats.total_bytes(),
            peak_rss_bytes=worker_peak_rss_bytes(),
            fault_report=fault_report,
            timeline=timeline,
            recovery_report=recovery_report,
        )

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "seed": self.seed,
            "throughput_tps": self.throughput_tps,
            "latency_mean": self.latency_mean,
            "latency_percentiles": dict(self.latency_percentiles),
            "committed_tx": self.committed_tx,
            "emitted_tx": self.emitted_tx,
            "view_changes": self.view_changes,
            "events_processed": self.events_processed,
            "wall_clock_s": self.wall_clock_s,
            "commit_hash": self.commit_hash,
            "violations": list(self.violations),
            "fetch_count": self.fetch_count,
            "forwarded_microblocks": self.forwarded_microblocks,
            "net_bytes_sent": self.net_bytes_sent,
            "peak_rss_bytes": self.peak_rss_bytes,
            "fault_report": self.fault_report,
            "timeline": self.timeline,
            "recovery_report": self.recovery_report,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSummary":
        data = dict(data)
        data["latency_percentiles"] = {
            int(p): value
            for p, value in data["latency_percentiles"].items()
        }
        if data.get("timeline") is not None:
            data["timeline"] = [tuple(point) for point in data["timeline"]]
        return cls(**data)


@dataclass(frozen=True)
class JobSpec:
    """One unit of parallel work: a kind tag plus plain-data payload.

    ``kind`` selects the executor function from :data:`JOB_KINDS`;
    ``payload`` is that kind's serialized input and ``options`` its
    keyword knobs. Everything must be picklable plain data.
    """

    kind: str
    payload: dict
    options: dict = field(default_factory=dict)
    label: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "payload": self.payload,
            "options": dict(self.options),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        return cls(**data)


def experiment_job(
    config: ExperimentConfig,
    timeline_bucket: Optional[float] = None,
    oracles: bool = False,
) -> JobSpec:
    """Spec for one harness experiment (sweep cell, replicated seed...).

    With ``oracles=True`` the worker arms the standard invariant suite
    and the summary's ``violations`` list carries whatever it found —
    how the sharding bench keeps every measured point oracle-checked.
    """
    options: dict = {}
    if timeline_bucket is not None:
        options["timeline_bucket"] = timeline_bucket
    if oracles:
        options["oracles"] = True
    return JobSpec(
        kind="experiment",
        payload=config.to_dict(),
        options=options,
        label=config.label or f"seed{config.seed}",
    )


def netbench_job(config) -> JobSpec:
    """Spec for one dissemination-bench cell (``repro.harness.netbench``)."""
    return JobSpec(
        kind="netbench",
        payload=config.to_dict(),
        label=config.label,
    )


def scenario_job(
    scenario,
    liveness_bound: Optional[float] = None,
    strict_availability: bool = False,
    mutant: Optional[str] = None,
) -> JobSpec:
    """Spec for one oracle-armed fuzz scenario.

    ``mutant`` names an entry of :data:`repro.verification.mutations.
    MUTANTS`; the worker re-applies the broken classes, mirroring what
    artifact replay does, because class objects themselves cannot cross
    the spawn boundary.
    """
    options: dict = {}
    if liveness_bound is not None:
        options["liveness_bound"] = liveness_bound
    if strict_availability:
        options["strict_availability"] = True
    if mutant is not None:
        options["mutant"] = mutant
    return JobSpec(
        kind="scenario",
        payload=scenario.to_dict(),
        options=options,
        label=scenario.label,
    )


def _run_experiment_job(payload: dict, options: dict) -> dict:
    config = ExperimentConfig.from_dict(payload)
    suite = None
    if options.get("oracles"):
        from repro.verification.oracles import standard_suite

        suite = standard_suite()
    result = run_experiment(config, suite)
    summary = RunSummary.from_result(
        result, timeline_bucket=options.get("timeline_bucket"),
    )
    return {"summary": summary.to_dict()}


def _run_netbench_job(payload: dict, options: dict) -> dict:
    from repro.harness.netbench import NetBenchConfig, run_netbench

    result = run_netbench(NetBenchConfig.from_dict(payload))
    return {
        "netbench": {
            "label": result.label,
            "seed": result.seed,
            "events_processed": result.events_processed,
            "wall_clock_s": result.wall_clock_s,
            "delivered": result.delivered,
            "dropped": result.dropped,
            "sim_seconds": result.sim_seconds,
            "fingerprint": result.fingerprint,
        }
    }


def _run_scenario_job(payload: dict, options: dict) -> dict:
    from repro.verification.fuzzer import Scenario, run_scenario

    scenario = Scenario.from_dict(payload)
    mempool_cls = consensus_cls = None
    strict = bool(options.get("strict_availability", False))
    mutant_name = options.get("mutant")
    if mutant_name is not None:
        from repro.verification.mutations import MUTANTS

        mutant = MUTANTS[mutant_name]
        mempool_cls = mutant.mempool_cls
        consensus_cls = mutant.consensus_cls
        strict = strict or mutant.strict_availability
    outcome = run_scenario(
        scenario,
        liveness_bound=options.get("liveness_bound"),
        strict_availability=strict,
        mempool_cls=mempool_cls,
        consensus_cls=consensus_cls,
    )
    return {"outcome": outcome.to_dict(), "ok": outcome.ok}


def _run_selftest_job(payload: dict, options: dict) -> dict:
    """Executor plumbing probe: sleep, raise, or die on command.

    Exists so the executor's timeout / clean-exception / crash-isolation
    paths have something deterministic to exercise without building a
    simulation (see ``tests/test_parallel.py``).
    """
    action = payload.get("action", "echo")
    if action == "sleep":
        time.sleep(float(payload.get("seconds", 60.0)))
    elif action == "raise":
        raise RuntimeError(payload.get("message", "selftest failure"))
    elif action == "exit":
        # Simulate a hard worker death (segfault/OOM-kill): no exception,
        # no result message, just a closed pipe and a non-zero exitcode.
        os._exit(int(payload.get("code", 3)))
    return {"echo": payload.get("echo"), "pid": os.getpid()}


JOB_KINDS = {
    "experiment": _run_experiment_job,
    "netbench": _run_netbench_job,
    "scenario": _run_scenario_job,
    "selftest": _run_selftest_job,
}


def execute_job(spec_dict: dict) -> dict:
    """Run one job spec to completion in the current process.

    Shared by the spawned worker entrypoint and the in-process serial
    path (``jobs=1``), so both produce byte-identical result dicts.
    """
    kind = spec_dict["kind"]
    if kind not in JOB_KINDS:
        raise ValueError(
            f"unknown job kind {kind!r}; choose from {sorted(JOB_KINDS)}"
        )
    started = time.perf_counter()
    value = JOB_KINDS[kind](
        spec_dict["payload"], spec_dict.get("options") or {},
    )
    value["worker_wall_s"] = round(time.perf_counter() - started, 4)
    value["worker_peak_rss_bytes"] = worker_peak_rss_bytes()
    return value


def worker_main(conn, spec_dict: dict) -> None:
    """Entrypoint of a spawned worker: run one job, send one message.

    A clean Python exception is reported as ``{"ok": False}`` with the
    formatted traceback — deterministic failures are not retried. A hard
    death (the ``exit`` selftest, a real segfault) sends nothing; the
    parent sees the pipe close and the non-zero exitcode.
    """
    try:
        value = execute_job(spec_dict)
        conn.send({"ok": True, "value": value})
    except BaseException:
        try:
            conn.send({"ok": False, "error": traceback.format_exc()})
        except (BrokenPipeError, OSError):  # parent already gone
            pass
    finally:
        conn.close()
