"""Parallel experiment execution: process-pool fan-out with determinism.

Every figure sweep, seed-replicated point, fuzz iteration, and shrink
candidate in this repo is an independent deterministic simulation; this
package runs those sets across cores while keeping results bit-for-bit
equal to a serial run. See DESIGN.md ("Parallel execution") for the
spawn-vs-fork rationale and the ordering guarantee.

Quickstart::

    from repro.parallel import sweep

    summaries = sweep(configs, jobs=4)       # order == configs order
    hashes = [s.commit_hash for s in summaries]
"""

from repro.parallel.executor import (
    JobResult,
    ParallelExecutor,
    default_jobs,
    sweep,
)
from repro.parallel.jobs import (
    JOB_KINDS,
    JobSpec,
    RunSummary,
    execute_job,
    experiment_job,
    netbench_job,
    scenario_job,
    worker_peak_rss_bytes,
)

__all__ = [
    "JOB_KINDS",
    "JobResult",
    "JobSpec",
    "ParallelExecutor",
    "RunSummary",
    "default_jobs",
    "execute_job",
    "experiment_job",
    "netbench_job",
    "scenario_job",
    "sweep",
    "worker_peak_rss_bytes",
]
