"""Process-pool experiment executor with deterministic result ordering.

Independent simulations — sweep cells, seed replicas, fuzz iterations,
shrink candidates — fan out across worker processes, one **process per
job**:

* **spawn, not fork.** Each worker is a fresh interpreter that
  re-imports ``repro`` and rebuilds its job from a plain-dict
  :class:`~repro.parallel.jobs.JobSpec`. Forking would duplicate the
  parent's heap (live simulators, metrics hubs, an inherited — and then
  shared — RNG registry) into every child; any determinism would be an
  accident of what the parent happened to have touched. Spawn makes the
  worker's entire world an explicit function of the spec.
* **Crash isolation.** A worker that dies (segfault, OOM-kill,
  ``os._exit``) closes its result pipe; the parent records that one job
  as failed (after bounded retries) and the rest of the sweep proceeds.
  A pooled design (``concurrent.futures``) would instead poison the
  whole pool on the first dead worker.
* **Per-job timeout + bounded retry.** Timeouts and hard deaths are
  environmental, so they are retried up to ``retries`` times; a clean
  Python exception inside a deterministic simulation would fail
  identically every time and is not retried.
* **Deterministic ordering.** Results are buffered and yielded strictly
  in submission order regardless of completion order, so any
  aggregation downstream (means, tables, ``--stop-on-failure`` cuts) is
  reproducible and equal to the serial run's. The simulations
  themselves are deterministic functions of their specs, so parallel
  commit-sequence hashes are bit-for-bit the serial hashes.

``jobs=1`` short-circuits to an in-process loop (same
:func:`~repro.parallel.jobs.execute_job` code path, no subprocess),
which is the serial baseline every parallel run is hash-gated against.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.parallel.jobs import (
    JobSpec,
    RunSummary,
    execute_job,
    experiment_job,
    worker_main,
)

#: Grace period between SIGTERM and SIGKILL for a timed-out worker.
_KILL_GRACE_S = 2.0
#: Poll interval while waiting on worker pipes (also bounds how late a
#: per-job timeout can fire).
_WAIT_S = 0.05


def default_jobs() -> int:
    """Worker count when none is given: one per available core."""
    return max(1, os.cpu_count() or 1)


@dataclass
class JobResult:
    """Outcome of one job, success or failure, in submission order."""

    index: int
    spec: JobSpec
    value: Optional[dict] = None
    error: Optional[str] = None
    attempts: int = 1
    wall_s: float = 0.0
    timed_out: bool = False
    crashed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def summary(self) -> Optional[RunSummary]:
        """Decode an experiment job's summary (None for other kinds)."""
        if self.value is None or "summary" not in self.value:
            return None
        return RunSummary.from_dict(self.value["summary"])


@dataclass
class _Running:
    """Parent-side state of one in-flight worker process."""

    index: int
    spec_dict: dict
    attempts: int
    proc: multiprocessing.process.BaseProcess
    conn: object
    started: float
    deadline: Optional[float]
    first_started: float


class ParallelExecutor:
    """Fan independent jobs out across processes; yield results in order.

    Parameters
    ----------
    jobs:
        Worker-process cap. ``None`` means one per core; ``1`` runs
        everything serially in-process (no subprocesses at all).
    timeout:
        Per-attempt wall-clock budget in seconds (``None`` = unlimited).
        A timed-out worker is terminated and the attempt counts as a
        failure.
    retries:
        How many *additional* attempts a crashed or timed-out job gets.
        Clean in-job exceptions are deterministic and never retried.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs if jobs is not None else default_jobs()
        self.timeout = timeout
        self.retries = retries
        self._ctx = multiprocessing.get_context("spawn")

    # -- public API --------------------------------------------------------

    def map(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        """Run every spec; return results in submission order."""
        return list(self.imap(specs))

    def imap(self, specs: Sequence[JobSpec]) -> Iterator[JobResult]:
        """Yield :class:`JobResult` in submission order as they settle.

        Result ``i`` is yielded only once jobs ``0..i-1`` have been
        yielded, regardless of completion order. Closing the generator
        early (e.g. a ``--stop-on-failure`` break) terminates the
        still-running workers.
        """
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, JobSpec):
                raise TypeError(f"expected JobSpec, got {type(spec).__name__}")
        if self.jobs <= 1:
            return self._imap_serial(specs)
        return self._imap_parallel(specs)

    # -- serial path -------------------------------------------------------

    def _imap_serial(self, specs: List[JobSpec]) -> Iterator[JobResult]:
        for index, spec in enumerate(specs):
            started = time.perf_counter()
            try:
                value = execute_job(spec.to_dict())
                yield JobResult(
                    index=index, spec=spec, value=value,
                    wall_s=time.perf_counter() - started,
                )
            except Exception:
                import traceback

                yield JobResult(
                    index=index, spec=spec, error=traceback.format_exc(),
                    wall_s=time.perf_counter() - started,
                )

    # -- parallel path -----------------------------------------------------

    def _imap_parallel(self, specs: List[JobSpec]) -> Iterator[JobResult]:
        pending: deque = deque(
            (index, spec.to_dict(), 1, None) for index, spec in enumerate(specs)
        )  # (index, spec_dict, attempt, first_started)
        running: dict = {}  # conn -> _Running
        done: dict = {}  # index -> JobResult
        next_out = 0
        try:
            while pending or running or next_out in done:
                while next_out in done:
                    yield done.pop(next_out)
                    next_out += 1
                if not pending and not running:
                    break
                while pending and len(running) < self.jobs:
                    self._start(pending.popleft(), running)
                self._reap(specs, running, done, pending)
        finally:
            for state in running.values():
                self._kill(state)

    def _start(self, item, running: dict) -> None:
        index, spec_dict, attempt, first_started = item
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, spec_dict),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the worker holds the only write end now
        now = time.perf_counter()
        running[parent_conn] = _Running(
            index=index,
            spec_dict=spec_dict,
            attempts=attempt,
            proc=proc,
            conn=parent_conn,
            started=now,
            deadline=(now + self.timeout) if self.timeout else None,
            first_started=first_started if first_started is not None else now,
        )

    def _reap(
        self, specs: List[JobSpec], running: dict, done: dict, pending: deque
    ) -> None:
        """Collect finished/crashed/timed-out workers once."""
        conns = list(running)
        if not conns:
            return
        try:
            ready = multiprocessing.connection.wait(conns, timeout=_WAIT_S)
        except OSError:  # a pipe vanished under us; re-poll next loop
            ready = []
        now = time.perf_counter()
        for conn in ready:
            state = running.pop(conn)
            message = None
            try:
                message = conn.recv()
            except (EOFError, OSError):
                message = None  # died before (or while) sending
            conn.close()
            state.proc.join()
            if message is None:
                self._fail_or_retry(
                    specs, state, done, pending, crashed=True,
                    reason=(
                        f"worker exited with code {state.proc.exitcode} "
                        "before reporting a result"
                    ),
                )
            elif message.get("ok"):
                done[state.index] = JobResult(
                    index=state.index,
                    spec=specs[state.index],
                    value=message["value"],
                    attempts=state.attempts,
                    wall_s=now - state.first_started,
                )
            else:
                # Clean exception: deterministic, never retried.
                done[state.index] = JobResult(
                    index=state.index,
                    spec=specs[state.index],
                    error=message.get("error", "worker error"),
                    attempts=state.attempts,
                    wall_s=now - state.first_started,
                )
        for conn, state in list(running.items()):
            if state.deadline is not None and now > state.deadline:
                running.pop(conn)
                self._kill(state)
                self._fail_or_retry(
                    specs, state, done, pending, timed_out=True,
                    reason=(
                        f"attempt exceeded the {self.timeout:.1f}s "
                        "per-job timeout"
                    ),
                )

    def _fail_or_retry(
        self,
        specs: List[JobSpec],
        state: _Running,
        done: dict,
        pending: deque,
        reason: str,
        timed_out: bool = False,
        crashed: bool = False,
    ) -> None:
        if state.attempts <= self.retries:
            # Retry at the front so the wounded job settles early; the
            # output order is fixed by submission index either way.
            pending.appendleft((
                state.index, state.spec_dict, state.attempts + 1,
                state.first_started,
            ))
            return
        done[state.index] = JobResult(
            index=state.index,
            spec=specs[state.index],
            error=f"{reason} (after {state.attempts} attempt(s))",
            attempts=state.attempts,
            wall_s=time.perf_counter() - state.first_started,
            timed_out=timed_out,
            crashed=crashed,
        )

    def _kill(self, state: _Running) -> None:
        try:
            state.proc.terminate()
            state.proc.join(_KILL_GRACE_S)
            if state.proc.is_alive():  # pragma: no cover - stubborn child
                state.proc.kill()
                state.proc.join()
        finally:
            try:
                state.conn.close()
            except OSError:  # pragma: no cover
                pass


def sweep(
    configs: Iterable,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    executor: Optional[ParallelExecutor] = None,
    timeline_bucket: Optional[float] = None,
) -> List[RunSummary]:
    """Run independent :class:`ExperimentConfig` cells; summaries in order.

    The workhorse behind the CLI's ``--jobs`` sweep and the benchmark
    grids. Results arrive in submission order, so a parallel sweep's
    table is byte-identical to the serial one. Raises ``RuntimeError``
    if any cell ultimately fails (crash after retries, timeout, or an
    in-run exception).
    """
    if executor is None:
        executor = ParallelExecutor(jobs=jobs, timeout=timeout,
                                    retries=retries)
    specs = [
        experiment_job(config, timeline_bucket=timeline_bucket)
        for config in configs
    ]
    summaries: List[RunSummary] = []
    failures: List[str] = []
    for job in executor.map(specs):
        if job.error is not None:
            failures.append(f"{job.spec.label}: {job.error}")
            continue
        summaries.append(job.summary)
    if failures:
        raise RuntimeError(
            f"{len(failures)} sweep cell(s) failed:\n" + "\n".join(failures)
        )
    return summaries
