"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue: events are ``(time, sequence,
callback)`` triples ordered by time with the insertion sequence breaking
ties, which makes every run fully deterministic for a fixed seed and
schedule of callbacks.

Protocol code interacts with the engine through three operations:

* :meth:`Simulator.schedule` — run a callback after a delay,
* :meth:`Simulator.schedule_at` — run a callback at an absolute time,
* :meth:`Simulator.run` / :meth:`Simulator.run_until` — drive the loop.

Timers (view-change timers, fetch timeouts, proxy timeouts) are cancellable
via the returned :class:`Timer` handle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)`` so the heap pops them in
    chronological order with FIFO tie-breaking.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Timer:
    """Cancellable handle for a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def deadline(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        return not self._event.cancelled

    def cancel(self) -> None:
        """Prevent the callback from firing.

        Cancelling an already-fired or already-cancelled timer is a no-op,
        which lets protocol code cancel unconditionally on cleanup paths.
        """
        self._event.cancelled = True


class Simulator:
    """Single-threaded deterministic event loop.

    The clock unit is seconds (floats). ``now`` is only advanced by the
    loop; callbacks must never sleep or block.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}; now is {self._now:.6f}"
            )
        event = Event(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return Timer(event)

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= end_time``; return the number executed.

        The clock is left at ``end_time`` even if the queue drains early, so
        back-to-back phases observe a continuous timeline.
        """
        if self._running:
            raise SimulationError("run_until called re-entrantly from a callback")
        self._running = True
        executed = 0
        try:
            while self._queue and self._queue[0].time <= end_time:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
                executed += 1
                self._processed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if not self._queue or self._queue[0].time > end_time:
            self._now = max(self._now, end_time)
        return executed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue is empty (or ``max_events`` is reached)."""
        return self.run_until(float("inf"), max_events=max_events)

    def drain_cancelled(self) -> None:
        """Drop cancelled events from the heap (memory hygiene for long runs)."""
        live = [event for event in self._queue if not event.cancelled]
        heapq.heapify(live)
        self._queue = live
