"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue: events are ``(time, sequence,
callback)`` triples ordered by time with the insertion sequence breaking
ties, which makes every run fully deterministic for a fixed seed and
schedule of callbacks.

Protocol code interacts with the engine through three operations:

* :meth:`Simulator.schedule` — run a callback after a delay,
* :meth:`Simulator.schedule_at` — run a callback at an absolute time,
* :meth:`Simulator.run` / :meth:`Simulator.run_until` — drive the loop.

Timers (view-change timers, fetch timeouts, proxy timeouts) are cancellable
via the returned :class:`Timer` handle.

Performance notes: the heap stores plain ``(time, seq, event)`` tuples so
ordering is resolved by C-level tuple comparison (``seq`` is unique, so
the event object itself is never compared), and :class:`Event` is a
``__slots__`` class rather than a dataclass. Cancelled events are left in
the heap (cancellation stays O(1)) but the simulator compacts the heap
automatically once cancelled entries outnumber live ones — chaos runs
cancel view/fetch timers by the thousand, and without compaction they
would linger until their deadline.

Hot subsystems (the network's serialization/delivery chain, ingress CPU
queues) use :meth:`Simulator.schedule_fire` instead of ``schedule``: it
pushes a raw ``(time, seq, callback, arg)`` tuple with no ``Event`` or
``Timer`` allocation at all. Fire-entries are not cancellable — callers
must guard staleness themselves (epoch counters, ``done`` flags). The
run loop tells the two entry shapes apart by tuple length; ``seq``
uniqueness still guarantees the comparison never reaches the callback.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.sim.interfaces import Scheduler

#: Compaction never triggers below this queue size: rebuilding a tiny
#: heap costs more bookkeeping than the dead entries are worth.
_COMPACT_MIN_QUEUE = 64


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly."""


class Event:
    """A scheduled callback with its lifecycle flags.

    ``cancelled`` and ``fired`` are distinct states: a fired event was
    consumed by the loop, a cancelled one will be skipped (and eventually
    compacted away). Heap ordering lives in the ``(time, seq)`` tuple the
    simulator pushes alongside the event, not on the event itself.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False


class Timer:
    """Cancellable handle for a scheduled event."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def deadline(self) -> float:
        return self._event.time

    @property
    def active(self) -> bool:
        """True only while the callback can still fire.

        An event that already executed is not active — previously a
        fired timer kept reporting ``True``, which let protocol code
        mistake a dead timeout for a pending one.
        """
        event = self._event
        return not (event.cancelled or event.fired)

    def cancel(self) -> None:
        """Prevent the callback from firing.

        Cancelling an already-fired or already-cancelled timer is a no-op,
        which lets protocol code cancel unconditionally on cleanup paths.
        """
        event = self._event
        if event.cancelled or event.fired:
            return
        event.cancelled = True
        self._sim._note_cancelled()


class Simulator(Scheduler):
    """Single-threaded deterministic event loop.

    The clock unit is seconds (floats). ``now`` is only advanced by the
    loop; callbacks must never sleep or block.
    """

    __slots__ = (
        "_queue", "_seq", "_now", "_running", "_processed",
        "_cancelled", "_compactions",
    )

    def __init__(self) -> None:
        # Entries are (time, seq, Event) triples or raw
        # (time, seq, callback, arg) fire-tuples; see schedule_fire.
        self._queue: list[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Number of cancelled events still occupying heap slots."""
        return self._cancelled

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def compactions(self) -> int:
        """How many times the heap was auto-compacted."""
        return self._compactions

    def schedule(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}; now is {self._now:.6f}"
            )
        event = Event(time, self._seq, callback)
        heapq.heappush(self._queue, (time, self._seq, event))
        self._seq += 1
        return Timer(event, self)

    def schedule_fire(self, delay: float, callback, arg) -> None:
        """No-allocation fast path: run ``callback(arg)`` after ``delay``.

        Unlike :meth:`schedule` this returns no handle and cannot be
        cancelled — the heap entry is a bare tuple. Intended for the
        simulator-internal hot chains (uplink drains, deliveries,
        ingress processing) where the callback itself checks staleness.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, callback, arg))

    def schedule_fire_at(self, time: float, callback, arg) -> None:
        """Absolute-time variant of :meth:`schedule_fire`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}; now is {self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, arg))

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= end_time``; return the number executed.

        The clock is left at ``end_time`` even if the queue drains early, so
        back-to-back phases observe a continuous timeline.
        """
        if self._running:
            raise SimulationError("run_until called re-entrantly from a callback")
        self._running = True
        executed = 0
        # Compaction rebuilds the queue *in place* (see drain_cancelled),
        # so the local binding stays valid across callbacks.
        queue = self._queue
        heappop = heapq.heappop
        try:
            if max_events is None:
                # Hot loop: no per-event limit check. The perf harness
                # always runs here, so every instruction counts.
                while queue and queue[0][0] <= end_time:
                    entry = heappop(queue)
                    if len(entry) == 4:
                        # Raw fire-tuple: (time, seq, callback, arg).
                        self._now = entry[0]
                        entry[2](entry[3])
                        executed += 1
                    else:
                        event = entry[2]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        event.fired = True
                        self._now = event.time
                        event.callback()
                        executed += 1
            else:
                while queue and queue[0][0] <= end_time:
                    entry = heappop(queue)
                    if len(entry) == 4:
                        self._now = entry[0]
                        entry[2](entry[3])
                    else:
                        event = entry[2]
                        if event.cancelled:
                            self._cancelled -= 1
                            continue
                        event.fired = True
                        self._now = event.time
                        event.callback()
                    executed += 1
                    if executed >= max_events:
                        break
        finally:
            # The executed-count accumulates locally; ``processed`` is a
            # post-run gauge, so one write per run_until call suffices.
            self._processed += executed
            self._running = False
        if not self._queue or self._queue[0][0] > end_time:
            self._now = max(self._now, end_time)
        return executed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue is empty (or ``max_events`` is reached)."""
        return self.run_until(float("inf"), max_events=max_events)

    def _note_cancelled(self) -> None:
        """Account one cancellation; compact when the dead outnumber the live."""
        self._cancelled += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled * 2 > len(self._queue)
        ):
            self.drain_cancelled()
            self._compactions += 1

    def drain_cancelled(self) -> None:
        """Drop cancelled events from the heap (memory hygiene for long runs).

        The rebuild happens in place (slice assignment) so the list
        object's identity is stable — ``run_until`` holds a local
        reference to it across callbacks, and compaction runs *from*
        callbacks.
        """
        live = [
            entry for entry in self._queue
            if len(entry) == 4 or not entry[2].cancelled
        ]
        heapq.heapify(live)
        self._queue[:] = live
        self._cancelled = 0
