"""The scheduler/transport seam between protocol code and its runtime.

Every protocol component (replica, consensus engine, mempool) interacts
with its environment through exactly two narrow surfaces:

* :class:`Scheduler` — a clock (``now``) plus cancellable timers
  (``schedule`` / ``schedule_at`` returning a :class:`TimerHandle`);
* :class:`Transport` — point-to-point ``send`` and fan-out ``broadcast``
  of :class:`Envelope` messages to registered per-node handlers.

Two backends satisfy the seam:

* the deterministic discrete-event pair
  (:class:`repro.sim.engine.Simulator`,
  :class:`repro.sim.network.Network`), under which every experiment is
  bit-for-bit reproducible; and
* the live pair (:class:`repro.live.scheduler.RealtimeScheduler`,
  :class:`repro.live.network.LiveNetwork`), which runs the *same*
  protocol classes over real asyncio TCP sockets, one OS process per
  replica.

Keeping the seam this small is what lets the unmodified consensus +
mempool stack run on either backend (the Bamboo/Narwhal "pluggable
transport" pattern). Protocol code must never import simulator or
asyncio internals directly — only this module.
"""

from __future__ import annotations

import abc
import enum
from typing import Callable, Optional, Protocol, runtime_checkable


class Channel(enum.Enum):
    """Egress/ingress priority classes (Section VI, "Optimizations").

    CONSENSUS carries proposals and votes; CONTROL carries small protocol
    messages (acks, proofs, fetch requests, load queries) that must not
    sit behind bulk transfers; DATA carries microblock bodies. Priority
    is strict in enum order. The simulated network enforces the priority
    on a modeled uplink; the live transport maps every class onto the
    same TCP stream (per-peer FIFO) and keeps the class only for
    accounting.
    """

    CONSENSUS = 0
    CONTROL = 1
    DATA = 2


class Envelope:
    """A network-level message.

    ``payload`` is an arbitrary protocol object; the transport only looks
    at ``size_bytes`` (for serialization time or framing) and ``kind``
    (for routing and accounting). A ``__slots__`` class rather than a
    dataclass: envelopes are minted once per (message, recipient) pair,
    squarely on the hot path.
    """

    __slots__ = (
        "src", "dst", "kind", "size_bytes", "payload", "channel",
        "enqueued_at", "sent_at",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
        enqueued_at: float = 0.0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.size_bytes = size_bytes
        self.payload = payload
        self.channel = channel
        self.enqueued_at = enqueued_at
        # When the last byte left the sender's uplink (set by the
        # simulated network at serialization time; 0.0 elsewhere). Used
        # to discard copies that were still on the wire when the sender
        # crashed.
        self.sent_at = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Envelope({self.src}->{self.dst}, {self.kind!r}, "
            f"{self.size_bytes:.0f}B, {self.channel.name})"
        )


Handler = Callable[[Envelope], None]


@runtime_checkable
class TimerHandle(Protocol):
    """Cancellable handle for a scheduled callback.

    ``active`` is True only while the callback can still fire; cancelling
    an already-fired or already-cancelled timer must be a no-op so
    protocol cleanup paths can cancel unconditionally.
    """

    @property
    def deadline(self) -> float: ...

    @property
    def active(self) -> bool: ...

    def cancel(self) -> None: ...


class Scheduler(abc.ABC):
    """A clock plus cancellable one-shot timers.

    The clock unit is seconds (floats) since the run's origin. Under the
    simulator ``now`` only advances inside the event loop; under the live
    backend it tracks wall-clock time relative to the cluster epoch.
    Callbacks run on the owning event loop's thread in both backends, so
    protocol code never needs locks.
    """

    # Empty slots so subclasses may opt into __slots__ (the simulator
    # does); slot-less subclasses still get a __dict__ as usual.
    __slots__ = ()

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds since the run's origin."""

    @abc.abstractmethod
    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` seconds; returns a timer handle."""

    @abc.abstractmethod
    def schedule_at(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at absolute time ``time``; returns a timer handle."""

    def schedule_fire(self, delay: float, callback, arg) -> None:
        """Fire-and-forget: run ``callback(arg)`` after ``delay`` seconds.

        No handle is returned and the call cannot be cancelled — callers
        must guard staleness themselves (identity checks, ``done``
        flags). The simulator overrides this with an allocation-free
        heap entry; the default implementation just wraps ``schedule``,
        so protocol code may use it on any backend.
        """
        self.schedule(delay, lambda: callback(arg))


class Transport(abc.ABC):
    """Message fabric connecting ``n`` replicas.

    Implementations should preserve per-(src, dst) FIFO ordering for
    delivered messages — protocol recovery paths (PAB body-before-proof,
    chain sync) rely on it for the fast path — but may drop messages
    entirely (loss, crashed endpoints). The simulated fair-share link
    model relaxes FIFO across *sizes* (a small message may overtake a
    bulk transfer to the same peer, as parallel TCP streams do); protocol
    code must tolerate that via its recovery paths (PAB fetches a body
    when a proof arrives first). Handlers are invoked synchronously on
    the scheduler's event-loop thread.
    """

    @abc.abstractmethod
    def register(self, node: int, handler: Handler) -> None:
        """Attach the message handler for ``node``."""

    @abc.abstractmethod
    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
    ) -> None:
        """Queue one message from ``src`` to ``dst``."""

    @abc.abstractmethod
    def broadcast(
        self,
        src: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
        recipients: Optional[list[int]] = None,
        include_self: bool = False,
    ) -> None:
        """Send one copy per recipient (defaults to every other replica)."""

    # -- congestion signals ----------------------------------------------

    def expected_transfer_seconds(
        self, src: int, size_bytes: float, copies: int = 1
    ) -> Optional[float]:
        """Estimated seconds for ``src`` to serialize ``copies`` messages
        of ``size_bytes`` each, *including* its current egress backlog.

        Retransmission timers use this as a congestion-aware floor: on a
        contended uplink the honest answer to "did my push get lost?" is
        "it has not finished serializing yet", and retrying at the
        uncongested cadence adds load exactly when the link can least
        absorb it. ``None`` (the default, and the live transport's
        answer — TCP already retransmits) means no estimate is
        available.
        """
        return None

    # -- endpoint lifecycle (crash-recovery model) -----------------------

    def set_node_down(self, node: int) -> None:
        """Crash ``node``'s endpoint (default: unsupported, no-op).

        The simulated network models this precisely (queue flushes,
        in-flight discards); the live transport's equivalent is killing
        the replica's process, so the default implementation does
        nothing.
        """

    def set_node_up(self, node: int) -> None:
        """Re-register a crashed node's endpoint (default: no-op)."""

    def is_down(self, node: int) -> bool:
        return False
