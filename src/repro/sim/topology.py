"""Network topologies: delay matrices, bandwidth maps, delay schedules.

Two presets mirror the paper's testbeds (Section VII-A):

* :func:`lan_topology` — "national" deployment: 1 Gb/s per replica,
  inter-replica RTT under 10 ms.
* :func:`wan_topology` — "regional" deployment emulated with NetEm:
  100 Mb/s per replica, 100 ms inter-replica RTT.

A :class:`DelaySchedule` layers time-varying extra delay on top of the
base matrix; :class:`FluctuationWindow` reproduces the Fig. 7 experiment
(a 10 s window during which every message sees 200 ms base + 100 ms
uniform jitter instead of the normal link delay).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import random

GBPS = 1_000_000_000
MBPS = 1_000_000


class DelaySchedule:
    """Time-varying network disturbance applied to all links.

    ``sample(now, rng)`` returns ``None`` when the schedule is inactive
    (base topology delay applies) or an absolute one-way delay in seconds
    when it is active. ``bandwidth_factor(now)`` scales effective link
    bandwidth (1.0 = unaffected).
    """

    def sample(self, now: float, rng: random.Random) -> Optional[float]:
        raise NotImplementedError

    def bandwidth_factor(self, now: float) -> float:
        return 1.0


@dataclass
class FluctuationWindow(DelaySchedule):
    """Uniform-jitter delay window, as injected via NetEm in Fig. 7.

    During ``[start, start + duration)`` each message experiences a one-way
    delay drawn uniformly from ``[base - jitter, base + jitter]``. The
    paper describes the round-trip fluctuating between 100 ms and 300 ms
    ("200 ms base with 100 ms uniform jitter"); one-way figures are half.

    ``throughput_factor`` models what heavy jitter does to TCP bulk
    transfers: reordering is mistaken for loss, so the goodput of large
    flows collapses while small control messages still get through. The
    prototype runs over TCP, so the simulation scales effective link
    bandwidth by this factor inside the window (a documented substitution
    for full TCP dynamics; see DESIGN.md).
    """

    start: float
    duration: float
    base: float
    jitter: float
    throughput_factor: float = 1.0

    def active(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration

    def sample(self, now: float, rng: random.Random) -> Optional[float]:
        if self.active(now):
            return max(0.0, self.base + rng.uniform(-self.jitter, self.jitter))
        return None

    def bandwidth_factor(self, now: float) -> float:
        return self.throughput_factor if self.active(now) else 1.0


class Topology:
    """Static delay/bandwidth description of a replica network.

    Parameters
    ----------
    n:
        Number of replicas.
    one_way_delay:
        Base one-way propagation delay in seconds between distinct
        replicas (RTT / 2).
    bandwidth_bps:
        Default egress bandwidth in bits per second for every replica.
    delay_jitter:
        Half-width of the uniform jitter applied to each message's
        propagation delay in the normal case (small for private networks,
        per Appendix B).
    """

    def __init__(
        self,
        n: int,
        one_way_delay: float,
        bandwidth_bps: float,
        delay_jitter: float = 0.0,
        name: str = "custom",
        proc_per_message: float = 0.0,
    ) -> None:
        if n <= 0:
            raise ValueError(f"topology needs at least one node, got n={n}")
        if one_way_delay < 0 or bandwidth_bps <= 0:
            raise ValueError("delay must be >= 0 and bandwidth > 0")
        if proc_per_message < 0:
            raise ValueError("proc_per_message must be >= 0")
        self.n = n
        self.name = name
        #: Receive-side CPU cost per message (handler + signature checks).
        #: This is what makes O(n^2)-message protocols (reliable broadcast,
        #: all-to-all voting) processing-bound at scale, as the paper's
        #: Narwhal discussion describes.
        self.proc_per_message = proc_per_message
        self._base_delay = one_way_delay
        self._jitter = delay_jitter
        self._default_bandwidth = float(bandwidth_bps)
        self._bandwidth_overrides: dict[int, float] = {}
        self._bandwidth_scales: dict[int, float] = {}
        self._delay_overrides: dict[tuple[int, int], float] = {}
        self._schedules: list[DelaySchedule] = []

    # -- configuration ----------------------------------------------------

    def set_bandwidth(self, node: int, bandwidth_bps: float) -> None:
        """Give ``node`` a non-default egress bandwidth (heterogeneity)."""
        self._check_node(node)
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self._bandwidth_overrides[node] = float(bandwidth_bps)

    def set_link_delay(self, src: int, dst: int, one_way_delay: float) -> None:
        """Override the base delay of one directed link."""
        self._check_node(src)
        self._check_node(dst)
        if one_way_delay < 0:
            raise ValueError("delay must be >= 0")
        self._delay_overrides[(src, dst)] = one_way_delay

    def add_schedule(self, schedule: DelaySchedule) -> None:
        """Layer a time-varying delay schedule over every link."""
        self._schedules.append(schedule)

    def scale_bandwidth(self, node: int, factor: float) -> None:
        """Multiply ``node``'s effective egress bandwidth by ``factor``.

        Used by fault injection (bandwidth squeezes); repeated calls
        stack multiplicatively, so overlapping windows compose.
        """
        self._check_node(node)
        if factor <= 0:
            raise ValueError(f"bandwidth factor must be > 0, got {factor}")
        self._bandwidth_scales[node] = (
            self._bandwidth_scales.get(node, 1.0) * factor
        )

    def unscale_bandwidth(self, node: int, factor: float) -> None:
        """Undo one matching :meth:`scale_bandwidth` call."""
        self._check_node(node)
        if factor <= 0:
            raise ValueError(f"bandwidth factor must be > 0, got {factor}")
        current = self._bandwidth_scales.get(node, 1.0) / factor
        if abs(current - 1.0) < 1e-12:
            self._bandwidth_scales.pop(node, None)
        else:
            self._bandwidth_scales[node] = current

    # -- queries -----------------------------------------------------------

    def bandwidth(self, node: int, now: Optional[float] = None) -> float:
        """Egress bandwidth of ``node`` in bits per second.

        When ``now`` is given, active delay schedules may scale the
        effective bandwidth (TCP goodput collapse under heavy jitter).
        """
        self._check_node(node)
        base = self._bandwidth_overrides.get(node, self._default_bandwidth)
        base *= self._bandwidth_scales.get(node, 1.0)
        if now is not None:
            for schedule in self._schedules:
                base *= schedule.bandwidth_factor(now)
        return max(base, 1.0)

    def base_delay(self, src: int, dst: int) -> float:
        """Base one-way delay of the (src, dst) link, before jitter."""
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return 0.0
        return self._delay_overrides.get((src, dst), self._base_delay)

    def delay(self, src: int, dst: int, now: float, rng: random.Random) -> float:
        """One-way delay for a message sent now on the (src, dst) link.

        Active delay schedules take precedence over the base matrix, which
        models a network-wide disturbance (the Fig. 7 NetEm window).
        """
        for schedule in self._schedules:
            sampled = schedule.sample(now, rng)
            if sampled is not None:
                return sampled
        base = self.base_delay(src, dst)
        if self._jitter > 0 and src != dst:
            base = max(0.0, base + rng.uniform(-self._jitter, self._jitter))
        return base

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} outside [0, {self.n})")


#: Default receive-side processing cost: dominated by verifying the
#: signature on each small control message (ECDSA verify is tens of
#: microseconds in Go, the prototype's language).
DEFAULT_PROC_PER_MESSAGE = 50e-6


def lan_topology(
    n: int,
    bandwidth_bps: float = GBPS,
    proc_per_message: float = DEFAULT_PROC_PER_MESSAGE,
) -> Topology:
    """The paper's LAN testbed: 1 Gb/s, RTT < 10 ms (we use 2 ms one-way)."""
    return Topology(
        n,
        one_way_delay=0.002,
        bandwidth_bps=bandwidth_bps,
        delay_jitter=0.0005,
        name="lan",
        proc_per_message=proc_per_message,
    )


def wan_topology(
    n: int,
    bandwidth_bps: float = 100 * MBPS,
    proc_per_message: float = DEFAULT_PROC_PER_MESSAGE,
) -> Topology:
    """The paper's emulated WAN: 100 Mb/s, 100 ms RTT (50 ms one-way)."""
    return Topology(
        n,
        one_way_delay=0.050,
        bandwidth_bps=bandwidth_bps,
        delay_jitter=0.002,
        name="wan",
        proc_per_message=proc_per_message,
    )


def heterogeneous_topology(
    n: int,
    bandwidths_bps: Sequence[float],
    one_way_delay: float = 0.050,
    name: str = "hetero",
) -> Topology:
    """Topology with per-replica bandwidths (unbalanced capacity studies)."""
    if len(bandwidths_bps) != n:
        raise ValueError(
            f"need {n} bandwidth entries, got {len(bandwidths_bps)}"
        )
    topo = Topology(n, one_way_delay, max(bandwidths_bps), name=name)
    for node, bandwidth in enumerate(bandwidths_bps):
        topo.set_bandwidth(node, bandwidth)
    return topo


#: Approximate one-way inter-region delays (seconds) between the four
#: Alibaba Cloud regions the paper probes in Appendix B: Singapore (SG),
#: Sydney (SN), Virginia (VG), London (LD). Derived from typical
#: backbone RTTs; intra-region traffic uses a LAN-like delay.
GEO_REGIONS = ("SG", "SN", "VG", "LD")
GEO_ONE_WAY_DELAYS = {
    ("SG", "SG"): 0.001, ("SN", "SN"): 0.001,
    ("VG", "VG"): 0.001, ("LD", "LD"): 0.001,
    ("SG", "SN"): 0.045, ("SG", "VG"): 0.110, ("SG", "LD"): 0.085,
    ("SN", "VG"): 0.100, ("SN", "LD"): 0.140, ("VG", "LD"): 0.038,
}


def geo_topology(
    n: int,
    bandwidth_bps: float = 100 * MBPS,
    regions: Sequence[str] = GEO_REGIONS,
    assignment: Optional[Sequence[str]] = None,
    proc_per_message: float = DEFAULT_PROC_PER_MESSAGE,
) -> Topology:
    """Multi-region WAN with per-pair inter-datacenter delays.

    Replicas are assigned to regions round-robin unless ``assignment``
    names a region per replica. Link delays come from the Appendix-B
    style pairwise matrix (stable backbone delays), with small jitter.
    """
    if assignment is not None and len(assignment) != n:
        raise ValueError(
            f"assignment names {len(assignment)} regions for {n} replicas"
        )
    placement = (
        list(assignment)
        if assignment is not None
        else [regions[node % len(regions)] for node in range(n)]
    )
    unknown = set(placement) - set(GEO_REGIONS)
    if unknown:
        raise ValueError(f"unknown regions: {sorted(unknown)}")
    topo = Topology(
        n,
        one_way_delay=0.050,  # fallback; every pair is overridden below
        bandwidth_bps=bandwidth_bps,
        delay_jitter=0.002,
        name="geo",
        proc_per_message=proc_per_message,
    )
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            pair = (placement[src], placement[dst])
            if pair not in GEO_ONE_WAY_DELAYS:
                pair = (pair[1], pair[0])
            topo.set_link_delay(src, dst, GEO_ONE_WAY_DELAYS[pair])
    topo.regions = list(placement)
    return topo


def transmission_time(size_bytes: float, bandwidth_bps: float) -> float:
    """Seconds to push ``size_bytes`` through a ``bandwidth_bps`` uplink."""
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    if size_bytes < 0 or math.isnan(size_bytes):
        raise ValueError(f"invalid message size: {size_bytes}")
    return (size_bytes * 8.0) / bandwidth_bps
