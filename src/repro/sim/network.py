"""Simulated message-passing network with bandwidth serialization.

The model is deliberately the one under which the paper's Appendix-A
throughput formulas are exact:

* every replica owns a single egress uplink of finite bandwidth;
* a message of ``size`` bytes occupies the sender's uplink for
  ``size * 8 / bandwidth`` seconds (store-and-forward serialization);
* after serialization, the message experiences the topology's one-way
  propagation delay and is delivered to the receiver's handler;
* broadcasting to ``n - 1`` peers serializes ``n - 1`` copies, which is
  exactly what makes a leader shipping megabyte proposals the bottleneck.

Two egress priority classes implement the paper's "consensus channel /
data channel" optimization (Section VI): whenever the uplink frees up,
queued consensus messages (proposals, votes) are transmitted before
queued data messages (microblocks, acks, fetches). An optional token
bucket throttles the data class, reproducing the sending-rate limiter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.interfaces import Channel, Envelope, Handler, Transport
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology, transmission_time

__all__ = [
    "Channel", "Envelope", "Handler", "NetworkStats", "TokenBucket",
    "Network",
]

# Queue indexes for the per-channel FIFOs below. The uplink/ingress hot
# loops index lists with these ints instead of hashing enum members —
# ``Channel.__hash__`` was a measurable slice of event-loop time.
_CONSENSUS = Channel.CONSENSUS.value
_CONTROL = Channel.CONTROL.value
_DATA = Channel.DATA.value


@dataclass
class NetworkStats:
    """Per-run accounting used by the Table III bandwidth benches."""

    bytes_sent: dict[tuple[int, str], float] = field(default_factory=dict)
    messages_sent: dict[str, int] = field(default_factory=dict)
    messages_delivered: int = 0
    messages_dropped: int = 0
    # Live-backend gauges (always 0 in-sim): frames shed by the bounded
    # per-peer send queues, the deepest those queues ever got, and how
    # many times a peer link re-established a dropped TCP connection.
    frames_dropped: int = 0
    queue_high_watermark: int = 0
    reconnects: int = 0
    # Running totals so the per-node/per-kind queries below stay O(1) —
    # they are called inside benchmark loops.
    _node_totals: dict[int, float] = field(default_factory=dict)
    _kind_totals: dict[str, float] = field(default_factory=dict)

    def record_send(self, node: int, kind: str, size_bytes: float) -> None:
        key = (node, kind)
        self.bytes_sent[key] = self.bytes_sent.get(key, 0.0) + size_bytes
        self.messages_sent[kind] = self.messages_sent.get(kind, 0) + 1
        self._node_totals[node] = self._node_totals.get(node, 0.0) + size_bytes
        self._kind_totals[kind] = self._kind_totals.get(kind, 0.0) + size_bytes

    def node_bytes(self, node: int, kind: Optional[str] = None) -> float:
        """Total bytes sent by ``node``, optionally for one message kind."""
        if kind is None:
            return self._node_totals.get(node, 0.0)
        return self.bytes_sent.get((node, kind), 0.0)

    def kind_bytes(self, kind: str) -> float:
        return self._kind_totals.get(kind, 0.0)


class TokenBucket:
    """Continuous-time token bucket limiting the data channel's send rate."""

    def __init__(self, rate_bytes_per_s: float, burst_bytes: float) -> None:
        if rate_bytes_per_s <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate_bytes_per_s
        self.burst = burst_bytes
        self._tokens = burst_bytes
        self._updated = 0.0

    def ready_at(self, now: float, size_bytes: float) -> float:
        """Earliest time the bucket can admit a message of ``size_bytes``."""
        self._refill(now)
        if self._tokens >= size_bytes:
            return now
        deficit = size_bytes - self._tokens
        return now + deficit / self.rate

    def consume(self, now: float, size_bytes: float) -> None:
        self._refill(now)
        self._tokens -= size_bytes

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now


class _Uplink:
    """One replica's egress: two priority FIFOs draining into one wire.

    States: idle (nothing to do), transmitting (wire occupied), or waiting
    (head-of-line data message blocked by the token bucket). A consensus
    message arriving during a limiter wait preempts the wait — consensus
    traffic is never throttled.
    """

    def __init__(self, node: int, network: "Network") -> None:
        self.node = node
        self.network = network
        # Indexed by Channel.value (_CONSENSUS/_CONTROL/_DATA).
        self.queues: list[deque[Envelope]] = [deque() for _ in Channel]
        self.transmitting = False
        self.limiter: Optional[TokenBucket] = None
        self._wait_timer = None

    def enqueue(self, envelope: Envelope) -> None:
        index = (
            envelope.channel.value
            if self.network.priority_channels else _DATA
        )
        self.queues[index].append(envelope)
        if self.transmitting:
            return
        if self._wait_timer is not None:
            if index != _DATA:
                self._wait_timer.cancel()
                self._wait_timer = None
                self._start_next()
            return
        self._start_next()

    def flush(self) -> int:
        """Drop every queued message (the node crashed); returns the count.

        An in-flight transmission cannot be recalled: its completion event
        still fires, but :meth:`Network._propagate` discards the message
        when the sender is down.
        """
        dropped = sum(len(queue) for queue in self.queues)
        for queue in self.queues:
            queue.clear()
        if self._wait_timer is not None:
            self._wait_timer.cancel()
            self._wait_timer = None
        return dropped

    def queued_bytes(self, channel: Optional[Channel] = None) -> float:
        queues = (
            [self.queues[channel.value]] if channel is not None
            else self.queues
        )
        return sum(env.size_bytes for queue in queues for env in queue)

    def _start_next(self) -> None:
        if self.transmitting:
            return
        sim = self.network.sim
        queues = self.queues
        envelope: Optional[Envelope] = None
        if queues[_CONSENSUS]:
            envelope = queues[_CONSENSUS].popleft()
        elif queues[_CONTROL]:
            envelope = queues[_CONTROL].popleft()
        elif queues[_DATA]:
            head = queues[_DATA][0]
            if self.limiter is not None:
                ready = self.limiter.ready_at(sim.now, head.size_bytes)
                if ready > sim.now:
                    self._wait_timer = sim.schedule(
                        ready - sim.now, self._resume
                    )
                    return
                self.limiter.consume(sim.now, head.size_bytes)
            envelope = queues[_DATA].popleft()
        if envelope is None:
            return
        self.transmitting = True
        bandwidth = self.network.topology.bandwidth(self.node, now=sim.now)
        duration = transmission_time(envelope.size_bytes, bandwidth)
        sim.schedule(duration, lambda: self._finish(envelope))

    def _resume(self) -> None:
        self._wait_timer = None
        self._start_next()

    def _finish(self, envelope: Envelope) -> None:
        self.network._propagate(envelope)
        self.transmitting = False
        self._start_next()


class _Ingress:
    """Receive-side processing queue: one CPU draining two priority FIFOs.

    Each arriving message costs ``proc_per_message`` seconds of handler
    time (signature verification and dispatch). Consensus messages are
    processed before data messages, implementing the paper's
    "consensus channel has higher priority" processing rule on the
    receive side.
    """

    def __init__(self, node: int, network: "Network") -> None:
        self.node = node
        self.network = network
        # Indexed by Channel.value (_CONSENSUS/_CONTROL/_DATA).
        self.queues: list[deque[Envelope]] = [deque() for _ in Channel]
        self.busy = False

    def accept(self, envelope: Envelope) -> None:
        index = (
            envelope.channel.value
            if self.network.priority_channels else _DATA
        )
        self.queues[index].append(envelope)
        if not self.busy:
            self._process_next()

    def flush(self) -> int:
        """Drop every queued-but-unprocessed message (the node crashed)."""
        dropped = sum(len(queue) for queue in self.queues)
        for queue in self.queues:
            queue.clear()
        return dropped

    def _process_next(self) -> None:
        envelope: Optional[Envelope] = None
        for queue in self.queues:
            if queue:
                envelope = queue.popleft()
                break
        if envelope is None:
            return
        self.busy = True
        cost = self.network.topology.proc_per_message
        self.network.sim.schedule(cost, lambda: self._finish(envelope))

    def _finish(self, envelope: Envelope) -> None:
        self.network._dispatch(envelope)
        self.busy = False
        self._process_next()


DropFilter = Callable[[Envelope], bool]


class Network(Transport):
    """Message router connecting all replicas over a :class:`Topology`."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        rng: RngRegistry,
        priority_channels: bool = True,
    ) -> None:
        self.sim = sim
        self.topology = topology
        #: When False, every message shares one FIFO class — ablates the
        #: paper's "consensus channel first" optimization (Section VI).
        self.priority_channels = priority_channels
        self.stats = NetworkStats()
        self._rng = rng.stream("network.jitter")
        self._handlers: dict[int, Handler] = {}
        self._uplinks = [_Uplink(node, self) for node in range(topology.n)]
        self._ingress = [_Ingress(node, self) for node in range(topology.n)]
        self._drop_filter: Optional[DropFilter] = None
        self._drop_rules: dict[int, DropFilter] = {}
        self._rule_seq = 0
        self._down: set[int] = set()

    # -- wiring ------------------------------------------------------------

    def register(self, node: int, handler: Handler) -> None:
        """Attach the message handler for ``node``."""
        if node in self._handlers:
            raise ValueError(f"node {node} already registered")
        self._handlers[node] = handler

    def set_drop_filter(self, drop_filter: Optional[DropFilter]) -> None:
        """Install a predicate that silently drops matching envelopes.

        Used by fault-injection tests (message loss, partitions). The
        filter runs at delivery time, after bandwidth was consumed, which
        matches a real network where loss wastes the sender's uplink.
        """
        self._drop_filter = drop_filter

    def add_drop_rule(self, rule: DropFilter) -> int:
        """Install an *additional* drop predicate; returns a removal handle.

        Rules compose with each other and with the ``set_drop_filter``
        predicate (a message matching any of them is dropped), which lets
        the fault injector layer partitions and loss windows on top of a
        user-installed filter without clobbering it.
        """
        rule_id = self._rule_seq
        self._rule_seq += 1
        self._drop_rules[rule_id] = rule
        return rule_id

    def remove_drop_rule(self, rule_id: int) -> None:
        """Remove a rule installed by :meth:`add_drop_rule` (idempotent)."""
        self._drop_rules.pop(rule_id, None)

    def set_node_down(self, node: int) -> None:
        """Crash ``node``'s network endpoint.

        Its egress and ingress queues are flushed (queued messages count
        as dropped), and until :meth:`set_node_up` re-registers it, every
        message from or to the node is discarded.
        """
        if node in self._down:
            return
        self._down.add(node)
        flushed = self._uplinks[node].flush() + self._ingress[node].flush()
        self.stats.messages_dropped += flushed

    def set_node_up(self, node: int) -> None:
        """Re-register a crashed node's endpoint (restart)."""
        self._down.discard(node)

    def is_down(self, node: int) -> bool:
        return node in self._down

    def set_data_limiter(
        self, node: int, rate_bytes_per_s: float, burst_bytes: float
    ) -> None:
        """Enable the token-bucket limiter on ``node``'s data channel."""
        self._uplinks[node].limiter = TokenBucket(rate_bytes_per_s, burst_bytes)

    # -- sending -----------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
    ) -> None:
        """Queue one message for serialization on ``src``'s uplink."""
        if src in self._down or dst in self._down:
            # A crashed process sends nothing; a sender talking to a dead
            # peer sees its connection break before serializing the copy.
            self.stats.messages_dropped += 1
            return
        if dst == src:
            # Loopback: no bandwidth cost, delivered on the next event.
            envelope = Envelope(src, dst, kind, 0.0, payload, channel, self.sim.now)
            self.sim.schedule(0.0, lambda: self._deliver(envelope))
            return
        if src not in self._handlers or dst not in self._handlers:
            raise ValueError(f"send between unregistered nodes {src}->{dst}")
        envelope = Envelope(
            src, dst, kind, size_bytes, payload, channel, self.sim.now
        )
        self._uplinks[src].enqueue(envelope)

    def broadcast(
        self,
        src: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
        recipients: Optional[list[int]] = None,
        include_self: bool = False,
    ) -> None:
        """Send one copy per recipient (defaults to every other replica).

        Each copy is serialized separately through the sender's uplink —
        there is no link-layer multicast, mirroring TCP fan-out.
        """
        if recipients is None:
            recipients = [
                node for node in range(self.topology.n) if node != src
            ]
        for dst in recipients:
            if dst == src and not include_self:
                continue
            self.send(src, dst, kind, size_bytes, payload, channel)
        if include_self and src not in recipients:
            self.send(src, src, kind, size_bytes, payload, channel)

    def queued_bytes(self, node: int, channel: Optional[Channel] = None) -> float:
        """Bytes currently waiting in ``node``'s egress queues."""
        return self._uplinks[node].queued_bytes(channel)

    # -- internal ----------------------------------------------------------

    def _propagate(self, envelope: Envelope) -> None:
        if envelope.src in self._down:
            # The sender crashed mid-transmission: the copy never left.
            self.stats.messages_dropped += 1
            return
        # Bandwidth accounting happens here — after serialization — so
        # reported Mbps reflects bytes actually pushed through the uplink,
        # not bytes sitting in a backlog.
        self.stats.record_send(envelope.src, envelope.kind, envelope.size_bytes)
        delay = self.topology.delay(
            envelope.src, envelope.dst, self.sim.now, self._rng
        )
        self.sim.schedule(delay, lambda: self._deliver(envelope))

    def _should_drop(self, envelope: Envelope) -> bool:
        if self._drop_filter is not None and self._drop_filter(envelope):
            return True
        return any(rule(envelope) for rule in self._drop_rules.values())

    def _deliver(self, envelope: Envelope) -> None:
        if envelope.dst in self._down or self._should_drop(envelope):
            self.stats.messages_dropped += 1
            return
        if envelope.dst not in self._handlers:
            self.stats.messages_dropped += 1
            return
        if self.topology.proc_per_message > 0 and envelope.src != envelope.dst:
            self._ingress[envelope.dst].accept(envelope)
        else:
            self._dispatch(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        handler = self._handlers.get(envelope.dst)
        if handler is None or envelope.dst in self._down:
            # The down check repeats here because an ingress CPU may have
            # been mid-message when the node crashed.
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        handler(envelope)
