"""Simulated message-passing network with bandwidth serialization.

Two link models are available (``link_model`` constructor argument):

**serial** (default) — the store-and-forward model under which the
paper's Appendix-A throughput formulas are exact:

* every replica owns a single egress uplink of finite bandwidth;
* a message of ``size`` bytes occupies the sender's uplink for
  ``size * 8 / bandwidth`` seconds (store-and-forward serialization);
* after serialization, the message experiences the topology's one-way
  propagation delay and is delivered to the receiver's handler;
* broadcasting to ``n - 1`` peers serializes ``n - 1`` copies, which is
  exactly what makes a leader shipping megabyte proposals the bottleneck.

**fair-share** — concurrent transfers split link capacity instead of
queueing behind each other (the simpy ``Container`` uplink/downlink
technique; see DESIGN.md "Simulator scale-out"). Each active transfer
runs at ``min(B_up / |up_active|, B_down / |down_active|)``; rates are
recomputed only when a transfer starts or finishes — batched into one
settle pass per sim instant over the touched ("dirty") links, never per
byte — so WAN contention at n=128 is modeled without event blowup. Bulk (DATA)
transfers are admitted through a bounded slot pool per uplink;
consensus/control transfers bypass the pool so they are never stuck
behind a wall of microblocks.

Broadcasts are *fan-out flows* in both models: ``Network.broadcast``
enqueues a single shared-payload :class:`_Flow` per uplink and the
serializer expands it lazily into per-recipient envelopes — one drain
timer per uplink segment instead of one scheduled event per copy.

Two egress priority classes implement the paper's "consensus channel /
data channel" optimization (Section VI): whenever the uplink frees up,
queued consensus messages (proposals, votes) are transmitted before
queued data messages (microblocks, acks, fetches). An optional token
bucket throttles the data class, reproducing the sending-rate limiter
(serial model only).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappush as _heappush
from typing import Callable, Optional, Union

from repro.sim.engine import Simulator
from repro.sim.interfaces import Channel, Envelope, Handler, Transport

#: Allocation shortcut for the uplink's fan-out loop: mint envelopes via
#: ``__new__`` + direct slot stores, skipping the ``__init__`` frame.
_env_new = Envelope.__new__
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology, transmission_time

__all__ = [
    "Channel", "Envelope", "Handler", "NetworkStats", "TokenBucket",
    "Network", "LINK_MODELS",
]

LINK_MODELS = ("serial", "fair-share")

# Queue indexes for the per-channel FIFOs below. The uplink/ingress hot
# loops index lists with these ints instead of hashing enum members —
# ``Channel.__hash__`` was a measurable slice of event-loop time.
_CONSENSUS = Channel.CONSENSUS.value
_CONTROL = Channel.CONTROL.value
_DATA = Channel.DATA.value

# Enum members as module constants: the delivery path maps an envelope's
# channel to its queue index with identity compares instead of the enum
# ``value`` descriptor (which is a measurable per-message cost).
_DATA_MEMBER = Channel.DATA
_CONSENSUS_MEMBER = Channel.CONSENSUS


@dataclass
class NetworkStats:
    """Per-run accounting used by the Table III bandwidth benches."""

    bytes_sent: dict[tuple[int, str], float] = field(default_factory=dict)
    messages_sent: dict[str, int] = field(default_factory=dict)
    messages_delivered: int = 0
    messages_dropped: int = 0
    # Live-backend gauges (always 0 in-sim): frames shed by the bounded
    # per-peer send queues, the deepest those queues ever got, and how
    # many times a peer link re-established a dropped TCP connection.
    frames_dropped: int = 0
    queue_high_watermark: int = 0
    reconnects: int = 0
    # Running totals so the per-node/per-kind queries below stay O(1) —
    # they are called inside benchmark loops.
    _node_totals: dict[int, float] = field(default_factory=dict)
    _kind_totals: dict[str, float] = field(default_factory=dict)

    def record_send(self, node: int, kind: str, size_bytes: float) -> None:
        key = (node, kind)
        self.bytes_sent[key] = self.bytes_sent.get(key, 0.0) + size_bytes
        self.messages_sent[kind] = self.messages_sent.get(kind, 0) + 1
        self._node_totals[node] = self._node_totals.get(node, 0.0) + size_bytes
        self._kind_totals[kind] = self._kind_totals.get(kind, 0.0) + size_bytes

    def record_send_batch(
        self, node: int, kind: str, size_bytes: float, count: int
    ) -> None:
        """Account ``count`` same-size copies with one set of dict ops."""
        total = size_bytes * count
        key = (node, kind)
        self.bytes_sent[key] = self.bytes_sent.get(key, 0.0) + total
        self.messages_sent[kind] = self.messages_sent.get(kind, 0) + count
        self._node_totals[node] = self._node_totals.get(node, 0.0) + total
        self._kind_totals[kind] = self._kind_totals.get(kind, 0.0) + total

    def cancel_send(self, node: int, kind: str, size_bytes: float) -> None:
        """Un-account one copy whose serialization a crash cut short.

        Flow segments account their copies when the segment starts; a
        copy discarded because the sender crashed mid-segment never
        actually cleared the uplink, so its bytes are handed back.
        """
        key = (node, kind)
        self.bytes_sent[key] -= size_bytes
        self.messages_sent[kind] -= 1
        self._node_totals[node] -= size_bytes
        self._kind_totals[kind] -= size_bytes

    def node_bytes(self, node: int, kind: Optional[str] = None) -> float:
        """Total bytes sent by ``node``, optionally for one message kind."""
        if kind is None:
            return self._node_totals.get(node, 0.0)
        return self.bytes_sent.get((node, kind), 0.0)

    def kind_bytes(self, kind: str) -> float:
        return self._kind_totals.get(kind, 0.0)

    def total_bytes(self) -> float:
        """Bytes serialized network-wide (all senders, all kinds)."""
        return sum(self._node_totals.values())


class TokenBucket:
    """Continuous-time token bucket limiting the data channel's send rate."""

    def __init__(self, rate_bytes_per_s: float, burst_bytes: float) -> None:
        if rate_bytes_per_s <= 0 or burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate_bytes_per_s
        self.burst = burst_bytes
        self._tokens = burst_bytes
        self._updated = 0.0

    def ready_at(self, now: float, size_bytes: float) -> float:
        """Earliest time the bucket can admit a message of ``size_bytes``."""
        self._refill(now)
        if self._tokens >= size_bytes:
            return now
        deficit = size_bytes - self._tokens
        return now + deficit / self.rate

    def consume(self, now: float, size_bytes: float) -> None:
        self._refill(now)
        self._tokens -= size_bytes

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now


class _Flow:
    """One broadcast awaiting serialization: shared payload, many dsts.

    A flow occupies a single egress-queue slot however many recipients
    it covers; the uplink expands it lazily, one segment of copies at a
    time, so enqueueing a 127-recipient broadcast is O(1).
    """

    __slots__ = (
        "kind", "size_bytes", "payload", "channel", "recipients",
        "next_index", "enqueued_at",
    )

    def __init__(
        self,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel,
        recipients,
        enqueued_at: float,
    ) -> None:
        self.kind = kind
        self.size_bytes = size_bytes
        self.payload = payload
        self.channel = channel
        self.recipients = recipients  # tuple/list of dst node ids
        self.next_index = 0
        self.enqueued_at = enqueued_at

    @property
    def remaining(self) -> int:
        return len(self.recipients) - self.next_index


_QueueItem = Union[Envelope, _Flow]


def _uplink_drain(uplink: "_Uplink") -> None:
    """Segment-end continuation for a serial uplink (fire-path callback)."""
    uplink.transmitting = False
    uplink._start_next()


class _Uplink:
    """One replica's egress: three priority FIFOs draining into one wire.

    States: idle (nothing to do), transmitting (wire occupied by the
    current segment), or waiting (head-of-line data message blocked by
    the token bucket). A consensus message arriving during a limiter
    wait preempts the wait — consensus traffic is never throttled.

    The serializer works in *segments*: it pops the head item, expands
    up to ``SEGMENT_MAX_COPIES`` copies (bounded to roughly
    ``SEGMENT_MAX_SECONDS`` of wire time so a queued consensus message
    is never stuck long behind a bulk fan-out), schedules each copy's
    delivery analytically, and arms exactly one drain timer at the
    segment's end — not one event per copy.
    """

    SEGMENT_MAX_COPIES = 8
    SEGMENT_MAX_SECONDS = 0.02

    __slots__ = ("node", "network", "queues", "transmitting", "limiter",
                 "_wait_timer")

    def __init__(self, node: int, network: "Network") -> None:
        self.node = node
        self.network = network
        # Indexed by Channel.value (_CONSENSUS/_CONTROL/_DATA).
        self.queues: list[deque[_QueueItem]] = [deque() for _ in Channel]
        self.transmitting = False
        self.limiter: Optional[TokenBucket] = None
        self._wait_timer = None

    def enqueue(self, item: _QueueItem, index: int) -> None:
        self.queues[index].append(item)
        if self.transmitting:
            return
        if self._wait_timer is not None:
            if index != _DATA:
                self._wait_timer.cancel()
                self._wait_timer = None
                self._start_next()
            return
        self._start_next()

    def flush(self) -> int:
        """Drop every queued message (the node crashed); returns the count.

        Copies of the in-flight segment cannot be recalled here: their
        delivery events already exist, but the network discards any copy
        whose serialization had not finished when the sender went down
        (see ``Network._deliver_copy``).
        """
        dropped = 0
        for queue in self.queues:
            for item in queue:
                dropped += 1 if type(item) is Envelope else item.remaining
            queue.clear()
        if self._wait_timer is not None:
            self._wait_timer.cancel()
            self._wait_timer = None
        return dropped

    def queued_bytes(self, channel: Optional[Channel] = None) -> float:
        queues = (
            [self.queues[channel.value]] if channel is not None
            else self.queues
        )
        total = 0.0
        for queue in queues:
            for item in queue:
                if type(item) is Envelope:
                    total += item.size_bytes
                else:
                    total += item.size_bytes * item.remaining
        return total

    def _start_next(self) -> None:
        if self.transmitting:
            return
        queues = self.queues
        if queues[_CONSENSUS]:
            queue = queues[_CONSENSUS]
            limited = False
        elif queues[_CONTROL]:
            queue = queues[_CONTROL]
            limited = False
        elif queues[_DATA]:
            queue = queues[_DATA]
            limited = self.limiter is not None
        else:
            return
        network = self.network
        sim = network.sim
        now = sim.now
        head = queue[0]
        if limited:
            ready = self.limiter.ready_at(now, head.size_bytes)
            if ready > now:
                self._wait_timer = sim.schedule(ready - now, self._resume)
                return
            self.limiter.consume(now, head.size_bytes)
        node = self.node
        topo = network.topology
        if topo._bandwidth_overrides or topo._bandwidth_scales or topo._schedules:
            bandwidth = topo.bandwidth(node, now=now)
        else:
            bandwidth = topo._default_bandwidth
            if bandwidth < 1.0:
                bandwidth = 1.0
        stats = network.stats
        if type(head) is Envelope:
            queue.popleft()
            end = now + head.size_bytes * 8.0 / bandwidth
            head.sent_at = end
            stats.record_send(node, head.kind, head.size_bytes)
            network._dispatch_copy(head, end)
        else:
            duration = head.size_bytes * 8.0 / bandwidth
            remaining = head.remaining
            if limited:
                # The token bucket meters per copy; expand one at a time
                # so each copy pays its own tokens.
                copies = 1
            elif duration <= 0.0:
                copies = min(remaining, self.SEGMENT_MAX_COPIES)
            else:
                budget = int(self.SEGMENT_MAX_SECONDS / duration)
                copies = min(
                    remaining, self.SEGMENT_MAX_COPIES, max(1, budget)
                )
            recipients = head.recipients
            index = head.next_index
            end = now
            kind = head.kind
            size = head.size_bytes
            payload = head.payload
            channel = head.channel
            enqueued_at = head.enqueued_at
            topology = network.topology
            if not topology._schedules and not topology._delay_overrides:
                # Fast path: no active schedules or per-link overrides,
                # so the delay is just base + jitter. The arithmetic
                # replays Topology.delay + random.uniform bit for bit
                # (uniform(a, b) is ``a + (b - a) * random()``), the
                # envelope is minted via ``__new__`` + slot stores (no
                # ``__init__`` frame), and the delivery events are
                # heap-pushed directly — one Python call frame per copy
                # instead of four. Recipients never include the sender.
                base = topology._base_delay
                jit = topology._jitter
                neg = -jit
                span = jit - neg
                rand = network._jitter_rngs[node].random
                deliver = network._deliver_copy
                heap = sim._queue
                seq = sim._seq
                for dst in recipients[index:index + copies]:
                    end += duration
                    envelope = _env_new(Envelope)
                    envelope.src = node
                    envelope.dst = dst
                    envelope.kind = kind
                    envelope.size_bytes = size
                    envelope.payload = payload
                    envelope.channel = channel
                    envelope.enqueued_at = enqueued_at
                    envelope.sent_at = end
                    if jit > 0:
                        delay = base + (neg + span * rand())
                        if delay < 0.0:
                            delay = 0.0
                    else:
                        delay = base
                    _heappush(heap, (end + delay, seq, deliver, envelope))
                    seq += 1
                sim._seq = seq
            else:
                dispatch = network._dispatch_copy
                make = Envelope
                for dst in recipients[index:index + copies]:
                    end += duration
                    envelope = make(
                        node, dst, kind, size,
                        payload, channel, enqueued_at,
                    )
                    envelope.sent_at = end
                    dispatch(envelope, end)
            head.next_index = index + copies
            if head.next_index >= len(recipients):
                queue.popleft()
            stats.record_send_batch(node, kind, size, copies)
        self.transmitting = True
        seq = sim._seq
        sim._seq = seq + 1
        _heappush(sim._queue, (end, seq, _uplink_drain, self))

    def _resume(self) -> None:
        self._wait_timer = None
        self._start_next()


def _ingress_finish(ingress: "_Ingress") -> None:
    """Per-message CPU-cost continuation (fire-path callback).

    Dispatch is inlined (the handler call plus its down/handler guards)
    and the next queued message is popped directly — this function runs
    once per delivered message, so every avoided call shows up in the
    perf harness's events/sec gauge.
    """
    network = ingress.network
    envelope = ingress.current
    dst = envelope.dst
    if network._down and dst in network._down:
        # The node crashed while its CPU was mid-message; flush()
        # cleared the queues but this in-flight message still fires.
        network.stats.messages_dropped += 1
    else:
        handler = network._handler_list[dst]
        if handler is None:
            network.stats.messages_dropped += 1
        else:
            network.stats.messages_delivered += 1
            handler(envelope)
    queues = ingress.queues
    if queues[0]:
        head = queues[0].popleft()
    elif queues[1]:
        head = queues[1].popleft()
    elif queues[2]:
        head = queues[2].popleft()
    else:
        ingress.busy = False
        ingress.current = None
        return
    ingress.current = head
    sim = network.sim
    seq = sim._seq
    sim._seq = seq + 1
    _heappush(sim._queue, (sim._now + network._proc, seq, _ingress_finish, ingress))


class _Ingress:
    """Receive-side processing queue: one CPU draining priority FIFOs.

    Each arriving message costs ``proc_per_message`` seconds of handler
    time (signature verification and dispatch). Consensus messages are
    processed before data messages, implementing the paper's
    "consensus channel has higher priority" processing rule on the
    receive side.
    """

    __slots__ = ("node", "network", "queues", "busy", "current")

    def __init__(self, node: int, network: "Network") -> None:
        self.node = node
        self.network = network
        # Indexed by Channel.value (_CONSENSUS/_CONTROL/_DATA).
        self.queues: list[deque[Envelope]] = [deque() for _ in Channel]
        self.busy = False
        self.current: Optional[Envelope] = None

    def accept(self, envelope: Envelope) -> None:
        network = self.network
        if self.busy:
            index = (
                envelope.channel.value
                if network.priority_channels else _DATA
            )
            self.queues[index].append(envelope)
            return
        # Idle CPU: start processing immediately, skipping the queue
        # round-trip (the common case at moderate load).
        self.busy = True
        self.current = envelope
        network.sim.schedule_fire(network._proc, _ingress_finish, self)

    def flush(self) -> int:
        """Drop every queued-but-unprocessed message (the node crashed)."""
        dropped = sum(len(queue) for queue in self.queues)
        for queue in self.queues:
            queue.clear()
        return dropped


class _Transfer:
    """One active fair-share transmission (one copy, one src->dst pair)."""

    __slots__ = (
        "envelope", "remaining_bits", "rate", "updated", "finish_at",
        "next_wake", "done",
    )

    def __init__(self, envelope: Envelope, now: float) -> None:
        self.envelope = envelope
        self.remaining_bits = envelope.size_bytes * 8.0
        self.rate = 0.0
        self.updated = now
        self.finish_at = now
        self.next_wake = -1.0
        self.done = False


def _transfer_wake(state) -> None:
    """Finish-check for a fair-share transfer (fire-path callback).

    Rates change whenever transfers start or finish, so the event that
    was armed for the old finish time may fire early (rates dropped —
    reschedule at the new finish) or be stale (a newer, earlier event
    already completed the transfer — ``done`` guards that).
    """
    fair, transfer = state
    if transfer.done:
        return
    now = fair.network.sim.now
    if transfer.finish_at > now + 1e-12:
        if transfer.next_wake <= now:
            transfer.next_wake = transfer.finish_at
            fair.network.sim.schedule_fire_at(
                transfer.finish_at, _transfer_wake, state
            )
        return
    fair._complete(transfer)


def _fair_flush(fair: "_FairShareLinks") -> None:
    """Deferred rate recompute for every dirty link (fire-path callback).

    All membership changes since the last flush happened at the current
    sim instant (the flush is armed with a zero-delay event the moment
    the first link goes dirty), so settling each touched transfer's
    elapsed progress at its *old* rate and assigning the new fair share
    at the same timestamp is exact — no time passes between the change
    and the recompute. Batching turns a B-transfer burst on one uplink
    from ~B^2/2 per-transfer settles (every start re-rated every active
    flow) into ~B: each burst instant settles each touched flow once.
    """
    fair._flush_armed = False
    up = fair.up_active
    down = fair.down_active
    pending: dict[_Transfer, None] = {}
    for node in sorted(fair._dirty_up):
        pending.update(up[node])
    for node in sorted(fair._dirty_down):
        pending.update(down[node])
    fair._dirty_up.clear()
    fair._dirty_down.clear()
    topology = fair.network.topology
    now = fair.network.sim.now
    for transfer in pending:
        if not transfer.done:
            fair._re_rate(transfer, topology, now, up, down)


class _FairShareLinks:
    """Fair-share link state machine for the whole network.

    Per node: an egress admission queue (three priority FIFOs, DATA
    gated by ``slots`` concurrent transfers), a list of active outbound
    transfers (uplink members) and active inbound transfers (downlink
    members). A transfer's rate is
    ``min(B_up / |up_active|, B_down / |down_active|)``; the rate
    depends only on membership counts, so no recomputation cascades
    further (the simpy Container technique from SNIPPETS Snippet 1,
    without per-byte token events). Membership changes mark their links
    *dirty* and a single zero-delay flush per sim instant settles and
    re-rates every transfer on dirty links (:func:`_fair_flush`) —
    amortized O(1) settles per start/finish event instead of the old
    O(active flows) sweep per change.
    """

    def __init__(self, network: "Network", slots: int) -> None:
        if slots < 1:
            raise ValueError(f"fair_share_slots must be >= 1, got {slots}")
        self.network = network
        self.slots = slots
        n = network.topology.n
        self.queues: list[list[deque[_QueueItem]]] = [
            [deque() for _ in Channel] for _ in range(n)
        ]
        # Memberships are dicts used as ordered sets: O(1) add/remove
        # (the old lists paid O(flows) per ``.remove``) with insertion-
        # ordered, deterministic iteration.
        self.up_active: list[dict[_Transfer, None]] = [{} for _ in range(n)]
        self.down_active: list[dict[_Transfer, None]] = [{} for _ in range(n)]
        #: DATA transfers currently holding one of ``slots`` per uplink.
        self.data_in_flight: list[int] = [0] * n
        #: Links whose membership changed since the last rate flush.
        self._dirty_up: set[int] = set()
        self._dirty_down: set[int] = set()
        self._flush_armed = False
        #: Per-transfer settle/re-rate operations performed — the
        #: O(1)-amortized claim is asserted against this counter by
        #: ``tests/test_fair_share.py``.
        self.settle_ops = 0

    # -- submission ----------------------------------------------------

    def submit(self, item: _QueueItem, src: int, index: int) -> None:
        self.queues[src][index].append(item)
        self._admit(src)

    def _admit(self, src: int) -> None:
        """Start as many queued transfers as admission rules allow."""
        queues = self.queues[src]
        network = self.network
        now = network.sim.now
        started: list[_Transfer] = []
        while True:
            if queues[_CONSENSUS]:
                queue = queues[_CONSENSUS]
            elif queues[_CONTROL]:
                queue = queues[_CONTROL]
            elif queues[_DATA] and self.data_in_flight[src] < self.slots:
                queue = queues[_DATA]
                self.data_in_flight[src] += 1
            else:
                break
            head = queue[0]
            if type(head) is Envelope:
                queue.popleft()
                envelope = head
            else:
                envelope = Envelope(
                    src, head.recipients[head.next_index], head.kind,
                    head.size_bytes, head.payload, head.channel,
                    head.enqueued_at,
                )
                head.next_index += 1
                if head.next_index >= len(head.recipients):
                    queue.popleft()
            network.stats.record_send(src, envelope.kind, envelope.size_bytes)
            transfer = _Transfer(envelope, now)
            self.up_active[src][transfer] = None
            self.down_active[envelope.dst][transfer] = None
            started.append(transfer)
        for transfer in started:
            self._mark(transfer.envelope.src, transfer.envelope.dst)

    # -- rate bookkeeping ----------------------------------------------

    def _mark(self, src: int, dst: int) -> None:
        """Record a membership change; arm one flush for this instant.

        The zero-delay flush event lands after every already-queued
        same-instant event, so an entire burst of starts/finishes is
        settled with a single pass over the touched links instead of one
        O(active flows) sweep per change.
        """
        self._dirty_up.add(src)
        self._dirty_down.add(dst)
        if not self._flush_armed:
            self._flush_armed = True
            self.network.sim.schedule_fire(0.0, _fair_flush, self)

    def _re_rate(self, transfer, topology, now, up, down) -> None:
        self.settle_ops += 1
        elapsed = now - transfer.updated
        if elapsed > 0.0:
            transfer.remaining_bits -= transfer.rate * elapsed
            if transfer.remaining_bits < 0.0:
                transfer.remaining_bits = 0.0
        transfer.updated = now
        envelope = transfer.envelope
        src, dst = envelope.src, envelope.dst
        rate = min(
            topology.bandwidth(src, now=now) / len(up[src]),
            topology.bandwidth(dst, now=now) / len(down[dst]),
        )
        transfer.rate = rate
        finish = now + transfer.remaining_bits / rate if rate > 0 else now
        transfer.finish_at = finish
        if transfer.next_wake < now or finish < transfer.next_wake - 1e-12:
            transfer.next_wake = finish
            self.network.sim.schedule_fire_at(
                finish, _transfer_wake, (self, transfer)
            )

    # -- completion / teardown -----------------------------------------

    def _complete(self, transfer: _Transfer) -> None:
        transfer.done = True
        envelope = transfer.envelope
        src, dst = envelope.src, envelope.dst
        del self.up_active[src][transfer]
        del self.down_active[dst][transfer]
        if envelope.channel is Channel.DATA or not self.network.priority_channels:
            self.data_in_flight[src] -= 1
        envelope.sent_at = self.network.sim.now
        self.network._dispatch_copy(envelope, self.network.sim.now)
        self._admit(src)
        self._mark(src, dst)

    def flush(self, node: int) -> int:
        """Crash teardown: clear the node's queues, kill its transfers."""
        dropped = 0
        for queue in self.queues[node]:
            for item in queue:
                dropped += 1 if type(item) is Envelope else item.remaining
            queue.clear()
        touched: list[tuple[int, int]] = []
        for transfer in list(self.up_active[node]):
            dropped += 1
            self._kill(transfer)
            touched.append((transfer.envelope.src, transfer.envelope.dst))
        for transfer in list(self.down_active[node]):
            dropped += 1
            self._kill(transfer)
            touched.append((transfer.envelope.src, transfer.envelope.dst))
        for src, dst in touched:
            self._admit(src)
            self._mark(src, dst)
        return dropped

    def _kill(self, transfer: _Transfer) -> None:
        transfer.done = True
        envelope = transfer.envelope
        del self.up_active[envelope.src][transfer]
        del self.down_active[envelope.dst][transfer]
        if (
            envelope.channel is Channel.DATA
            or not self.network.priority_channels
        ):
            self.data_in_flight[envelope.src] -= 1
        self.network.stats.cancel_send(
            envelope.src, envelope.kind, envelope.size_bytes
        )

    def queued_bytes(self, node: int, channel: Optional[Channel]) -> float:
        queues = (
            [self.queues[node][channel.value]] if channel is not None
            else self.queues[node]
        )
        total = 0.0
        for queue in queues:
            for item in queue:
                if type(item) is Envelope:
                    total += item.size_bytes
                else:
                    total += item.size_bytes * item.remaining
        now = self.network.sim.now
        for transfer in self.up_active[node]:
            if channel is None or transfer.envelope.channel is channel:
                remaining = (
                    transfer.remaining_bits
                    - transfer.rate * (now - transfer.updated)
                )
                total += max(0.0, remaining) / 8.0
        return total


DropFilter = Callable[[Envelope], bool]


class Network(Transport):
    """Message router connecting all replicas over a :class:`Topology`."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        rng: RngRegistry,
        priority_channels: bool = True,
        link_model: str = "serial",
        fair_share_slots: int = 8,
    ) -> None:
        if link_model not in LINK_MODELS:
            raise ValueError(
                f"link_model must be one of {LINK_MODELS}, got {link_model!r}"
            )
        self.sim = sim
        self.topology = topology
        #: When False, every message shares one FIFO class — ablates the
        #: paper's "consensus channel first" optimization (Section VI).
        self.priority_channels = priority_channels
        self.link_model = link_model
        self.stats = NetworkStats()
        # One jitter stream per sender: a flow expansion draws delays
        # for its copies from its own src's stream, so concurrent
        # uplinks never interleave on a shared RNG (required for the
        # aggregate-workload mode to be tick-mode equivalent).
        self._jitter_rngs = [
            rng.stream(f"network.jitter.{node}")
            for node in range(topology.n)
        ]
        self._handlers: dict[int, Handler] = {}
        #: Handler lookup indexed by node id — the delivery chain indexes
        #: this list instead of hashing into the dict.
        self._handler_list: list[Optional[Handler]] = [None] * topology.n
        #: Receive-side CPU cost, cached off the topology (immutable).
        self._proc = topology.proc_per_message
        #: True iff a drop filter or at least one drop rule is installed;
        #: lets the delivery fast path skip ``_should_drop`` entirely.
        self._filters_active = False
        self._fair: Optional[_FairShareLinks] = None
        self._uplinks: list[_Uplink] = []
        if link_model == "fair-share":
            self._fair = _FairShareLinks(self, fair_share_slots)
        else:
            self._uplinks = [_Uplink(node, self) for node in range(topology.n)]
        self._ingress = [_Ingress(node, self) for node in range(topology.n)]
        self._drop_filter: Optional[DropFilter] = None
        self._drop_rules: dict[int, DropFilter] = {}
        self._rule_seq = 0
        self._down: set[int] = set()
        #: now of each node's most recent crash-flush (-1.0 = never);
        #: used to discard in-flight copies the crash cut short.
        self._flush_at = [-1.0] * topology.n
        #: Per-src default broadcast recipient tuples, built lazily once
        #: all nodes are registered (invalidated by ``register``).
        self._default_recipients: list[Optional[tuple]] = [None] * topology.n

    # -- wiring ------------------------------------------------------------

    def register(self, node: int, handler: Handler) -> None:
        """Attach the message handler for ``node``."""
        if node in self._handlers:
            raise ValueError(f"node {node} already registered")
        self._handlers[node] = handler
        self._handler_list[node] = handler
        self._default_recipients = [None] * self.topology.n

    def set_drop_filter(self, drop_filter: Optional[DropFilter]) -> None:
        """Install a predicate that silently drops matching envelopes.

        Used by fault-injection tests (message loss, partitions). The
        filter runs at delivery time, after bandwidth was consumed, which
        matches a real network where loss wastes the sender's uplink.
        """
        self._drop_filter = drop_filter
        self._filters_active = (
            drop_filter is not None or bool(self._drop_rules)
        )

    def add_drop_rule(self, rule: DropFilter) -> int:
        """Install an *additional* drop predicate; returns a removal handle.

        Rules compose with each other and with the ``set_drop_filter``
        predicate (a message matching any of them is dropped), which lets
        the fault injector layer partitions and loss windows on top of a
        user-installed filter without clobbering it.
        """
        rule_id = self._rule_seq
        self._rule_seq += 1
        self._drop_rules[rule_id] = rule
        self._filters_active = True
        return rule_id

    def remove_drop_rule(self, rule_id: int) -> None:
        """Remove a rule installed by :meth:`add_drop_rule` (idempotent)."""
        self._drop_rules.pop(rule_id, None)
        self._filters_active = (
            self._drop_filter is not None or bool(self._drop_rules)
        )

    def set_node_down(self, node: int) -> None:
        """Crash ``node``'s network endpoint.

        Its egress and ingress queues are flushed (queued messages count
        as dropped), and until :meth:`set_node_up` re-registers it, every
        message from or to the node is discarded.
        """
        if node in self._down:
            return
        self._down.add(node)
        self._flush_at[node] = self.sim.now
        if self._fair is not None:
            flushed = self._fair.flush(node)
        else:
            flushed = self._uplinks[node].flush()
        flushed += self._ingress[node].flush()
        self.stats.messages_dropped += flushed

    def set_node_up(self, node: int) -> None:
        """Re-register a crashed node's endpoint (restart)."""
        self._down.discard(node)

    def is_down(self, node: int) -> bool:
        return node in self._down

    def set_data_limiter(
        self, node: int, rate_bytes_per_s: float, burst_bytes: float
    ) -> None:
        """Enable the token-bucket limiter on ``node``'s data channel."""
        if self._fair is not None:
            raise ValueError(
                "the data limiter requires link_model='serial' "
                "(fair-share links model contention directly)"
            )
        self._uplinks[node].limiter = TokenBucket(rate_bytes_per_s, burst_bytes)

    # -- sending -----------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
    ) -> None:
        """Queue one message for serialization on ``src``'s uplink."""
        if src in self._down or dst in self._down:
            # A crashed process sends nothing; a sender talking to a dead
            # peer sees its connection break before serializing the copy.
            self.stats.messages_dropped += 1
            return
        if dst == src:
            # Loopback: no bandwidth cost, delivered on the next event
            # via a shared callback (no per-message closure).
            envelope = Envelope(src, dst, kind, 0.0, payload, channel, self.sim.now)
            self.sim.schedule_fire(0.0, self._deliver, envelope)
            return
        if src not in self._handlers or dst not in self._handlers:
            raise ValueError(f"send between unregistered nodes {src}->{dst}")
        envelope = Envelope(
            src, dst, kind, size_bytes, payload, channel, self.sim.now
        )
        index = channel.value if self.priority_channels else _DATA
        if self._fair is not None:
            self._fair.submit(envelope, src, index)
        else:
            self._uplinks[src].enqueue(envelope, index)

    def broadcast(
        self,
        src: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
        recipients: Optional[list[int]] = None,
        include_self: bool = False,
    ) -> None:
        """Send one copy per recipient (defaults to every other replica).

        Each copy is serialized separately through the sender's uplink —
        there is no link-layer multicast, mirroring TCP fan-out — but the
        whole fan-out occupies one egress-queue slot (a :class:`_Flow`)
        that the serializer expands lazily.
        """
        if src in self._down:
            count = (
                len(recipients) if recipients is not None
                else self.topology.n - 1
            )
            self.stats.messages_dropped += count + (
                1 if include_self and src not in (recipients or ()) else 0
            )
            return
        if include_self:
            self.send(src, src, kind, size_bytes, payload, channel)
        if recipients is None:
            targets = self._default_recipients[src]
            if targets is None:
                targets = self._build_default_recipients(src)
        else:
            handlers = self._handlers
            for dst in recipients:
                if dst != src and dst not in handlers:
                    raise ValueError(
                        f"send between unregistered nodes {src}->{dst}"
                    )
            targets = [dst for dst in recipients if dst != src]
        if self._down:
            live = [dst for dst in targets if dst not in self._down]
            self.stats.messages_dropped += len(targets) - len(live)
            targets = live
        if not targets:
            return
        index = channel.value if self.priority_channels else _DATA
        if len(targets) == 1:
            envelope = Envelope(
                src, targets[0], kind, size_bytes, payload, channel,
                self.sim.now,
            )
            if self._fair is not None:
                self._fair.submit(envelope, src, index)
            else:
                self._uplinks[src].enqueue(envelope, index)
            return
        flow = _Flow(kind, size_bytes, payload, channel, targets, self.sim.now)
        if self._fair is not None:
            self._fair.submit(flow, src, index)
        else:
            self._uplinks[src].enqueue(flow, index)

    def _build_default_recipients(self, src: int) -> tuple:
        if src not in self._handlers:
            raise ValueError(f"broadcast from unregistered node {src}")
        handlers = self._handlers
        targets = tuple(
            node for node in range(self.topology.n)
            if node != src and node in handlers
        )
        missing = self.topology.n - 1 - len(targets)
        if missing:
            raise ValueError(
                f"broadcast from {src} with {missing} unregistered nodes"
            )
        self._default_recipients[src] = targets
        return targets

    def queued_bytes(self, node: int, channel: Optional[Channel] = None) -> float:
        """Bytes currently waiting in ``node``'s egress queues."""
        if self._fair is not None:
            return self._fair.queued_bytes(node, channel)
        return self._uplinks[node].queued_bytes(channel)

    def expected_transfer_seconds(
        self, src: int, size_bytes: float, copies: int = 1
    ) -> Optional[float]:
        """Backlog-aware estimate of clearing ``copies`` new copies.

        Everything already queued on (or partially through) ``src``'s
        uplink serializes first, so the estimate is the full backlog
        plus the new copies at the current bandwidth. Used as a floor
        for retransmission timers (see ``adaptive_retry_delay``) so
        congestion does not masquerade as loss.
        """
        bandwidth = self.topology.bandwidth(src, now=self.sim.now)
        if bandwidth <= 0:
            return None
        backlog = self.queued_bytes(src)
        return (backlog + size_bytes * copies) * 8.0 / bandwidth

    # -- internal ----------------------------------------------------------

    def _dispatch_copy(self, envelope: Envelope, leave_time: float) -> None:
        """Schedule one serialized copy's propagation + delivery.

        Called by the uplink at segment-expansion time: the copy leaves
        the wire at ``leave_time`` and arrives one propagation delay
        later. Bandwidth/stats accounting already happened at the
        segment level. (The serial uplink's fan-out loop inlines the
        simple-topology case of this function.)
        """
        topology = self.topology
        src = envelope.src
        if not topology._schedules and not topology._delay_overrides:
            # Fast path: identical float expressions to Topology.delay
            # for a schedule-free, override-free topology (src != dst is
            # guaranteed — loopback never reaches the uplink).
            delay = topology._base_delay
            jit = topology._jitter
            if jit > 0:
                delay = max(
                    0.0, delay + self._jitter_rngs[src].uniform(-jit, jit)
                )
        else:
            delay = topology.delay(
                src, envelope.dst, self.sim.now, self._jitter_rngs[src]
            )
        self.sim.schedule_fire_at(
            leave_time + delay, self._deliver_copy, envelope
        )

    def _should_drop(self, envelope: Envelope) -> bool:
        if self._drop_filter is not None and self._drop_filter(envelope):
            return True
        return any(rule(envelope) for rule in self._drop_rules.values())

    def _deliver_copy(self, envelope: Envelope) -> None:
        """Arrival of one serialized copy (fire-path callback).

        The per-message delivery guards (_deliver) and the idle-ingress
        hand-off are inlined: this plus ``_ingress_finish`` make up two
        of the roughly two events every simulated message costs.
        """
        flush_at = self._flush_at[envelope.src]
        if envelope.enqueued_at <= flush_at < envelope.sent_at:
            # The sender crashed while this copy was still being
            # serialized: it never fully left, so its bytes are
            # un-accounted and the copy is dropped.
            self.stats.cancel_send(
                envelope.src, envelope.kind, envelope.size_bytes
            )
            self.stats.messages_dropped += 1
            return
        dst = envelope.dst
        if self._down or self._filters_active:
            if dst in self._down or self._should_drop(envelope):
                self.stats.messages_dropped += 1
                return
        handler = self._handler_list[dst]
        if handler is None:
            self.stats.messages_dropped += 1
            return
        if self._proc > 0:
            # src != dst here (loopback bypasses the wire entirely).
            ingress = self._ingress[dst]
            if ingress.busy:
                if self.priority_channels:
                    ch = envelope.channel
                    index = (
                        _DATA if ch is _DATA_MEMBER
                        else _CONSENSUS if ch is _CONSENSUS_MEMBER
                        else _CONTROL
                    )
                else:
                    index = _DATA
                ingress.queues[index].append(envelope)
            else:
                ingress.busy = True
                ingress.current = envelope
                sim = self.sim
                seq = sim._seq
                sim._seq = seq + 1
                _heappush(
                    sim._queue,
                    (sim._now + self._proc, seq, _ingress_finish, ingress),
                )
        else:
            self.stats.messages_delivered += 1
            handler(envelope)

    def _deliver(self, envelope: Envelope) -> None:
        if envelope.dst in self._down or (
            self._filters_active and self._should_drop(envelope)
        ):
            self.stats.messages_dropped += 1
            return
        if envelope.dst not in self._handlers:
            self.stats.messages_dropped += 1
            return
        if self._proc > 0 and envelope.src != envelope.dst:
            self._ingress[envelope.dst].accept(envelope)
        else:
            self._dispatch(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        handler = self._handlers.get(envelope.dst)
        if handler is None or envelope.dst in self._down:
            # The down check repeats here because an ingress CPU may have
            # been mid-message when the node crashed.
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        handler(envelope)
