"""Discrete-event simulation substrate.

This package provides the deterministic event loop, seeded RNG streams,
network links with bandwidth serialization, and topology presets on which
every protocol in :mod:`repro` runs.
"""

from repro.sim.engine import Event, Simulator, Timer
from repro.sim.interfaces import Envelope, Scheduler, TimerHandle, Transport
from repro.sim.rng import RngRegistry
from repro.sim.topology import (
    DelaySchedule,
    FluctuationWindow,
    Topology,
    geo_topology,
    lan_topology,
    wan_topology,
)
from repro.sim.network import Channel, Network, NetworkStats

__all__ = [
    "Event",
    "Simulator",
    "Timer",
    "Scheduler",
    "TimerHandle",
    "Transport",
    "Envelope",
    "RngRegistry",
    "Topology",
    "DelaySchedule",
    "FluctuationWindow",
    "lan_topology",
    "wan_topology",
    "geo_topology",
    "Channel",
    "Network",
    "NetworkStats",
]
