"""Named, reproducible random streams.

Every stochastic component (each replica's fetch sampling, each client's
arrival process, the jitter on each link, ...) draws from its own named
child stream derived from a single root seed. Runs are therefore
bit-for-bit reproducible, and adding a new consumer does not perturb the
draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory for deterministic per-component ``random.Random`` streams."""

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The child seed is an SHA-256 digest of ``(root_seed, name)`` so
        streams are statistically independent and stable across runs and
        Python versions (unlike ``hash()``, which is salted).
        """
        if name not in self._streams:
            material = f"{self._root_seed}:{name}".encode()
            digest = hashlib.sha256(material).digest()
            child_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(child_seed)
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Derive a sub-registry, e.g. one per replica."""
        material = f"{self._root_seed}:fork:{name}".encode()
        digest = hashlib.sha256(material).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def derive_seed(self, name: str) -> int:
        """Derive a stable integer child seed for ``name``.

        Used where a plain integer is needed rather than a stream — e.g.
        the scenario fuzzer stamps each generated experiment with
        ``derive_seed(f"scenario.{i}")`` so one root seed reproduces the
        whole composition (topology, workload, fault schedule, and the
        run itself) bit-for-bit.
        """
        material = f"{self._root_seed}:seed:{name}".encode()
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big")
