"""Protocol configuration shared by mempool and consensus components.

One :class:`ProtocolConfig` instance describes everything a replica needs
to know about the protocol variant under test: which mempool and consensus
engine to run, batching parameters, PAB quorum, DLB settings, and timers.
Topology- and workload-level settings live in
:class:`repro.harness.config.ExperimentConfig`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Optional

MEMPOOL_KINDS = (
    "native", "simple", "gossip", "narwhal", "stratus", "sharded-stratus",
)
CONSENSUS_KINDS = ("hotstuff", "twochain", "streamlet", "pbft")


@dataclass(frozen=True)
class ShardingConfig:
    """Shard layout for the sharded shared mempool (``sharded-stratus``).

    Deliberately tiny and value-like: the derived structure (membership
    orbits, per-shard quorums) lives in
    :class:`repro.sharding.map.ShardMap`, so a rebalance is "build a new
    map from a bumped ``epoch``" rather than a mutation.

    * ``shards`` — number of availability shards the microblock space is
      partitioned into. ``1`` degenerates to unsharded dissemination
      (every replica in one shard) while keeping certificate-only
      consensus ordering.
    * ``shard_size`` — replicas per shard membership. ``None`` derives
      ``min(n, max(4, ceil(n / shards)))``: large enough that every
      shard tolerates at least one fault whenever ``n >= 4``, and the
      memberships jointly cover all replicas.
    * ``epoch`` — rebalance generation. Bumping it rotates every
      membership deterministically (``(node + epoch) mod n``), the hook
      a reconfiguration protocol would drive; all replicas must agree on
      the epoch, exactly like they agree on ``n``.
    """

    shards: int = 2
    shard_size: Optional[int] = None
    epoch: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError(
                f"shard_size must be >= 1, got {self.shard_size}"
            )
        if self.epoch < 0:
            raise ValueError(f"epoch must be >= 0, got {self.epoch}")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ShardingConfig":
        return cls(**data)


@dataclass
class ProtocolConfig:
    """Per-replica protocol parameters.

    Fields default to the paper's settings (Section VII-A): 128-byte
    transaction payloads, 128 KB microblocks, PAB quorum ``f + 1``,
    power-of-d sampling with ``d = 1``.
    """

    n: int
    mempool: str = "stratus"
    consensus: str = "hotstuff"

    # -- batching ----------------------------------------------------------
    tx_payload: int = 128
    batch_bytes: int = 128 * 1024
    batch_timeout: float = 0.05
    native_block_bytes: int = 512 * 1024
    # The paper sets no proposal-size cap (Section VII-B) because its
    # settings never accumulate a large backlog; a bound prevents a
    # death spiral where one slow view yields a multi-megabyte catch-up
    # proposal that itself times out. 0 = unlimited.
    proposal_max_microblocks: int = 1024

    # -- PAB ---------------------------------------------------------------
    pab_quorum: Optional[int] = None  # None = f + 1
    fetch_timeout: float = 0.5  # delta in Algorithm 2
    # Grace period before a PAB recovery fetch: in the prototype, per-peer
    # TCP FIFO means a correct sender's body always precedes its proof, so
    # an immediate fetch would duplicate an in-flight transfer. None means
    # "use fetch_timeout". Recovery is background traffic (Section IV-B).
    recovery_fetch_delay: Optional[float] = None
    fetch_sample_fraction: float = 0.25  # share of signers asked per round
    fetch_max_targets: int = 4
    # Retry rounds back off exponentially with jitter so a dead or
    # partitioned holder is not hammered at a fixed cadence, and give up
    # after ``fetch_max_rounds`` rounds (0 = retry forever). Abandoned
    # fetches are counted in metrics; GC'd or equivocated microblocks
    # would otherwise be chased for the rest of the run.
    fetch_backoff_factor: float = 1.5
    fetch_backoff_max: float = 2.0  # cap on the backed-off delay, seconds
    fetch_jitter: float = 0.1  # +/- fraction applied to each retry delay
    fetch_max_rounds: int = 25

    # -- DLB ---------------------------------------------------------------
    load_balancing: bool = False
    lb_samples: int = 1  # d in power-of-d-choices
    lb_query_timeout: float = 0.2  # tau
    lb_forward_timeout: float = 1.0  # tau'
    lb_probe_interval: int = 8  # self-push every k-th mb while busy
    estimator_window: int = 100
    estimator_percentile: float = 95.0
    busy_margin: float = 2.0  # busy if ST_p > margin * baseline + slack
    busy_slack: float = 0.05  # seconds of absolute slack (epsilon + beta)

    # -- gossip ------------------------------------------------------------
    gossip_fanout: int = 3

    # -- consensus ---------------------------------------------------------
    view_timeout: float = 2.0
    empty_view_delay: float = 0.005
    streamlet_epoch: float = 0.4
    pbft_window: int = 8

    # -- garbage collection (Section VIII) ----------------------------------
    # Seconds to retain a committed microblock's body and proof before
    # discarding them. Retention gives straggling replicas time to finish
    # their background fills; 0 disables GC entirely.
    gc_retention: float = 30.0

    # -- sharding (sharded-stratus only) -------------------------------------
    # None means "use ShardingConfig()'s defaults" when the mempool is
    # sharded; ignored by every other mempool kind.
    sharding: Optional[ShardingConfig] = None

    # -- fault model -------------------------------------------------------
    byzantine: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ValueError(f"BFT needs n >= 4, got n={self.n}")
        if isinstance(self.sharding, dict):
            # from_dict / **overrides convenience: accept the plain-dict
            # form and normalize it.
            self.sharding = ShardingConfig.from_dict(self.sharding)
        if self.sharding is not None and self.sharding.shards > self.n:
            raise ValueError(
                f"cannot split {self.n} replicas into "
                f"{self.sharding.shards} shards"
            )
        if self.mempool not in MEMPOOL_KINDS:
            raise ValueError(
                f"unknown mempool {self.mempool!r}; choose from {MEMPOOL_KINDS}"
            )
        if self.consensus not in CONSENSUS_KINDS:
            raise ValueError(
                f"unknown consensus {self.consensus!r}; "
                f"choose from {CONSENSUS_KINDS}"
            )
        if self.pab_quorum is not None and not (
            self.f + 1 <= self.pab_quorum <= 2 * self.f + 1
        ):
            raise ValueError(
                f"pab_quorum must be in [f+1, 2f+1] = "
                f"[{self.f + 1}, {2 * self.f + 1}], got {self.pab_quorum}"
            )
        if self.lb_samples < 1:
            raise ValueError(f"lb_samples must be >= 1, got {self.lb_samples}")
        if not 0.0 < self.fetch_sample_fraction <= 1.0:
            raise ValueError(
                "fetch_sample_fraction must be in (0, 1], "
                f"got {self.fetch_sample_fraction}"
            )
        if self.fetch_backoff_factor < 1.0:
            raise ValueError(
                "fetch_backoff_factor must be >= 1, "
                f"got {self.fetch_backoff_factor}"
            )
        if not 0.0 <= self.fetch_jitter < 1.0:
            raise ValueError(
                f"fetch_jitter must be in [0, 1), got {self.fetch_jitter}"
            )
        if self.fetch_max_rounds < 0:
            raise ValueError(
                f"fetch_max_rounds must be >= 0, got {self.fetch_max_rounds}"
            )
        if len(self.byzantine) > self.f:
            raise ValueError(
                f"{len(self.byzantine)} Byzantine replicas exceeds f={self.f}"
            )

    @property
    def f(self) -> int:
        """Fault tolerance: largest f with n >= 3f + 1."""
        return (self.n - 1) // 3

    @property
    def consensus_quorum(self) -> int:
        """Votes needed for a quorum certificate (2f + 1)."""
        return 2 * self.f + 1

    @property
    def stability_quorum(self) -> int:
        """PAB ack quorum q, in [f+1, 2f+1]; defaults to f + 1."""
        if self.pab_quorum is not None:
            return self.pab_quorum
        return self.f + 1

    @property
    def effective_recovery_delay(self) -> float:
        """Grace period before fetching a missing microblock."""
        if self.recovery_fetch_delay is not None:
            return self.recovery_fetch_delay
        return self.fetch_timeout

    @property
    def txs_per_microblock(self) -> int:
        """Transactions needed to fill a microblock at the batch size."""
        return max(1, self.batch_bytes // self.tx_payload)

    def with_updates(self, **changes) -> "ProtocolConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-able form; round-trips through :meth:`from_dict`.

        Used by ``repro.parallel`` to ship configurations into spawned
        worker processes without pickling live objects.
        """
        data = dataclasses.asdict(self)
        data["byzantine"] = sorted(self.byzantine)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProtocolConfig":
        data = dict(data)
        data["byzantine"] = frozenset(data.get("byzantine", ()))
        return cls(**data)
