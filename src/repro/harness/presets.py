"""Protocol presets matching the paper's acronyms (Table II).

``tuned_protocol`` applies the paper's tuning rules: 128 KB microblocks
for networks up to 128 replicas and 256 KB beyond (Fig. 5's conclusion),
plus topology-aware timers so native protocols get view timeouts long
enough to ship their full-data proposals.
"""

from __future__ import annotations

from pathlib import Path

from repro.config import ProtocolConfig
from repro.faults import (
    BandwidthSqueeze,
    CrashReplica,
    DelaySpike,
    FaultSchedule,
    LossWindow,
    Partition,
    RestartReplica,
)
from repro.sim.topology import GBPS, MBPS

PROTOCOL_PRESETS: dict[str, tuple[str, str]] = {
    "N-HS": ("native", "hotstuff"),
    "N-SL": ("native", "streamlet"),
    "SMP-HS": ("simple", "hotstuff"),
    "SMP-SL": ("simple", "streamlet"),
    "SMP-HS-G": ("gossip", "hotstuff"),
    "Narwhal": ("narwhal", "hotstuff"),
    "S-HS": ("stratus", "hotstuff"),
    "S-SL": ("stratus", "streamlet"),
    "SS-HS": ("sharded-stratus", "hotstuff"),
    "S-HS2": ("stratus", "twochain"),
    "N-HS2": ("native", "twochain"),
    "PBFT": ("native", "pbft"),
}


def _default_batch_bytes(n: int) -> int:
    """Paper rule: 128 KB for N <= 128, 256 KB for larger networks."""
    return 128 * 1024 if n <= 128 else 256 * 1024


def tuned_protocol(
    preset: str,
    n: int,
    topology_kind: str = "lan",
    **overrides,
) -> ProtocolConfig:
    """Build a :class:`ProtocolConfig` for a paper acronym.

    ``overrides`` win over every tuned default, so benches can pin the
    exact parameter a figure sweeps (batch size, PAB quorum, d, ...).
    """
    if preset not in PROTOCOL_PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; choose from {sorted(PROTOCOL_PRESETS)}"
        )
    mempool, consensus = PROTOCOL_PRESETS[preset]
    is_wan = topology_kind in ("wan", "geo")
    one_way_delay = 0.050 if is_wan else 0.002
    bandwidth = 100 * MBPS if is_wan else GBPS

    settings: dict = {
        "mempool": mempool,
        "consensus": consensus,
        "batch_bytes": _default_batch_bytes(n),
        # Flush partial microblocks after this long. The paper's batch
        # sizes imply O(1 s) fill times at per-replica saturation rates
        # (visible in Fig. 5's saturation latencies); flushing much
        # earlier would shrink microblocks until proof overhead dominates.
        "batch_timeout": 0.5,
        "native_block_bytes": 128 * 1024 if is_wan else 512 * 1024,
        "fetch_timeout": max(0.2, 6 * one_way_delay),
        "lb_query_timeout": max(0.05, 4 * one_way_delay),
        "lb_forward_timeout": max(0.5, 12 * one_way_delay),
        "load_balancing": mempool == "stratus",
    }
    if consensus == "streamlet":
        # One epoch must cover proposal dissemination plus a vote round.
        if mempool == "native":
            block_bytes = settings["native_block_bytes"]
            transmit = (n - 1) * block_bytes * 8.0 / bandwidth
            settings["streamlet_epoch"] = 1.3 * transmit + 6 * one_way_delay
        else:
            epoch = max(0.08, 6 * one_way_delay)
            settings["streamlet_epoch"] = epoch
            # Unlike chained HotStuff (whose views stretch with proposal
            # size), Streamlet's epochs are wall-clock: the leader's
            # (n-1)-fold proposal broadcast must fit well inside one
            # epoch, so cap the entry count by a quarter-epoch byte
            # budget. Stratus entries carry (f+1)-signature proofs.
            f = (n - 1) // 3
            entry_bytes = (f + 1) * 64 + 64 if mempool == "stratus" else 64
            budget_bytes = 0.25 * epoch * bandwidth / 8.0
            settings["proposal_max_microblocks"] = max(
                16, int(budget_bytes / ((n - 1) * entry_bytes))
            )
    if mempool == "native":
        block_bytes = settings["native_block_bytes"]
        transmit = (n - 1) * block_bytes * 8.0 / bandwidth
        settings["view_timeout"] = max(2.0, 4.0 * transmit)
    else:
        settings["view_timeout"] = max(2.0, 40 * one_way_delay)

    settings.update(overrides)
    return ProtocolConfig(n=n, **settings)


#: Named chaos schedules for the CLI's ``--faults`` flag. Each entry is a
#: builder taking the replica count, because sensible targets depend on n
#: (the crash victim is the highest id, never in the leader set under a
#: ``fault_count`` run; partition groups must fit the membership).
CHAOS_PRESET_NAMES = (
    "crash-restart",
    "crash-partition",
    "fig7-disturbance",
    "flaky-data",
    "leader-squeeze",
)


def chaos_schedule(name: str, n: int) -> FaultSchedule:
    """Build a named chaos preset for an ``n``-replica network.

    * ``crash-restart`` — one replica dies at t=2 s and returns at t=4 s;
      exercises queue flushing, timer suspension, and chain-sync catch-up.
    * ``crash-partition`` — the crash above plus a 1 s partition isolating
      replicas {0, 1} and a 20 % data-channel loss window; while the crash
      and partition overlap no quorum exists anywhere, so the run shows a
      stall, a heal, and a measurable time-to-recover.
    * ``fig7-disturbance`` — the paper's Fig. 7 NetEm window as a fault
      event: 10 s of 100 ms ± 50 ms one-way delay with TCP goodput
      collapse, starting at t=5 s.
    * ``flaky-data`` — 10 % loss on the DATA channel for 3 s: microblock
      bodies go missing while small consensus messages survive, stressing
      the fetch/recovery path specifically.
    * ``leader-squeeze`` — replica 0's uplink drops to 10 % for 2 s
      (the straggling-leader scenario of Problem II).
    """
    if n < 4:
        raise ValueError(f"chaos presets need n >= 4, got n={n}")
    victim = n - 1
    if name == "crash-restart":
        return FaultSchedule([
            CrashReplica(at=2.0, node=victim),
            RestartReplica(at=4.0, node=victim),
        ])
    if name == "crash-partition":
        return FaultSchedule([
            CrashReplica(at=2.0, node=victim),
            Partition(at=2.5, duration=1.0, groups=((0, 1),)),
            LossWindow(at=2.0, duration=2.0, rate=0.2, channel="data"),
            RestartReplica(at=4.0, node=victim),
        ])
    if name == "fig7-disturbance":
        return FaultSchedule([
            DelaySpike(
                at=5.0, duration=10.0, base=0.1, jitter=0.05,
                bandwidth_factor=0.15,
            ),
        ])
    if name == "flaky-data":
        return FaultSchedule([
            LossWindow(at=1.5, duration=3.0, rate=0.1, channel="data"),
        ])
    if name == "leader-squeeze":
        return FaultSchedule([
            BandwidthSqueeze(at=2.0, duration=2.0, factor=0.1, nodes=(0,)),
        ])
    raise ValueError(
        f"unknown chaos preset {name!r}; choose from {CHAOS_PRESET_NAMES}"
    )


def resolve_fault_spec(
    spec: str, n: int, live: bool = False
) -> FaultSchedule:
    """Resolve a ``--faults`` argument into a validated schedule.

    ``spec`` is a chaos preset name, ``@path/to/schedule.json``, or an
    inline JSON event list — the one grammar shared by the simulator and
    live CLIs. With ``live=True`` the schedule is additionally held to
    the live backend's restrictions (see
    :meth:`FaultSchedule.validate_live` — e.g. no behavior swaps, which
    would need a runtime control channel into the replica processes).
    Raises ``ValueError`` (including for a missing ``@file``) so callers
    own the exit/retry policy.
    """
    if spec in CHAOS_PRESET_NAMES:
        schedule = chaos_schedule(spec, n)
    else:
        if spec.startswith("@"):
            path = Path(spec[1:])
            if not path.exists():
                raise ValueError(f"fault schedule file not found: {path}")
            text = path.read_text()
        else:
            text = spec
        schedule = FaultSchedule.from_json(text)
    if live:
        schedule.validate_live(n)
    else:
        schedule.validate(n)
    return schedule
