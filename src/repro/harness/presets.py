"""Protocol presets matching the paper's acronyms (Table II).

``tuned_protocol`` applies the paper's tuning rules: 128 KB microblocks
for networks up to 128 replicas and 256 KB beyond (Fig. 5's conclusion),
plus topology-aware timers so native protocols get view timeouts long
enough to ship their full-data proposals.
"""

from __future__ import annotations

from repro.config import ProtocolConfig
from repro.sim.topology import GBPS, MBPS

PROTOCOL_PRESETS: dict[str, tuple[str, str]] = {
    "N-HS": ("native", "hotstuff"),
    "N-SL": ("native", "streamlet"),
    "SMP-HS": ("simple", "hotstuff"),
    "SMP-SL": ("simple", "streamlet"),
    "SMP-HS-G": ("gossip", "hotstuff"),
    "Narwhal": ("narwhal", "hotstuff"),
    "S-HS": ("stratus", "hotstuff"),
    "S-SL": ("stratus", "streamlet"),
    "S-HS2": ("stratus", "twochain"),
    "N-HS2": ("native", "twochain"),
    "PBFT": ("native", "pbft"),
}


def _default_batch_bytes(n: int) -> int:
    """Paper rule: 128 KB for N <= 128, 256 KB for larger networks."""
    return 128 * 1024 if n <= 128 else 256 * 1024


def tuned_protocol(
    preset: str,
    n: int,
    topology_kind: str = "lan",
    **overrides,
) -> ProtocolConfig:
    """Build a :class:`ProtocolConfig` for a paper acronym.

    ``overrides`` win over every tuned default, so benches can pin the
    exact parameter a figure sweeps (batch size, PAB quorum, d, ...).
    """
    if preset not in PROTOCOL_PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; choose from {sorted(PROTOCOL_PRESETS)}"
        )
    mempool, consensus = PROTOCOL_PRESETS[preset]
    is_wan = topology_kind in ("wan", "geo")
    one_way_delay = 0.050 if is_wan else 0.002
    bandwidth = 100 * MBPS if is_wan else GBPS

    settings: dict = {
        "mempool": mempool,
        "consensus": consensus,
        "batch_bytes": _default_batch_bytes(n),
        # Flush partial microblocks after this long. The paper's batch
        # sizes imply O(1 s) fill times at per-replica saturation rates
        # (visible in Fig. 5's saturation latencies); flushing much
        # earlier would shrink microblocks until proof overhead dominates.
        "batch_timeout": 0.5,
        "native_block_bytes": 128 * 1024 if is_wan else 512 * 1024,
        "fetch_timeout": max(0.2, 6 * one_way_delay),
        "lb_query_timeout": max(0.05, 4 * one_way_delay),
        "lb_forward_timeout": max(0.5, 12 * one_way_delay),
        "load_balancing": mempool == "stratus",
    }
    if consensus == "streamlet":
        # One epoch must cover proposal dissemination plus a vote round.
        if mempool == "native":
            block_bytes = settings["native_block_bytes"]
            transmit = (n - 1) * block_bytes * 8.0 / bandwidth
            settings["streamlet_epoch"] = 1.3 * transmit + 6 * one_way_delay
        else:
            epoch = max(0.08, 6 * one_way_delay)
            settings["streamlet_epoch"] = epoch
            # Unlike chained HotStuff (whose views stretch with proposal
            # size), Streamlet's epochs are wall-clock: the leader's
            # (n-1)-fold proposal broadcast must fit well inside one
            # epoch, so cap the entry count by a quarter-epoch byte
            # budget. Stratus entries carry (f+1)-signature proofs.
            f = (n - 1) // 3
            entry_bytes = (f + 1) * 64 + 64 if mempool == "stratus" else 64
            budget_bytes = 0.25 * epoch * bandwidth / 8.0
            settings["proposal_max_microblocks"] = max(
                16, int(budget_bytes / ((n - 1) * entry_bytes))
            )
    if mempool == "native":
        block_bytes = settings["native_block_bytes"]
        transmit = (n - 1) * block_bytes * 8.0 / bandwidth
        settings["view_timeout"] = max(2.0, 4.0 * transmit)
    else:
        settings["view_timeout"] = max(2.0, 40 * one_way_delay)

    settings.update(overrides)
    return ProtocolConfig(n=n, **settings)
