"""Replicated runs: average an experiment over several seeds.

The paper reports each data point "as an average over 3 runs" (Fig. 7
uses 10). ``run_replicated`` re-runs an :class:`ExperimentConfig` with a
sequence of seeds and aggregates throughput/latency statistics.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Sequence

from repro.harness.config import ExperimentConfig
from repro.harness.runner import ExperimentResult, run_experiment


@dataclass
class ReplicatedResult:
    """Mean and spread over seed-replicated runs."""

    runs: list[ExperimentResult]

    @property
    def throughput_mean(self) -> float:
        return _mean([run.throughput_tps for run in self.runs])

    @property
    def throughput_std(self) -> float:
        return _std([run.throughput_tps for run in self.runs])

    @property
    def latency_mean(self) -> float:
        return _mean([run.latency_mean for run in self.runs])

    @property
    def latency_std(self) -> float:
        return _std([run.latency_mean for run in self.runs])

    @property
    def view_changes_mean(self) -> float:
        return _mean([float(run.view_changes) for run in self.runs])

    def __len__(self) -> int:
        return len(self.runs)


def run_replicated(
    config: ExperimentConfig, seeds: Sequence[int]
) -> ReplicatedResult:
    """Run ``config`` once per seed and aggregate."""
    if not seeds:
        raise ValueError("need at least one seed")
    runs = [
        run_experiment(dataclasses.replace(config, seed=seed))
        for seed in seeds
    ]
    return ReplicatedResult(runs=runs)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def _std(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(
        sum((value - mean) ** 2 for value in values) / (len(values) - 1)
    )
