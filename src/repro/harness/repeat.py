"""Replicated runs: average an experiment over several seeds.

The paper reports each data point "as an average over 3 runs" (Fig. 7
uses 10). ``run_replicated`` re-runs an :class:`ExperimentConfig` with a
sequence of seeds and aggregates throughput/latency statistics. With
``jobs > 1`` the seed replicas fan out across worker processes (see
:mod:`repro.parallel`); the aggregate is bit-for-bit the serial one
because each replica is a deterministic function of its config and the
results are collected in seed order.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.harness.config import ExperimentConfig
from repro.harness.runner import ExperimentResult, run_experiment


@dataclass
class ReplicatedResult:
    """Mean and spread over seed-replicated runs.

    ``runs`` holds either full :class:`ExperimentResult` objects (serial
    path) or compact :class:`~repro.parallel.jobs.RunSummary` objects
    (parallel path); both expose the attribute slice aggregated here.
    """

    runs: list

    @property
    def throughput_mean(self) -> float:
        return _mean([run.throughput_tps for run in self.runs])

    @property
    def throughput_std(self) -> float:
        return _std([run.throughput_tps for run in self.runs])

    @property
    def latency_mean(self) -> float:
        return _mean([run.latency_mean for run in self.runs])

    @property
    def latency_std(self) -> float:
        return _std([run.latency_mean for run in self.runs])

    @property
    def view_changes_mean(self) -> float:
        return _mean([float(run.view_changes) for run in self.runs])

    @property
    def events_per_sec_mean(self) -> float:
        """Simulator event-loop rate averaged over the replicas."""
        return _mean([run.events_per_sec for run in self.runs])

    @property
    def commit_hashes(self) -> list[str]:
        """Per-run commit-sequence hashes, in seed order.

        The determinism fingerprint of the whole replicated point: two
        runs of the same config+seeds — serial or parallel — must agree
        on every entry.
        """
        return [run.commit_hash for run in self.runs]

    def __len__(self) -> int:
        return len(self.runs)


def run_replicated(
    config: ExperimentConfig,
    seeds: Sequence[int],
    jobs: int = 1,
    executor: Optional[object] = None,
) -> ReplicatedResult:
    """Run ``config`` once per seed and aggregate.

    ``jobs > 1`` (or an explicit ``executor``) runs the replicas in
    worker processes; results are still aggregated in seed order.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    configs = [dataclasses.replace(config, seed=seed) for seed in seeds]
    if executor is not None or jobs > 1:
        from repro.parallel import sweep

        return ReplicatedResult(
            runs=sweep(configs, jobs=jobs, executor=executor)
        )
    runs: list[ExperimentResult] = [run_experiment(c) for c in configs]
    return ReplicatedResult(runs=runs)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def _std(values: list[float]) -> float:
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    return math.sqrt(
        sum((value - mean) ** 2 for value in values) / (len(values) - 1)
    )
