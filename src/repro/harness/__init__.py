"""Experiment harness: presets, builder/runner, and report formatting."""

from repro.harness.presets import (
    CHAOS_PRESET_NAMES,
    PROTOCOL_PRESETS,
    chaos_schedule,
    resolve_fault_spec,
    tuned_protocol,
)
from repro.harness.config import ExperimentConfig
from repro.harness.runner import (
    ExperimentResult,
    RunningExperiment,
    build_experiment,
    run_experiment,
)
from repro.harness.netbench import NetBenchConfig, NetBenchResult, run_netbench
from repro.harness.report import format_table, format_series
from repro.harness.repeat import ReplicatedResult, run_replicated

__all__ = [
    "ReplicatedResult",
    "run_replicated",
    "PROTOCOL_PRESETS",
    "CHAOS_PRESET_NAMES",
    "chaos_schedule",
    "resolve_fault_spec",
    "tuned_protocol",
    "ExperimentConfig",
    "ExperimentResult",
    "RunningExperiment",
    "build_experiment",
    "run_experiment",
    "NetBenchConfig",
    "NetBenchResult",
    "run_netbench",
    "format_table",
    "format_series",
]
