"""Dissemination microbench: the network fabric at full load, no protocol.

The perf suite's protocol scenarios measure the whole stack, so their
events/sec number is dominated by consensus and mempool handler cost.
This bench isolates the layer the flow-level dissemination work
optimizes: ``n`` replicas each broadcast a fixed-size payload on a fixed
period into trivial handlers, the offered load saturates every uplink,
and the simulator serializes at line rate. What it reports is therefore
the event fabric's ceiling — fan-out flow expansion, segment drains,
deliveries, and ingress processing — the denominator every protocol
scenario pays before doing any protocol work.

The run is fully deterministic: node ``i`` starts its broadcast chain at
``i * period / n`` (staggered so the heap never sees an n-wide burst of
identical timestamps), and the result digest folds in per-node delivery
counts, so a serial run and a ``--jobs`` worker must produce the same
``commit_hash``-shaped fingerprint.
"""

from __future__ import annotations

import gc
import hashlib
import time
from dataclasses import dataclass

from repro.sim.engine import Simulator
from repro.sim.interfaces import Channel
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import Topology


@dataclass(frozen=True)
class NetBenchConfig:
    """Parameters of one dissemination-bench cell (plain data, picklable)."""

    n: int = 128
    #: Payload of each broadcast (the paper's microblock size).
    msg_bytes: float = 128 * 1024
    #: Broadcasts per second per node. The default saturates a 1 Gb/s
    #: uplink ~13x (each broadcast serializes (n-1) copies), which keeps
    #: every segment full — the steady state the bench is after.
    rate_per_node: float = 100.0
    duration: float = 1.0
    seed: int = 7
    bandwidth_bps: float = 1e9
    #: Rack-scale propagation: keeps the in-flight delivery window (and
    #: with it the event heap) shallow, so the number measures per-event
    #: cost rather than heap depth.
    one_way_delay: float = 0.0001
    proc_per_message: float = 50e-6
    label: str = "netbench"

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "msg_bytes": self.msg_bytes,
            "rate_per_node": self.rate_per_node,
            "duration": self.duration,
            "seed": self.seed,
            "bandwidth_bps": self.bandwidth_bps,
            "one_way_delay": self.one_way_delay,
            "proc_per_message": self.proc_per_message,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetBenchConfig":
        return cls(**data)


@dataclass
class NetBenchResult:
    """Measurement of one bench run."""

    label: str
    seed: int
    events_processed: int
    wall_clock_s: float
    delivered: int
    dropped: int
    sim_seconds: float
    #: sha256 over (n, per-node delivery counts, drops, event count):
    #: any reordering or miscount in the dissemination path changes it,
    #: so serial vs --jobs equality means the same event sequence ran.
    fingerprint: str = ""

    @property
    def events_per_sec(self) -> float:
        if self.wall_clock_s <= 0:
            return 0.0
        return self.events_processed / self.wall_clock_s

    @property
    def delivered_per_sim_sec(self) -> float:
        if self.sim_seconds <= 0:
            return 0.0
        return self.delivered / self.sim_seconds


def run_netbench(config: NetBenchConfig) -> NetBenchResult:
    """Build the broadcast storm, run it, and fingerprint the outcome."""
    n = config.n
    sim = Simulator()
    topology = Topology(
        n,
        one_way_delay=config.one_way_delay,
        bandwidth_bps=config.bandwidth_bps,
        delay_jitter=0.0,
        name="netbench",
        proc_per_message=config.proc_per_message,
    )
    network = Network(sim, topology, RngRegistry(config.seed))
    delivered = [0] * n

    def make_handler(node: int):
        def handler(envelope) -> None:
            delivered[node] += 1
        return handler

    for node in range(n):
        network.register(node, make_handler(node))

    period = 1.0 / config.rate_per_node
    size = config.msg_bytes

    def storm(node: int) -> None:
        network.broadcast(node, "netbench.blob", size, None, Channel.DATA)
        sim.schedule_fire(period, storm, node)

    for node in range(n):
        # Staggered starts: a simultaneous n-wide burst at t=0 both
        # deepens the heap and is nothing like a steady-state fabric.
        sim.schedule_fire(node * period / n, storm, node)

    # Same GC discipline as RunningExperiment.run: the loop's
    # allocations are acyclic, so collector scans only add jitter.
    was_enabled = gc.isenabled()
    gc.collect()
    gc.freeze()
    if was_enabled:
        gc.disable()
    started = time.perf_counter()
    try:
        sim.run_until(config.duration)
        wall = time.perf_counter() - started
    finally:
        if was_enabled:
            gc.enable()
        gc.unfreeze()

    hasher = hashlib.sha256()
    hasher.update(f"{n};{config.seed};".encode())
    hasher.update(",".join(str(count) for count in delivered).encode())
    hasher.update(
        f";{network.stats.messages_dropped};{sim.processed}".encode()
    )
    return NetBenchResult(
        label=config.label,
        seed=config.seed,
        events_processed=sim.processed,
        wall_clock_s=wall,
        delivered=sum(delivered),
        dropped=network.stats.messages_dropped,
        sim_seconds=config.duration,
        fingerprint=hasher.hexdigest(),
    )
