"""Experiment-level configuration (topology + workload + faults)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.config import ProtocolConfig
from repro.durability import DurabilityConfig
from repro.faults import FaultSchedule
from repro.sim.topology import FluctuationWindow

SELECTORS = ("uniform", "zipf1", "zipf10")
FAULTS = ("none", "silent", "censor", "lying")
LINK_MODELS = ("serial", "fair-share")
WORKLOAD_MODES = ("ticks", "aggregate")


@dataclass
class ExperimentConfig:
    """Everything needed to build and run one experiment."""

    protocol: ProtocolConfig
    topology_kind: str = "lan"  # "lan" | "wan" | "geo"
    bandwidth_bps: Optional[float] = None  # override topology default
    # Per-replica bandwidth overrides (node -> bits/s): models the
    # heterogeneous-capacity deployments of Problem-II.
    bandwidth_map: Optional[dict[int, float]] = None
    rate_tps: float = 10_000.0
    duration: float = 5.0
    warmup: float = 1.0
    seed: int = 1
    selector: str = "uniform"
    fault: str = "none"
    fault_count: int = 0
    tick: float = 0.01
    attach_executor: bool = False
    priority_channels: bool = True
    #: Link model: "serial" store-and-forward (Appendix-A exact) or
    #: "fair-share" (concurrent transfers split uplink/downlink capacity).
    link_model: str = "serial"
    #: Workload mode: "ticks" (per-tick batches) or "aggregate"
    #: (lazily-replayed arrival streams; identical schedules, far fewer
    #: events — see DESIGN.md "Simulator scale-out").
    workload_mode: str = "ticks"
    #: Descriptive size of the client population the offered rate stands
    #: for (recorded in benchmark metadata; arrivals are aggregate either
    #: way, so simulation cost does not depend on it).
    offered_clients: Optional[int] = None
    fluctuation: Optional[FluctuationWindow] = None
    #: Scripted fault schedule (crashes, partitions, loss windows...),
    #: compiled onto the event queue by :class:`repro.faults.FaultInjector`.
    faults: Optional[FaultSchedule] = None
    data_limiter: Optional[tuple[float, float]] = None  # (bytes/s, burst)
    #: Durable state machine (WAL + checkpoints); implies an executor on
    #: every replica. None keeps the purely in-memory KVStore.
    durability: Optional[DurabilityConfig] = None
    #: Root directory for per-replica data dirs; a temp dir per run when
    #: unset and durability is enabled.
    data_dir: Optional[str] = None
    label: str = ""
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.topology_kind not in ("lan", "wan", "geo"):
            raise ValueError(
                "topology_kind must be 'lan', 'wan', or 'geo', "
                f"got {self.topology_kind!r}"
            )
        if self.selector not in SELECTORS:
            raise ValueError(
                f"selector must be one of {SELECTORS}, got {self.selector!r}"
            )
        if self.fault not in FAULTS:
            raise ValueError(f"fault must be one of {FAULTS}, got {self.fault!r}")
        if self.fault == "none" and self.fault_count:
            raise ValueError("fault_count requires a fault kind")
        if self.fault != "none" and self.fault_count <= 0:
            raise ValueError(f"fault {self.fault!r} requires fault_count > 0")
        if self.fault_count > self.protocol.f:
            raise ValueError(
                f"fault_count {self.fault_count} exceeds f={self.protocol.f}"
            )
        if self.duration <= 0 or self.warmup < 0:
            raise ValueError("duration must be > 0 and warmup >= 0")
        if self.link_model not in LINK_MODELS:
            raise ValueError(
                f"link_model must be one of {LINK_MODELS}, "
                f"got {self.link_model!r}"
            )
        if self.workload_mode not in WORKLOAD_MODES:
            raise ValueError(
                f"workload_mode must be one of {WORKLOAD_MODES}, "
                f"got {self.workload_mode!r}"
            )
        if self.offered_clients is not None and self.offered_clients <= 0:
            raise ValueError(
                f"offered_clients must be positive, got {self.offered_clients}"
            )
        if self.link_model == "fair-share" and self.data_limiter is not None:
            raise ValueError(
                "data_limiter requires link_model='serial' "
                "(fair-share links model contention directly)"
            )
        if self.faults is not None:
            self.faults.validate(self.protocol.n)

    @property
    def end_time(self) -> float:
        return self.warmup + self.duration

    @property
    def byzantine_ids(self) -> frozenset[int]:
        """Faulty replicas take the highest ids (never in the leader set)."""
        n = self.protocol.n
        return frozenset(range(n - self.fault_count, n))

    def to_dict(self) -> dict:
        """JSON-able form; round-trips through :meth:`from_dict`.

        This is the spawn-safe wire format ``repro.parallel`` uses to
        hand a job to a worker process: every nested object (protocol,
        fault schedule, fluctuation window) flattens to plain dicts and
        lists. ``extra`` must itself hold JSON-able values.
        """
        return {
            "protocol": self.protocol.to_dict(),
            "topology_kind": self.topology_kind,
            "bandwidth_bps": self.bandwidth_bps,
            "bandwidth_map": (
                {str(node): bw for node, bw in self.bandwidth_map.items()}
                if self.bandwidth_map is not None else None
            ),
            "rate_tps": self.rate_tps,
            "duration": self.duration,
            "warmup": self.warmup,
            "seed": self.seed,
            "selector": self.selector,
            "fault": self.fault,
            "fault_count": self.fault_count,
            "tick": self.tick,
            "attach_executor": self.attach_executor,
            "priority_channels": self.priority_channels,
            "link_model": self.link_model,
            "workload_mode": self.workload_mode,
            "offered_clients": self.offered_clients,
            "fluctuation": (
                dataclasses.asdict(self.fluctuation)
                if self.fluctuation is not None else None
            ),
            "faults": (
                self.faults.to_spec() if self.faults is not None else None
            ),
            "data_limiter": (
                list(self.data_limiter)
                if self.data_limiter is not None else None
            ),
            "durability": (
                self.durability.to_spec()
                if self.durability is not None else None
            ),
            "data_dir": self.data_dir,
            "label": self.label,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        from repro.config import ProtocolConfig

        data = dict(data)
        data["protocol"] = ProtocolConfig.from_dict(data["protocol"])
        if data.get("bandwidth_map") is not None:
            data["bandwidth_map"] = {
                int(node): bw for node, bw in data["bandwidth_map"].items()
            }
        if data.get("fluctuation") is not None:
            data["fluctuation"] = FluctuationWindow(**data["fluctuation"])
        if data.get("faults") is not None:
            data["faults"] = FaultSchedule.from_spec(data["faults"])
        if data.get("data_limiter") is not None:
            data["data_limiter"] = tuple(data["data_limiter"])
        if data.get("durability") is not None:
            data["durability"] = DurabilityConfig.from_spec(data["durability"])
        return cls(**data)
