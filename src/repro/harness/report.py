"""Plain-text table/series formatting for benchmark output.

Benches print the same rows and series the paper's tables and figures
report; these helpers keep the output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(
            value.ljust(widths[index]) for index, value in enumerate(values)
        ).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in materialized)
    return "\n".join(parts)


def format_series(
    name: str,
    points: Iterable[tuple[object, object]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series, one point per line."""
    lines = [f"series: {name} ({x_label} -> {y_label})"]
    lines.extend(f"  {_cell(x):>12}  {_cell(y)}" for x, y in points)
    return "\n".join(lines)


def mbps(bytes_total: float, seconds: float) -> float:
    """Convert a byte count over a window into megabits per second."""
    if seconds <= 0:
        raise ValueError(f"window must be positive, got {seconds}")
    return bytes_total * 8.0 / seconds / 1_000_000.0


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
