"""Experiment builder and runner.

``build_experiment`` assembles a full replica network (simulator, links,
replicas, mempools, consensus engines, workload generator) from an
:class:`ExperimentConfig`; ``run_experiment`` runs it and summarizes the
measurement window into an :class:`ExperimentResult`.
"""

from __future__ import annotations

import gc
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.consensus import CONSENSUS_CLASSES
from repro.durability import DurableKVStore
from repro.faults import FaultInjector
from repro.harness.config import ExperimentConfig
from repro.kvstore import KVStore
from repro.mempool import MEMPOOL_CLASSES, NativeMempool, SharedPendingPool
from repro.metrics import MetricsHub, WeightedDigest
from repro.replica import Behavior, HonestBehavior, Replica, behavior_for
from repro.sim import (
    Network,
    RngRegistry,
    Simulator,
    Topology,
    geo_topology,
    lan_topology,
    wan_topology,
)
from repro.workload import UniformSelector, WorkloadGenerator, ZipfSelector


@dataclass
class RunningExperiment:
    """A fully wired experiment, ready to run."""

    config: ExperimentConfig
    sim: Simulator
    network: Network
    topology: Topology
    replicas: list[Replica]
    metrics: MetricsHub
    generator: WorkloadGenerator
    injector: Optional[FaultInjector] = None
    #: Optional invariant-oracle suite (``repro.verification``), already
    #: attached to every replica's observer tap by ``build_experiment``.
    oracles: Optional[object] = None
    #: Root of the per-replica durable data dirs (durability runs only).
    data_dir: Optional[str] = None

    def run(self) -> "ExperimentResult":
        # Pause the cyclic GC for the timed section: the event loop's
        # allocations (envelopes, heap tuples, batches) are acyclic and
        # refcount-freed, so generational scans only add jitter to the
        # wall-clock the perf harness divides events by. Pre-built
        # long-lived state is frozen out of the collector first.
        was_enabled = gc.isenabled()
        gc.collect()
        gc.freeze()
        if was_enabled:
            gc.disable()
        started = time.perf_counter()
        try:
            self.sim.run_until(self.config.end_time)
            wall = time.perf_counter() - started
        finally:
            if was_enabled:
                gc.enable()
            gc.unfreeze()
        if self.oracles is not None:
            self.oracles.finalize()
        return summarize(self, wall_clock_s=wall)


@dataclass
class ExperimentResult:
    """Summary of one run's measurement window."""

    label: str
    throughput_tps: float
    latency: WeightedDigest
    committed_tx: int
    emitted_tx: int
    view_changes: int
    metrics: MetricsHub
    network: Network
    config: ExperimentConfig
    #: Simulator-engine instrumentation: how many events the run executed
    #: and how long the event loop took on the host (0.0 when the
    #: experiment was driven manually rather than via ``run()``).
    events_processed: int = 0
    wall_clock_s: float = 0.0
    #: Invariant-oracle violations observed during the run (empty when no
    #: oracle suite was armed; see ``repro.verification``).
    violations: list = field(default_factory=list)

    @property
    def events_per_sec(self) -> float:
        """Host-side event-loop rate; the perf harness's headline gauge."""
        if self.wall_clock_s <= 0:
            return 0.0
        return self.events_processed / self.wall_clock_s

    @property
    def commit_hash(self) -> str:
        """Determinism fingerprint over the committed sequence.

        Same format as the perf harness's hash (block id, commit time,
        tx count, microblock count), so a result can be compared against
        BENCH_perf baselines and against a parallel worker's summary.
        """
        from repro.metrics import commit_sequence_hash

        return commit_sequence_hash(self.metrics.commits)

    @property
    def latency_mean(self) -> float:
        return self.latency.mean

    def latency_percentile(self, p: float) -> float:
        return self.latency.percentile(p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExperimentResult({self.label!r}, "
            f"tput={self.throughput_tps:.0f} tps, "
            f"lat={self.latency_mean * 1000:.1f} ms, "
            f"vc={self.view_changes})"
        )


def _make_topology(config: ExperimentConfig) -> Topology:
    n = config.protocol.n
    if config.topology_kind == "geo":
        topo = (
            geo_topology(n, config.bandwidth_bps)
            if config.bandwidth_bps
            else geo_topology(n)
        )
    elif config.topology_kind == "wan":
        topo = (
            wan_topology(n, config.bandwidth_bps)
            if config.bandwidth_bps
            else wan_topology(n)
        )
    else:
        topo = (
            lan_topology(n, config.bandwidth_bps)
            if config.bandwidth_bps
            else lan_topology(n)
        )
    if config.bandwidth_map:
        for node, bandwidth in config.bandwidth_map.items():
            topo.set_bandwidth(node, bandwidth)
    if config.fluctuation is not None:
        topo.add_schedule(config.fluctuation)
    return topo


def _make_selector(config: ExperimentConfig):
    n = config.protocol.n
    if config.selector == "uniform":
        return UniformSelector(n)
    if config.selector == "zipf1":
        return ZipfSelector(n, s=1.01, v=1.0)
    return ZipfSelector(n, s=1.01, v=10.0)


def _make_behavior(
    config: ExperimentConfig, node_id: int
) -> Optional[Behavior]:
    if node_id not in config.byzantine_ids:
        return HonestBehavior()
    return behavior_for(config.fault, config.protocol)


def build_experiment(
    config: ExperimentConfig,
    oracles: Optional[object] = None,
    *,
    mempool_cls: Optional[type] = None,
    consensus_cls: Optional[type] = None,
) -> RunningExperiment:
    """Wire a complete experiment from its configuration.

    ``oracles`` is an invariant-oracle suite (``repro.verification``)
    attached to every replica's observer tap. ``mempool_cls`` /
    ``consensus_cls`` override the classes looked up from the protocol's
    names — the hook the mutation self-tests use to wire intentionally
    broken variants into an otherwise standard experiment.
    """
    protocol = config.protocol.with_updates(byzantine=config.byzantine_ids)
    sim = Simulator()
    rng = RngRegistry(config.seed)
    topology = _make_topology(config)
    network = Network(
        sim, topology, rng, priority_channels=config.priority_channels,
        link_model=config.link_model,
    )
    metrics = MetricsHub(sim)

    leader_set = tuple(
        node for node in range(protocol.n)
        if node not in config.byzantine_ids
    )
    shared_pool = SharedPendingPool(protocol.tx_payload)
    if mempool_cls is None:
        mempool_cls = MEMPOOL_CLASSES[protocol.mempool]
    if consensus_cls is None:
        consensus_cls = CONSENSUS_CLASSES[protocol.consensus]

    data_dir: Optional[str] = None
    if config.durability is not None:
        data_dir = config.data_dir or tempfile.mkdtemp(prefix="repro-data-")
        os.makedirs(data_dir, exist_ok=True)

    replicas: list[Replica] = []
    for node_id in range(protocol.n):
        replica = Replica(
            node_id=node_id,
            config=protocol,
            sim=sim,
            network=network,
            rng=rng.stream(f"replica.{node_id}"),
            metrics=metrics,
            behavior=_make_behavior(config, node_id),
            leader_set=leader_set,
        )
        if issubclass(mempool_cls, NativeMempool):
            mempool = mempool_cls(replica, protocol, shared_pool)
        else:
            mempool = mempool_cls(replica, protocol)
        consensus = consensus_cls(replica, mempool, protocol)
        if config.durability is not None:
            executor = DurableKVStore(
                os.path.join(data_dir, f"replica-{node_id}"),
                config=config.durability,
            )
        elif config.attach_executor:
            executor = KVStore()
        else:
            executor = None
        replica.attach(mempool, consensus, executor)
        if config.data_limiter is not None:
            rate, burst = config.data_limiter
            network.set_data_limiter(node_id, rate, burst)
        replicas.append(replica)

    generator = WorkloadGenerator(
        sim=sim,
        replicas=replicas,
        rate_tps=config.rate_tps,
        tx_payload=protocol.tx_payload,
        selector=_make_selector(config),
        tick=config.tick,
        mode=config.workload_mode,
        offered_clients=config.offered_clients,
    )

    for replica in replicas:
        replica.start()
    generator.start()

    injector: Optional[FaultInjector] = None
    if config.faults is not None:
        injector = FaultInjector(
            sim=sim,
            network=network,
            topology=topology,
            replicas=replicas,
            metrics=metrics,
            rng=rng.stream("faults"),
        )
        injector.install(config.faults)

    experiment = RunningExperiment(
        config=config,
        sim=sim,
        network=network,
        topology=topology,
        replicas=replicas,
        metrics=metrics,
        generator=generator,
        injector=injector,
        oracles=oracles,
        data_dir=data_dir,
    )
    if oracles is not None:
        oracles.attach(experiment)
    return experiment


def summarize(
    experiment: RunningExperiment, wall_clock_s: float = 0.0
) -> ExperimentResult:
    """Measure the window ``[warmup, warmup + duration)``."""
    config = experiment.config
    start, end = config.warmup, config.end_time
    metrics = experiment.metrics
    return ExperimentResult(
        label=config.label or _default_label(config),
        throughput_tps=metrics.throughput_tps(start, end),
        latency=metrics.latency_stats(start, end),
        committed_tx=metrics.committed_tx_total,
        emitted_tx=experiment.generator.emitted_tx_count,
        view_changes=metrics.view_change_count,
        metrics=metrics,
        network=experiment.network,
        config=config,
        events_processed=experiment.sim.processed,
        wall_clock_s=wall_clock_s,
        violations=(
            list(experiment.oracles.violations)
            if experiment.oracles is not None else []
        ),
    )


def run_experiment(
    config: ExperimentConfig,
    oracles: Optional[object] = None,
    *,
    mempool_cls: Optional[type] = None,
    consensus_cls: Optional[type] = None,
) -> ExperimentResult:
    """Build, run, and summarize in one call."""
    return build_experiment(
        config, oracles,
        mempool_cls=mempool_cls, consensus_cls=consensus_cls,
    ).run()


def _default_label(config: ExperimentConfig) -> str:
    return (
        f"{config.protocol.mempool}/{config.protocol.consensus}"
        f"-n{config.protocol.n}-{config.topology_kind}"
    )
