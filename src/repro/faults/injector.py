"""Compiles a :class:`FaultSchedule` onto the simulator's event queue.

The injector owns the runtime side of the chaos layer:

* crash/restart events call :meth:`repro.replica.node.Replica.crash` and
  :meth:`~repro.replica.node.Replica.restart`;
* partitions and loss windows install removable drop rules via
  :meth:`repro.sim.network.Network.add_drop_rule`, so they compose with
  any user-installed :meth:`~repro.sim.network.Network.set_drop_filter`;
* bandwidth squeezes push multiplicative scales onto the topology and pop
  them when the window closes;
* delay spikes reuse the topology's time-gated
  :class:`~repro.sim.topology.FluctuationWindow` schedule machinery;
* behavior swaps rebuild the replica's :class:`Behavior` from its name.

Every disturbance interval is registered with the metrics hub at install
time, so :meth:`repro.metrics.MetricsHub.fault_report` can compute
per-window throughput, commit gaps, and time-to-recover after the run.
"""

from __future__ import annotations

import random
from typing import Sequence, TYPE_CHECKING

from repro.faults.schedule import (
    BandwidthSqueeze,
    CrashReplica,
    DelaySpike,
    FaultSchedule,
    Heal,
    LossWindow,
    Partition,
    RestartReplica,
    SwapBehavior,
    channel_for,
)
from repro.metrics import MetricsHub
from repro.replica.behavior import behavior_for
from repro.sim.engine import Simulator
from repro.sim.network import Envelope, Network
from repro.sim.topology import FluctuationWindow, Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica

class FaultInjector:
    """Executes one fault schedule against a wired experiment."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        topology: Topology,
        replicas: Sequence["Replica"],
        metrics: MetricsHub,
        rng: random.Random,
    ) -> None:
        self._sim = sim
        self._network = network
        self._topology = topology
        self._replicas = list(replicas)
        self._metrics = metrics
        self._rng = rng
        self._installed = False
        #: Active partitions: event -> drop-rule handle.
        self._partitions: dict[Partition, int] = {}

    def install(self, schedule: FaultSchedule) -> None:
        """Validate the schedule and put every event on the event queue."""
        if self._installed:
            raise RuntimeError("injector already holds a schedule")
        schedule.validate(len(self._replicas))
        self._installed = True
        for window in schedule.windows():
            self._metrics.record_fault_window(window)
        for event in schedule.events:
            if isinstance(event, CrashReplica):
                self._at(event.at, lambda e=event: self._crash(e.node))
            elif isinstance(event, RestartReplica):
                self._at(event.at, lambda e=event: self._restart(e.node))
            elif isinstance(event, Partition):
                self._at(event.at, lambda e=event: self._partition(e))
                if event.duration is not None:
                    self._at(
                        event.at + event.duration,
                        lambda e=event: self._heal_one(e),
                    )
            elif isinstance(event, Heal):
                self._at(event.at, lambda e=event: self._heal(e.label))
            elif isinstance(event, LossWindow):
                self._schedule_loss(event)
            elif isinstance(event, BandwidthSqueeze):
                self._schedule_squeeze(event)
            elif isinstance(event, DelaySpike):
                # FluctuationWindow is time-gated internally; no queue
                # events are needed to activate or deactivate it.
                self._topology.add_schedule(FluctuationWindow(
                    start=event.at,
                    duration=event.duration,
                    base=event.base,
                    jitter=event.jitter,
                    throughput_factor=event.bandwidth_factor,
                ))
            elif isinstance(event, SwapBehavior):
                self._at(event.at, lambda e=event: self._swap(e))

    # -- event actions -----------------------------------------------------

    def _at(self, when: float, action) -> None:
        self._sim.schedule_at(when, action)

    def _crash(self, node: int) -> None:
        self._replicas[node].crash()

    def _restart(self, node: int) -> None:
        self._replicas[node].restart()

    def _partition(self, event: Partition) -> None:
        group_of: dict[int, int] = {}
        for index, group in enumerate(event.groups):
            for node in group:
                group_of[node] = index
        rest = len(event.groups)

        def crosses(envelope: Envelope) -> bool:
            return (
                group_of.get(envelope.src, rest)
                != group_of.get(envelope.dst, rest)
            )

        self._partitions[event] = self._network.add_drop_rule(crosses)

    def _heal_one(self, event: Partition) -> None:
        rule_id = self._partitions.pop(event, None)
        if rule_id is not None:
            self._network.remove_drop_rule(rule_id)

    def _heal(self, label: str) -> None:
        for partition in list(self._partitions):
            if not label or partition.label == label:
                self._heal_one(partition)

    def _schedule_loss(self, event: LossWindow) -> None:
        channel = channel_for(event.channel) if event.channel else None
        nodes = set(event.nodes)
        rng = self._rng

        def lossy(envelope: Envelope) -> bool:
            if channel is not None and envelope.channel is not channel:
                return False
            if nodes and envelope.src not in nodes and envelope.dst not in nodes:
                return False
            if event.kinds and not any(
                envelope.kind.startswith(prefix) for prefix in event.kinds
            ):
                return False
            return rng.random() < event.rate

        handle: dict[str, int] = {}
        self._at(event.at, lambda: handle.update(
            rule=self._network.add_drop_rule(lossy)
        ))
        self._at(event.at + event.duration, lambda: (
            self._network.remove_drop_rule(handle["rule"])
            if "rule" in handle else None
        ))

    def _schedule_squeeze(self, event: BandwidthSqueeze) -> None:
        nodes = list(event.nodes) or list(range(self._topology.n))

        def squeeze() -> None:
            for node in nodes:
                self._topology.scale_bandwidth(node, event.factor)

        def release() -> None:
            for node in nodes:
                self._topology.unscale_bandwidth(node, event.factor)

        self._at(event.at, squeeze)
        self._at(event.at + event.duration, release)

    def _swap(self, event: SwapBehavior) -> None:
        replica = self._replicas[event.node]
        behavior = behavior_for(event.behavior, replica.config)
        if replica.crashed:
            # Swapping while down shapes what the node becomes on restart.
            replica._pre_crash_behavior = behavior
        else:
            replica.behavior = behavior
