"""Scripted fault injection (the chaos layer).

A :class:`FaultSchedule` declares timed events — replica crashes and
restarts, set-based network partitions with automatic healing, loss
windows, bandwidth squeezes, delay spikes, and mid-run behavior swaps —
and a :class:`FaultInjector` compiles them onto the simulator's event
queue. The injector composes with user drop filters
(:meth:`repro.sim.network.Network.set_drop_filter` keeps working) and
records every fault window in the metrics hub so runs report per-window
throughput, commit gaps, and time-to-recover.

The same schedule also runs against the live asyncio TCP backend:
:meth:`FaultSchedule.process_events` and
:meth:`FaultSchedule.shaping_spec` split it into process-level events
(SIGKILL + respawn) and per-frame link-shaping windows consumed by
:mod:`repro.live.chaos`.
"""

from repro.faults.schedule import (
    BandwidthSqueeze,
    CrashReplica,
    DelaySpike,
    FaultEvent,
    FaultSchedule,
    Heal,
    LossWindow,
    Partition,
    RestartReplica,
    SwapBehavior,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "CrashReplica",
    "RestartReplica",
    "Partition",
    "Heal",
    "LossWindow",
    "BandwidthSqueeze",
    "DelaySpike",
    "SwapBehavior",
]
