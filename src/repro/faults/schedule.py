"""Declarative fault schedules.

A schedule is an ordered list of timed :class:`FaultEvent` objects. Times
are absolute simulated seconds (the warmup phase counts), so a schedule
written for one experiment replays bit-for-bit in another with the same
seed. Schedules round-trip through JSON for the CLI's ``--faults`` flag::

    [{"event": "crash", "at": 2.0, "node": 3},
     {"event": "restart", "at": 4.0, "node": 3},
     {"event": "partition", "at": 2.5, "duration": 1.0, "groups": [[0, 1]]},
     {"event": "loss", "at": 2.0, "duration": 2.0, "rate": 0.2,
      "channel": "data"},
     {"event": "bandwidth", "at": 1.0, "duration": 2.0, "factor": 0.1,
      "nodes": [0]},
     {"event": "delay", "at": 5.0, "duration": 10.0, "base": 0.1,
      "jitter": 0.05, "bandwidth_factor": 0.15},
     {"event": "swap", "at": 3.0, "node": 2, "behavior": "censor"}]

Every event that opens a disturbance interval (a crash awaiting its
restart, a partition awaiting its heal, a loss/bandwidth/delay window)
yields a :class:`~repro.metrics.collector.FaultWindow` via
:meth:`FaultSchedule.windows`, which the injector registers with the
metrics hub for per-window recovery reporting.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.metrics.collector import FaultWindow
from repro.replica.behavior import BEHAVIOR_KINDS

CHANNEL_NAMES = ("consensus", "control", "data")


def channel_for(name: str):
    """Resolve a schedule channel name to the seam's :class:`Channel`.

    Shared by both fault backends (the simulator's drop rules and the
    live runtime's link shaper) so the two never disagree on what a
    schedule's ``"channel": "data"`` means.
    """
    from repro.sim.interfaces import Channel

    return {
        "consensus": Channel.CONSENSUS,
        "control": Channel.CONTROL,
        "data": Channel.DATA,
    }[name]


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one timed event on the chaos timeline."""

    at: float

    def validate(self, n: int) -> None:
        if self.at < 0:
            raise ValueError(f"fault event time must be >= 0, got {self.at}")

    def _check_node(self, node: int, n: int) -> None:
        if not 0 <= node < n:
            raise ValueError(f"fault event node {node} outside [0, {n})")


@dataclass(frozen=True)
class CrashReplica(FaultEvent):
    """Crash ``node``: flush its network queues, silence it, freeze its
    consensus timers. State held before the crash survives (crash-recovery
    model with durable protocol state; see DESIGN.md)."""

    node: int = 0

    def validate(self, n: int) -> None:
        super().validate(n)
        self._check_node(self.node, n)


@dataclass(frozen=True)
class RestartReplica(FaultEvent):
    """Restart a previously crashed ``node``: re-enable its network
    endpoint, restore its pre-crash behavior, re-arm consensus timers.
    The replica resyncs through the ordinary chain-sync / PAB-fetch
    paths — restart itself transfers no state."""

    node: int = 0

    def validate(self, n: int) -> None:
        super().validate(n)
        self._check_node(self.node, n)


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Bidirectional set-based partition.

    ``groups`` lists disjoint replica groups; replicas in different groups
    cannot exchange messages, and replicas not named in any group form one
    implicit remainder group. ``duration`` heals the partition
    automatically; alternatively a later :class:`Heal` event with a
    matching ``label`` ends it.
    """

    groups: tuple[tuple[int, ...], ...] = ()
    duration: Optional[float] = None
    label: str = ""

    def validate(self, n: int) -> None:
        super().validate(n)
        if not self.groups:
            raise ValueError("partition needs at least one group")
        seen: set[int] = set()
        for group in self.groups:
            if not group:
                raise ValueError("partition groups must be non-empty")
            for node in group:
                self._check_node(node, n)
                if node in seen:
                    raise ValueError(
                        f"node {node} appears in two partition groups"
                    )
                seen.add(node)
        if self.duration is not None and self.duration <= 0:
            raise ValueError("partition duration must be positive")


@dataclass(frozen=True)
class Heal(FaultEvent):
    """Heal active partitions: those with a matching ``label``, or every
    active partition when the label is empty."""

    label: str = ""


@dataclass(frozen=True)
class LossWindow(FaultEvent):
    """Drop each matching message with probability ``rate`` during
    ``[at, at + duration)``. Empty ``kinds``/``nodes`` match everything;
    ``kinds`` entries are message-kind prefixes (``"mb"`` matches
    ``"mb.fetch"``); ``nodes`` matches source or destination."""

    duration: float = 0.0
    rate: float = 0.1
    kinds: tuple[str, ...] = ()
    channel: Optional[str] = None  # "consensus" | "control" | "data"
    nodes: tuple[int, ...] = ()

    def validate(self, n: int) -> None:
        super().validate(n)
        if self.duration <= 0:
            raise ValueError("loss window duration must be positive")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"loss rate must be in (0, 1], got {self.rate}")
        if self.channel is not None and self.channel not in CHANNEL_NAMES:
            raise ValueError(
                f"channel must be one of {CHANNEL_NAMES}, got {self.channel!r}"
            )
        for node in self.nodes:
            self._check_node(node, n)


@dataclass(frozen=True)
class BandwidthSqueeze(FaultEvent):
    """Scale egress bandwidth of ``nodes`` (all replicas when empty) by
    ``factor`` during ``[at, at + duration)``. Overlapping squeezes on the
    same node stack multiplicatively."""

    duration: float = 0.0
    factor: float = 0.5
    nodes: tuple[int, ...] = ()

    def validate(self, n: int) -> None:
        super().validate(n)
        if self.duration <= 0:
            raise ValueError("bandwidth squeeze duration must be positive")
        if self.factor <= 0:
            raise ValueError(f"bandwidth factor must be > 0, got {self.factor}")
        for node in self.nodes:
            self._check_node(node, n)


@dataclass(frozen=True)
class DelaySpike(FaultEvent):
    """Network-wide delay disturbance: every message sees ``base`` ±
    ``jitter`` one-way delay during ``[at, at + duration)``, with link
    bandwidth scaled by ``bandwidth_factor`` (TCP goodput collapse under
    heavy jitter — the Fig. 7 NetEm window)."""

    duration: float = 0.0
    base: float = 0.1
    jitter: float = 0.0
    bandwidth_factor: float = 1.0

    def validate(self, n: int) -> None:
        super().validate(n)
        if self.duration <= 0:
            raise ValueError("delay spike duration must be positive")
        if self.base < 0 or self.jitter < 0:
            raise ValueError("delay base and jitter must be >= 0")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError(
                "bandwidth_factor must be in (0, 1], "
                f"got {self.bandwidth_factor}"
            )


@dataclass(frozen=True)
class SwapBehavior(FaultEvent):
    """Swap ``node``'s behavior mid-run (e.g. turn it Byzantine).

    ``behavior`` is one of :data:`repro.replica.behavior.BEHAVIOR_KINDS`.
    """

    node: int = 0
    behavior: str = "honest"

    def validate(self, n: int) -> None:
        super().validate(n)
        self._check_node(self.node, n)
        if self.behavior not in BEHAVIOR_KINDS:
            raise ValueError(
                f"behavior must be one of {BEHAVIOR_KINDS}, "
                f"got {self.behavior!r}"
            )


def _resolve_partitions(
    events: Sequence[FaultEvent],
) -> list[tuple[Partition, float, Optional[float]]]:
    """Pair each partition with the instant it heals.

    Returns ``(partition, start, end)`` triples in start order; ``end``
    is ``None`` for partitions never healed within the schedule. This is
    the backend-agnostic core both :meth:`FaultSchedule.windows` (metrics
    intervals) and :meth:`FaultSchedule.shaping_spec` (live link shaping)
    are built on; the simulator's injector realizes the same semantics
    dynamically via drop rules.
    """
    resolved: list[tuple[Partition, float, Optional[float]]] = []
    open_partitions: list[tuple[Partition, float]] = []
    for event in events:
        if isinstance(event, Partition):
            if event.duration is not None:
                resolved.append((event, event.at, event.at + event.duration))
            else:
                open_partitions.append((event, event.at))
        elif isinstance(event, Heal):
            remaining: list[tuple[Partition, float]] = []
            for partition, start in open_partitions:
                if event.label and partition.label != event.label:
                    remaining.append((partition, start))
                else:
                    resolved.append((partition, start, event.at))
            open_partitions = remaining
    for partition, start in open_partitions:
        resolved.append((partition, start, None))
    resolved.sort(key=lambda item: item[1])
    return resolved


_EVENT_NAMES = {
    "crash": CrashReplica,
    "restart": RestartReplica,
    "partition": Partition,
    "heal": Heal,
    "loss": LossWindow,
    "bandwidth": BandwidthSqueeze,
    "delay": DelaySpike,
    "swap": SwapBehavior,
}

_EVENT_CLASSES = {cls: name for name, cls in _EVENT_NAMES.items()}

_TUPLE_FIELDS = ("kinds", "nodes")


def _event_to_dict(event: FaultEvent) -> dict:
    name = _EVENT_CLASSES.get(type(event))
    if name is None:
        raise ValueError(f"unknown fault event class {type(event).__name__}")
    spec: dict = {"event": name}
    for f in dataclasses.fields(event):
        value = getattr(event, f.name)
        default = f.default
        if default is not dataclasses.MISSING and value == default:
            continue
        if f.name == "groups":
            value = [list(group) for group in value]
        elif isinstance(value, tuple):
            value = list(value)
        spec[f.name] = value
    return spec


def _event_from_dict(entry: dict) -> FaultEvent:
    spec = dict(entry)
    name = spec.pop("event", None)
    if name not in _EVENT_NAMES:
        raise ValueError(
            f"unknown fault event {name!r}; "
            f"choose from {sorted(_EVENT_NAMES)}"
        )
    if "groups" in spec:
        spec["groups"] = tuple(tuple(group) for group in spec["groups"])
    for key in _TUPLE_FIELDS:
        if key in spec:
            spec[key] = tuple(spec[key])
    try:
        return _EVENT_NAMES[name](**spec)
    except TypeError as exc:
        raise ValueError(f"bad {name!r} event spec {entry!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered list of fault events."""

    events: tuple[FaultEvent, ...] = ()

    def __init__(self, events: Sequence[FaultEvent] = ()) -> None:
        ordered = tuple(sorted(events, key=lambda event: event.at))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def from_spec(cls, spec: Sequence[dict]) -> "FaultSchedule":
        """Build a schedule from a list of plain dicts (parsed JSON)."""
        if isinstance(spec, dict):
            spec = [spec]
        return cls([_event_from_dict(entry) for entry in spec])

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse the CLI's JSON schedule format."""
        return cls.from_spec(json.loads(text))

    def to_spec(self) -> list[dict]:
        """Plain-dict form; round-trips through :meth:`from_spec`.

        Fields left at their defaults are omitted, so the spec matches
        what a human would write in a ``--faults`` JSON file.
        """
        return [_event_to_dict(event) for event in self.events]

    def to_json(self) -> str:
        return json.dumps(self.to_spec())

    def validate(self, n: int) -> None:
        """Check every event against a network of ``n`` replicas."""
        for event in self.events:
            event.validate(n)
        alive = set(range(n))
        for event in self.events:
            if isinstance(event, CrashReplica):
                if event.node not in alive:
                    raise ValueError(
                        f"node {event.node} crashed twice without a restart"
                    )
                alive.discard(event.node)
            elif isinstance(event, RestartReplica):
                if event.node in alive:
                    raise ValueError(
                        f"restart of node {event.node} without a prior crash"
                    )
                alive.add(event.node)

    def process_events(self) -> list[FaultEvent]:
        """The crash/restart timeline, in time order.

        These are the events a live backend realizes at the *process*
        level (SIGKILL + respawn) rather than inside the network fabric;
        everything else in the schedule is link shaping
        (:meth:`shaping_spec`).
        """
        return [
            event for event in self.events
            if isinstance(event, (CrashReplica, RestartReplica))
        ]

    def shaping_spec(self) -> list[dict]:
        """Link-shaping windows as plain JSON-able dicts.

        Partitions (heal-resolved), loss, delay, and bandwidth events
        flatten into ``{"kind", "start", "end", ...}`` windows a
        transport backend can evaluate per frame against its own clock —
        the live runtime ships this list in each replica's spawn spec
        and feeds it to :class:`repro.live.chaos.LinkShaper`. ``end`` is
        ``None`` for windows never closed within the schedule.
        """
        spec: list[dict] = []
        for partition, start, end in _resolve_partitions(self.events):
            spec.append({
                "kind": "partition", "start": start, "end": end,
                "groups": [list(group) for group in partition.groups],
            })
        for event in self.events:
            if isinstance(event, LossWindow):
                spec.append({
                    "kind": "loss", "start": event.at,
                    "end": event.at + event.duration, "rate": event.rate,
                    "kinds": list(event.kinds), "channel": event.channel,
                    "nodes": list(event.nodes),
                })
            elif isinstance(event, DelaySpike):
                spec.append({
                    "kind": "delay", "start": event.at,
                    "end": event.at + event.duration, "base": event.base,
                    "jitter": event.jitter,
                    "bandwidth_factor": event.bandwidth_factor,
                })
            elif isinstance(event, BandwidthSqueeze):
                spec.append({
                    "kind": "bandwidth", "start": event.at,
                    "end": event.at + event.duration, "factor": event.factor,
                    "nodes": list(event.nodes),
                })
        spec.sort(key=lambda window: window["start"])
        return spec

    def validate_live(self, n: int) -> None:
        """Validate for the live backend (stricter than :meth:`validate`).

        Behavior swaps have no live realization yet — a running OS
        process cannot be handed a new ``Behavior`` object over the wall
        — so schedules containing them are rejected up front instead of
        silently dropping the event.
        """
        self.validate(n)
        for event in self.events:
            if isinstance(event, SwapBehavior):
                raise ValueError(
                    "behavior swaps are not supported on the live backend "
                    f"(swap of node {event.node} at t={event.at})"
                )

    def windows(self) -> list[FaultWindow]:
        """Disturbance intervals for metrics reporting.

        A crash without a restart (or a partition without a heal) yields
        an unbounded window (``end = inf``): its time-to-recover reports
        as infinite unless commits resume anyway.
        """
        windows: list[FaultWindow] = []
        open_crashes: dict[int, float] = {}
        for partition, start, end in _resolve_partitions(self.events):
            windows.append(FaultWindow(
                kind="partition", start=start,
                end=math.inf if end is None else end,
                nodes=tuple(sorted(
                    node for group in partition.groups for node in group
                )),
                label=partition.label,
            ))
        for event in self.events:
            if isinstance(event, CrashReplica):
                open_crashes[event.node] = event.at
            elif isinstance(event, RestartReplica):
                start = open_crashes.pop(event.node, None)
                if start is not None:
                    windows.append(FaultWindow(
                        kind="crash", start=start, end=event.at,
                        nodes=(event.node,),
                    ))
            elif isinstance(event, LossWindow):
                windows.append(FaultWindow(
                    kind="loss", start=event.at,
                    end=event.at + event.duration, nodes=event.nodes,
                ))
            elif isinstance(event, BandwidthSqueeze):
                windows.append(FaultWindow(
                    kind="bandwidth", start=event.at,
                    end=event.at + event.duration, nodes=event.nodes,
                ))
            elif isinstance(event, DelaySpike):
                windows.append(FaultWindow(
                    kind="delay", start=event.at,
                    end=event.at + event.duration,
                ))
        for node, start in sorted(open_crashes.items()):
            windows.append(FaultWindow(
                kind="crash", start=start, end=math.inf, nodes=(node,),
            ))
        windows.sort(key=lambda window: window.start)
        return windows
