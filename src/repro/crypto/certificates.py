"""Quorum certificates for the consensus engines."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.signatures import Signature, verify_signature
from repro.types import sizes


@dataclass(frozen=True)
class QuorumCert:
    """Aggregated 2f+1 votes over ``(block_id, view)``."""

    block_id: int
    view: int
    signers: tuple[int, ...]
    forged: bool = False

    @property
    def size_bytes(self) -> int:
        return sizes.QC

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QC(block={self.block_id}, view={self.view}, |S|={len(self.signers)})"


GENESIS_QC = QuorumCert(block_id=0, view=0, signers=())
"""Certificate for the genesis block; verified specially."""


def make_quorum_cert(
    block_id: int, view: int, votes: list[Signature], quorum: int, n: int
) -> QuorumCert:
    """Aggregate vote signatures into a QC; raises on an invalid quorum."""
    digest = _vote_digest(block_id, view)
    valid_signers: set[int] = set()
    for vote in votes:
        if verify_signature(vote, digest, n):
            valid_signers.add(vote.signer)
    if len(valid_signers) < quorum:
        raise ValueError(
            f"need {quorum} votes for block {block_id} view {view}, "
            f"got {len(valid_signers)}"
        )
    return QuorumCert(block_id=block_id, view=view, signers=tuple(sorted(valid_signers)))


def verify_quorum_cert(qc: QuorumCert, quorum: int, n: int) -> bool:
    """Structural QC verification; the genesis QC is always valid."""
    if qc == GENESIS_QC:
        return True
    if qc.forged:
        return False
    signers = set(qc.signers)
    if len(signers) != len(qc.signers):
        return False
    if any(not 0 <= signer < n for signer in signers):
        return False
    return len(signers) >= quorum


def vote_signature(signer: int, block_id: int, view: int) -> Signature:
    """Sign a consensus vote for ``(block_id, view)``."""
    return Signature(signer=signer, digest=_vote_digest(block_id, view))


def _vote_digest(block_id: int, view: int) -> int:
    return (block_id << 24) ^ view
