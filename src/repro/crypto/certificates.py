"""Quorum certificates for the consensus engines."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.signatures import Signature, verify_signature
from repro.types import sizes


@dataclass(frozen=True)
class QuorumCert:
    """Aggregated 2f+1 votes over ``(block_id, view)``."""

    block_id: int
    view: int
    signers: tuple[int, ...]
    forged: bool = False

    @property
    def size_bytes(self) -> int:
        return sizes.QC

    # Memoized verification parameters (plain class attributes, not
    # dataclass fields — they stay out of eq/repr/hash). A QC object is
    # shared by every receiver of the proposal carrying it, so after the
    # first full check ``verify_quorum_cert`` is two int compares. Only
    # *successful* checks are cached: forged or malformed certs take the
    # full path every time.
    _verified_quorum = -1
    _verified_n = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QC(block={self.block_id}, view={self.view}, |S|={len(self.signers)})"


GENESIS_QC = QuorumCert(block_id=0, view=0, signers=())
"""Certificate for the genesis block; verified specially."""


def make_quorum_cert(
    block_id: int, view: int, votes: list[Signature], quorum: int, n: int
) -> QuorumCert:
    """Aggregate vote signatures into a QC; raises on an invalid quorum."""
    digest = _vote_digest(block_id, view)
    valid_signers: set[int] = set()
    for vote in votes:
        if verify_signature(vote, digest, n):
            valid_signers.add(vote.signer)
    if len(valid_signers) < quorum:
        raise ValueError(
            f"need {quorum} votes for block {block_id} view {view}, "
            f"got {len(valid_signers)}"
        )
    return QuorumCert(block_id=block_id, view=view, signers=tuple(sorted(valid_signers)))


def verify_quorum_cert(qc: QuorumCert, quorum: int, n: int) -> bool:
    """Structural QC verification; the genesis QC is always valid."""
    if qc._verified_quorum == quorum and qc._verified_n == n:
        return True
    if qc == GENESIS_QC:
        object.__setattr__(qc, "_verified_quorum", quorum)
        object.__setattr__(qc, "_verified_n", n)
        return True
    if qc.forged:
        return False
    signers = set(qc.signers)
    if len(signers) != len(qc.signers):
        return False
    if any(not 0 <= signer < n for signer in signers):
        return False
    if len(signers) < quorum:
        return False
    object.__setattr__(qc, "_verified_quorum", quorum)
    object.__setattr__(qc, "_verified_n", n)
    return True


def vote_signature(signer: int, block_id: int, view: int) -> Signature:
    """Sign a consensus vote for ``(block_id, view)``."""
    return Signature(signer=signer, digest=_vote_digest(block_id, view))


def _vote_digest(block_id: int, view: int) -> int:
    return (block_id << 24) ^ view
