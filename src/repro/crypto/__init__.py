"""Structural simulated cryptography.

Signatures, quorum certificates, and availability proofs are dataclasses
validated for well-formedness (signer identity, digest match, quorum size,
distinct signers). Honest code obtains them only through the constructors
below; Byzantine code may *forge* objects, but forgeries carry a flag that
verification rejects — modeling the paper's assumption that "the adversary
cannot break these signatures" without paying for real ECDSA in a
simulation whose measurements deliberately exclude crypto cost
(Section VII-A).
"""

from repro.crypto.signatures import Signature, sign, verify_signature
from repro.crypto.proofs import (
    AvailabilityProof,
    ProofError,
    make_availability_proof,
    verify_availability_proof,
)
from repro.crypto.certificates import (
    GENESIS_QC,
    QuorumCert,
    make_quorum_cert,
    verify_quorum_cert,
    vote_signature,
)

__all__ = [
    "GENESIS_QC",
    "vote_signature",
    "Signature",
    "sign",
    "verify_signature",
    "AvailabilityProof",
    "ProofError",
    "make_availability_proof",
    "verify_availability_proof",
    "QuorumCert",
    "make_quorum_cert",
    "verify_quorum_cert",
]
