"""Availability proofs for PAB (Section IV-A).

A proof over a microblock id asserts that at least ``quorum`` distinct
replicas acknowledged holding the microblock. With ``quorum >= f + 1``
at least one of them is correct, so the microblock can always be fetched
— the **PAB-Provable Availability** property.

The prototype realizes proofs as ``f + 1`` concatenated ECDSA signatures
(Section VI); :attr:`AvailabilityProof.size_bytes` models that wire cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.signatures import Signature, verify_signature
from repro.types import sizes


class ProofError(ValueError):
    """Raised when a proof cannot be assembled from the given acks."""


@dataclass(frozen=True)
class AvailabilityProof:
    """Threshold proof that a microblock is held by a quorum of replicas."""

    mb_id: int
    signers: tuple[int, ...]
    forged: bool = False

    @property
    def quorum(self) -> int:
        return len(self.signers)

    @property
    def size_bytes(self) -> int:
        return sizes.availability_proof_bytes(max(1, len(self.signers)))

    # Memoized verification parameters (plain class attributes, not
    # dataclass fields). One proof object is shared by every receiver of
    # the proposal or PROOF broadcast carrying it, so the O(quorum)
    # structural check runs once per proof instead of once per receiver.
    # Only successful checks are cached; the ``mb_id`` binding is still
    # re-checked on every call.
    _verified_quorum = -1
    _verified_n = -1


def make_availability_proof(
    mb_id: int, acks: list[Signature], quorum: int, n: int
) -> AvailabilityProof:
    """Aggregate ack signatures into a proof (``threshold-sign`` in Alg. 1).

    Raises :class:`ProofError` if the acks do not form a valid quorum:
    too few distinct valid signers, wrong digest, or forged signatures.
    """
    valid_signers: set[int] = set()
    for ack in acks:
        if verify_signature(ack, mb_id, n):
            valid_signers.add(ack.signer)
    if len(valid_signers) < quorum:
        raise ProofError(
            f"need {quorum} distinct valid acks over mb {mb_id}, "
            f"got {len(valid_signers)}"
        )
    return AvailabilityProof(mb_id=mb_id, signers=tuple(sorted(valid_signers)))


def verify_availability_proof(
    proof: AvailabilityProof, mb_id: int, quorum: int, n: int
) -> bool:
    """``threshold-verify`` in Algorithms 2 and 3."""
    if proof.mb_id != mb_id:
        return False
    if proof._verified_quorum == quorum and proof._verified_n == n:
        return True
    if proof.forged:
        return False
    signers = set(proof.signers)
    if len(signers) != len(proof.signers):
        return False
    if any(not 0 <= signer < n for signer in signers):
        return False
    if len(signers) < quorum:
        return False
    object.__setattr__(proof, "_verified_quorum", quorum)
    object.__setattr__(proof, "_verified_n", n)
    return True
