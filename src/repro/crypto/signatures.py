"""Simulated digital signatures.

A :class:`Signature` binds a signer id to a digest. ``forged=True`` marks
objects fabricated by Byzantine code paths; :func:`verify_signature`
rejects them, which is the simulation equivalent of unforgeability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import sizes

Digest = int


@dataclass(frozen=True)
class Signature:
    """One signer's signature over a digest."""

    signer: int
    digest: Digest
    forged: bool = False

    @property
    def size_bytes(self) -> int:
        return sizes.SIGNATURE


def sign(signer: int, digest: Digest) -> Signature:
    """Produce ``signer``'s signature over ``digest``.

    In the simulation every component holds its own id, so possession of
    the id stands in for possession of the private key; Byzantine actors
    impersonating others must use :meth:`Signature` with ``forged=True``
    (there is no honest constructor for someone else's signature).
    """
    return Signature(signer=signer, digest=digest)


def verify_signature(signature: Signature, digest: Digest, n: int) -> bool:
    """Check a signature: not forged, digest matches, signer id in range."""
    if signature.forged:
        return False
    if signature.digest != digest:
        return False
    return 0 <= signature.signer < n
