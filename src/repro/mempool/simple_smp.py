"""Simple shared mempool: best-effort broadcast + fetch-from-leader.

This is the straw-man SMP the paper calls SMP-HS: microblocks are
broadcast best-effort, the leader proposes ids of whatever it has seen,
and replicas that are missing a referenced microblock must fetch it from
the proposer *before* they can vote (Problem-I). Under network asynchrony
or censoring Byzantine senders this congests the leader and triggers
view-change storms — the failure mode Figures 7 and 8 measure.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.mempool.base import Mempool, MessageKinds, OnFull, OnReady
from repro.mempool.batching import MicroBlockBatcher
from repro.mempool.fetching import FetchManager, single_target
from repro.mempool.store import MicroBlockStore
from repro.sim.network import Envelope
from repro.types import TxBatch
from repro.types.microblock import MicroBlock, MicroBlockId
from repro.types.proposal import Block, Payload, PayloadEntry, Proposal

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica


class SimpleSharedMempool(Mempool):
    """SMP with best-effort broadcast (SMP-HS / SMP-SL)."""

    name = "simple"

    def __init__(self, host: "Replica", config: ProtocolConfig) -> None:
        super().__init__(host, config)
        self.store = MicroBlockStore()
        self.fetcher = FetchManager(host, config, self.store)
        self._batcher = MicroBlockBatcher(host, config, self._on_new_microblock)
        self._proposable: deque[MicroBlockId] = deque()
        self._referenced: set[MicroBlockId] = set()
        self._committed: set[MicroBlockId] = set()

    # -- client / dissemination -------------------------------------------

    @property
    def batcher(self) -> MicroBlockBatcher:
        return self._batcher

    def on_client_batch(self, batch: TxBatch) -> None:
        self._batcher.add(batch)

    def rebase_microblock_ids(self, base: int) -> None:
        self._batcher.rebase(base)

    def _on_new_microblock(self, microblock: MicroBlock) -> None:
        """ShareTx: broadcast a freshly batched microblock best-effort."""
        self.store.add(microblock)
        self._enqueue_proposable(microblock.id)
        targets = self.host.behavior.share_targets(
            self.host, self._default_targets()
        )
        self.broadcast(
            MessageKinds.MICROBLOCK,
            microblock.size_bytes,
            microblock,
            recipients=targets,
        )

    def _default_targets(self) -> list[int]:
        return [node for node in range(self.config.n) if node != self.node_id]

    def _enqueue_proposable(self, mb_id: MicroBlockId) -> None:
        if mb_id not in self._referenced and mb_id not in self._committed:
            self._proposable.append(mb_id)

    # -- leader side ---------------------------------------------------

    def make_payload(self) -> Payload:
        entries: list[PayloadEntry] = []
        limit = self.config.proposal_max_microblocks
        while self._proposable:
            if limit and len(entries) >= limit:
                break
            mb_id = self._proposable.popleft()
            if mb_id in self._referenced or mb_id in self._committed:
                continue
            self._referenced.add(mb_id)
            entries.append(PayloadEntry(mb_id=mb_id))
        return Payload(entries=tuple(entries))

    # -- follower side -----------------------------------------------------

    def prepare(self, proposal: Proposal, on_ready: OnReady) -> None:
        """Voting requires the full data: fetch missing from the proposer."""
        for entry in proposal.payload.entries:
            self._referenced.add(entry.mb_id)
        missing = [
            entry.mb_id
            for entry in proposal.payload.entries
            if entry.mb_id not in self.store
        ]
        if not missing:
            on_ready()
            return
        remaining = {"count": len(missing)}

        def one_arrived(_mb: MicroBlock) -> None:
            remaining["count"] -= 1
            if remaining["count"] == 0:
                on_ready()

        delay = self.config.effective_recovery_delay
        for mb_id in missing:
            self.store.on_delivery(mb_id, one_arrived)
            self.fetcher.request(
                mb_id, single_target(proposal.proposer), delay=delay
            )

    def resolve(self, proposal: Proposal, on_full: OnFull) -> None:
        block = Block(proposal=proposal)
        ids = proposal.payload.microblock_ids
        if not ids:
            block.filled_at = self.host.sim.now
            on_full(block)
            return
        remaining = {"count": len(ids)}

        def collect(microblock: MicroBlock) -> None:
            block.microblocks[microblock.id] = microblock
            remaining["count"] -= 1
            if remaining["count"] == 0:
                block.filled_at = self.host.sim.now
                on_full(block)

        delay = self.config.effective_recovery_delay
        for mb_id in ids:
            self.store.on_delivery(mb_id, collect)
            if mb_id not in self.store:
                self.fetcher.request(
                    mb_id, single_target(proposal.proposer), delay=delay
                )

    def mark_committed(self, proposal: Proposal) -> None:
        for mb_id in proposal.payload.microblock_ids:
            self._committed.add(mb_id)

    def garbage_collect(self, proposal: Proposal) -> None:
        ids = list(proposal.payload.microblock_ids)
        retention = self.config.gc_retention
        if retention > 0:
            self.host.sim.schedule(
                retention,
                lambda: [self.store.discard(mb_id) for mb_id in ids],
            )

    def on_abandoned(self, proposal: Proposal) -> None:
        """Re-queue ids from a lost fork so they are proposed again."""
        for mb_id in proposal.payload.microblock_ids:
            self._referenced.discard(mb_id)
            if mb_id in self.store and mb_id not in self._committed:
                self._proposable.append(mb_id)

    # -- network -----------------------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        if envelope.kind in (
            MessageKinds.MICROBLOCK,
            MessageKinds.MICROBLOCK_FETCH,
        ):
            microblock = envelope.payload
            if self.store.add(microblock):
                self._enqueue_proposable(microblock.id)
        elif envelope.kind == MessageKinds.FETCH_REQUEST:
            self.fetcher.handle_request(envelope.src, envelope.payload)
