"""Mempool implementations.

Five mempool families back the protocols evaluated in the paper
(Table II):

* :class:`~repro.mempool.native.NativeMempool` — leader ships full
  transaction data (N-HS, N-SL);
* :class:`~repro.mempool.simple_smp.SimpleSharedMempool` — best-effort
  broadcast plus fetch-from-leader (SMP-HS, the straw man);
* :class:`~repro.mempool.gossip_smp.GossipSharedMempool` — gossip
  dissemination (SMP-HS-G);
* :class:`~repro.mempool.narwhal.NarwhalMempool` — Bracha reliable
  broadcast, quadratic message complexity (Narwhal baseline);
* :class:`~repro.mempool.stratus.StratusMempool` — PAB + DLB
  (this paper's contribution);
* :class:`~repro.mempool.sharded.ShardedStratusMempool` — per-shard PAB
  quorums and certificate-only consensus ordering (Arma / BigDipper
  directions; see DESIGN.md "Sharding").
"""

from repro.mempool.base import Mempool, MessageKinds
from repro.mempool.native import NativeMempool, SharedPendingPool
from repro.mempool.simple_smp import SimpleSharedMempool
from repro.mempool.gossip_smp import GossipSharedMempool
from repro.mempool.narwhal import NarwhalMempool
from repro.mempool.sharded import ShardedStratusMempool
from repro.mempool.stratus import StratusMempool

MEMPOOL_CLASSES = {
    "native": NativeMempool,
    "simple": SimpleSharedMempool,
    "gossip": GossipSharedMempool,
    "narwhal": NarwhalMempool,
    "stratus": StratusMempool,
    "sharded-stratus": ShardedStratusMempool,
}

__all__ = [
    "Mempool",
    "MessageKinds",
    "NativeMempool",
    "SharedPendingPool",
    "SimpleSharedMempool",
    "GossipSharedMempool",
    "NarwhalMempool",
    "ShardedStratusMempool",
    "StratusMempool",
    "MEMPOOL_CLASSES",
]
