"""Native mempool: the leader ships full transaction data (N-HS, N-SL).

This models the classic LBFT proposing phase of Appendix A-A: every
pending transaction is embedded in the proposal, so the leader serializes
``(n - 1) * K`` bytes per block through its own uplink. To isolate that
dissemination bottleneck (and be maximally generous to the baseline), the
pending pool is shared: transactions are available to whichever replica
is leader at no transfer cost, exactly as in the paper's model where
client-to-replica traffic is excluded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.mempool.base import Mempool, OnFull, OnReady
from repro.types import TxBatch
from repro.types.microblock import MicroBlock, make_microblock_id
from repro.types.proposal import Block, Payload, Proposal

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica


class SharedPendingPool:
    """Experiment-wide pending transaction pool for native protocols."""

    def __init__(self, tx_payload: int) -> None:
        self.tx_payload = tx_payload
        self._count = 0
        self._sum_arrival = 0.0
        self._drawn = 0

    @property
    def pending(self) -> int:
        return self._count

    def add(self, batch: TxBatch) -> None:
        if batch.payload_bytes != self.tx_payload:
            raise ValueError(
                f"payload {batch.payload_bytes} != pool payload {self.tx_payload}"
            )
        self._count += batch.count
        self._sum_arrival += batch.sum_arrival

    def draw(self, max_bytes: int) -> tuple[int, float]:
        """Remove up to ``max_bytes`` worth of txs; returns (count, sum_arrival)."""
        if self._count == 0:
            return 0, 0.0
        take = min(self._count, max(1, max_bytes // self.tx_payload))
        mean = self._sum_arrival / self._count
        self._count -= take
        self._sum_arrival -= mean * take
        self._drawn += take
        return take, mean * take

    def refund(self, count: int, sum_arrival: float) -> None:
        """Return transactions from an abandoned proposal to the pool."""
        if count <= 0:
            return
        self._count += count
        self._sum_arrival += sum_arrival


class NativeMempool(Mempool):
    """Traditional mempool: ``MakeProposal`` embeds full transaction data."""

    name = "native"

    def __init__(
        self,
        host: "Replica",
        config: ProtocolConfig,
        pool: SharedPendingPool,
    ) -> None:
        super().__init__(host, config)
        self._pool = pool
        self._counter = 0

    def on_client_batch(self, batch: TxBatch) -> None:
        self._pool.add(batch)

    def rebase_microblock_ids(self, base: int) -> None:
        self._counter = base

    def make_payload(self) -> Payload:
        count, sum_arrival = self._pool.draw(self.config.native_block_bytes)
        if count == 0:
            return Payload()
        microblock = MicroBlock(
            id=make_microblock_id(self.node_id, self._counter),
            origin=self.node_id,
            tx_count=count,
            tx_payload=self.config.tx_payload,
            created_at=self.host.sim.now,
            sum_arrival=sum_arrival,
        )
        self._counter += 1
        self.host.notify_microblock(microblock)
        return Payload(embedded=(microblock,))

    def prepare(self, proposal: Proposal, on_ready: OnReady) -> None:
        # The data rode inside the proposal; nothing to wait for.
        on_ready()

    def resolve(self, proposal: Proposal, on_full: OnFull) -> None:
        block = Block(proposal=proposal)
        for microblock in proposal.payload.embedded:
            block.microblocks[microblock.id] = microblock
        block.filled_at = self.host.sim.now
        on_full(block)

    def on_abandoned(self, proposal: Proposal) -> None:
        """Return the transactions of an uncommitted fork to the pool.

        Only the proposer refunds — every replica observes the abandoned
        fork, but the pool must be credited exactly once.
        """
        if proposal.proposer != self.node_id:
            return
        for microblock in proposal.payload.embedded:
            self._pool.refund(microblock.tx_count, microblock.sum_arrival)
