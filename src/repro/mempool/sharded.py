"""The sharded Stratus shared mempool (``sharded-stratus``).

Stratus with the dissemination fan-out cut by sharding: a replica's
microblocks are pushed only to its shard's members
(:class:`repro.sharding.ShardPabEngine`), a per-shard quorum mints a
compact :class:`repro.sharding.ShardCertificate`, and consensus orders
certificates instead of proven bodies. Replicas vote on certificate
validity alone; bodies are resolved lazily — shard members already hold
them, an attached executor fetches the rest from certificate signers,
and everyone else commits on certificates without ever seeing a byte of
foreign-shard payload. Commit metrics (throughput, latency) come from
the certificate's embedded scalars, so accounting stays exact even
where bodies never arrive.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.config import ProtocolConfig, ShardingConfig
from repro.mempool.base import Mempool, OnFull, OnReady
from repro.mempool.batching import MicroBlockBatcher
from repro.mempool.fetching import FetchManager
from repro.mempool.store import MicroBlockStore
from repro.mempool.stratus.estimator import StableTimeEstimator
from repro.sharding import (
    ShardCertificate,
    ShardMap,
    ShardPabEngine,
    verify_shard_certificate,
)
from repro.sim.network import Envelope
from repro.types import TxBatch
from repro.types.microblock import MicroBlock, MicroBlockId
from repro.types.proposal import Block, Payload, PayloadEntry, Proposal

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica


class ShardedStratusMempool(Mempool):
    """Per-shard PAB quorums + certificate-only consensus ordering."""

    name = "sharded-stratus"

    def __init__(self, host: "Replica", config: ProtocolConfig) -> None:
        super().__init__(host, config)
        sharding = config.sharding or ShardingConfig()
        self.shard_map = ShardMap(config.n, sharding)
        self.store = MicroBlockStore()
        self.fetcher = FetchManager(host, config, self.store)
        self.estimator = StableTimeEstimator(
            window=config.estimator_window,
            percentile=config.estimator_percentile,
            busy_margin=config.busy_margin,
            busy_slack=config.busy_slack,
        )
        self.pab = ShardPabEngine(
            host, config, self.shard_map, self.store, self.fetcher,
            on_certificate=self._on_remote_certificate,
            on_stable=self._on_stable,
            retry_floor=self.estimator.estimate,
        )
        self._batcher = MicroBlockBatcher(
            host, config, self._on_new_microblock
        )
        self._ava_queue: deque[MicroBlockId] = deque()
        self._certs: dict[MicroBlockId, ShardCertificate] = {}
        self._queued: set[MicroBlockId] = set()
        self._referenced: set[MicroBlockId] = set()
        self._committed: set[MicroBlockId] = set()

    # -- client / dissemination ----------------------------------------

    @property
    def batcher(self) -> MicroBlockBatcher:
        return self._batcher

    def on_client_batch(self, batch: TxBatch) -> None:
        self._batcher.add(batch)

    def rebase_microblock_ids(self, base: int) -> None:
        self._batcher.rebase(base)

    def _on_new_microblock(self, microblock: MicroBlock) -> None:
        self.host.trace(
            "mb_new", mb=microblock.id, txs=microblock.tx_count,
            shard=self.pab.own_shard,
        )
        self.pab.push(microblock, self._on_self_certified)

    def _on_stable(self, mb_id: MicroBlockId, elapsed: float) -> None:
        self.host.trace("mb_stable", mb=mb_id, st=round(elapsed, 6))
        self.estimator.record(elapsed)
        self.host.metrics.record_stable_time(elapsed)

    def _add_available(
        self, mb_id: MicroBlockId, cert: ShardCertificate
    ) -> None:
        self._certs[mb_id] = cert
        if (
            mb_id not in self._queued
            and mb_id not in self._referenced
            and mb_id not in self._committed
        ):
            self._queued.add(mb_id)
            self._ava_queue.append(mb_id)

    def _on_self_certified(
        self, mb_id: MicroBlockId, cert: ShardCertificate
    ) -> None:
        """A shard quorum formed for a microblock this replica pushed.

        Broadcast the certificate (everyone can now reference/vote on
        the id) and queue it for proposal. A certificate-withholding
        attacker suppresses this, wasting only its own clients' txs.
        """
        if self.host.behavior.withholds_proofs:
            return
        self.pab.broadcast_certificate(cert)
        self._add_available(mb_id, cert)

    def _on_remote_certificate(
        self, mb_id: MicroBlockId, cert: ShardCertificate
    ) -> None:
        """A verified SHARD_CERT broadcast arrived."""
        self._add_available(mb_id, cert)

    def on_restart(self) -> None:
        super().on_restart()
        repushed = self.pab.repush_pending()
        if repushed:
            self.host.trace("mb_repush", count=repushed)

    # -- leader side ---------------------------------------------------

    def make_payload(self) -> Payload:
        """MakeProposal: pull certified ids (with certs) from the queue."""
        entries: list[PayloadEntry] = []
        limit = self.config.proposal_max_microblocks
        while self._ava_queue:
            if limit and len(entries) >= limit:
                break
            mb_id = self._ava_queue.popleft()
            self._queued.discard(mb_id)
            if mb_id in self._referenced or mb_id in self._committed:
                continue
            self._referenced.add(mb_id)
            entries.append(
                PayloadEntry(mb_id=mb_id, cert=self._certs[mb_id])
            )
        return Payload(entries=tuple(entries))

    # -- follower side -------------------------------------------------

    def verify_payload(self, payload: Payload) -> bool:
        """Vote on certificate validity; failure triggers a view-change."""
        for entry in payload.entries:
            if entry.cert is None:
                return False
            if not verify_shard_certificate(
                entry.cert, entry.mb_id, self.shard_map
            ):
                return False
        return True

    def prepare(self, proposal: Proposal, on_ready: OnReady) -> None:
        """Valid certificates guarantee availability: vote immediately."""
        for entry in proposal.payload.entries:
            self._referenced.add(entry.mb_id)
            if entry.cert is not None:
                self._certs.setdefault(entry.mb_id, entry.cert)
        on_ready()

    def _resolvable(self, entries) -> list[PayloadEntry]:
        """Entries this replica materializes bodies for.

        An executor needs every body (state must be applied in full);
        otherwise only entries of shards this replica belongs to — plus
        any body that happens to be local already — are resolved. The
        rest commit as certificates, which is the whole bandwidth story.
        """
        if self.host.executor is not None:
            return list(entries)
        node = self.host.node_id
        shard_map = self.shard_map
        picked = []
        for entry in entries:
            shard = shard_map.shard_of_microblock(entry.mb_id)
            if shard_map.is_member(node, shard) or entry.mb_id in self.store:
                picked.append(entry)
        return picked

    def resolve(self, proposal: Proposal, on_full: OnFull) -> None:
        block = Block(proposal=proposal)
        entries = self._resolvable(proposal.payload.entries)
        if not entries:
            block.filled_at = self.host.sim.now
            on_full(block)
            return
        remaining = {"count": len(entries)}

        def collect(microblock: MicroBlock) -> None:
            block.microblocks[microblock.id] = microblock
            remaining["count"] -= 1
            if remaining["count"] == 0:
                block.filled_at = self.host.sim.now
                on_full(block)

        for entry in entries:
            self.store.on_delivery(entry.mb_id, collect)
            if entry.mb_id not in self.store:
                cert = entry.cert or self._certs.get(entry.mb_id)
                if cert is not None:
                    self.pab.fetch(entry.mb_id, cert)

    def on_commit(self, proposal: Proposal, commit_time: float) -> None:
        """Certificate-level commit: account from certs, resolve lazily.

        Unlike the base hook, metrics are recorded *now* from the
        certificates' embedded tx counts and arrival means — resolution
        may never materialize foreign-shard bodies on this replica, and
        must not gate throughput/latency accounting.
        """
        self.mark_committed(proposal)
        latencies = []
        tx_total = 0
        cert_count = 0
        for entry in proposal.payload.entries:
            cert = entry.cert or self._certs.get(entry.mb_id)
            if cert is None:
                continue
            cert_count += 1
            tx_total += cert.tx_count
            latencies.append(
                (commit_time - cert.mean_arrival, float(cert.tx_count))
            )
        self.host.metrics.record_commit(
            block_id=proposal.block_id,
            tx_count=tx_total,
            microblock_count=cert_count,
            latencies=latencies,
            commit_time=commit_time,
        )

        def finish(block: Block) -> None:
            block.committed_at = commit_time
            self.host.notify_block_resolved(block)
            self.host.on_block_executed(block)
            self.garbage_collect(proposal)

        self.resolve(proposal, finish)

    def mark_committed(self, proposal: Proposal) -> None:
        for mb_id in proposal.payload.microblock_ids:
            self._committed.add(mb_id)

    def garbage_collect(self, proposal: Proposal) -> None:
        ids = list(proposal.payload.microblock_ids)
        retention = self.config.gc_retention
        if retention > 0:
            self.host.sim.schedule(
                retention, lambda: self._discard_bodies(ids)
            )

    def _discard_bodies(self, ids: list[MicroBlockId]) -> None:
        for mb_id in ids:
            self.store.discard(mb_id)
            self._certs.pop(mb_id, None)
            self.pab.discard(mb_id)

    def on_abandoned(self, proposal: Proposal) -> None:
        """Re-queue certified ids from a lost fork (SMP-Inclusion)."""
        for entry in proposal.payload.entries:
            self._referenced.discard(entry.mb_id)
            if entry.mb_id in self._committed:
                continue
            cert = self._certs.get(entry.mb_id) or entry.cert
            if cert is not None:
                self._add_available(entry.mb_id, cert)

    # -- network -------------------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        self.pab.on_message(envelope)
